//! Umbrella crate for the *faas-freedom* workspace.
//!
//! Re-exports the workspace crates under one roof so examples and
//! downstream users can depend on a single package:
//!
//! - [`core`] (`freedom`): autotuner, allocation strategies, user
//!   interfaces, provider planner — the paper's contribution;
//! - [`faas`]: the serverless platform (gateway, deployments, metering);
//! - [`workloads`]: the six benchmark function models;
//! - [`cluster`]: the simulated EC2-style cluster and cgroups;
//! - [`pricing`]: the §3.2 cost model;
//! - [`optimizer`]: search space, BO + EI, samplers, multi-objective tools;
//! - [`surrogates`]: GP / RF / ET / GBRT regressors;
//! - [`linalg`]: the small dense linear-algebra kernel.
//!
//! # Examples
//!
//! ```
//! use faas_freedom::prelude::*;
//!
//! let tuner = Autotuner::new(SurrogateKind::Gp);
//! let outcome = tuner
//!     .tune_offline(
//!         FunctionKind::S3,
//!         &FunctionKind::S3.default_input(),
//!         Objective::ExecutionCost,
//!         7,
//!     )
//!     .unwrap();
//! assert!(outcome.recommended().is_some());
//! ```

pub use freedom as core;
pub use freedom_cluster as cluster;
pub use freedom_faas as faas;
pub use freedom_linalg as linalg;
pub use freedom_optimizer as optimizer;
pub use freedom_pricing as pricing;
pub use freedom_surrogates as surrogates;
pub use freedom_workloads as workloads;

/// The most common imports, in one place.
pub mod prelude {
    pub use freedom::interfaces::{
        hierarchical_interface, pareto_interface, weighted_interface, CostPerfOption,
    };
    pub use freedom::provider::{IdleCapacityPlanner, PlannerConfig};
    pub use freedom::strategies::{best_within_strategy, AllocationStrategy};
    pub use freedom::{Autotuner, FreedomError, GatewayEvaluator, TuneOutcome};
    pub use freedom_cluster::{Architecture, InstanceFamily};
    pub use freedom_faas::{
        collect_ground_truth, FunctionSpec, Gateway, InvocationRecord, PerfTable, ResourceConfig,
    };
    pub use freedom_optimizer::{
        BayesianOptimizer, BoConfig, Objective, SearchSpace, TableEvaluator,
    };
    pub use freedom_pricing::{CostModel, SpotPricing};
    pub use freedom_surrogates::{Surrogate, SurrogateKind};
    pub use freedom_workloads::{FunctionKind, InputData};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_main_types() {
        let space = SearchSpace::table1();
        assert_eq!(space.len(), 288);
        let model = CostModel::aws().unwrap();
        let cost = model
            .execution_cost(InstanceFamily::M5, 1.0, 1024, 1.0)
            .unwrap();
        assert!(cost > 0.0);
        assert_eq!(FunctionKind::ALL.len(), 6);
        assert_eq!(SurrogateKind::ALL.len(), 4);
        assert_eq!(AllocationStrategy::ALL.len(), 4);
    }
}

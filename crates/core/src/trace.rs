//! Arrival-trace generation for the fleet simulator.
//!
//! "Serverless in the Wild" (Shahrad et al., ATC'20) shows that real
//! provider traces are nothing like a fixed-rate Poisson process: function
//! popularity spans orders of magnitude, arrivals are bursty, and load
//! follows diurnal cycles. [`TraceSource`] models those regimes:
//!
//! - [`TraceSource::Poisson`]: independent exponential inter-arrivals per
//!   function (the original toy workload);
//! - [`TraceSource::Bursty`]: a two-state Markov-modulated Poisson
//!   process (calm/burst) per function;
//! - [`TraceSource::Diurnal`]: a sinusoidally-modulated rate (thinning);
//! - [`TraceSource::HeavyTail`]: Pareto-distributed per-function
//!   popularity and Lomax (heavy-tailed) inter-arrival times.
//!
//! Every generator produces one **independent stream per function**,
//! seeded as a pure function of `(seed, function index)`. That is the
//! property the sharded fleet replay relies on: a function's stream never
//! depends on how many other functions exist or which thread generated
//! it, so `generate` and [`TraceSource::generate_sharded`] are
//! bit-identical. The merged event view is built with a k-way streaming
//! merge over the per-function streams (no global sort).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use freedom_workloads::FunctionKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{FreedomError, Result};

/// One invocation arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Arrival time in seconds since trace start.
    pub at_secs: f64,
    /// Index of the invoked function in the fleet's plan list.
    pub function: usize,
}

/// A generated arrival trace: per-function streams plus their merged view.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Sorted arrival times per function (the shard replay input).
    streams: Vec<Vec<f64>>,
    /// All arrivals merged by time (ties: lower function index first).
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Builds a trace from per-function sorted arrival streams, merging
    /// them with a k-way streaming merge (heap of one cursor per stream)
    /// into the time-ordered event view. `O(N log F)`, no global sort,
    /// and the output vector is pre-sized exactly.
    fn from_streams(streams: Vec<Vec<f64>>) -> Self {
        let total: usize = streams.iter().map(Vec::len).sum();
        let mut events = Vec::with_capacity(total);
        // Arrival times are non-negative finite, so their IEEE-754 bit
        // patterns order exactly like the floats and give the heap a
        // cheap `Ord` key. Ties break on function index, matching what a
        // stable sort over function-ordered streams would produce.
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::with_capacity(streams.len());
        let mut cursors = vec![0usize; streams.len()];
        for (f, stream) in streams.iter().enumerate() {
            if let Some(&t) = stream.first() {
                heap.push(Reverse((t.to_bits(), f)));
            }
        }
        while let Some(Reverse((bits, f))) = heap.pop() {
            events.push(TraceEvent {
                at_secs: f64::from_bits(bits),
                function: f,
            });
            cursors[f] += 1;
            if let Some(&t) = streams[f].get(cursors[f]) {
                heap.push(Reverse((t.to_bits(), f)));
            }
        }
        Self { streams, events }
    }

    /// Generates the classic fixed-rate Poisson trace over the six
    /// benchmark functions (function index `i` is `FunctionKind::ALL[i]`;
    /// a fleet replaying this trace should list its plans in the same
    /// order — see `FleetSimulator::new`).
    ///
    /// Returns [`FreedomError::InvalidArgument`] for non-positive rates or
    /// durations.
    pub fn poisson(duration_secs: f64, rps_per_function: f64, seed: u64) -> Result<Self> {
        TraceSource::Poisson { rps_per_function }.generate(
            FunctionKind::ALL.len(),
            duration_secs,
            seed,
        )
    }

    /// The events, in arrival order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of functions with a (possibly empty) stream in this trace.
    pub fn n_functions(&self) -> usize {
        self.streams.len()
    }

    /// The sorted arrival times of one function's stream.
    pub fn stream(&self, function: usize) -> &[f64] {
        &self.streams[function]
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Truncation of the Pareto popularity weight in
/// [`TraceSource::HeavyTail`]: real providers cap per-function request
/// rates, and an untruncated Pareto sample can be astronomically large.
const MAX_POPULARITY: f64 = 256.0;

/// A family of synthetic arrival-trace generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceSource {
    /// Fixed-rate Poisson arrivals, independently per function.
    Poisson {
        /// Mean arrival rate of every function, in requests per second.
        rps_per_function: f64,
    },
    /// Two-state Markov-modulated Poisson process per function: calm
    /// periods at `calm_rps` alternating with bursts at `burst_rps`,
    /// with exponentially distributed sojourn times.
    Bursty {
        /// Arrival rate outside bursts (may be 0 for on/off traffic).
        calm_rps: f64,
        /// Arrival rate inside bursts.
        burst_rps: f64,
        /// Mean length of a calm period, seconds.
        mean_calm_secs: f64,
        /// Mean length of a burst, seconds.
        mean_burst_secs: f64,
    },
    /// Sinusoidally-modulated Poisson process (thinning):
    /// `rate(t) = mean · (1 + a·sin(2πt/period))` with the amplitude `a`
    /// chosen so the peak-to-trough rate ratio is `peak_to_trough`.
    Diurnal {
        /// Time-averaged arrival rate per function.
        mean_rps: f64,
        /// Ratio of the peak rate to the trough rate (≥ 1).
        peak_to_trough: f64,
        /// Cycle length in seconds (a day, or the trace length).
        period_secs: f64,
    },
    /// "Serverless in the Wild"-shaped traffic: each function's rate is
    /// `mean_rps` scaled by a Pareto(1, α) popularity weight (normalized
    /// to keep the fleet-wide mean near `mean_rps`, truncated at
    /// [`MAX_POPULARITY`]), and its inter-arrival times are Lomax(α)
    /// distributed — heavy-tailed gaps punctuated by clustered arrivals.
    HeavyTail {
        /// Target mean arrival rate per function.
        mean_rps: f64,
        /// Tail index α (must be > 1 so means exist; smaller = heavier).
        alpha: f64,
    },
}

impl TraceSource {
    /// Generates `n_functions` independent streams over `duration_secs`
    /// seconds and merges them into a [`Trace`].
    ///
    /// Returns [`FreedomError::InvalidArgument`] for non-positive
    /// durations, zero functions, or parameters outside each variant's
    /// domain (see the variant docs).
    pub fn generate(&self, n_functions: usize, duration_secs: f64, seed: u64) -> Result<Trace> {
        self.generate_sharded(n_functions, duration_secs, seed, 1)
    }

    /// Like [`TraceSource::generate`], with stream generation fanned out
    /// over `threads` workers. Streams are pure functions of
    /// `(seed, function index)`, so the result is bit-identical to the
    /// sequential path for every thread count.
    pub fn generate_sharded(
        &self,
        n_functions: usize,
        duration_secs: f64,
        seed: u64,
        threads: usize,
    ) -> Result<Trace> {
        self.validate(n_functions, duration_secs)?;
        let streams = freedom_parallel::par_run(n_functions, threads, |f| {
            self.stream(duration_secs, stream_seed(seed, f))
        });
        Ok(Trace::from_streams(streams))
    }

    fn validate(&self, n_functions: usize, duration_secs: f64) -> Result<()> {
        let invalid = |what: String| Err(FreedomError::InvalidArgument(what));
        if n_functions == 0 {
            return invalid("trace needs at least one function".into());
        }
        if !duration_secs.is_finite() || duration_secs <= 0.0 {
            return invalid(format!("duration must be positive, got {duration_secs}s"));
        }
        let positive = |name: &str, v: f64| -> Result<()> {
            if !v.is_finite() || v <= 0.0 {
                return Err(FreedomError::InvalidArgument(format!(
                    "{name} must be positive, got {v}"
                )));
            }
            Ok(())
        };
        match *self {
            Self::Poisson { rps_per_function } => positive("rate", rps_per_function),
            Self::Bursty {
                calm_rps,
                burst_rps,
                mean_calm_secs,
                mean_burst_secs,
            } => {
                if !calm_rps.is_finite() || calm_rps < 0.0 {
                    return invalid(format!("calm rate must be ≥ 0, got {calm_rps}"));
                }
                positive("burst rate", burst_rps)?;
                positive("mean calm period", mean_calm_secs)?;
                positive("mean burst period", mean_burst_secs)
            }
            Self::Diurnal {
                mean_rps,
                peak_to_trough,
                period_secs,
            } => {
                positive("mean rate", mean_rps)?;
                positive("period", period_secs)?;
                if !peak_to_trough.is_finite() || peak_to_trough < 1.0 {
                    return invalid(format!(
                        "peak-to-trough ratio must be ≥ 1, got {peak_to_trough}"
                    ));
                }
                Ok(())
            }
            Self::HeavyTail { mean_rps, alpha } => {
                positive("mean rate", mean_rps)?;
                if !alpha.is_finite() || alpha <= 1.0 {
                    return invalid(format!("alpha must be > 1, got {alpha}"));
                }
                Ok(())
            }
        }
    }

    /// One function's sorted arrival stream over `(0, duration)`.
    fn stream(&self, duration: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        match *self {
            Self::Poisson { rps_per_function } => {
                let mut out = presized(duration, rps_per_function);
                let mut t = 0.0;
                loop {
                    t += exp_sample(&mut rng, rps_per_function);
                    if t >= duration {
                        break;
                    }
                    out.push(t);
                }
                out
            }
            Self::Bursty {
                calm_rps,
                burst_rps,
                mean_calm_secs,
                mean_burst_secs,
            } => {
                // Expected rate = time-weighted mix of the two states.
                let mix = (calm_rps * mean_calm_secs + burst_rps * mean_burst_secs)
                    / (mean_calm_secs + mean_burst_secs);
                let mut out = presized(duration, mix);
                let mut t = 0.0;
                let mut bursting = false;
                let mut switch_at = exp_sample(&mut rng, 1.0 / mean_calm_secs);
                loop {
                    let rate = if bursting { burst_rps } else { calm_rps };
                    // `calm_rps == 0` gives an infinite gap, which simply
                    // rides the state machine to the next burst.
                    let next = t + exp_sample(&mut rng, rate);
                    if next < switch_at {
                        t = next;
                        if t >= duration {
                            break;
                        }
                        out.push(t);
                    } else {
                        // The exponential is memoryless, so jumping to the
                        // switch point and redrawing is exact.
                        t = switch_at;
                        if t >= duration {
                            break;
                        }
                        bursting = !bursting;
                        let mean = if bursting {
                            mean_burst_secs
                        } else {
                            mean_calm_secs
                        };
                        switch_at = t + exp_sample(&mut rng, 1.0 / mean);
                    }
                }
                out
            }
            Self::Diurnal {
                mean_rps,
                peak_to_trough,
                period_secs,
            } => {
                let amp = (peak_to_trough - 1.0) / (peak_to_trough + 1.0);
                let rate_max = mean_rps * (1.0 + amp);
                let mut out = presized(duration, mean_rps);
                let mut t = 0.0;
                // Lewis–Shedler thinning: candidates at the peak rate,
                // accepted with probability rate(t)/rate_max.
                loop {
                    t += exp_sample(&mut rng, rate_max);
                    if t >= duration {
                        break;
                    }
                    let rate = mean_rps
                        * (1.0 + amp * (2.0 * std::f64::consts::PI * t / period_secs).sin());
                    let u: f64 = rng.gen_range(0.0..1.0);
                    if u * rate_max < rate {
                        out.push(t);
                    }
                }
                out
            }
            Self::HeavyTail { mean_rps, alpha } => {
                // Popularity weight: Pareto(1, α), normalized by its mean
                // α/(α−1) so the fleet-wide average stays ≈ mean_rps,
                // truncated so a single function cannot dwarf the fleet.
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let weight = u.powf(-1.0 / alpha).min(MAX_POPULARITY);
                let rate = mean_rps * weight * (alpha - 1.0) / alpha;
                // Lomax(α) inter-arrivals with mean 1/rate.
                let scale = (alpha - 1.0) / rate;
                let mut out = presized(duration, rate);
                let mut t = 0.0;
                loop {
                    let v: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    t += scale * (v.powf(-1.0 / alpha) - 1.0);
                    if t >= duration {
                        break;
                    }
                    out.push(t);
                }
                out
            }
        }
    }
}

/// A vector pre-sized for a `duration × rate` stream plus 10% headroom,
/// capped so a pathological rate cannot trigger a giant up-front
/// allocation.
fn presized(duration: f64, rate: f64) -> Vec<f64> {
    let expected = (duration * rate * 1.1) as usize + 8;
    Vec::with_capacity(expected.min(1 << 22))
}

/// Exponential inter-arrival sample via inverse transform.
#[inline]
fn exp_sample(rng: &mut StdRng, rate: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

/// Seed of one function's stream: a SplitMix64-style mix of the trace
/// seed and the function index, so every stream is an independent pure
/// function of `(seed, index)` regardless of fleet size or threading.
fn stream_seed(seed: u64, function: usize) -> u64 {
    let mut z = seed ^ (function as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SOURCES: [TraceSource; 4] = [
        TraceSource::Poisson {
            rps_per_function: 0.8,
        },
        TraceSource::Bursty {
            calm_rps: 0.2,
            burst_rps: 4.0,
            mean_calm_secs: 40.0,
            mean_burst_secs: 5.0,
        },
        TraceSource::Diurnal {
            mean_rps: 0.8,
            peak_to_trough: 4.0,
            period_secs: 120.0,
        },
        TraceSource::HeavyTail {
            mean_rps: 0.8,
            alpha: 1.5,
        },
    ];

    #[test]
    fn every_source_is_sorted_deterministic_and_shard_stable() {
        for source in SOURCES {
            let a = source.generate(10, 200.0, 7).unwrap();
            assert!(!a.is_empty(), "{source:?} generated nothing");
            assert_eq!(a.n_functions(), 10);
            for w in a.events().windows(2) {
                assert!(
                    w[0].at_secs < w[1].at_secs
                        || (w[0].at_secs == w[1].at_secs && w[0].function <= w[1].function),
                    "{source:?} unsorted"
                );
            }
            assert!(a
                .events()
                .iter()
                .all(|e| e.at_secs > 0.0 && e.at_secs < 200.0));
            assert_eq!(a.len(), (0..10).map(|f| a.stream(f).len()).sum::<usize>());
            // Same seed replays identically; generation threads are
            // immaterial; different seeds diverge.
            let b = source.generate_sharded(10, 200.0, 7, 8).unwrap();
            assert_eq!(a.events(), b.events(), "{source:?} diverged across threads");
            let c = source.generate(10, 200.0, 8).unwrap();
            assert_ne!(a.events(), c.events(), "{source:?} ignored the seed");
        }
    }

    #[test]
    fn streams_do_not_depend_on_fleet_size() {
        // Function 3's stream must be identical whether the fleet has 4
        // or 40 functions — the property sharded replay rests on.
        for source in SOURCES {
            let small = source.generate(4, 100.0, 21).unwrap();
            let large = source.generate(40, 100.0, 21).unwrap();
            assert_eq!(small.stream(3), large.stream(3), "{source:?}");
        }
    }

    #[test]
    fn rates_land_near_their_targets() {
        // 200 functions × 200 s at 0.8 rps ⇒ 32 000 expected arrivals.
        for source in SOURCES {
            let trace = source.generate(200, 200.0, 3).unwrap();
            let expected = 32_000.0;
            let got = trace.len() as f64;
            assert!(
                (0.5..2.0).contains(&(got / expected)),
                "{source:?}: {got} arrivals vs ~{expected}"
            );
        }
    }

    #[test]
    fn heavy_tail_popularity_is_skewed() {
        let trace = TraceSource::HeavyTail {
            mean_rps: 1.0,
            alpha: 1.2,
        }
        .generate(100, 200.0, 11)
        .unwrap();
        let mut lens: Vec<usize> = (0..100).map(|f| trace.stream(f).len()).collect();
        lens.sort_unstable();
        let total: usize = lens.iter().sum();
        let top10: usize = lens[90..].iter().sum();
        // The hottest 10% of functions carry well over a proportional
        // share of traffic.
        assert!(
            top10 * 2 > total,
            "top-10% share {top10}/{total} is not heavy-tailed"
        );
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let gen = |s: TraceSource| s.generate(4, 100.0, 1);
        assert!(gen(TraceSource::Poisson {
            rps_per_function: 0.0
        })
        .is_err());
        assert!(gen(TraceSource::Bursty {
            calm_rps: -0.1,
            burst_rps: 1.0,
            mean_calm_secs: 10.0,
            mean_burst_secs: 5.0
        })
        .is_err());
        assert!(gen(TraceSource::Bursty {
            calm_rps: 0.1,
            burst_rps: 1.0,
            mean_calm_secs: 0.0,
            mean_burst_secs: 5.0
        })
        .is_err());
        assert!(gen(TraceSource::Diurnal {
            mean_rps: 1.0,
            peak_to_trough: 0.5,
            period_secs: 60.0
        })
        .is_err());
        assert!(gen(TraceSource::HeavyTail {
            mean_rps: 1.0,
            alpha: 1.0
        })
        .is_err());
        let p = TraceSource::Poisson {
            rps_per_function: 1.0,
        };
        assert!(p.generate(0, 100.0, 1).is_err());
        assert!(p.generate(4, -5.0, 1).is_err());
        assert!(p.generate(4, f64::NAN, 1).is_err());
    }

    #[test]
    fn zero_calm_rate_gives_pure_bursts() {
        let trace = TraceSource::Bursty {
            calm_rps: 0.0,
            burst_rps: 5.0,
            mean_calm_secs: 30.0,
            mean_burst_secs: 5.0,
        }
        .generate(6, 300.0, 9)
        .unwrap();
        assert!(!trace.is_empty());
        for w in trace.events().windows(2) {
            assert!(w[0].at_secs <= w[1].at_secs);
        }
    }
}

//! Arrival-trace generation for the fleet simulator.
//!
//! "Serverless in the Wild" (Shahrad et al., ATC'20) shows that real
//! provider traces are nothing like a fixed-rate Poisson process: function
//! popularity spans orders of magnitude, arrivals are bursty, and load
//! follows diurnal cycles. [`TraceSource`] models those regimes:
//!
//! - [`TraceSource::Poisson`]: independent exponential inter-arrivals per
//!   function (the original toy workload);
//! - [`TraceSource::Bursty`]: a two-state Markov-modulated Poisson
//!   process (calm/burst) per function;
//! - [`TraceSource::Diurnal`]: a sinusoidally-modulated rate (thinning);
//! - [`TraceSource::HeavyTail`]: Pareto-distributed per-function
//!   popularity and Lomax (heavy-tailed) inter-arrival times.
//!
//! Every generator produces one **independent stream per function**,
//! seeded as a pure function of `(seed, function index)`. That is the
//! property the sharded fleet replay relies on: a function's stream never
//! depends on how many other functions exist or which thread generated
//! it, so `generate` and [`TraceSource::generate_sharded`] are
//! bit-identical. The merged event view is built with a k-way streaming
//! merge over the per-function streams (no global sort).
//!
//! Each generator is implemented as a resumable [`GenCursor`] — the
//! per-function event cursor the streaming pipeline
//! ([`crate::stream::StreamTrace`]) pulls from lazily. The materialized
//! [`Trace`] drains the very same cursor into a `Vec`, so the two
//! representations are bit-identical by construction.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use freedom_workloads::FunctionKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{FreedomError, Result};

/// One invocation arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Arrival time in seconds since trace start.
    pub at_secs: f64,
    /// Index of the invoked function in the fleet's plan list.
    pub function: usize,
}

/// A generated arrival trace: per-function streams plus their merged view.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Sorted arrival times per function (the shard replay input).
    streams: Vec<Vec<f64>>,
    /// All arrivals merged by time (ties: lower function index first).
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Builds a trace from per-function sorted arrival streams, merging
    /// them with a k-way streaming merge (heap of one cursor per stream)
    /// into the time-ordered event view. `O(N log F)`, no global sort,
    /// and the output vector is pre-sized exactly.
    fn from_streams(streams: Vec<Vec<f64>>) -> Self {
        let total: usize = streams.iter().map(Vec::len).sum();
        let mut events = Vec::with_capacity(total);
        // Arrival times are non-negative finite, so their IEEE-754 bit
        // patterns order exactly like the floats and give the heap a
        // cheap `Ord` key. Ties break on function index, matching what a
        // stable sort over function-ordered streams would produce.
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::with_capacity(streams.len());
        let mut cursors = vec![0usize; streams.len()];
        for (f, stream) in streams.iter().enumerate() {
            if let Some(&t) = stream.first() {
                heap.push(Reverse((t.to_bits(), f)));
            }
        }
        while let Some(Reverse((bits, f))) = heap.pop() {
            events.push(TraceEvent {
                at_secs: f64::from_bits(bits),
                function: f,
            });
            cursors[f] += 1;
            if let Some(&t) = streams[f].get(cursors[f]) {
                heap.push(Reverse((t.to_bits(), f)));
            }
        }
        Self { streams, events }
    }

    /// Generates the classic fixed-rate Poisson trace over the six
    /// benchmark functions (function index `i` is `FunctionKind::ALL[i]`;
    /// a fleet replaying this trace should list its plans in the same
    /// order — see `FleetSimulator::new`).
    ///
    /// Returns [`FreedomError::InvalidArgument`] for non-positive rates or
    /// durations.
    pub fn poisson(duration_secs: f64, rps_per_function: f64, seed: u64) -> Result<Self> {
        TraceSource::Poisson { rps_per_function }.generate(
            FunctionKind::ALL.len(),
            duration_secs,
            seed,
        )
    }

    /// The events, in arrival order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of functions with a (possibly empty) stream in this trace.
    pub fn n_functions(&self) -> usize {
        self.streams.len()
    }

    /// The sorted arrival times of one function's stream.
    pub fn stream(&self, function: usize) -> &[f64] {
        &self.streams[function]
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Epoch cursors over the merged view: splits the event stream into
    /// consecutive time windows of `window_nanos` each, returning one
    /// index range per window (possibly empty for idle windows). The
    /// ranges partition `0..len()`, cover `[0, last_arrival]`, and are
    /// found by successive `partition_point` binary searches — the input
    /// the windowed fleet replay fans out over.
    ///
    /// Returns an empty vector for an empty trace.
    ///
    /// # Panics
    ///
    /// Panics when `window_nanos` is zero, or when the window is so far
    /// below the trace's span that it would cut more than
    /// [`MAX_WINDOWS`] windows (the per-window bookkeeping would dwarf
    /// the trace itself). `FleetSimulator::run_windowed` pre-checks both
    /// and returns an error instead.
    pub fn window_bounds(&self, window_nanos: u64) -> Vec<std::ops::Range<usize>> {
        assert!(window_nanos > 0, "window must be non-empty");
        let Some(last) = self.events.last() else {
            return Vec::new();
        };
        assert!(
            event_nanos(last.at_secs) / window_nanos < MAX_WINDOWS,
            "window of {window_nanos}ns cuts this trace into more than {MAX_WINDOWS} windows"
        );
        let n_windows = (event_nanos(last.at_secs) / window_nanos) as usize + 1;
        let mut bounds = Vec::with_capacity(n_windows);
        let mut start = 0usize;
        for k in 1..=n_windows as u64 {
            let boundary = k.saturating_mul(window_nanos);
            let end =
                start + self.events[start..].partition_point(|e| event_nanos(e.at_secs) < boundary);
            bounds.push(start..end);
            start = end;
        }
        debug_assert_eq!(start, self.events.len());
        bounds
    }
}

/// Upper bound on the number of replay windows [`Trace::window_bounds`]
/// will cut: a window size far below the trace's span would otherwise
/// allocate per-window bookkeeping for billions of (almost all empty)
/// windows before simulating anything.
pub const MAX_WINDOWS: u64 = 1 << 22;

/// An arrival time in the integer nanoseconds the fleet simulator orders
/// events by. The conversion is monotone over non-negative finite floats,
/// so it preserves the merged view's sort order.
#[inline]
pub(crate) fn event_nanos(at_secs: f64) -> u64 {
    (at_secs * 1e9) as u64
}

/// Truncation of the Pareto popularity weight in
/// [`TraceSource::HeavyTail`]: real providers cap per-function request
/// rates, and an untruncated Pareto sample can be astronomically large.
const MAX_POPULARITY: f64 = 256.0;

/// A family of synthetic arrival-trace generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceSource {
    /// Fixed-rate Poisson arrivals, independently per function.
    Poisson {
        /// Mean arrival rate of every function, in requests per second.
        rps_per_function: f64,
    },
    /// Two-state Markov-modulated Poisson process per function: calm
    /// periods at `calm_rps` alternating with bursts at `burst_rps`,
    /// with exponentially distributed sojourn times.
    Bursty {
        /// Arrival rate outside bursts (may be 0 for on/off traffic).
        calm_rps: f64,
        /// Arrival rate inside bursts.
        burst_rps: f64,
        /// Mean length of a calm period, seconds.
        mean_calm_secs: f64,
        /// Mean length of a burst, seconds.
        mean_burst_secs: f64,
    },
    /// Sinusoidally-modulated Poisson process (thinning):
    /// `rate(t) = mean · (1 + a·sin(2πt/period))` with the amplitude `a`
    /// chosen so the peak-to-trough rate ratio is `peak_to_trough`.
    Diurnal {
        /// Time-averaged arrival rate per function.
        mean_rps: f64,
        /// Ratio of the peak rate to the trough rate (≥ 1).
        peak_to_trough: f64,
        /// Cycle length in seconds (a day, or the trace length).
        period_secs: f64,
    },
    /// "Serverless in the Wild"-shaped traffic: each function's rate is
    /// `mean_rps` scaled by a Pareto(1, α) popularity weight (normalized
    /// to keep the fleet-wide mean near `mean_rps`, truncated at
    /// [`MAX_POPULARITY`]), and its inter-arrival times are Lomax(α)
    /// distributed — heavy-tailed gaps punctuated by clustered arrivals.
    HeavyTail {
        /// Target mean arrival rate per function.
        mean_rps: f64,
        /// Tail index α (must be > 1 so means exist; smaller = heavier).
        alpha: f64,
    },
}

impl TraceSource {
    /// Parses an Azure-Functions-style invocation-count CSV into a
    /// [`Trace`], completing the "Serverless in the Wild" loop with real
    /// trace files instead of synthetic generators.
    ///
    /// Expected rows are `app,func,minute,count`: `count` invocations of
    /// function `func` of application `app` during minute `minute`
    /// (0-based). A leading header row is skipped when its `minute`
    /// column is not numeric; blank lines are ignored. Functions are
    /// keyed by `(app, func)` and assigned fleet indices in order of
    /// first appearance, matching how `FleetSimulator` pairs plans with
    /// streams positionally.
    ///
    /// The trace format carries per-minute counts, not timestamps; the
    /// `count` arrivals of a minute are spread evenly across it
    /// (deterministically, no RNG), and each per-function stream is
    /// sorted before the streams run through the same k-way merge as the
    /// synthetic generators.
    ///
    /// Returns [`FreedomError::InvalidArgument`] on malformed rows (with
    /// the 1-based line number) or when no data rows are present.
    pub fn from_csv(csv: &str) -> Result<Trace> {
        let mut keys: std::collections::HashMap<(String, String), usize> =
            std::collections::HashMap::new();
        let mut streams: Vec<Vec<f64>> = Vec::new();
        for (lineno, line) in csv.lines().enumerate() {
            let Some(row) = parse_csv_row(line, lineno)? else {
                continue;
            };
            let next_index = keys.len();
            let function = *keys
                .entry((row.app.to_string(), row.func.to_string()))
                .or_insert(next_index);
            if function == next_index {
                streams.push(Vec::new());
            }
            streams[function]
                .extend((0..row.count).map(|j| minute_event(row.minute, j, row.count)));
        }
        if streams.is_empty() {
            return Err(FreedomError::InvalidArgument(
                "trace CSV has no data rows".into(),
            ));
        }
        // Rows may arrive in any order; each stream must be sorted for
        // the k-way merge.
        for stream in &mut streams {
            stream.sort_by(|a, b| a.total_cmp(b));
        }
        Ok(Trace::from_streams(streams))
    }

    /// Reads [`TraceSource::from_csv`] input from a file.
    pub fn from_csv_path(path: impl AsRef<std::path::Path>) -> Result<Trace> {
        let path = path.as_ref();
        let csv = std::fs::read_to_string(path).map_err(|e| {
            FreedomError::InvalidArgument(format!("cannot read trace CSV {}: {e}", path.display()))
        })?;
        Self::from_csv(&csv)
    }

    /// Generates `n_functions` independent streams over `duration_secs`
    /// seconds and merges them into a [`Trace`].
    ///
    /// Returns [`FreedomError::InvalidArgument`] for non-positive
    /// durations, zero functions, or parameters outside each variant's
    /// domain (see the variant docs).
    pub fn generate(&self, n_functions: usize, duration_secs: f64, seed: u64) -> Result<Trace> {
        self.generate_sharded(n_functions, duration_secs, seed, 1)
    }

    /// Like [`TraceSource::generate`], with stream generation fanned out
    /// over `threads` workers. Streams are pure functions of
    /// `(seed, function index)`, so the result is bit-identical to the
    /// sequential path for every thread count.
    pub fn generate_sharded(
        &self,
        n_functions: usize,
        duration_secs: f64,
        seed: u64,
        threads: usize,
    ) -> Result<Trace> {
        self.validate(n_functions, duration_secs)?;
        let streams = freedom_parallel::par_run(n_functions, threads, |f| {
            self.stream(duration_secs, stream_seed(seed, f))
        });
        Ok(Trace::from_streams(streams))
    }

    pub(crate) fn validate(&self, n_functions: usize, duration_secs: f64) -> Result<()> {
        let invalid = |what: String| Err(FreedomError::InvalidArgument(what));
        if n_functions == 0 {
            return invalid("trace needs at least one function".into());
        }
        if !duration_secs.is_finite() || duration_secs <= 0.0 {
            return invalid(format!("duration must be positive, got {duration_secs}s"));
        }
        let positive = |name: &str, v: f64| -> Result<()> {
            if !v.is_finite() || v <= 0.0 {
                return Err(FreedomError::InvalidArgument(format!(
                    "{name} must be positive, got {v}"
                )));
            }
            Ok(())
        };
        match *self {
            Self::Poisson { rps_per_function } => positive("rate", rps_per_function),
            Self::Bursty {
                calm_rps,
                burst_rps,
                mean_calm_secs,
                mean_burst_secs,
            } => {
                if !calm_rps.is_finite() || calm_rps < 0.0 {
                    return invalid(format!("calm rate must be ≥ 0, got {calm_rps}"));
                }
                positive("burst rate", burst_rps)?;
                positive("mean calm period", mean_calm_secs)?;
                positive("mean burst period", mean_burst_secs)
            }
            Self::Diurnal {
                mean_rps,
                peak_to_trough,
                period_secs,
            } => {
                positive("mean rate", mean_rps)?;
                positive("period", period_secs)?;
                if !peak_to_trough.is_finite() || peak_to_trough < 1.0 {
                    return invalid(format!(
                        "peak-to-trough ratio must be ≥ 1, got {peak_to_trough}"
                    ));
                }
                Ok(())
            }
            Self::HeavyTail { mean_rps, alpha } => {
                positive("mean rate", mean_rps)?;
                if !alpha.is_finite() || alpha <= 1.0 {
                    return invalid(format!("alpha must be > 1, got {alpha}"));
                }
                Ok(())
            }
        }
    }

    /// One function's sorted arrival stream over `(0, duration)`:
    /// a full drain of the function's [`GenCursor`], so the materialized
    /// stream and the lazy one are the same bits by construction.
    fn stream(&self, duration: f64, seed: u64) -> Vec<f64> {
        let mut cursor = GenCursor::new(self, duration, seed);
        let mut out = presized(duration, cursor.rate_hint());
        while let Some(t) = cursor.next_arrival() {
            out.push(t);
        }
        out
    }
}

/// The resumable state of one function's arrival generator: the event
/// cursor the streaming pipeline pulls from lazily.
///
/// A cursor is a pure function of `(source, duration, seed)`: cloning it
/// checkpoints the stream at its current position, and restoring the
/// clone replays the identical suffix — the property the windowed
/// replay's checkpoint ladder ([`crate::stream::StreamCheckpoint`],
/// one anchor every ⌈√W⌉ window boundaries) rests on: an anchor is a
/// snapshot of every function's cursor, and any window between two
/// anchors is reached by a bounded forward drain from the earlier one.
/// [`TraceSource::stream`] drains a fresh cursor into a `Vec`, so
/// the materialized and streaming representations never diverge.
#[derive(Debug, Clone)]
pub(crate) struct GenCursor {
    rng: StdRng,
    t: f64,
    duration: f64,
    done: bool,
    mode: GenMode,
    rate_hint: f64,
}

/// Variant-specific generator state.
#[derive(Debug, Clone)]
enum GenMode {
    Poisson {
        rate: f64,
    },
    Bursty {
        calm_rps: f64,
        burst_rps: f64,
        mean_calm_secs: f64,
        mean_burst_secs: f64,
        bursting: bool,
        switch_at: f64,
    },
    Diurnal {
        mean_rps: f64,
        amp: f64,
        rate_max: f64,
        period_secs: f64,
    },
    HeavyTail {
        alpha: f64,
        scale: f64,
    },
}

impl GenCursor {
    /// Seeds a fresh cursor at `t = 0`. Any RNG draws that fix the
    /// stream's shape (the heavy-tail popularity weight, the first
    /// bursty state switch) happen here, in the same order the
    /// materialized generator performed them.
    pub(crate) fn new(source: &TraceSource, duration: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mode, rate_hint) = match *source {
            TraceSource::Poisson { rps_per_function } => (
                GenMode::Poisson {
                    rate: rps_per_function,
                },
                rps_per_function,
            ),
            TraceSource::Bursty {
                calm_rps,
                burst_rps,
                mean_calm_secs,
                mean_burst_secs,
            } => {
                // Expected rate = time-weighted mix of the two states.
                let mix = (calm_rps * mean_calm_secs + burst_rps * mean_burst_secs)
                    / (mean_calm_secs + mean_burst_secs);
                let switch_at = exp_sample(&mut rng, 1.0 / mean_calm_secs);
                (
                    GenMode::Bursty {
                        calm_rps,
                        burst_rps,
                        mean_calm_secs,
                        mean_burst_secs,
                        bursting: false,
                        switch_at,
                    },
                    mix,
                )
            }
            TraceSource::Diurnal {
                mean_rps,
                peak_to_trough,
                period_secs,
            } => {
                let amp = (peak_to_trough - 1.0) / (peak_to_trough + 1.0);
                let rate_max = mean_rps * (1.0 + amp);
                (
                    GenMode::Diurnal {
                        mean_rps,
                        amp,
                        rate_max,
                        period_secs,
                    },
                    mean_rps,
                )
            }
            TraceSource::HeavyTail { mean_rps, alpha } => {
                // Popularity weight: Pareto(1, α), normalized by its mean
                // α/(α−1) so the fleet-wide average stays ≈ mean_rps,
                // truncated so a single function cannot dwarf the fleet.
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let weight = u.powf(-1.0 / alpha).min(MAX_POPULARITY);
                let rate = mean_rps * weight * (alpha - 1.0) / alpha;
                // Lomax(α) inter-arrivals with mean 1/rate.
                let scale = (alpha - 1.0) / rate;
                (GenMode::HeavyTail { alpha, scale }, rate)
            }
        };
        Self {
            rng,
            t: 0.0,
            duration,
            done: false,
            mode,
            rate_hint,
        }
    }

    /// This stream's expected arrival rate — the pre-sizing hint.
    pub(crate) fn rate_hint(&self) -> f64 {
        self.rate_hint
    }

    /// Serializes the cursor's full resumable state — RNG words, clock,
    /// and variant-specific fields — into a crash-resume snapshot
    /// ([`crate::snapshot`]). The round-trip through
    /// [`GenCursor::load`] restores a cursor that yields the identical
    /// suffix, bit for bit: the property crash-resumable replay rests
    /// on.
    pub(crate) fn save(&self, w: &mut crate::snapshot::Wire) {
        for word in self.rng.to_state() {
            w.u64(word);
        }
        w.f64(self.t);
        w.f64(self.duration);
        w.bool(self.done);
        w.f64(self.rate_hint);
        match &self.mode {
            GenMode::Poisson { rate } => {
                w.u8(0);
                w.f64(*rate);
            }
            GenMode::Bursty {
                calm_rps,
                burst_rps,
                mean_calm_secs,
                mean_burst_secs,
                bursting,
                switch_at,
            } => {
                w.u8(1);
                w.f64(*calm_rps);
                w.f64(*burst_rps);
                w.f64(*mean_calm_secs);
                w.f64(*mean_burst_secs);
                w.bool(*bursting);
                w.f64(*switch_at);
            }
            GenMode::Diurnal {
                mean_rps,
                amp,
                rate_max,
                period_secs,
            } => {
                w.u8(2);
                w.f64(*mean_rps);
                w.f64(*amp);
                w.f64(*rate_max);
                w.f64(*period_secs);
            }
            GenMode::HeavyTail { alpha, scale } => {
                w.u8(3);
                w.f64(*alpha);
                w.f64(*scale);
            }
        }
    }

    /// Restores a cursor previously serialized with [`GenCursor::save`].
    pub(crate) fn load(r: &mut crate::snapshot::Unwire) -> Result<Self> {
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = r.u64()?;
        }
        let rng = StdRng::from_state(state);
        let t = r.f64()?;
        let duration = r.f64()?;
        let done = r.bool()?;
        let rate_hint = r.f64()?;
        let mode = match r.u8()? {
            0 => GenMode::Poisson { rate: r.f64()? },
            1 => GenMode::Bursty {
                calm_rps: r.f64()?,
                burst_rps: r.f64()?,
                mean_calm_secs: r.f64()?,
                mean_burst_secs: r.f64()?,
                bursting: r.bool()?,
                switch_at: r.f64()?,
            },
            2 => GenMode::Diurnal {
                mean_rps: r.f64()?,
                amp: r.f64()?,
                rate_max: r.f64()?,
                period_secs: r.f64()?,
            },
            3 => GenMode::HeavyTail {
                alpha: r.f64()?,
                scale: r.f64()?,
            },
            tag => {
                return Err(FreedomError::InvalidArgument(format!(
                    "snapshot: unknown generator mode tag {tag}"
                )))
            }
        };
        Ok(Self {
            rng,
            t,
            duration,
            done,
            mode,
            rate_hint,
        })
    }

    /// The next arrival strictly inside `(0, duration)`, or `None`
    /// forever once the stream is exhausted.
    pub(crate) fn next_arrival(&mut self) -> Option<f64> {
        if self.done {
            return None;
        }
        match &mut self.mode {
            GenMode::Poisson { rate } => {
                self.t += exp_sample(&mut self.rng, *rate);
                if self.t >= self.duration {
                    self.done = true;
                    return None;
                }
                Some(self.t)
            }
            GenMode::Bursty {
                calm_rps,
                burst_rps,
                mean_calm_secs,
                mean_burst_secs,
                bursting,
                switch_at,
            } => loop {
                let rate = if *bursting { *burst_rps } else { *calm_rps };
                // `calm_rps == 0` gives an infinite gap, which simply
                // rides the state machine to the next burst.
                let next = self.t + exp_sample(&mut self.rng, rate);
                if next < *switch_at {
                    self.t = next;
                    if next >= self.duration {
                        self.done = true;
                        return None;
                    }
                    return Some(next);
                }
                // The exponential is memoryless, so jumping to the
                // switch point and redrawing is exact.
                self.t = *switch_at;
                if self.t >= self.duration {
                    self.done = true;
                    return None;
                }
                *bursting = !*bursting;
                let mean = if *bursting {
                    *mean_burst_secs
                } else {
                    *mean_calm_secs
                };
                *switch_at = self.t + exp_sample(&mut self.rng, 1.0 / mean);
            },
            GenMode::Diurnal {
                mean_rps,
                amp,
                rate_max,
                period_secs,
            } => loop {
                // Lewis–Shedler thinning: candidates at the peak rate,
                // accepted with probability rate(t)/rate_max.
                self.t += exp_sample(&mut self.rng, *rate_max);
                if self.t >= self.duration {
                    self.done = true;
                    return None;
                }
                let rate = *mean_rps
                    * (1.0 + *amp * (2.0 * std::f64::consts::PI * self.t / *period_secs).sin());
                let u: f64 = self.rng.gen_range(0.0..1.0);
                if u * *rate_max < rate {
                    return Some(self.t);
                }
            },
            GenMode::HeavyTail { alpha, scale } => {
                let v: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
                self.t += *scale * (v.powf(-1.0 / *alpha) - 1.0);
                if self.t >= self.duration {
                    self.done = true;
                    return None;
                }
                Some(self.t)
            }
        }
    }
}

/// One parsed `app,func,minute,count` trace-CSV row.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CsvRow<'a> {
    pub app: &'a str,
    pub func: &'a str,
    pub minute: u64,
    pub count: u64,
}

/// Sanity cap per function-minute (~16 k rps): a fat-fingered count must
/// become a clean per-line error, not a giant allocation.
pub(crate) const MAX_COUNT_PER_MINUTE: u64 = 1_000_000;

/// Parses one trace-CSV line (`lineno` 0-based). Returns `Ok(None)` for
/// blank lines and for a line-0 header (non-numeric `minute` column).
/// Shared by the materialized reader ([`TraceSource::from_csv`]) and the
/// streaming one ([`crate::stream::StreamTrace`]), so both accept and
/// reject exactly the same rows with the same line-numbered errors.
pub(crate) fn parse_csv_row(line: &str, lineno: usize) -> Result<Option<CsvRow<'_>>> {
    let line = line.trim();
    if line.is_empty() {
        return Ok(None);
    }
    let bad = |what: &str| {
        FreedomError::InvalidArgument(format!("trace CSV line {}: {what}: {line:?}", lineno + 1))
    };
    let mut cols = line.split(',').map(str::trim);
    let (app, func, minute, count) = match (
        cols.next(),
        cols.next(),
        cols.next(),
        cols.next(),
        cols.next(),
    ) {
        (Some(app), Some(func), Some(minute), Some(count), None) => (app, func, minute, count),
        _ => return Err(bad("expected 4 columns app,func,minute,count")),
    };
    let Ok(minute) = minute.parse::<u64>() else {
        if lineno == 0 {
            return Ok(None); // header row, per the documented contract
        }
        return Err(bad("minute must be a non-negative integer"));
    };
    // A numeric minute marks a data row even on the first line, so a
    // corrupt count never silently drops invocations as a misdetected
    // header.
    let Ok(count) = count.parse::<u64>() else {
        return Err(bad("count must be a non-negative integer"));
    };
    if count > MAX_COUNT_PER_MINUTE {
        return Err(bad("count exceeds 1e6 invocations per minute"));
    }
    Ok(Some(CsvRow {
        app,
        func,
        minute,
        count,
    }))
}

/// Arrival `j` of a `count`-invocation minute: the minute's invocations
/// spread evenly across its 60 seconds, each at the midpoint of its
/// `1/count` sub-slot. One formula, shared by every CSV reader, so the
/// materialized and streaming paths emit identical bits.
#[inline]
pub(crate) fn minute_event(minute: u64, j: u64, count: u64) -> f64 {
    let start = minute as f64 * 60.0;
    start + (j as f64 + 0.5) * 60.0 / count as f64
}

/// A vector pre-sized for a `duration × rate` stream plus 10% headroom,
/// capped so a pathological rate cannot trigger a giant up-front
/// allocation.
fn presized(duration: f64, rate: f64) -> Vec<f64> {
    let expected = (duration * rate * 1.1) as usize + 8;
    Vec::with_capacity(expected.min(1 << 22))
}

/// Exponential inter-arrival sample via inverse transform.
#[inline]
fn exp_sample(rng: &mut StdRng, rate: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

/// Seed of one function's stream: a SplitMix64-style mix of the trace
/// seed and the function index, so every stream is an independent pure
/// function of `(seed, index)` regardless of fleet size or threading.
pub(crate) fn stream_seed(seed: u64, function: usize) -> u64 {
    let mut z = seed ^ (function as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SOURCES: [TraceSource; 4] = [
        TraceSource::Poisson {
            rps_per_function: 0.8,
        },
        TraceSource::Bursty {
            calm_rps: 0.2,
            burst_rps: 4.0,
            mean_calm_secs: 40.0,
            mean_burst_secs: 5.0,
        },
        TraceSource::Diurnal {
            mean_rps: 0.8,
            peak_to_trough: 4.0,
            period_secs: 120.0,
        },
        TraceSource::HeavyTail {
            mean_rps: 0.8,
            alpha: 1.5,
        },
    ];

    #[test]
    fn every_source_is_sorted_deterministic_and_shard_stable() {
        for source in SOURCES {
            let a = source.generate(10, 200.0, 7).unwrap();
            assert!(!a.is_empty(), "{source:?} generated nothing");
            assert_eq!(a.n_functions(), 10);
            for w in a.events().windows(2) {
                assert!(
                    w[0].at_secs < w[1].at_secs
                        || (w[0].at_secs == w[1].at_secs && w[0].function <= w[1].function),
                    "{source:?} unsorted"
                );
            }
            assert!(a
                .events()
                .iter()
                .all(|e| e.at_secs > 0.0 && e.at_secs < 200.0));
            assert_eq!(a.len(), (0..10).map(|f| a.stream(f).len()).sum::<usize>());
            // Same seed replays identically; generation threads are
            // immaterial; different seeds diverge.
            let b = source.generate_sharded(10, 200.0, 7, 8).unwrap();
            assert_eq!(a.events(), b.events(), "{source:?} diverged across threads");
            let c = source.generate(10, 200.0, 8).unwrap();
            assert_ne!(a.events(), c.events(), "{source:?} ignored the seed");
        }
    }

    #[test]
    fn streams_do_not_depend_on_fleet_size() {
        // Function 3's stream must be identical whether the fleet has 4
        // or 40 functions — the property sharded replay rests on.
        for source in SOURCES {
            let small = source.generate(4, 100.0, 21).unwrap();
            let large = source.generate(40, 100.0, 21).unwrap();
            assert_eq!(small.stream(3), large.stream(3), "{source:?}");
        }
    }

    #[test]
    fn rates_land_near_their_targets() {
        // 200 functions × 200 s at 0.8 rps ⇒ 32 000 expected arrivals.
        for source in SOURCES {
            let trace = source.generate(200, 200.0, 3).unwrap();
            let expected = 32_000.0;
            let got = trace.len() as f64;
            assert!(
                (0.5..2.0).contains(&(got / expected)),
                "{source:?}: {got} arrivals vs ~{expected}"
            );
        }
    }

    #[test]
    fn heavy_tail_popularity_is_skewed() {
        let trace = TraceSource::HeavyTail {
            mean_rps: 1.0,
            alpha: 1.2,
        }
        .generate(100, 200.0, 11)
        .unwrap();
        let mut lens: Vec<usize> = (0..100).map(|f| trace.stream(f).len()).collect();
        lens.sort_unstable();
        let total: usize = lens.iter().sum();
        let top10: usize = lens[90..].iter().sum();
        // The hottest 10% of functions carry well over a proportional
        // share of traffic.
        assert!(
            top10 * 2 > total,
            "top-10% share {top10}/{total} is not heavy-tailed"
        );
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let gen = |s: TraceSource| s.generate(4, 100.0, 1);
        assert!(gen(TraceSource::Poisson {
            rps_per_function: 0.0
        })
        .is_err());
        assert!(gen(TraceSource::Bursty {
            calm_rps: -0.1,
            burst_rps: 1.0,
            mean_calm_secs: 10.0,
            mean_burst_secs: 5.0
        })
        .is_err());
        assert!(gen(TraceSource::Bursty {
            calm_rps: 0.1,
            burst_rps: 1.0,
            mean_calm_secs: 0.0,
            mean_burst_secs: 5.0
        })
        .is_err());
        assert!(gen(TraceSource::Diurnal {
            mean_rps: 1.0,
            peak_to_trough: 0.5,
            period_secs: 60.0
        })
        .is_err());
        assert!(gen(TraceSource::HeavyTail {
            mean_rps: 1.0,
            alpha: 1.0
        })
        .is_err());
        let p = TraceSource::Poisson {
            rps_per_function: 1.0,
        };
        assert!(p.generate(0, 100.0, 1).is_err());
        assert!(p.generate(4, -5.0, 1).is_err());
        assert!(p.generate(4, f64::NAN, 1).is_err());
    }

    #[test]
    fn window_bounds_partition_the_merged_view() {
        let trace = TraceSource::Bursty {
            calm_rps: 0.3,
            burst_rps: 3.0,
            mean_calm_secs: 20.0,
            mean_burst_secs: 5.0,
        }
        .generate(8, 120.0, 3)
        .unwrap();
        for window_secs in [1u64, 7, 10, 60, 1000] {
            let window_nanos = window_secs * 1_000_000_000;
            let bounds = trace.window_bounds(window_nanos);
            // Consecutive, disjoint, and covering.
            let mut expected_start = 0;
            for (k, range) in bounds.iter().enumerate() {
                assert_eq!(range.start, expected_start);
                expected_start = range.end;
                for e in &trace.events()[range.clone()] {
                    let nanos = event_nanos(e.at_secs);
                    assert!(nanos / window_nanos == k as u64, "event outside window {k}");
                }
            }
            assert_eq!(expected_start, trace.len());
            // The last window holds the last event.
            assert!(!bounds.last().unwrap().is_empty());
        }
        // Empty traces have no windows.
        let empty = Trace::from_streams(vec![Vec::new(), Vec::new()]);
        assert!(empty.window_bounds(1_000_000_000).is_empty());
    }

    const AZURE_FIXTURE: &str = include_str!("../testdata/azure_sample.csv");

    #[test]
    fn csv_ingestion_builds_sorted_merged_streams() {
        let trace = TraceSource::from_csv(AZURE_FIXTURE).unwrap();
        assert_eq!(trace.n_functions(), 6, "six distinct (app, func) keys");
        assert_eq!(trace.len(), 113, "sum of the fixture's counts");
        // First-appearance order: imgproc/faceblur is function 0.
        assert_eq!(trace.stream(0).len(), 12 + 9);
        // web/render rows arrive minute-1-before-minute-0; the stream
        // must still be sorted.
        let render = trace.stream(3);
        assert_eq!(render.len(), 55);
        for w in render.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // Merged view sorted with function-index tie-breaks, like every
        // generated trace.
        for w in trace.events().windows(2) {
            assert!(
                w[0].at_secs < w[1].at_secs
                    || (w[0].at_secs == w[1].at_secs && w[0].function <= w[1].function)
            );
        }
        // Counts spread inside their minute: all of transcode's minute-2
        // arrivals live in [120, 180).
        let transcode = trace.stream(2);
        assert!(transcode[2..].iter().all(|&t| (120.0..180.0).contains(&t)));
        // Parsing is deterministic.
        let again = TraceSource::from_csv(AZURE_FIXTURE).unwrap();
        assert_eq!(trace.events(), again.events());
    }

    #[test]
    fn csv_ingestion_rejects_malformed_input() {
        assert!(TraceSource::from_csv("").is_err());
        assert!(TraceSource::from_csv("app,func,minute,count\n").is_err());
        // Wrong column count, both short and long.
        assert!(TraceSource::from_csv("a,f,0\n").is_err());
        assert!(TraceSource::from_csv("a,f,0,3,extra\n").is_err());
        // Non-numeric minute outside the header line.
        assert!(TraceSource::from_csv("a,f,0,3\na,f,x,2\n").is_err());
        // Negative count and negative minute.
        assert!(TraceSource::from_csv("a,f,0,-1\n").is_err());
        assert!(TraceSource::from_csv("a,f,0,1\na,f,-2,1\n").is_err());
        // A numeric minute with a corrupt count on the first line is a
        // malformed data row, not a header — it must not vanish.
        assert!(TraceSource::from_csv("a,f,0,12x\na,f,1,5\n").is_err());
        // A fat-fingered count hits the per-minute sanity cap instead of
        // attempting a giant allocation.
        assert!(TraceSource::from_csv("a,f,0,1000001\n").is_err());
        // Whitespace-only files have no data rows.
        assert!(TraceSource::from_csv("\n   \n\t\n").is_err());
        // Errors are clean `InvalidArgument`s naming the offending
        // 1-based line, never panics.
        match TraceSource::from_csv("a,f,0,3\na,f,1,oops\n") {
            Err(crate::FreedomError::InvalidArgument(msg)) => {
                assert!(msg.contains("line 2"), "{msg}");
            }
            other => panic!("expected InvalidArgument, got {other:?}"),
        }
        // Headerless files parse too, and zero counts are allowed.
        let trace = TraceSource::from_csv("a,f,0,3\nb,g,1,0\n").unwrap();
        assert_eq!(trace.n_functions(), 2);
        assert_eq!(trace.len(), 3);
        assert!(trace.stream(1).is_empty());
        // Missing file.
        assert!(TraceSource::from_csv_path("/nonexistent/trace.csv").is_err());
    }

    #[test]
    fn csv_ingestion_sorts_out_of_order_minutes() {
        // Rows arriving newest-first (and interleaved across functions)
        // still produce sorted streams and a sorted merged view.
        let csv = "a,f,5,2\nb,g,1,3\na,f,0,4\nb,g,3,1\na,f,2,1\n";
        let trace = TraceSource::from_csv(csv).unwrap();
        assert_eq!(trace.n_functions(), 2);
        assert_eq!(trace.len(), 2 + 3 + 4 + 1 + 1);
        for f in 0..trace.n_functions() {
            for w in trace.stream(f).windows(2) {
                assert!(w[0] <= w[1], "stream {f} unsorted: {w:?}");
            }
        }
        for w in trace.events().windows(2) {
            assert!(
                w[0].at_secs < w[1].at_secs
                    || (w[0].at_secs == w[1].at_secs && w[0].function <= w[1].function)
            );
        }
        // Minute 5's arrivals land inside [300, 360).
        let f0 = trace.stream(0);
        assert!(f0.last().is_some_and(|&t| (300.0..360.0).contains(&t)));
    }

    #[test]
    fn zero_calm_rate_gives_pure_bursts() {
        let trace = TraceSource::Bursty {
            calm_rps: 0.0,
            burst_rps: 5.0,
            mean_calm_secs: 30.0,
            mean_burst_secs: 5.0,
        }
        .generate(6, 300.0, 9)
        .unwrap();
        assert!(!trace.is_empty());
        for w in trace.events().windows(2) {
            assert!(w[0].at_secs <= w[1].at_secs);
        }
    }
}

//! The four resource-allocation strategies of §4.1 (Figure 2).
//!
//! Each strategy is a subset of the full configuration space plus a
//! billing rule:
//!
//! | Strategy        | CPU share        | Memory       | Family | Billing |
//! |-----------------|------------------|--------------|--------|---------|
//! | Fixed CPU       | 1 vCPU, fixed    | any level    | m5     | 1 vCPU + *actual consumption* (Azure-style) |
//! | Prop. CPU       | `mem / 1769 MB`  | any level    | m5     | allocated share + limit (AWS/GCP-style) |
//! | Decoupled (m5)  | any level        | any level    | m5     | allocated share + limit |
//! | Decoupled       | any level        | any level    | any    | allocated share + limit |

use freedom_cluster::InstanceFamily;
use freedom_faas::{collect_ground_truth, PerfTable, ResourceConfig};
use freedom_optimizer::{SearchSpace, MEMORY_MIB};
use freedom_pricing::CostModel;
use freedom_workloads::{FunctionKind, InputData};

use crate::{FreedomError, Result};

/// AWS Lambda's memory-to-vCPU proportionality constant: one full vCPU at
/// 1769 MB.
pub const LAMBDA_MB_PER_VCPU: f64 = 1769.0;

/// A resource-allocation strategy (an increasing level of flexibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AllocationStrategy {
    /// One fixed vCPU, memory billed by actual consumption (Azure-like).
    FixedCpu,
    /// CPU share proportional to the memory limit (AWS/GCP-like).
    PropCpu,
    /// Decoupled CPU and memory on the default m5 family.
    DecoupledM5,
    /// Fully decoupled: CPU, memory, and instance family (Table 1).
    Decoupled,
}

impl AllocationStrategy {
    /// All four strategies, from most to least restrictive.
    pub const ALL: [AllocationStrategy; 4] = [
        AllocationStrategy::FixedCpu,
        AllocationStrategy::PropCpu,
        AllocationStrategy::DecoupledM5,
        AllocationStrategy::Decoupled,
    ];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Self::FixedCpu => "Fixed CPU",
            Self::PropCpu => "Prop. CPU",
            Self::DecoupledM5 => "Decoupled (m5)",
            Self::Decoupled => "Decoupled",
        }
    }

    /// The strategy's configuration search space.
    pub fn search_space(self) -> SearchSpace {
        match self {
            Self::FixedCpu => SearchSpace::custom(&[1.0], &MEMORY_MIB, &[InstanceFamily::M5]),
            Self::PropCpu => {
                // The platform quantizes shares to the Table 1 levels (the
                // paper's Figure 3 normalizes every strategy against
                // Decoupled "since its search space includes all others",
                // which requires Prop. CPU ⊆ Decoupled). Snap the Lambda
                // proportionality to the nearest grid share.
                let configs = MEMORY_MIB
                    .iter()
                    .filter_map(|&mem| {
                        let exact = mem as f64 / LAMBDA_MB_PER_VCPU;
                        let snapped = freedom_optimizer::CPU_SHARES
                            .iter()
                            .copied()
                            .min_by(|a, b| (a - exact).abs().total_cmp(&(b - exact).abs()))
                            .expect("share grid is non-empty");
                        ResourceConfig::new(InstanceFamily::M5, snapped, mem)
                    })
                    .collect();
                SearchSpace::from_configs(configs)
            }
            Self::DecoupledM5 => SearchSpace::decoupled_m5(),
            Self::Decoupled => SearchSpace::table1(),
        }
    }

    /// Whether the strategy bills memory by actual consumption rather than
    /// the configured limit (Azure Functions' model).
    pub fn bills_actual_consumption(self) -> bool {
        matches!(self, Self::FixedCpu)
    }
}

impl std::fmt::Display for AllocationStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The best achievable metrics within one strategy's space (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrategyBest {
    /// Strategy evaluated.
    pub strategy: AllocationStrategy,
    /// Best (minimum) execution time in the space, seconds.
    pub best_exec_time_secs: f64,
    /// Best (minimum) execution cost in the space, USD, under the
    /// strategy's billing rule.
    pub best_exec_cost_usd: f64,
}

/// Measures a strategy's best execution time and cost for one function and
/// input, sweeping its space with `reps` repetitions.
///
/// For [`AllocationStrategy::FixedCpu`] the cost of each configuration is
/// recomputed from the measured peak memory (consumption billing); other
/// strategies bill the configured limit, as the platform meters.
pub fn best_within_strategy(
    strategy: AllocationStrategy,
    function: FunctionKind,
    input: &InputData,
    reps: usize,
    seed: u64,
) -> Result<StrategyBest> {
    let space = strategy.search_space();
    let table = collect_ground_truth(function, input, space.configs(), reps, seed)?;
    best_from_table(strategy, &table)
}

/// Like [`best_within_strategy`], over an already-collected table.
pub fn best_from_table(strategy: AllocationStrategy, table: &PerfTable) -> Result<StrategyBest> {
    let best_time = table
        .best_by_time()
        .ok_or_else(|| no_feasible(strategy, table))?;
    let best_cost_limit_billed = table
        .best_by_cost()
        .ok_or_else(|| no_feasible(strategy, table))?;

    let best_exec_cost_usd = if strategy.bills_actual_consumption() {
        let model = CostModel::aws()?;
        let mut best = f64::INFINITY;
        for p in table.feasible() {
            // Azure-style: bill the fixed vCPU plus *measured* memory.
            let billed_mem = p.peak_mem_mib.unwrap_or(p.config.memory_mib());
            let cost = model.execution_cost(
                p.config.family(),
                p.config.cpu_share(),
                billed_mem.max(1),
                p.exec_time_secs,
            )?;
            best = best.min(cost);
        }
        best
    } else {
        best_cost_limit_billed.exec_cost_usd
    };

    Ok(StrategyBest {
        strategy,
        best_exec_time_secs: best_time.exec_time_secs,
        best_exec_cost_usd,
    })
}

fn no_feasible(strategy: AllocationStrategy, table: &PerfTable) -> FreedomError {
    FreedomError::InsufficientData(format!(
        "no feasible configuration for {} under {strategy}",
        table.function
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spaces_have_expected_sizes() {
        assert_eq!(AllocationStrategy::FixedCpu.search_space().len(), 6);
        assert_eq!(AllocationStrategy::PropCpu.search_space().len(), 6);
        assert_eq!(AllocationStrategy::DecoupledM5.search_space().len(), 48);
        assert_eq!(AllocationStrategy::Decoupled.search_space().len(), 288);
    }

    #[test]
    fn strategy_spaces_nest_by_flexibility() {
        // Decoupled ⊇ Decoupled(m5) ⊇ {Fixed CPU}. (Prop. CPU's shares are
        // off-grid, so it is a subset of the m5 *plane*, not of the grid.)
        let decoupled = AllocationStrategy::Decoupled.search_space();
        let m5 = AllocationStrategy::DecoupledM5.search_space();
        for c in m5.configs() {
            assert!(decoupled.contains(c));
        }
        for c in AllocationStrategy::FixedCpu.search_space().configs() {
            assert!(m5.contains(c));
        }
        for c in AllocationStrategy::PropCpu.search_space().configs() {
            assert_eq!(c.family(), InstanceFamily::M5);
            // Snapped to the nearest grid share (the grid floor of 0.25
            // clamps the smallest memory levels).
            let exact = c.memory_mib() as f64 / LAMBDA_MB_PER_VCPU;
            let nearest = freedom_optimizer::CPU_SHARES
                .iter()
                .copied()
                .min_by(|a, b| (a - exact).abs().total_cmp(&(b - exact).abs()))
                .unwrap();
            assert_eq!(c.cpu_share(), nearest);
            // And inside the Decoupled superset, as Figure 3 requires.
            assert!(decoupled.contains(c), "{c} escapes Decoupled");
        }
    }

    #[test]
    fn decoupled_wins_on_both_metrics() {
        // Figure 3: the fully decoupled space contains every other space's
        // best, so its best ET and EC are ≤ everyone else's.
        let kind = FunctionKind::Faceblur;
        let input = kind.default_input();
        let bests: Vec<StrategyBest> = AllocationStrategy::ALL
            .iter()
            .map(|&s| best_within_strategy(s, kind, &input, 3, 9).unwrap())
            .collect();
        let decoupled = bests
            .iter()
            .find(|b| b.strategy == AllocationStrategy::Decoupled)
            .unwrap();
        for b in &bests {
            assert!(
                decoupled.best_exec_time_secs <= b.best_exec_time_secs * 1.02,
                "{}: {} vs {}",
                b.strategy,
                decoupled.best_exec_time_secs,
                b.best_exec_time_secs
            );
        }
    }

    #[test]
    fn fixed_cpu_hurts_parallel_functions() {
        // The paper: Fixed CPU leads to ~2-3x higher ET for transcode.
        let kind = FunctionKind::Transcode;
        let input = kind.default_input();
        let fixed = best_within_strategy(AllocationStrategy::FixedCpu, kind, &input, 3, 1).unwrap();
        let decoupled =
            best_within_strategy(AllocationStrategy::Decoupled, kind, &input, 3, 1).unwrap();
        let ratio = fixed.best_exec_time_secs / decoupled.best_exec_time_secs;
        assert!(ratio > 1.8, "expected ≥1.8x penalty, got {ratio}");
    }

    #[test]
    fn decoupling_cpu_from_memory_cuts_cost() {
        // Figure 3b: Decoupled (m5) reaches 10-50% better EC than Prop. CPU.
        let kind = FunctionKind::Linpack;
        let input = kind.default_input();
        let prop = best_within_strategy(AllocationStrategy::PropCpu, kind, &input, 3, 2).unwrap();
        let m5 = best_within_strategy(AllocationStrategy::DecoupledM5, kind, &input, 3, 2).unwrap();
        assert!(
            m5.best_exec_cost_usd < prop.best_exec_cost_usd,
            "{} vs {}",
            m5.best_exec_cost_usd,
            prop.best_exec_cost_usd
        );
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(AllocationStrategy::FixedCpu.to_string(), "Fixed CPU");
        assert_eq!(AllocationStrategy::Decoupled.to_string(), "Decoupled");
        assert_eq!(AllocationStrategy::ALL.len(), 4);
    }
}

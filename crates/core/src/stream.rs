//! The streaming trace pipeline: constant-memory event production.
//!
//! [`Trace`] materializes every arrival up front — per-function `Vec`s
//! plus a merged event view — which caps replay horizons at what fits in
//! memory. This module produces the same events *lazily*: a
//! [`StreamTrace`] holds only the trace's **specification** (generator
//! parameters, or a CSV key map) plus O(functions) scan metadata, and an
//! [`EventStream`] pulls arrivals one at a time through the same k-way
//! merge and tie-break contract (time, then function index) as the
//! materialized view. Peak resident state is `O(functions)` cursors —
//! one pending event each — instead of `O(total events)`.
//!
//! # The streaming cursor contract
//!
//! - **Bit-identity.** `StreamTrace::open().events()` yields exactly the
//!   events of [`StreamTrace::materialize`], same `f64` bits, same
//!   order. Synthetic sources guarantee it by construction (both paths
//!   drain the same [`GenCursor`](crate::trace)); the CSV reader shares
//!   the materialized parser's row grammar and spread formula, and its
//!   bounded-lookahead merge is exact for every file it accepts.
//! - **Checkpoint / rewind.** [`EventStream::checkpoint`] captures the
//!   stream's position (per-function generator states and pending
//!   events; for CSV, the byte offset plus open rows);
//!   [`StreamTrace::open_at`] reopens the stream there, replaying the
//!   identical suffix. This is how the windowed fleet replay re-seeks a
//!   window by epoch — and re-runs it during reconciliation by rewinding
//!   to the same checkpoint — without ever holding the merged view.
//! - **CSV lookahead.** Rows may arrive out of minute order by at most
//!   [`CSV_LOOKAHEAD_MINUTES`]; the reader buffers the open rows of that
//!   sliding window (its only super-constant state) and rejects files
//!   that exceed the bound with a line-numbered error at scan time. The
//!   materialized [`TraceSource::from_csv`] accepts arbitrary disorder —
//!   it is the escape hatch for pathological files.
//!
//! Construction performs one **scan pass** (cheap: generation only, no
//! simulation) recording the event count and horizon per function —
//! what the fleet engine needs before replay — so `open()` itself is
//! allocation-light and replays never re-derive metadata.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::io::{Read, Seek, SeekFrom};
use std::path::PathBuf;
use std::sync::Arc;

use crate::trace::{
    event_nanos, minute_event, parse_csv_row, stream_seed, GenCursor, Trace, TraceEvent,
    TraceSource,
};
use crate::{FreedomError, Result};

/// How far out of minute order CSV rows may arrive before the streaming
/// reader rejects the file: a row with `minute < max_seen − LOOKAHEAD`
/// is an error. Bounds the reader's buffered state to the open rows of
/// a sliding `LOOKAHEAD + 1`-minute window.
pub const CSV_LOOKAHEAD_MINUTES: u64 = 8;

/// Default chunk size of the CSV byte reader. Tests shrink it to force
/// records across chunk boundaries.
const CSV_CHUNK_BYTES: usize = 64 * 1024;

/// Where the CSV bytes live. `Mem` shares the buffer across reopened
/// streams; `File` reopens and seeks, so parallel windows each hold one
/// descriptor and a chunk — never the file.
#[derive(Debug, Clone)]
enum CsvBytes {
    Mem(Arc<[u8]>),
    File(PathBuf),
}

/// A lazily-evaluated arrival trace: the specification plus O(functions)
/// scan metadata, never the events.
#[derive(Debug, Clone)]
pub struct StreamTrace {
    spec: StreamSpec,
    n_functions: usize,
    len: usize,
    horizon_nanos: u64,
}

#[derive(Debug, Clone)]
enum StreamSpec {
    Synthetic {
        source: TraceSource,
        duration_secs: f64,
        seed: u64,
    },
    Csv {
        bytes: CsvBytes,
        /// `(app, func)` → fleet index, in order of first appearance —
        /// the same assignment the materialized reader makes.
        keys: HashMap<(String, String), u32>,
        chunk: usize,
    },
}

impl StreamTrace {
    /// A lazy trace over `n_functions` independent generator streams —
    /// the streaming counterpart of [`TraceSource::generate`]. Performs
    /// the scan pass sequentially.
    pub fn generate(
        source: TraceSource,
        n_functions: usize,
        duration_secs: f64,
        seed: u64,
    ) -> Result<Self> {
        Self::generate_sharded(source, n_functions, duration_secs, seed, 1)
    }

    /// Like [`StreamTrace::generate`] with the scan pass fanned out over
    /// `threads` workers. Streams are pure functions of
    /// `(seed, function index)`, so the metadata — and every event later
    /// pulled — is bit-identical for every thread count.
    pub fn generate_sharded(
        source: TraceSource,
        n_functions: usize,
        duration_secs: f64,
        seed: u64,
        threads: usize,
    ) -> Result<Self> {
        source.validate(n_functions, duration_secs)?;
        let per_fn = freedom_parallel::par_run(n_functions, threads, |f| {
            let mut cursor = GenCursor::new(&source, duration_secs, stream_seed(seed, f));
            let mut count = 0usize;
            let mut last = f64::NEG_INFINITY;
            while let Some(t) = cursor.next_arrival() {
                count += 1;
                last = t;
            }
            (count, last)
        });
        let len = per_fn.iter().map(|&(c, _)| c).sum();
        // The merged view's last event is the max over per-function last
        // arrivals — same float, same nanos as the materialized path.
        let horizon_nanos = per_fn
            .iter()
            .filter(|&&(c, _)| c > 0)
            .map(|&(_, last)| event_nanos(last))
            .max()
            .unwrap_or(0);
        Ok(Self {
            spec: StreamSpec::Synthetic {
                source,
                duration_secs,
                seed,
            },
            n_functions,
            len,
            horizon_nanos,
        })
    }

    /// Streaming counterpart of [`TraceSource::from_csv`]: scans the
    /// rows once (validating the grammar and the
    /// [`CSV_LOOKAHEAD_MINUTES`] ordering bound, building the
    /// `(app, func)` key map) and holds the bytes for lazy replay.
    pub fn from_csv(csv: &str) -> Result<Self> {
        Self::from_csv_chunked(csv, CSV_CHUNK_BYTES)
    }

    /// Streaming counterpart of [`TraceSource::from_csv_path`]: the scan
    /// reads the file once in [`CSV_CHUNK_BYTES`] chunks; replays re-read
    /// it, so the file must not change while the trace is in use.
    pub fn from_csv_path(path: impl AsRef<std::path::Path>) -> Result<Self> {
        Self::from_csv_bytes(CsvBytes::File(path.as_ref().to_path_buf()), CSV_CHUNK_BYTES)
    }

    /// [`StreamTrace::from_csv`] with an explicit reader chunk size
    /// (clamped to ≥ 1 byte). Chunking is observable only in I/O
    /// granularity — records straddling chunk boundaries parse
    /// identically — which is exactly what tests pin down by shrinking
    /// the chunk to a few bytes.
    pub fn from_csv_chunked(csv: &str, chunk_bytes: usize) -> Result<Self> {
        Self::from_csv_bytes(CsvBytes::Mem(Arc::from(csv.as_bytes())), chunk_bytes)
    }

    fn from_csv_bytes(bytes: CsvBytes, chunk: usize) -> Result<Self> {
        let mut reader = ChunkedLines::open(&bytes, 0, 0, chunk)?;
        let mut keys: HashMap<(String, String), u32> = HashMap::new();
        let mut len = 0usize;
        let mut last = f64::NEG_INFINITY;
        let mut m_max = 0u64;
        let mut data_rows = 0usize;
        while let Some((lineno, line)) = reader.next_line()? {
            let Some(row) = parse_csv_row(&line, lineno)? else {
                continue;
            };
            if row.minute.saturating_add(CSV_LOOKAHEAD_MINUTES) < m_max {
                return Err(FreedomError::InvalidArgument(format!(
                    "trace CSV line {}: minute {} arrives more than {CSV_LOOKAHEAD_MINUTES} \
                     minutes behind minute {m_max}; the streaming reader's lookahead cannot \
                     reorder it (use TraceSource::from_csv for arbitrarily-disordered files)",
                    lineno + 1,
                    row.minute,
                )));
            }
            m_max = m_max.max(row.minute);
            data_rows += 1;
            let next_index = keys.len() as u32;
            keys.entry((row.app.to_string(), row.func.to_string()))
                .or_insert(next_index);
            if row.count > 0 {
                len += row.count as usize;
                last = last.max(minute_event(row.minute, row.count - 1, row.count));
            }
        }
        if data_rows == 0 {
            return Err(FreedomError::InvalidArgument(
                "trace CSV has no data rows".into(),
            ));
        }
        let horizon_nanos = if len == 0 { 0 } else { event_nanos(last) };
        Ok(Self {
            n_functions: keys.len(),
            len,
            horizon_nanos,
            spec: StreamSpec::Csv { bytes, keys, chunk },
        })
    }

    /// Number of functions with a (possibly empty) stream.
    pub fn n_functions(&self) -> usize {
        self.n_functions
    }

    /// Total number of arrivals the stream will yield.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trace has no arrivals.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Arrival time of the last event in integer nanoseconds (0 for an
    /// empty trace) — the replay horizon supply steps and controller
    /// ticks are capped at.
    pub fn horizon_nanos(&self) -> u64 {
        self.horizon_nanos
    }

    /// Opens the event stream at position 0.
    pub fn open(&self) -> Result<EventStream<'_>> {
        match &self.spec {
            StreamSpec::Synthetic {
                source,
                duration_secs,
                seed,
            } => {
                let mut cursors = Vec::with_capacity(self.n_functions);
                let mut pending = Vec::with_capacity(self.n_functions);
                for f in 0..self.n_functions {
                    let mut c = GenCursor::new(source, *duration_secs, stream_seed(*seed, f));
                    pending.push(c.next_arrival());
                    cursors.push(c);
                }
                Ok(EventStream {
                    imp: StreamImp::Merge(MergeStream::new(cursors, pending)),
                })
            }
            StreamSpec::Csv { bytes, keys, chunk } => Ok(EventStream {
                imp: StreamImp::Csv(CsvStream {
                    reader: ChunkedLines::open(bytes, 0, 0, *chunk)?,
                    keys,
                    heap: BinaryHeap::new(),
                    m_max: 0,
                    exhausted: false,
                    peak_open: 0,
                }),
            }),
        }
    }

    /// Reopens the stream at a checkpoint previously taken from one of
    /// this trace's streams, replaying the identical suffix — the
    /// windowed replay's epoch re-seek. Returns
    /// [`FreedomError::InvalidArgument`] when the checkpoint belongs to
    /// the other stream kind.
    pub fn open_at(&self, cp: &StreamCheckpoint) -> Result<EventStream<'_>> {
        match (&self.spec, &cp.imp) {
            (StreamSpec::Synthetic { .. }, CpImp::Merge { cursors, pending }) => Ok(EventStream {
                imp: StreamImp::Merge(MergeStream::new(cursors.clone(), pending.clone())),
            }),
            (StreamSpec::Csv { bytes, keys, chunk }, CpImp::Csv(state)) => Ok(EventStream {
                imp: StreamImp::Csv(CsvStream {
                    reader: ChunkedLines::open(bytes, state.offset, state.lineno, *chunk)?,
                    keys,
                    heap: state.rows.iter().cloned().map(Reverse).collect(),
                    m_max: state.m_max,
                    exhausted: state.exhausted,
                    peak_open: state.rows.len(),
                }),
            }),
            _ => Err(FreedomError::InvalidArgument(
                "stream checkpoint does not belong to this trace kind".into(),
            )),
        }
    }

    /// Checkpoints positioned at each of `boundaries` (integer
    /// nanoseconds, non-decreasing): checkpoint `i` resumes at the first
    /// event with `event_nanos(at_secs) >= boundaries[i]` — exactly the
    /// position a sequential drain-to-boundary walk of `open()` reaches.
    /// This is the windowed replay's **checkpoint ladder** anchor pass.
    ///
    /// Synthetic traces derive all anchors sharded over `threads`
    /// workers: which arrivals a function has consumed at a time
    /// boundary depends only on that function's own stream, never on
    /// the merge interleaving, so per-function cursor walks compose
    /// into checkpoints bit-identical to the sequential walk's. CSV
    /// traces fall back to one sequential drain (the reader's lookahead
    /// window is inherently serial).
    pub fn checkpoints_at(
        &self,
        boundaries: &[u64],
        threads: usize,
    ) -> Result<Vec<StreamCheckpoint>> {
        debug_assert!(
            boundaries.windows(2).all(|w| w[0] <= w[1]),
            "ladder boundaries must be non-decreasing"
        );
        match &self.spec {
            StreamSpec::Synthetic {
                source,
                duration_secs,
                seed,
            } => {
                let per_fn = freedom_parallel::par_run(self.n_functions, threads, |f| {
                    let mut c = GenCursor::new(source, *duration_secs, stream_seed(*seed, f));
                    let mut pending = c.next_arrival();
                    let mut states = Vec::with_capacity(boundaries.len());
                    for &t in boundaries {
                        while pending.is_some_and(|p| event_nanos(p) < t) {
                            pending = c.next_arrival();
                        }
                        states.push((c.clone(), pending));
                    }
                    states
                });
                Ok((0..boundaries.len())
                    .map(|b| {
                        let mut cursors = Vec::with_capacity(self.n_functions);
                        let mut pending = Vec::with_capacity(self.n_functions);
                        for states in &per_fn {
                            cursors.push(states[b].0.clone());
                            pending.push(states[b].1);
                        }
                        StreamCheckpoint {
                            imp: CpImp::Merge { cursors, pending },
                        }
                    })
                    .collect())
            }
            StreamSpec::Csv { .. } => {
                let mut stream = self.open()?;
                let mut out = Vec::with_capacity(boundaries.len());
                for &t in boundaries {
                    while stream.peek().is_some_and(|e| event_nanos(e.at_secs) < t) {
                        stream.next();
                    }
                    out.push(stream.checkpoint());
                }
                Ok(out)
            }
        }
    }

    /// The escape hatch: builds the fully materialized [`Trace`] of the
    /// same specification. Tests diff the streaming pipeline against it;
    /// callers that need random access pay the O(events) memory
    /// knowingly.
    pub fn materialize(&self) -> Result<Trace> {
        match &self.spec {
            StreamSpec::Synthetic {
                source,
                duration_secs,
                seed,
            } => source.generate(self.n_functions, *duration_secs, *seed),
            StreamSpec::Csv { bytes, .. } => match bytes {
                CsvBytes::Mem(data) => TraceSource::from_csv(
                    std::str::from_utf8(data)
                        .map_err(|e| FreedomError::InvalidArgument(format!("trace CSV: {e}")))?,
                ),
                CsvBytes::File(path) => TraceSource::from_csv_path(path),
            },
        }
    }
}

/// A resumable position in an [`EventStream`] — cheap to clone, `Send`,
/// and `O(functions)` (synthetic) or `O(open rows)` (CSV) in size.
#[derive(Debug, Clone)]
pub struct StreamCheckpoint {
    imp: CpImp,
}

impl StreamCheckpoint {
    /// Serializes the checkpoint into a crash-resume snapshot
    /// ([`crate::snapshot`]): per-function generator states and pending
    /// events for synthetic traces, the byte offset plus open rows for
    /// CSV ones. [`StreamCheckpoint::load`] restores a checkpoint that
    /// [`StreamTrace::open_at`] resumes to the identical suffix.
    pub(crate) fn save(&self, w: &mut crate::snapshot::Wire) {
        match &self.imp {
            CpImp::Merge { cursors, pending } => {
                w.u8(0);
                w.len(cursors.len());
                for c in cursors {
                    c.save(w);
                }
                debug_assert_eq!(pending.len(), cursors.len());
                for p in pending {
                    match p {
                        None => w.u8(0),
                        Some(t) => {
                            w.u8(1);
                            w.f64(*t);
                        }
                    }
                }
            }
            CpImp::Csv(s) => {
                w.u8(1);
                w.u64(s.offset);
                w.u64(s.lineno as u64);
                w.u64(s.m_max);
                w.bool(s.exhausted);
                w.len(s.rows.len());
                for row in &s.rows {
                    w.u64(row.next_bits);
                    w.u32(row.function);
                    w.u64(row.minute);
                    w.u32(row.count);
                    w.u32(row.j);
                }
            }
        }
    }

    /// Restores a checkpoint serialized with [`StreamCheckpoint::save`].
    pub(crate) fn load(r: &mut crate::snapshot::Unwire) -> Result<Self> {
        let imp = match r.u8()? {
            0 => {
                let n = r.len()?;
                let mut cursors = Vec::with_capacity(n);
                for _ in 0..n {
                    cursors.push(GenCursor::load(r)?);
                }
                let mut pending = Vec::with_capacity(n);
                for _ in 0..n {
                    pending.push(match r.u8()? {
                        0 => None,
                        1 => Some(r.f64()?),
                        tag => {
                            return Err(FreedomError::InvalidArgument(format!(
                                "snapshot: invalid pending-event tag {tag}"
                            )))
                        }
                    });
                }
                CpImp::Merge { cursors, pending }
            }
            1 => {
                let offset = r.u64()?;
                let lineno = r.u64()? as usize;
                let m_max = r.u64()?;
                let exhausted = r.bool()?;
                let n = r.len()?;
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    rows.push(OpenRow {
                        next_bits: r.u64()?,
                        function: r.u32()?,
                        minute: r.u64()?,
                        count: r.u32()?,
                        j: r.u32()?,
                    });
                }
                CpImp::Csv(CsvState {
                    offset,
                    lineno,
                    m_max,
                    rows,
                    exhausted,
                })
            }
            tag => {
                return Err(FreedomError::InvalidArgument(format!(
                    "snapshot: unknown stream-checkpoint tag {tag}"
                )))
            }
        };
        Ok(Self { imp })
    }
}

#[derive(Debug, Clone)]
enum CpImp {
    Merge {
        cursors: Vec<GenCursor>,
        pending: Vec<Option<f64>>,
    },
    Csv(CsvState),
}

/// The CSV reader's resumable state.
#[derive(Debug, Clone)]
struct CsvState {
    /// Byte offset of the first unread line.
    offset: u64,
    /// 0-based index of that line.
    lineno: usize,
    m_max: u64,
    rows: Vec<OpenRow>,
    exhausted: bool,
}

/// A lazily-merged view of one trace's events, in the materialized
/// order: time ascending, ties broken by lower function index.
pub struct EventStream<'a> {
    imp: StreamImp<'a>,
}

enum StreamImp<'a> {
    Merge(MergeStream),
    Csv(CsvStream<'a>),
}

impl<'a> EventStream<'a> {
    /// The next event without consuming it. May read ahead (CSV rows,
    /// generator draws) but never emits.
    pub fn peek(&mut self) -> Option<TraceEvent> {
        match &mut self.imp {
            StreamImp::Merge(m) => m.peek(),
            StreamImp::Csv(c) => c.ready(),
        }
    }

    /// Consumes and returns the next event.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<TraceEvent> {
        match &mut self.imp {
            StreamImp::Merge(m) => m.next(),
            StreamImp::Csv(c) => c.next(),
        }
    }

    /// Captures the current position for [`StreamTrace::open_at`].
    pub fn checkpoint(&self) -> StreamCheckpoint {
        match &self.imp {
            StreamImp::Merge(m) => StreamCheckpoint {
                imp: CpImp::Merge {
                    cursors: m.cursors.clone(),
                    pending: m.pending.clone(),
                },
            },
            StreamImp::Csv(c) => StreamCheckpoint {
                imp: CpImp::Csv(CsvState {
                    offset: c.reader.offset(),
                    lineno: c.reader.lineno(),
                    m_max: c.m_max,
                    rows: c.heap.iter().map(|Reverse(r)| r.clone()).collect(),
                    exhausted: c.exhausted,
                }),
            },
        }
    }

    /// Draining iterator over the remaining events.
    pub fn events<'s>(&'s mut self) -> impl Iterator<Item = TraceEvent> + use<'s, 'a> {
        std::iter::from_fn(move || self.next())
    }

    /// Peak number of events this stream ever held resident: one pending
    /// arrival per cursor (synthetic) or the open rows of the lookahead
    /// window (CSV). The "cursor lookahead" term of the replay's
    /// peak-memory bound.
    pub fn peak_resident(&self) -> usize {
        match &self.imp {
            StreamImp::Merge(m) => m.cursors.len(),
            StreamImp::Csv(c) => c.peak_open,
        }
    }
}

/// K-way heap merge over per-function generator cursors — the lazy
/// equivalent of `Trace::from_streams`, with the identical
/// `(time bits, function index)` heap key and tie-break.
struct MergeStream {
    cursors: Vec<GenCursor>,
    /// Each cursor's generated-but-unconsumed arrival; mirrors the heap
    /// so checkpoints can capture it without draining.
    pending: Vec<Option<f64>>,
    heap: BinaryHeap<Reverse<(u64, usize)>>,
}

impl MergeStream {
    fn new(cursors: Vec<GenCursor>, pending: Vec<Option<f64>>) -> Self {
        let heap = pending
            .iter()
            .enumerate()
            .filter_map(|(f, &t)| t.map(|t| Reverse((t.to_bits(), f))))
            .collect();
        Self {
            cursors,
            pending,
            heap,
        }
    }

    fn peek(&self) -> Option<TraceEvent> {
        self.heap.peek().map(|&Reverse((bits, f))| TraceEvent {
            at_secs: f64::from_bits(bits),
            function: f,
        })
    }

    fn next(&mut self) -> Option<TraceEvent> {
        let mut top = self.heap.peek_mut()?;
        let Reverse((bits, f)) = *top;
        let refill = self.cursors[f].next_arrival();
        self.pending[f] = refill;
        // Replace-top + one sift instead of pop + push: the refilled
        // cursor usually stays near the front, so this halves the heap
        // work on the hot path.
        match refill {
            Some(t) => *top = Reverse((t.to_bits(), f)),
            None => {
                std::collections::binary_heap::PeekMut::pop(top);
            }
        }
        Some(TraceEvent {
            at_secs: f64::from_bits(bits),
            function: f,
        })
    }
}

/// One partially-emitted CSV row in the reader's lookahead window.
///
/// Ordering is by `(next event time bits, function, minute, count,
/// progress)` — the first two fields reproduce the merge tie-break;
/// the rest only make the order total (equal-keyed rows emit identical
/// events, so their relative order is unobservable).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct OpenRow {
    next_bits: u64,
    function: u32,
    minute: u64,
    count: u32,
    j: u32,
}

/// Line-by-line CSV event source with bounded minute lookahead.
struct CsvStream<'a> {
    reader: ChunkedLines,
    keys: &'a HashMap<(String, String), u32>,
    heap: BinaryHeap<Reverse<OpenRow>>,
    /// Highest minute seen so far; events before
    /// `60·(m_max − lookahead)` can no longer be preempted by unread
    /// rows and are safe to emit.
    m_max: u64,
    exhausted: bool,
    peak_open: usize,
}

impl CsvStream<'_> {
    fn frontier_secs(&self) -> f64 {
        self.m_max.saturating_sub(CSV_LOOKAHEAD_MINUTES) as f64 * 60.0
    }

    /// Reads rows until the heap top is safe to emit (or input ends);
    /// returns it without consuming.
    fn ready(&mut self) -> Option<TraceEvent> {
        loop {
            if let Some(Reverse(top)) = self.heap.peek() {
                let t = f64::from_bits(top.next_bits);
                if self.exhausted || t < self.frontier_secs() {
                    return Some(TraceEvent {
                        at_secs: t,
                        function: top.function as usize,
                    });
                }
            } else if self.exhausted {
                return None;
            }
            self.read_row();
        }
    }

    fn next(&mut self) -> Option<TraceEvent> {
        let event = self.ready()?;
        let Reverse(mut row) = self.heap.pop().expect("ready implies a top");
        row.j += 1;
        if row.j < row.count {
            row.next_bits = minute_event(row.minute, row.j as u64, row.count as u64).to_bits();
            self.heap.push(Reverse(row));
        }
        Some(event)
    }

    /// Reads one more row into the lookahead window. The scan pass
    /// already validated the whole input, so a failure here means the
    /// bytes changed between scan and replay — an environment error the
    /// replay cannot recover from mid-simulation.
    fn read_row(&mut self) {
        let line = self
            .reader
            .next_line()
            .expect("trace CSV changed between scan and replay");
        let Some((lineno, line)) = line else {
            self.exhausted = true;
            return;
        };
        let Some(row) = parse_csv_row(&line, lineno).expect("trace CSV validated at scan time")
        else {
            return;
        };
        assert!(
            row.minute.saturating_add(CSV_LOOKAHEAD_MINUTES) >= self.m_max,
            "trace CSV changed between scan and replay: line {} breaks the lookahead bound",
            lineno + 1
        );
        self.m_max = self.m_max.max(row.minute);
        if row.count == 0 {
            return;
        }
        let function = *self
            .keys
            .get(&(row.app.to_string(), row.func.to_string()))
            .expect("trace CSV validated at scan time");
        self.heap.push(Reverse(OpenRow {
            next_bits: minute_event(row.minute, 0, row.count).to_bits(),
            function,
            minute: row.minute,
            count: row.count as u32,
            j: 0,
        }));
        self.peak_open = self.peak_open.max(self.heap.len());
    }
}

/// Chunked line reader over in-memory or file-backed bytes: reads
/// fixed-size chunks, assembles lines across chunk boundaries, and
/// tracks the byte offset and 0-based line number of the next unread
/// line so checkpoints can re-seek exactly.
struct ChunkedLines {
    src: ChunkSrc,
    /// Bytes read but not yet emitted as lines; `buf[..pos]` is
    /// consumed.
    buf: Vec<u8>,
    pos: usize,
    /// Absolute offset of `buf[pos]`.
    offset: u64,
    lineno: usize,
    chunk: usize,
    eof: bool,
}

enum ChunkSrc {
    Mem { data: Arc<[u8]>, read: usize },
    File(std::fs::File),
}

impl ChunkedLines {
    fn open(bytes: &CsvBytes, offset: u64, lineno: usize, chunk: usize) -> Result<Self> {
        let src = match bytes {
            CsvBytes::Mem(data) => ChunkSrc::Mem {
                data: Arc::clone(data),
                read: (offset as usize).min(data.len()),
            },
            CsvBytes::File(path) => {
                let mut file = std::fs::File::open(path).map_err(|e| {
                    FreedomError::InvalidArgument(format!(
                        "cannot read trace CSV {}: {e}",
                        path.display()
                    ))
                })?;
                file.seek(SeekFrom::Start(offset)).map_err(|e| {
                    FreedomError::InvalidArgument(format!(
                        "cannot seek trace CSV {}: {e}",
                        path.display()
                    ))
                })?;
                ChunkSrc::File(file)
            }
        };
        Ok(Self {
            src,
            buf: Vec::new(),
            pos: 0,
            offset,
            lineno,
            chunk: chunk.max(1),
            eof: false,
        })
    }

    /// Byte offset of the next unread line.
    fn offset(&self) -> u64 {
        self.offset
    }

    /// 0-based index of the next unread line.
    fn lineno(&self) -> usize {
        self.lineno
    }

    /// The next `(lineno, line)`, or `None` at end of input. The final
    /// line may lack a trailing newline, exactly like `str::lines`.
    fn next_line(&mut self) -> Result<Option<(usize, String)>> {
        loop {
            if let Some(nl) = self.buf[self.pos..].iter().position(|&b| b == b'\n') {
                let line = self.take_line(self.pos + nl, 1);
                return Ok(Some(line?));
            }
            if self.eof {
                if self.pos < self.buf.len() {
                    let end = self.buf.len();
                    return Ok(Some(self.take_line(end, 0)?));
                }
                return Ok(None);
            }
            self.refill()?;
        }
    }

    /// Emits `buf[pos..end]` as a line, consuming `end + skip` bytes.
    fn take_line(&mut self, end: usize, skip: usize) -> Result<(usize, String)> {
        let mut bytes = &self.buf[self.pos..end];
        // `str::lines` strips a carriage return before the newline.
        if skip > 0 && bytes.last() == Some(&b'\r') {
            bytes = &bytes[..bytes.len() - 1];
        }
        let line = std::str::from_utf8(bytes)
            .map_err(|e| {
                FreedomError::InvalidArgument(format!(
                    "trace CSV line {}: invalid UTF-8: {e}",
                    self.lineno + 1
                ))
            })?
            .to_string();
        let lineno = self.lineno;
        self.offset += (end + skip - self.pos) as u64;
        self.pos = end + skip;
        self.lineno += 1;
        Ok((lineno, line))
    }

    fn refill(&mut self) -> Result<()> {
        // Drop the consumed prefix before growing the carry.
        self.buf.drain(..self.pos);
        self.pos = 0;
        match &mut self.src {
            ChunkSrc::Mem { data, read } => {
                let take = self.chunk.min(data.len() - *read);
                self.buf.extend_from_slice(&data[*read..*read + take]);
                *read += take;
                if take == 0 {
                    self.eof = true;
                }
            }
            ChunkSrc::File(file) => {
                let start = self.buf.len();
                self.buf.resize(start + self.chunk, 0);
                let n = file
                    .read(&mut self.buf[start..])
                    .map_err(|e| FreedomError::InvalidArgument(format!("trace CSV read: {e}")))?;
                self.buf.truncate(start + n);
                if n == 0 {
                    self.eof = true;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SOURCES: [TraceSource; 4] = [
        TraceSource::Poisson {
            rps_per_function: 0.8,
        },
        TraceSource::Bursty {
            calm_rps: 0.2,
            burst_rps: 4.0,
            mean_calm_secs: 40.0,
            mean_burst_secs: 5.0,
        },
        TraceSource::Diurnal {
            mean_rps: 0.8,
            peak_to_trough: 4.0,
            period_secs: 120.0,
        },
        TraceSource::HeavyTail {
            mean_rps: 0.8,
            alpha: 1.5,
        },
    ];

    const AZURE_FIXTURE: &str = include_str!("../testdata/azure_sample.csv");

    fn drain(stream: &mut EventStream<'_>) -> Vec<TraceEvent> {
        stream.events().collect()
    }

    #[test]
    fn every_source_streams_the_materialized_events_bit_for_bit() {
        for source in SOURCES {
            let lazy = StreamTrace::generate(source, 10, 200.0, 7).unwrap();
            let full = lazy.materialize().unwrap();
            assert_eq!(lazy.n_functions(), full.n_functions(), "{source:?}");
            assert_eq!(lazy.len(), full.len(), "{source:?}");
            assert_eq!(
                lazy.horizon_nanos(),
                event_nanos(full.events().last().unwrap().at_secs),
                "{source:?}"
            );
            let events = drain(&mut lazy.open().unwrap());
            assert_eq!(events.as_slice(), full.events(), "{source:?}");
            // The scan pass fans out bit-identically.
            let sharded = StreamTrace::generate_sharded(source, 10, 200.0, 7, 8).unwrap();
            assert_eq!(sharded.len(), lazy.len());
            assert_eq!(sharded.horizon_nanos(), lazy.horizon_nanos());
        }
    }

    #[test]
    fn checkpoints_replay_identical_suffixes() {
        let lazy = StreamTrace::generate(SOURCES[3], 6, 120.0, 3).unwrap();
        let mut stream = lazy.open().unwrap();
        let all = drain(&mut lazy.open().unwrap());
        for split in [0usize, 1, 7, all.len() - 1, all.len()] {
            let mut stream2 = lazy.open().unwrap();
            for _ in 0..split {
                stream2.next();
            }
            let cp = stream2.checkpoint();
            // Rewind twice: the checkpoint is reusable, not consumed.
            for _ in 0..2 {
                let suffix = drain(&mut lazy.open_at(&cp).unwrap());
                assert_eq!(suffix.as_slice(), &all[split..], "split at {split}");
            }
        }
        // A checkpoint taken after peeking is position-identical to one
        // taken before.
        stream.next();
        let before = stream.checkpoint();
        stream.peek();
        let after = stream.checkpoint();
        assert_eq!(
            drain(&mut lazy.open_at(&before).unwrap()),
            drain(&mut lazy.open_at(&after).unwrap()),
        );
    }

    #[test]
    fn sharded_boundary_checkpoints_match_the_sequential_walk() {
        // The ladder pass (`checkpoints_at`) must produce checkpoints
        // whose suffixes are bit-identical to those of a sequential
        // drain-to-boundary walk — for synthetic shards and the serial
        // CSV fallback alike.
        let window = event_nanos(25.0);
        let traces = [
            StreamTrace::generate(SOURCES[1], 6, 120.0, 9).unwrap(),
            StreamTrace::from_csv(AZURE_FIXTURE).unwrap(),
        ];
        for lazy in traces {
            let boundaries: Vec<u64> = (0..6).map(|k| k * window).collect();
            // Reference: one sequential walk over the merged stream.
            let mut stream = lazy.open().unwrap();
            let mut reference = Vec::new();
            for &t in &boundaries {
                while stream.peek().is_some_and(|e| event_nanos(e.at_secs) < t) {
                    stream.next();
                }
                reference.push(stream.checkpoint());
            }
            for threads in [1, 4] {
                let ladder = lazy.checkpoints_at(&boundaries, threads).unwrap();
                assert_eq!(ladder.len(), reference.len());
                for (k, (a, b)) in ladder.iter().zip(&reference).enumerate() {
                    let ours = drain(&mut lazy.open_at(a).unwrap());
                    let theirs = drain(&mut lazy.open_at(b).unwrap());
                    assert_eq!(ours, theirs, "boundary {k}, threads {threads}");
                }
            }
        }
    }

    #[test]
    fn csv_stream_matches_materialized_reader() {
        for chunk in [3usize, 17, 64 * 1024] {
            let lazy = StreamTrace::from_csv_chunked(AZURE_FIXTURE, chunk).unwrap();
            let full = TraceSource::from_csv(AZURE_FIXTURE).unwrap();
            assert_eq!(lazy.n_functions(), 6);
            assert_eq!(lazy.len(), 113);
            assert_eq!(
                lazy.horizon_nanos(),
                event_nanos(full.events().last().unwrap().at_secs)
            );
            let events = drain(&mut lazy.open().unwrap());
            assert_eq!(events.as_slice(), full.events(), "chunk {chunk}");
            // Mid-stream checkpoints re-seek exactly, and the lookahead
            // stays bounded by the open rows.
            let mut stream = lazy.open().unwrap();
            for _ in 0..40 {
                stream.next();
            }
            let cp = stream.checkpoint();
            let suffix = drain(&mut lazy.open_at(&cp).unwrap());
            assert_eq!(suffix.as_slice(), &events[40..]);
            assert!(lazy.open().unwrap().peak_resident() <= AZURE_FIXTURE.lines().count());
        }
    }

    #[test]
    fn csv_negative_paths_report_accurate_line_numbers() {
        let err = |csv: &str, chunk: usize| match StreamTrace::from_csv_chunked(csv, chunk) {
            Err(FreedomError::InvalidArgument(msg)) => msg,
            other => panic!("expected InvalidArgument, got {other:?}"),
        };
        // A truncated final line — the file ends mid-record, no trailing
        // newline — is a malformed row at its own line number, even when
        // the chunk boundary lands inside it.
        for chunk in [1usize, 4, 1 << 16] {
            let msg = err("a,f,0,3\nb,g,1,2\na,f,2", chunk);
            assert!(msg.contains("line 3"), "chunk {chunk}: {msg}");
            assert!(msg.contains("4 columns"), "chunk {chunk}: {msg}");
        }
        // A record split mid-field across a chunk boundary still parses
        // as one line; when malformed, the error names that line.
        for chunk in 1..12 {
            let msg = err("a,f,0,3\na,f,1,not-a-count\na,f,2,1\n", chunk);
            assert!(msg.contains("line 2"), "chunk {chunk}: {msg}");
        }
        // Functions interleaved out of minute order across chunk
        // boundaries stream fine within the lookahead bound...
        let ok = "a,f,9,1\nb,g,2,1\na,f,10,1\n";
        let lazy = StreamTrace::from_csv_chunked(ok, 5).unwrap();
        let full = TraceSource::from_csv(ok).unwrap();
        assert_eq!(drain(&mut lazy.open().unwrap()).as_slice(), full.events());
        // ...but beyond it the scan rejects the file with the offending
        // line, while the materialized reader still accepts it.
        let disordered = "a,f,30,1\nb,g,2,1\n";
        let msg = err(disordered, 4);
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("lookahead"), "{msg}");
        assert!(TraceSource::from_csv(disordered).is_ok());
        // Scan-time grammar errors match the materialized reader's.
        assert!(StreamTrace::from_csv("").is_err());
        assert!(StreamTrace::from_csv("app,func,minute,count\n").is_err());
        assert!(StreamTrace::from_csv("a,f,0,1000001\n").is_err());
        assert!(StreamTrace::from_csv_path("/nonexistent/trace.csv").is_err());
    }

    #[test]
    fn csv_streaming_handles_headers_zero_counts_and_crlf() {
        // Header skipped, zero-count rows register their function, CRLF
        // endings tolerated — all matching the materialized reader.
        let csv = "app,func,minute,count\r\na,f,0,3\r\nb,g,1,0\r\n";
        let lazy = StreamTrace::from_csv(csv).unwrap();
        assert_eq!(lazy.n_functions(), 2);
        assert_eq!(lazy.len(), 3);
        let full = TraceSource::from_csv(csv).unwrap();
        assert_eq!(drain(&mut lazy.open().unwrap()).as_slice(), full.events());
        // An empty trace of registered functions is well-formed.
        let empty = StreamTrace::from_csv("a,f,0,0\n").unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.horizon_nanos(), 0);
        assert!(drain(&mut empty.open().unwrap()).is_empty());
    }

    #[test]
    fn file_backed_streams_checkpoint_and_reopen() {
        let dir = std::env::temp_dir().join(format!("freedom_stream_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("azure.csv");
        std::fs::write(&path, AZURE_FIXTURE).unwrap();
        let lazy = StreamTrace::from_csv_path(&path).unwrap();
        let full = TraceSource::from_csv_path(&path).unwrap();
        let events = drain(&mut lazy.open().unwrap());
        assert_eq!(events.as_slice(), full.events());
        let mut stream = lazy.open().unwrap();
        for _ in 0..25 {
            stream.next();
        }
        let cp = stream.checkpoint();
        assert_eq!(
            drain(&mut lazy.open_at(&cp).unwrap()).as_slice(),
            &events[25..]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_kind_mismatch_is_rejected() {
        let synthetic = StreamTrace::generate(SOURCES[0], 3, 30.0, 1).unwrap();
        let csv = StreamTrace::from_csv("a,f,0,2\n").unwrap();
        let cp = synthetic.open().unwrap().checkpoint();
        assert!(csv.open_at(&cp).is_err());
        let cp = csv.open().unwrap().checkpoint();
        assert!(synthetic.open_at(&cp).is_err());
    }
}

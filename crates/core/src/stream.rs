//! The streaming trace pipeline: constant-memory event production.
//!
//! [`Trace`] materializes every arrival up front — per-function `Vec`s
//! plus a merged event view — which caps replay horizons at what fits in
//! memory. This module produces the same events *lazily*: a
//! [`StreamTrace`] holds only the trace's **specification** (generator
//! parameters, or a CSV key map plus the file list) plus O(functions)
//! scan metadata, and an [`EventStream`] pulls arrivals one at a time
//! through the same k-way merge and tie-break contract (time, then
//! function index) as the materialized view. Peak resident state is
//! `O(functions)` cursors — one pending event each — instead of
//! `O(total events)`.
//!
//! # The streaming cursor contract
//!
//! - **Bit-identity.** `StreamTrace::open().events()` yields exactly the
//!   events of [`StreamTrace::materialize`], same `f64` bits, same
//!   order. Synthetic sources guarantee it by construction (both paths
//!   drain the same [`GenCursor`](crate::trace)); the CSV reader shares
//!   the materialized parser's row grammar and spread formula, and its
//!   bounded-lookahead merge is exact for every file it accepts.
//! - **Checkpoint / rewind.** [`EventStream::checkpoint`] captures the
//!   stream's position (per-function generator states and pending
//!   events; for CSV, the file index and decompressed byte offset plus
//!   open rows); [`StreamTrace::open_at`] reopens the stream there,
//!   replaying the identical suffix. This is how the windowed fleet
//!   replay re-seeks a window by epoch — and re-runs it during
//!   reconciliation by rewinding to the same checkpoint — without ever
//!   holding the merged view.
//! - **CSV lookahead.** Rows may arrive out of minute order by at most
//!   [`CSV_LOOKAHEAD_MINUTES`]; the reader buffers the open rows of that
//!   sliding window (its only super-constant state) and rejects files
//!   that exceed the bound with a file- and line-qualified error at scan
//!   time. The bound is **global across file seams**: the first row of
//!   file *k+1* may trail the highest minute of files *1..k* by at most
//!   the same lookahead. The materialized [`TraceSource::from_csv`]
//!   accepts arbitrary disorder — it is the escape hatch for
//!   pathological files.
//! - **Multi-file and gzip inputs.** [`StreamTrace::from_csv_files`]
//!   replays N per-day files as one logical trace: files are scanned in
//!   parallel, per-file key lists merge in file order (bit-identical to
//!   scanning the concatenation), and each file may carry its own header
//!   row. Files whose first bytes are the gzip magic are decompressed on
//!   the fly through the vendored [`flate`] inflater; during replay,
//!   file-backed gzip inputs decompress on a reader thread ahead of the
//!   parser, bounded to [`READAHEAD_DEPTH`] chunks of
//!   [`READAHEAD_CHUNK`] bytes. Identical bytes flow either way, so
//!   gz ≡ plain ≡ materialized, bit for bit.
//!
//! Construction performs one **scan pass** (cheap: generation only, no
//! simulation) recording the event count and horizon per function —
//! what the fleet engine needs before replay — so `open()` itself is
//! allocation-light and replays never re-derive metadata.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::trace::{
    event_nanos, minute_event, parse_csv_row, stream_seed, GenCursor, Trace, TraceEvent,
    TraceSource,
};
use crate::{FreedomError, Result};

/// How far out of minute order CSV rows may arrive before the streaming
/// reader rejects the file: a row with `minute < max_seen − LOOKAHEAD`
/// is an error. Bounds the reader's buffered state to the open rows of
/// a sliding `LOOKAHEAD + 1`-minute window. The bound carries across
/// file seams: `max_seen` includes every earlier file of the trace.
pub const CSV_LOOKAHEAD_MINUTES: u64 = 8;

/// Default chunk size of the CSV byte reader. Tests shrink it to force
/// records across chunk boundaries.
const CSV_CHUNK_BYTES: usize = 64 * 1024;

/// Decompressed bytes per read-ahead chunk for file-backed gzip inputs.
pub const READAHEAD_CHUNK: usize = 256 * 1024;

/// Maximum in-flight read-ahead chunks: the decompressor runs at most
/// `READAHEAD_DEPTH × READAHEAD_CHUNK` bytes ahead of the parser.
pub const READAHEAD_DEPTH: usize = 4;

/// Where the CSV bytes live. `Mem` shares the buffer across reopened
/// streams; `File` reopens and seeks, so parallel windows each hold one
/// descriptor and a chunk — never the file.
#[derive(Debug, Clone)]
enum CsvBytes {
    Mem(Arc<[u8]>),
    File(PathBuf),
}

/// One input file of a (possibly multi-file) CSV trace.
#[derive(Debug, Clone)]
struct CsvFile {
    bytes: CsvBytes,
    /// Decompress through the vendored inflater before line splitting.
    gz: bool,
    /// Human-readable name used in error attribution ("" for a single
    /// in-memory input, preserving the historical message format).
    label: String,
}

/// A lazily-evaluated arrival trace: the specification plus O(functions)
/// scan metadata, never the events.
#[derive(Debug, Clone)]
pub struct StreamTrace {
    spec: StreamSpec,
    n_functions: usize,
    len: usize,
    horizon_nanos: u64,
    /// Wall timings of the construction-time scan pass, one entry per
    /// scanned unit (file, part, or the synthetic count pass), offsets
    /// relative to the scan's start. Replayed into a telemetry recorder
    /// by [`StreamTrace::record_scan`].
    scan: Arc<Vec<ScanTiming>>,
}

/// Wall timing of one scan-phase unit, captured while the trace was
/// constructed.
#[derive(Debug, Clone, Copy)]
struct ScanTiming {
    /// Offset from the start of the scan pass, in wall nanoseconds.
    start_nanos: u64,
    dur_nanos: u64,
    /// Whether the unit was gzip-decompressed while scanning.
    gz: bool,
}

#[derive(Debug, Clone)]
enum StreamSpec {
    Synthetic {
        source: TraceSource,
        duration_secs: f64,
        seed: u64,
    },
    Csv {
        files: Vec<CsvFile>,
        /// Dense per-file row → function-index tables, indexed by
        /// 0-based line number (`u32::MAX` for non-data lines: blanks
        /// and headers). Indices are assigned in order of first
        /// appearance across the file sequence — the same assignment
        /// the materialized reader makes over the concatenated text.
        /// Built once at scan time so the replay hot loop does an array
        /// load per row instead of re-building and hashing the
        /// `(app, func)` composite key against a map.
        row_fn: Arc<Vec<Vec<u32>>>,
        chunk: usize,
    },
}

/// Multiply-xor string hasher for the composite-key maps. The replay
/// loop probes the key map once per CSV row, and for such short keys
/// SipHash's setup/finalization dominates the lookup. Not DoS-hardened,
/// which is acceptable for trace-derived keys; nothing observable
/// depends on hash order (the maps are probed, never iterated).
#[derive(Clone, Default)]
struct FxHasher {
    hash: u64,
}

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        const SEED: u64 = 0x517c_c1b7_2722_0a95;
        let mut h = self.hash;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            h = (h.rotate_left(5) ^ word).wrapping_mul(SEED);
        }
        let mut tail = 0u64;
        for &b in chunks.remainder().iter().rev() {
            tail = (tail << 8) | b as u64;
        }
        h = (h.rotate_left(5) ^ tail).wrapping_mul(SEED);
        self.hash = h;
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type FxBuild = std::hash::BuildHasherDefault<FxHasher>;
type KeyMap = HashMap<String, u32, FxBuild>;

/// Builds the unambiguous `(app, func)` composite key in `scratch`:
/// the app length prefix makes `("ab","c")` distinct from `("a","bc")`
/// without allocating per lookup. The length is formatted by hand —
/// `write!` drags the whole `fmt` machinery into the per-row path.
fn composite_key(scratch: &mut String, app: &str, func: &str) {
    scratch.clear();
    let mut digits = [0u8; 20];
    let mut i = digits.len();
    let mut n = app.len();
    loop {
        i -= 1;
        digits[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    scratch.push_str(std::str::from_utf8(&digits[i..]).expect("ASCII digits"));
    scratch.push(':');
    scratch.push_str(app);
    scratch.push_str(func);
}

/// Prefixes `trace CSV line N: ...` messages with the file label so
/// multi-file errors attribute the exact file (`trace CSV day2.csv.gz
/// line N: ...`).
fn qualify_err(e: FreedomError, label: &str) -> FreedomError {
    if label.is_empty() {
        return e;
    }
    match e {
        FreedomError::InvalidArgument(msg) => {
            FreedomError::InvalidArgument(match msg.strip_prefix("trace CSV ") {
                Some(rest) => format!("trace CSV {label} {rest}"),
                None => format!("{label}: {msg}"),
            })
        }
        other => other,
    }
}

fn csv_line_prefix(label: &str, lineno: usize) -> String {
    if label.is_empty() {
        format!("trace CSV line {}", lineno + 1)
    } else {
        format!("trace CSV {label} line {}", lineno + 1)
    }
}

/// Per-file scan result, merged in file order into the trace metadata.
struct FileScan {
    /// Composite keys in first-appearance order within this file.
    keys: Vec<String>,
    /// Line-number-indexed local key id per line (`u32::MAX` for
    /// non-data lines); remapped to global indices at merge time.
    row_fn: Vec<u32>,
    len: usize,
    last: f64,
    /// Highest minute seen (meaningful only when `data_rows > 0`).
    m_max: u64,
    data_rows: usize,
    /// Rows whose minute is strictly below every earlier minute of the
    /// same file, in line order (minutes strictly decreasing). The first
    /// cross-seam lookahead violation is always one of these, so the
    /// merge pass attributes it exactly without a second scan.
    prefix_mins: Vec<(usize, u64)>,
}

fn scan_file(file: &CsvFile, chunk: usize) -> Result<FileScan> {
    let mut reader = ChunkedLines::open(file, 0, 0, chunk, false)?;
    let mut local = KeyMap::default();
    let mut keys = Vec::new();
    let mut row_fn: Vec<u32> = Vec::new();
    let mut scratch = String::new();
    let mut len = 0usize;
    let mut last = f64::NEG_INFINITY;
    let mut m_max = 0u64;
    let mut data_rows = 0usize;
    let mut prefix_mins: Vec<(usize, u64)> = Vec::new();
    while let Some((lineno, line)) = reader.next_line()? {
        debug_assert_eq!(row_fn.len(), lineno, "one row_fn entry per line");
        row_fn.push(u32::MAX);
        let Some(row) = parse_csv_row(line, lineno).map_err(|e| qualify_err(e, &file.label))?
        else {
            continue;
        };
        if data_rows > 0 && row.minute.saturating_add(CSV_LOOKAHEAD_MINUTES) < m_max {
            return Err(FreedomError::InvalidArgument(format!(
                "{}: minute {} arrives more than {CSV_LOOKAHEAD_MINUTES} minutes behind \
                 minute {m_max}; the streaming reader's lookahead cannot reorder it (use \
                 TraceSource::from_csv for arbitrarily-disordered files)",
                csv_line_prefix(&file.label, lineno),
                row.minute,
            )));
        }
        if data_rows == 0 || prefix_mins.last().is_some_and(|&(_, m)| row.minute < m) {
            prefix_mins.push((lineno, row.minute));
        }
        m_max = m_max.max(row.minute);
        data_rows += 1;
        composite_key(&mut scratch, row.app, row.func);
        let local_id = match local.get(scratch.as_str()) {
            Some(&id) => id,
            None => {
                let id = keys.len() as u32;
                local.insert(scratch.clone(), id);
                keys.push(scratch.clone());
                id
            }
        };
        *row_fn.last_mut().expect("pushed above") = local_id;
        if row.count > 0 {
            len += row.count as usize;
            last = last.max(minute_event(row.minute, row.count - 1, row.count));
        }
    }
    Ok(FileScan {
        keys,
        row_fn,
        len,
        last,
        m_max,
        data_rows,
        prefix_mins,
    })
}

fn detect_gz(bytes: &CsvBytes) -> Result<bool> {
    match bytes {
        CsvBytes::Mem(data) => Ok(flate::is_gzip(data)),
        CsvBytes::File(path) => {
            let file = std::fs::File::open(path).map_err(|e| {
                FreedomError::InvalidArgument(format!(
                    "cannot read trace CSV {}: {e}",
                    path.display()
                ))
            })?;
            let mut magic = Vec::with_capacity(2);
            file.take(2).read_to_end(&mut magic).map_err(|e| {
                FreedomError::InvalidArgument(format!(
                    "cannot read trace CSV {}: {e}",
                    path.display()
                ))
            })?;
            Ok(flate::is_gzip(&magic))
        }
    }
}

impl StreamTrace {
    /// A lazy trace over `n_functions` independent generator streams —
    /// the streaming counterpart of [`TraceSource::generate`]. Performs
    /// the scan pass sequentially.
    pub fn generate(
        source: TraceSource,
        n_functions: usize,
        duration_secs: f64,
        seed: u64,
    ) -> Result<Self> {
        Self::generate_sharded(source, n_functions, duration_secs, seed, 1)
    }

    /// Like [`StreamTrace::generate`] with the scan pass fanned out over
    /// `threads` workers. Streams are pure functions of
    /// `(seed, function index)`, so the metadata — and every event later
    /// pulled — is bit-identical for every thread count.
    pub fn generate_sharded(
        source: TraceSource,
        n_functions: usize,
        duration_secs: f64,
        seed: u64,
        threads: usize,
    ) -> Result<Self> {
        source.validate(n_functions, duration_secs)?;
        let scan_epoch = std::time::Instant::now();
        let per_fn = freedom_parallel::par_run(n_functions, threads, |f| {
            let mut cursor = GenCursor::new(&source, duration_secs, stream_seed(seed, f));
            let mut count = 0usize;
            let mut last = f64::NEG_INFINITY;
            while let Some(t) = cursor.next_arrival() {
                count += 1;
                last = t;
            }
            (count, last)
        });
        let len = per_fn.iter().map(|&(c, _)| c).sum();
        // The merged view's last event is the max over per-function last
        // arrivals — same float, same nanos as the materialized path.
        let horizon_nanos = per_fn
            .iter()
            .filter(|&&(c, _)| c > 0)
            .map(|&(_, last)| event_nanos(last))
            .max()
            .unwrap_or(0);
        let scan = vec![ScanTiming {
            start_nanos: 0,
            dur_nanos: scan_epoch.elapsed().as_nanos() as u64,
            gz: false,
        }];
        Ok(Self {
            spec: StreamSpec::Synthetic {
                source,
                duration_secs,
                seed,
            },
            n_functions,
            len,
            horizon_nanos,
            scan: Arc::new(scan),
        })
    }

    /// Streaming counterpart of [`TraceSource::from_csv`]: scans the
    /// rows once (validating the grammar and the
    /// [`CSV_LOOKAHEAD_MINUTES`] ordering bound, building the
    /// `(app, func)` key map) and holds the bytes for lazy replay.
    pub fn from_csv(csv: &str) -> Result<Self> {
        Self::from_csv_chunked(csv, CSV_CHUNK_BYTES)
    }

    /// Streaming counterpart of [`TraceSource::from_csv_path`]: the scan
    /// reads the file once in [`CSV_CHUNK_BYTES`] chunks; replays re-read
    /// it, so the file must not change while the trace is in use.
    /// Gzip'd files (by magic bytes) are decompressed transparently.
    pub fn from_csv_path(path: impl AsRef<Path>) -> Result<Self> {
        Self::from_csv_files(&[path])
    }

    /// A multi-file trace: `paths` replay back to back as one logical
    /// event stream, in the given order (for the Azure dataset, one file
    /// per day). Each file is scanned in parallel, may carry its own
    /// header row, and is gzip-decompressed when its first bytes are the
    /// gzip magic. Minute order must hold **across** seams too: the
    /// earliest rows of a file may trail the highest minute of earlier
    /// files by at most [`CSV_LOOKAHEAD_MINUTES`]; violations name the
    /// exact file and line.
    pub fn from_csv_files<P: AsRef<Path>>(paths: &[P]) -> Result<Self> {
        let mut files = Vec::with_capacity(paths.len());
        for path in paths {
            let bytes = CsvBytes::File(path.as_ref().to_path_buf());
            let gz = detect_gz(&bytes)?;
            files.push(CsvFile {
                bytes,
                gz,
                label: path.as_ref().display().to_string(),
            });
        }
        Self::from_parts(files, CSV_CHUNK_BYTES)
    }

    /// A single gzip'd trace file. Unlike the auto-detecting
    /// constructors this *requires* a gzip member: a garbage header is
    /// reported as a decode error, never silently parsed as plain CSV.
    pub fn from_csv_gz(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        Self::from_parts(
            vec![CsvFile {
                bytes: CsvBytes::File(path.to_path_buf()),
                gz: true,
                label: path.display().to_string(),
            }],
            CSV_CHUNK_BYTES,
        )
    }

    /// In-memory variant of [`StreamTrace::from_csv_gz`] (gzip required,
    /// garbage headers are decode errors).
    pub fn from_csv_gz_bytes(data: &[u8]) -> Result<Self> {
        Self::from_parts(
            vec![CsvFile {
                bytes: CsvBytes::Mem(Arc::from(data)),
                gz: true,
                label: String::new(),
            }],
            CSV_CHUNK_BYTES,
        )
    }

    /// In-memory multi-file trace: each part is one logical file
    /// (gzip-detected independently, own header allowed), replayed back
    /// to back. Errors attribute parts as `part 1`, `part 2`, … when
    /// there is more than one.
    pub fn from_csv_parts(parts: &[&[u8]]) -> Result<Self> {
        Self::from_csv_parts_chunked(parts, CSV_CHUNK_BYTES)
    }

    /// [`StreamTrace::from_csv_parts`] with an explicit reader chunk
    /// size, for tests that force records across chunk boundaries.
    pub fn from_csv_parts_chunked(parts: &[&[u8]], chunk_bytes: usize) -> Result<Self> {
        let files = parts
            .iter()
            .enumerate()
            .map(|(i, part)| CsvFile {
                bytes: CsvBytes::Mem(Arc::from(*part)),
                gz: flate::is_gzip(part),
                label: if parts.len() > 1 {
                    format!("part {}", i + 1)
                } else {
                    String::new()
                },
            })
            .collect();
        Self::from_parts(files, chunk_bytes)
    }

    /// [`StreamTrace::from_csv`] with an explicit reader chunk size
    /// (clamped to ≥ 1 byte). Chunking is observable only in I/O
    /// granularity — records straddling chunk boundaries parse
    /// identically — which is exactly what tests pin down by shrinking
    /// the chunk to a few bytes.
    pub fn from_csv_chunked(csv: &str, chunk_bytes: usize) -> Result<Self> {
        Self::from_parts(
            vec![CsvFile {
                bytes: CsvBytes::Mem(Arc::from(csv.as_bytes())),
                gz: false,
                label: String::new(),
            }],
            chunk_bytes,
        )
    }

    fn from_parts(files: Vec<CsvFile>, chunk: usize) -> Result<Self> {
        if files.is_empty() {
            return Err(FreedomError::InvalidArgument(
                "trace CSV file list is empty".into(),
            ));
        }
        // Per-file scans are independent (grammar, in-file ordering,
        // first-appearance key list, prefix-min ladder), so they fan out
        // like the k-way cursor scan; the sequential merge below is
        // O(files + functions).
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(files.len());
        let scan_epoch = std::time::Instant::now();
        let scans = freedom_parallel::par_run(files.len(), threads, |i| {
            let started = scan_epoch.elapsed().as_nanos() as u64;
            let out = scan_file(&files[i], chunk);
            let dur = (scan_epoch.elapsed().as_nanos() as u64).saturating_sub(started);
            (out, started, dur)
        });
        let mut scan_timings = Vec::with_capacity(files.len());
        let mut keys = KeyMap::default();
        let mut row_fn: Vec<Vec<u32>> = Vec::with_capacity(files.len());
        let mut len = 0usize;
        let mut last = f64::NEG_INFINITY;
        let mut data_rows = 0usize;
        let mut prior_max: Option<u64> = None;
        for (file, (scan, started, dur)) in files.iter().zip(scans) {
            let scan = scan?;
            scan_timings.push(ScanTiming {
                start_nanos: started,
                dur_nanos: dur,
                gz: file.gz,
            });
            // Cross-seam lookahead: every row of this file must stay
            // within the lookahead of the highest minute carried in from
            // earlier files. The first violating row is necessarily a
            // prefix-min of its file (any earlier row with an equal or
            // smaller minute would already violate), so the first
            // violating prefix-min entry is exact file:line attribution.
            if let Some(pm) = prior_max {
                if let Some(&(lineno, minute)) = scan
                    .prefix_mins
                    .iter()
                    .find(|&&(_, m)| m.saturating_add(CSV_LOOKAHEAD_MINUTES) < pm)
                {
                    return Err(FreedomError::InvalidArgument(format!(
                        "{}: minute {minute} arrives more than {CSV_LOOKAHEAD_MINUTES} minutes \
                         behind minute {pm} carried across the file seam; the streaming \
                         reader's lookahead cannot reorder it (use TraceSource::from_csv for \
                         arbitrarily-disordered files)",
                        csv_line_prefix(&file.label, lineno),
                    )));
                }
            }
            if scan.data_rows > 0 {
                prior_max = Some(prior_max.map_or(scan.m_max, |p| p.max(scan.m_max)));
            }
            // Folding per-file first-appearance lists in file order
            // assigns exactly the indices a scan of the concatenation
            // would: a key's first appearance overall is its first
            // appearance in the first file that contains it. `remap`
            // carries local → global ids into the file's dense table.
            let mut remap = Vec::with_capacity(scan.keys.len());
            for key in scan.keys {
                let next_index = keys.len() as u32;
                remap.push(*keys.entry(key).or_insert(next_index));
            }
            row_fn.push(
                scan.row_fn
                    .iter()
                    .map(|&l| match l {
                        u32::MAX => u32::MAX,
                        l => remap[l as usize],
                    })
                    .collect(),
            );
            len += scan.len;
            last = last.max(scan.last);
            data_rows += scan.data_rows;
        }
        if data_rows == 0 {
            return Err(FreedomError::InvalidArgument(
                "trace CSV has no data rows".into(),
            ));
        }
        let horizon_nanos = if len == 0 { 0 } else { event_nanos(last) };
        Ok(Self {
            n_functions: keys.len(),
            len,
            horizon_nanos,
            spec: StreamSpec::Csv {
                files,
                row_fn: Arc::new(row_fn),
                chunk,
            },
            scan: Arc::new(scan_timings),
        })
    }

    /// Number of functions with a (possibly empty) stream.
    pub fn n_functions(&self) -> usize {
        self.n_functions
    }

    /// Total number of arrivals the stream will yield.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trace has no arrivals.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Arrival time of the last event in integer nanoseconds (0 for an
    /// empty trace) — the replay horizon supply steps and controller
    /// ticks are capped at.
    pub fn horizon_nanos(&self) -> u64 {
        self.horizon_nanos
    }

    /// Replays the construction-time scan timings into a telemetry
    /// recorder as wall spans: one `Scan` span covering the whole scan
    /// pass (arg = number of scanned units), plus one span per unit —
    /// `GzDecompress` for gzip'd files, `Scan` otherwise (arg = unit
    /// index). The spans are anchored so the pass ends at the
    /// recorder's current wall clock; call this right after
    /// constructing the trace.
    pub fn record_scan<R: freedom_telemetry::Recorder>(&self, rec: &mut R) {
        if !R::ENABLED || self.scan.is_empty() {
            return;
        }
        let total = self
            .scan
            .iter()
            .map(|t| t.start_nanos + t.dur_nanos)
            .max()
            .unwrap_or(0);
        let base = rec.now_nanos().saturating_sub(total);
        rec.span_wall_at(
            freedom_telemetry::Span::Scan,
            base,
            total,
            self.scan.len() as u64,
        );
        if self.scan.len() == 1 && !self.scan[0].gz {
            return; // the umbrella span already is the single unit
        }
        for (i, t) in self.scan.iter().enumerate() {
            let kind = if t.gz {
                freedom_telemetry::Span::GzDecompress
            } else {
                freedom_telemetry::Span::Scan
            };
            rec.span_wall_at(kind, base + t.start_nanos, t.dur_nanos, i as u64);
        }
    }

    /// Opens the event stream at position 0.
    pub fn open(&self) -> Result<EventStream<'_>> {
        match &self.spec {
            StreamSpec::Synthetic {
                source,
                duration_secs,
                seed,
            } => {
                let mut cursors = Vec::with_capacity(self.n_functions);
                let mut pending = Vec::with_capacity(self.n_functions);
                for f in 0..self.n_functions {
                    let mut c = GenCursor::new(source, *duration_secs, stream_seed(*seed, f));
                    pending.push(c.next_arrival());
                    cursors.push(c);
                }
                Ok(EventStream {
                    imp: StreamImp::Merge(MergeStream::new(cursors, pending)),
                })
            }
            StreamSpec::Csv {
                files,
                row_fn,
                chunk,
            } => Ok(EventStream {
                imp: StreamImp::Csv(CsvStream {
                    reader: MultiFileLines::open_at(files, 0, 0, 0, *chunk)?,
                    row_fn,
                    heap: BinaryHeap::new(),
                    m_max: 0,
                    exhausted: false,
                    peak_open: 0,
                }),
            }),
        }
    }

    /// Reopens the stream at a checkpoint previously taken from one of
    /// this trace's streams, replaying the identical suffix — the
    /// windowed replay's epoch re-seek. Returns
    /// [`FreedomError::InvalidArgument`] when the checkpoint belongs to
    /// the other stream kind.
    pub fn open_at(&self, cp: &StreamCheckpoint) -> Result<EventStream<'_>> {
        match (&self.spec, &cp.imp) {
            (StreamSpec::Synthetic { .. }, CpImp::Merge { cursors, pending }) => Ok(EventStream {
                imp: StreamImp::Merge(MergeStream::new(cursors.clone(), pending.clone())),
            }),
            (
                StreamSpec::Csv {
                    files,
                    row_fn,
                    chunk,
                },
                CpImp::Csv(state),
            ) => Ok(EventStream {
                imp: StreamImp::Csv(CsvStream {
                    reader: MultiFileLines::open_at(
                        files,
                        state.file as usize,
                        state.offset,
                        state.lineno,
                        *chunk,
                    )?,
                    row_fn,
                    heap: state.rows.iter().cloned().map(Reverse).collect(),
                    m_max: state.m_max,
                    exhausted: state.exhausted,
                    peak_open: state.rows.len(),
                }),
            }),
            _ => Err(FreedomError::InvalidArgument(
                "stream checkpoint does not belong to this trace kind".into(),
            )),
        }
    }

    /// Checkpoints positioned at each of `boundaries` (integer
    /// nanoseconds, non-decreasing): checkpoint `i` resumes at the first
    /// event with `event_nanos(at_secs) >= boundaries[i]` — exactly the
    /// position a sequential drain-to-boundary walk of `open()` reaches.
    /// This is the windowed replay's **checkpoint ladder** anchor pass.
    ///
    /// Synthetic traces derive all anchors sharded over `threads`
    /// workers: which arrivals a function has consumed at a time
    /// boundary depends only on that function's own stream, never on
    /// the merge interleaving, so per-function cursor walks compose
    /// into checkpoints bit-identical to the sequential walk's. CSV
    /// traces fall back to one sequential drain (the reader's lookahead
    /// window is inherently serial).
    pub fn checkpoints_at(
        &self,
        boundaries: &[u64],
        threads: usize,
    ) -> Result<Vec<StreamCheckpoint>> {
        debug_assert!(
            boundaries.windows(2).all(|w| w[0] <= w[1]),
            "ladder boundaries must be non-decreasing"
        );
        match &self.spec {
            StreamSpec::Synthetic {
                source,
                duration_secs,
                seed,
            } => {
                let per_fn = freedom_parallel::par_run(self.n_functions, threads, |f| {
                    let mut c = GenCursor::new(source, *duration_secs, stream_seed(*seed, f));
                    let mut pending = c.next_arrival();
                    let mut states = Vec::with_capacity(boundaries.len());
                    for &t in boundaries {
                        while pending.is_some_and(|p| event_nanos(p) < t) {
                            pending = c.next_arrival();
                        }
                        states.push((c.clone(), pending));
                    }
                    states
                });
                Ok((0..boundaries.len())
                    .map(|b| {
                        let mut cursors = Vec::with_capacity(self.n_functions);
                        let mut pending = Vec::with_capacity(self.n_functions);
                        for states in &per_fn {
                            cursors.push(states[b].0.clone());
                            pending.push(states[b].1);
                        }
                        StreamCheckpoint {
                            imp: CpImp::Merge { cursors, pending },
                        }
                    })
                    .collect())
            }
            StreamSpec::Csv { .. } => {
                let mut stream = self.open()?;
                let mut out = Vec::with_capacity(boundaries.len());
                for &t in boundaries {
                    while stream.peek().is_some_and(|e| event_nanos(e.at_secs) < t) {
                        stream.next();
                    }
                    out.push(stream.checkpoint());
                }
                Ok(out)
            }
        }
    }

    /// The escape hatch: builds the fully materialized [`Trace`] of the
    /// same specification. Tests diff the streaming pipeline against it;
    /// callers that need random access pay the O(events) memory
    /// knowingly.
    pub fn materialize(&self) -> Result<Trace> {
        match &self.spec {
            StreamSpec::Synthetic {
                source,
                duration_secs,
                seed,
            } => source.generate(self.n_functions, *duration_secs, *seed),
            StreamSpec::Csv { files, .. } => {
                let mut text = String::new();
                for (i, file) in files.iter().enumerate() {
                    let raw = match &file.bytes {
                        CsvBytes::Mem(data) => data.to_vec(),
                        CsvBytes::File(path) => std::fs::read(path).map_err(|e| {
                            FreedomError::InvalidArgument(format!(
                                "cannot read trace CSV {}: {e}",
                                path.display()
                            ))
                        })?,
                    };
                    let raw = if file.gz {
                        flate::gunzip(&raw).map_err(|e| {
                            qualify_err(
                                FreedomError::InvalidArgument(format!("trace CSV {e}")),
                                &file.label,
                            )
                        })?
                    } else {
                        raw
                    };
                    let mut part = std::str::from_utf8(&raw).map_err(|e| {
                        qualify_err(
                            FreedomError::InvalidArgument(format!("trace CSV {e}")),
                            &file.label,
                        )
                    })?;
                    // Each file may carry its own header (line 0, per
                    // the streaming grammar); the concatenation only
                    // tolerates one at the top, so strip the others with
                    // the exact same header-detection rule.
                    if i > 0 {
                        let first = part.lines().next().unwrap_or("");
                        if !first.trim().is_empty() && matches!(parse_csv_row(first, 0), Ok(None)) {
                            part = match part.split_once('\n') {
                                Some((_, rest)) => rest,
                                None => "",
                            };
                        }
                    }
                    if !text.is_empty() && !text.ends_with('\n') {
                        text.push('\n');
                    }
                    text.push_str(part);
                }
                TraceSource::from_csv(&text)
            }
        }
    }
}

/// A resumable position in an [`EventStream`] — cheap to clone, `Send`,
/// and `O(functions)` (synthetic) or `O(open rows)` (CSV) in size.
#[derive(Debug, Clone)]
pub struct StreamCheckpoint {
    imp: CpImp,
}

impl StreamCheckpoint {
    /// Serializes the checkpoint into a crash-resume snapshot
    /// ([`crate::snapshot`]): per-function generator states and pending
    /// events for synthetic traces, the file index and decompressed
    /// byte offset plus open rows for CSV ones. [`StreamCheckpoint::load`]
    /// restores a checkpoint that [`StreamTrace::open_at`] resumes to
    /// the identical suffix.
    pub(crate) fn save(&self, w: &mut crate::snapshot::Wire) {
        match &self.imp {
            CpImp::Merge { cursors, pending } => {
                w.u8(0);
                w.len(cursors.len());
                for c in cursors {
                    c.save(w);
                }
                debug_assert_eq!(pending.len(), cursors.len());
                for p in pending {
                    match p {
                        None => w.u8(0),
                        Some(t) => {
                            w.u8(1);
                            w.f64(*t);
                        }
                    }
                }
            }
            CpImp::Csv(s) => {
                w.u8(1);
                w.u32(s.file);
                w.u64(s.offset);
                w.u64(s.lineno as u64);
                w.u64(s.m_max);
                w.bool(s.exhausted);
                w.len(s.rows.len());
                for row in &s.rows {
                    w.u64(row.next_bits);
                    w.u32(row.function);
                    w.u64(row.minute);
                    w.u32(row.count);
                    w.u32(row.j);
                }
            }
        }
    }

    /// Restores a checkpoint serialized with [`StreamCheckpoint::save`].
    pub(crate) fn load(r: &mut crate::snapshot::Unwire) -> Result<Self> {
        let imp = match r.u8()? {
            0 => {
                let n = r.len()?;
                let mut cursors = Vec::with_capacity(n);
                for _ in 0..n {
                    cursors.push(GenCursor::load(r)?);
                }
                let mut pending = Vec::with_capacity(n);
                for _ in 0..n {
                    pending.push(match r.u8()? {
                        0 => None,
                        1 => Some(r.f64()?),
                        tag => {
                            return Err(FreedomError::InvalidArgument(format!(
                                "snapshot: invalid pending-event tag {tag}"
                            )))
                        }
                    });
                }
                CpImp::Merge { cursors, pending }
            }
            1 => {
                let file = r.u32()?;
                let offset = r.u64()?;
                let lineno = r.u64()? as usize;
                let m_max = r.u64()?;
                let exhausted = r.bool()?;
                let n = r.len()?;
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    rows.push(OpenRow {
                        next_bits: r.u64()?,
                        function: r.u32()?,
                        minute: r.u64()?,
                        count: r.u32()?,
                        j: r.u32()?,
                    });
                }
                CpImp::Csv(CsvState {
                    file,
                    offset,
                    lineno,
                    m_max,
                    rows,
                    exhausted,
                })
            }
            tag => {
                return Err(FreedomError::InvalidArgument(format!(
                    "snapshot: unknown stream-checkpoint tag {tag}"
                )))
            }
        };
        Ok(Self { imp })
    }
}

#[derive(Debug, Clone)]
enum CpImp {
    Merge {
        cursors: Vec<GenCursor>,
        pending: Vec<Option<f64>>,
    },
    Csv(CsvState),
}

/// The CSV reader's resumable state.
#[derive(Debug, Clone)]
struct CsvState {
    /// Index of the file holding the first unread line.
    file: u32,
    /// Decompressed byte offset of that line within its file.
    offset: u64,
    /// 0-based index of that line within its file.
    lineno: usize,
    m_max: u64,
    rows: Vec<OpenRow>,
    exhausted: bool,
}

/// A lazily-merged view of one trace's events, in the materialized
/// order: time ascending, ties broken by lower function index.
pub struct EventStream<'a> {
    imp: StreamImp<'a>,
}

// One `EventStream` lives per replay, so the size spread between the
// generator merge and the CSV reader is irrelevant — boxing would only
// add a pointer hop to the per-event dispatch.
#[allow(clippy::large_enum_variant)]
enum StreamImp<'a> {
    Merge(MergeStream),
    Csv(CsvStream<'a>),
}

impl<'a> EventStream<'a> {
    /// The next event without consuming it. May read ahead (CSV rows,
    /// generator draws) but never emits.
    pub fn peek(&mut self) -> Option<TraceEvent> {
        match &mut self.imp {
            StreamImp::Merge(m) => m.peek(),
            StreamImp::Csv(c) => c.ready(),
        }
    }

    /// Consumes and returns the next event.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<TraceEvent> {
        match &mut self.imp {
            StreamImp::Merge(m) => m.next(),
            StreamImp::Csv(c) => c.next(),
        }
    }

    /// Captures the current position for [`StreamTrace::open_at`].
    pub fn checkpoint(&self) -> StreamCheckpoint {
        match &self.imp {
            StreamImp::Merge(m) => StreamCheckpoint {
                imp: CpImp::Merge {
                    cursors: m.cursors.clone(),
                    pending: m.pending.clone(),
                },
            },
            StreamImp::Csv(c) => StreamCheckpoint {
                imp: CpImp::Csv(CsvState {
                    file: c.reader.file_idx() as u32,
                    offset: c.reader.offset(),
                    lineno: c.reader.lineno(),
                    m_max: c.m_max,
                    rows: c.heap.iter().map(|Reverse(r)| *r).collect(),
                    exhausted: c.exhausted,
                }),
            },
        }
    }

    /// Draining iterator over the remaining events.
    pub fn events<'s>(&'s mut self) -> impl Iterator<Item = TraceEvent> + use<'s, 'a> {
        std::iter::from_fn(move || self.next())
    }

    /// Peak number of events this stream ever held resident: one pending
    /// arrival per cursor (synthetic) or the open rows of the lookahead
    /// window (CSV). The "cursor lookahead" term of the replay's
    /// peak-memory bound.
    pub fn peak_resident(&self) -> usize {
        match &self.imp {
            StreamImp::Merge(m) => m.cursors.len(),
            StreamImp::Csv(c) => c.peak_open,
        }
    }
}

/// K-way heap merge over per-function generator cursors — the lazy
/// equivalent of `Trace::from_streams`, with the identical
/// `(time bits, function index)` heap key and tie-break.
struct MergeStream {
    cursors: Vec<GenCursor>,
    /// Each cursor's generated-but-unconsumed arrival; mirrors the heap
    /// so checkpoints can capture it without draining.
    pending: Vec<Option<f64>>,
    heap: BinaryHeap<Reverse<(u64, usize)>>,
}

impl MergeStream {
    fn new(cursors: Vec<GenCursor>, pending: Vec<Option<f64>>) -> Self {
        let heap = pending
            .iter()
            .enumerate()
            .filter_map(|(f, &t)| t.map(|t| Reverse((t.to_bits(), f))))
            .collect();
        Self {
            cursors,
            pending,
            heap,
        }
    }

    fn peek(&self) -> Option<TraceEvent> {
        self.heap.peek().map(|&Reverse((bits, f))| TraceEvent {
            at_secs: f64::from_bits(bits),
            function: f,
        })
    }

    fn next(&mut self) -> Option<TraceEvent> {
        let mut top = self.heap.peek_mut()?;
        let Reverse((bits, f)) = *top;
        let refill = self.cursors[f].next_arrival();
        self.pending[f] = refill;
        // Replace-top + one sift instead of pop + push: the refilled
        // cursor usually stays near the front, so this halves the heap
        // work on the hot path.
        match refill {
            Some(t) => *top = Reverse((t.to_bits(), f)),
            None => {
                std::collections::binary_heap::PeekMut::pop(top);
            }
        }
        Some(TraceEvent {
            at_secs: f64::from_bits(bits),
            function: f,
        })
    }
}

/// One partially-emitted CSV row in the reader's lookahead window.
///
/// Ordering is by `(next event time bits, function, minute, count,
/// progress)` — the first two fields reproduce the merge tie-break;
/// the rest only make the order total (equal-keyed rows emit identical
/// events, so their relative order is unobservable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct OpenRow {
    next_bits: u64,
    function: u32,
    minute: u64,
    count: u32,
    j: u32,
}

/// Parses the trailing `,minute,count` of a scan-validated data row
/// without splitting, trimming, or revalidating the leading string
/// columns. Returns `None` when either field is not a plain unsigned
/// integer (header row, blank line) — the caller falls back to the
/// shared validating parser for those.
#[inline]
fn fast_minute_count(bytes: &[u8]) -> Option<(u64, u64)> {
    let mut last = None;
    let mut second = None;
    for i in (0..bytes.len()).rev() {
        if bytes[i] == b',' {
            match last {
                None => last = Some(i),
                Some(_) => {
                    second = Some(i);
                    break;
                }
            }
        }
    }
    let (m_start, c_start) = (second?, last?);
    let minute = parse_u64_trimmed(&bytes[m_start + 1..c_start])?;
    let count = parse_u64_trimmed(&bytes[c_start + 1..])?;
    if count > crate::trace::MAX_COUNT_PER_MINUTE {
        // Scan-validated rows never exceed the cap; route changed bytes
        // to the validating parser so they fail loudly.
        return None;
    }
    Some((minute, count))
}

/// `u64` from ASCII digits with surrounding spaces/tabs/CR allowed,
/// mirroring the `str::trim` + `parse` the validating parser applies
/// per column; `None` on anything else (including overflow).
#[inline]
fn parse_u64_trimmed(mut s: &[u8]) -> Option<u64> {
    while let [b' ' | b'\t' | b'\r', rest @ ..] = s {
        s = rest;
    }
    while let [rest @ .., b' ' | b'\t' | b'\r'] = s {
        s = rest;
    }
    if s.is_empty() {
        return None;
    }
    let mut v: u64 = 0;
    for &c in s {
        if !c.is_ascii_digit() {
            return None;
        }
        v = v.checked_mul(10)?.checked_add(u64::from(c - b'0'))?;
    }
    Some(v)
}

/// Line-by-line CSV event source with bounded minute lookahead.
struct CsvStream<'a> {
    reader: MultiFileLines<'a>,
    /// Dense per-file line → function tables from the scan pass: the
    /// replay resolves a row's function with one array load.
    row_fn: &'a [Vec<u32>],
    heap: BinaryHeap<Reverse<OpenRow>>,
    /// Highest minute seen so far (across file seams); events before
    /// `60·(m_max − lookahead)` can no longer be preempted by unread
    /// rows and are safe to emit.
    m_max: u64,
    exhausted: bool,
    peak_open: usize,
}

impl CsvStream<'_> {
    fn frontier_secs(&self) -> f64 {
        self.m_max.saturating_sub(CSV_LOOKAHEAD_MINUTES) as f64 * 60.0
    }

    /// Reads rows until the heap top is safe to emit (or input ends);
    /// returns it without consuming.
    fn ready(&mut self) -> Option<TraceEvent> {
        loop {
            if let Some(Reverse(top)) = self.heap.peek() {
                let t = f64::from_bits(top.next_bits);
                if self.exhausted || t < self.frontier_secs() {
                    return Some(TraceEvent {
                        at_secs: t,
                        function: top.function as usize,
                    });
                }
            } else if self.exhausted {
                return None;
            }
            self.read_row();
        }
    }

    fn next(&mut self) -> Option<TraceEvent> {
        let event = self.ready()?;
        let mut top = self.heap.peek_mut().expect("ready implies a top");
        let row = &mut top.0;
        row.j += 1;
        if row.j < row.count {
            // Re-key in place: dropping the guard sifts once, versus the
            // two full heap walks of a pop + push. Emission order cannot
            // change — the heap's order is total (ties only between
            // entries that would emit identical events), so the minimum
            // popped next is the same whichever way the tree rebalances.
            row.next_bits = minute_event(row.minute, row.j as u64, row.count as u64).to_bits();
        } else {
            std::collections::binary_heap::PeekMut::pop(top);
        }
        Some(event)
    }

    /// Reads one more row into the lookahead window. The scan pass
    /// already validated the whole input, so a failure here means the
    /// bytes changed between scan and replay — an environment error the
    /// replay cannot recover from mid-simulation.
    fn read_row(&mut self) {
        let line = self
            .reader
            .next_line()
            .expect("trace CSV changed between scan and replay");
        let Some((lineno, line)) = line else {
            self.exhausted = true;
            return;
        };
        // The replay only needs the numeric columns — the function index
        // comes from the scan's dense table — so parse `minute,count`
        // straight off the last two comma-separated fields. Anything the
        // fast path cannot read numerically (the header, blank lines)
        // goes through the shared validating parser, which classifies it
        // exactly as the scan pass did or panics on changed bytes.
        let (minute, count) = match fast_minute_count(line.as_bytes()) {
            Some(mc) => mc,
            None => {
                let Some(row) =
                    parse_csv_row(line, lineno).expect("trace CSV validated at scan time")
                else {
                    return;
                };
                (row.minute, row.count)
            }
        };
        assert!(
            minute.saturating_add(CSV_LOOKAHEAD_MINUTES) >= self.m_max,
            "trace CSV changed between scan and replay: line {} breaks the lookahead bound",
            lineno + 1
        );
        self.m_max = self.m_max.max(minute);
        if count == 0 {
            return;
        }
        let function = self.row_fn[self.reader.file_idx()][lineno];
        debug_assert_ne!(
            function,
            u32::MAX,
            "trace CSV validated at scan time: line {} is a data row",
            lineno + 1
        );
        self.heap.push(Reverse(OpenRow {
            next_bits: minute_event(minute, 0, count).to_bits(),
            function,
            minute,
            count: count as u32,
            j: 0,
        }));
        self.peak_open = self.peak_open.max(self.heap.len());
    }
}

/// Sequential line reader over a file list: drains one [`ChunkedLines`]
/// per file, advancing across seams transparently. Line numbers and
/// byte offsets are per-file, so checkpoints record `(file, offset,
/// lineno)` and errors attribute the exact file.
struct MultiFileLines<'a> {
    files: &'a [CsvFile],
    chunk: usize,
    file_idx: usize,
    cur: ChunkedLines,
}

impl<'a> MultiFileLines<'a> {
    fn open_at(
        files: &'a [CsvFile],
        file_idx: usize,
        offset: u64,
        lineno: usize,
        chunk: usize,
    ) -> Result<Self> {
        let Some(file) = files.get(file_idx) else {
            return Err(FreedomError::InvalidArgument(format!(
                "stream checkpoint points at file {file_idx} of a {}-file trace",
                files.len()
            )));
        };
        Ok(Self {
            files,
            chunk,
            file_idx,
            cur: ChunkedLines::open(file, offset, lineno, chunk, true)?,
        })
    }

    fn file_idx(&self) -> usize {
        self.file_idx
    }

    /// Decompressed byte offset of the next unread line in its file.
    fn offset(&self) -> u64 {
        self.cur.offset()
    }

    /// 0-based line number of the next unread line in its file.
    fn lineno(&self) -> usize {
        self.cur.lineno()
    }

    /// The next `(per-file lineno, line)` across all files, or `None`
    /// after the last line of the last file.
    fn next_line(&mut self) -> Result<Option<(usize, &str)>> {
        loop {
            if self.cur.fill_line()? {
                break;
            }
            if self.file_idx + 1 >= self.files.len() {
                return Ok(None);
            }
            self.file_idx += 1;
            self.cur = ChunkedLines::open(&self.files[self.file_idx], 0, 0, self.chunk, true)?;
        }
        self.cur.take_line().map(Some)
    }
}

/// The decompressed-byte feed behind a [`ChunkedLines`].
enum ChunkSrc {
    Mem {
        data: Arc<[u8]>,
        read: usize,
    },
    File(std::fs::File),
    /// Synchronous gzip decode (in-memory inputs and mid-file resumes).
    /// Boxed: the inflater's window dwarfs the other variants, and the
    /// feed is touched once per chunk, not per event.
    Gz(Box<GzFeed>),
    /// Gzip decode on a reader thread, bounded by the channel depth —
    /// decompression overlaps parsing and replay.
    GzAhead(ReadAhead),
}

/// Raw (compressed) byte source for the inflater.
type ByteSrc = Box<dyn FnMut(&mut [u8]) -> std::result::Result<usize, String> + Send>;

fn raw_src(bytes: &CsvBytes) -> Result<ByteSrc> {
    match bytes {
        CsvBytes::Mem(data) => {
            let data = Arc::clone(data);
            let mut read = 0usize;
            Ok(Box::new(move |buf: &mut [u8]| {
                let n = (data.len() - read).min(buf.len());
                buf[..n].copy_from_slice(&data[read..read + n]);
                read += n;
                Ok(n)
            }))
        }
        CsvBytes::File(path) => {
            let mut file = std::fs::File::open(path).map_err(|e| {
                FreedomError::InvalidArgument(format!(
                    "cannot read trace CSV {}: {e}",
                    path.display()
                ))
            })?;
            Ok(Box::new(move |buf: &mut [u8]| {
                file.read(buf).map_err(|e| e.to_string())
            }))
        }
    }
}

struct GzFeed {
    reader: flate::GzReader<ByteSrc>,
    done: bool,
}

impl GzFeed {
    fn new(bytes: &CsvBytes) -> Result<Self> {
        Ok(Self {
            reader: flate::GzReader::new(raw_src(bytes)?),
            done: false,
        })
    }

    /// Decompresses and discards `offset` bytes (a checkpoint re-seek
    /// into the middle of a gzip member has to re-inflate its prefix);
    /// returns any decompressed bytes read past the offset.
    fn skip(&mut self, offset: u64, chunk: usize) -> std::result::Result<Vec<u8>, String> {
        let mut consumed = 0u64;
        let mut scratch = Vec::new();
        while consumed < offset {
            scratch.clear();
            let more = self
                .reader
                .read_chunk(&mut scratch, chunk)
                .map_err(|e| e.to_string())?;
            let got = scratch.len() as u64;
            if consumed + got > offset {
                let keep = (consumed + got - offset) as usize;
                return Ok(scratch.split_off(scratch.len() - keep));
            }
            consumed += got;
            if !more {
                self.done = true;
                if consumed < offset {
                    return Err(format!(
                        "resume offset {offset} is beyond the decompressed stream \
                         ({consumed} bytes)"
                    ));
                }
            }
        }
        Ok(Vec::new())
    }
}

/// Bounded read-ahead: a reader thread inflates the file into a
/// [`READAHEAD_DEPTH`]-deep channel of decompressed chunks. Dropping
/// the receiver unblocks and joins the thread.
struct ReadAhead {
    rx: Option<std::sync::mpsc::Receiver<std::result::Result<Vec<u8>, String>>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ReadAhead {
    fn spawn(src: ByteSrc) -> Self {
        let (tx, rx) = std::sync::mpsc::sync_channel(READAHEAD_DEPTH);
        let handle = std::thread::spawn(move || {
            let mut reader = flate::GzReader::new(src);
            loop {
                let mut out = Vec::with_capacity(READAHEAD_CHUNK + 512);
                match reader.read_chunk(&mut out, READAHEAD_CHUNK) {
                    Ok(more) => {
                        if !out.is_empty() && tx.send(Ok(out)).is_err() {
                            return;
                        }
                        if !more {
                            return;
                        }
                    }
                    Err(e) => {
                        let _ = tx.send(Err(e.to_string()));
                        return;
                    }
                }
            }
        });
        Self {
            rx: Some(rx),
            handle: Some(handle),
        }
    }

    fn recv(&mut self) -> Option<std::result::Result<Vec<u8>, String>> {
        self.rx.as_ref().and_then(|rx| rx.recv().ok())
    }
}

impl Drop for ReadAhead {
    fn drop(&mut self) {
        self.rx.take();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Chunked line reader over in-memory, file-backed, or gzip'd bytes:
/// reads fixed-size chunks, assembles lines across chunk boundaries,
/// and tracks the (decompressed) byte offset and 0-based line number of
/// the next unread line so checkpoints can re-seek exactly. Lines are
/// borrowed from the internal buffer — the steady-state read path
/// allocates nothing per line.
struct ChunkedLines {
    src: ChunkSrc,
    /// Bytes read but not yet emitted as lines; `buf[..pos]` is
    /// consumed.
    buf: Vec<u8>,
    pos: usize,
    /// Absolute (decompressed) offset of `buf[pos]`.
    offset: u64,
    lineno: usize,
    chunk: usize,
    eof: bool,
    label: String,
    /// Located but unconsumed line: `(end, newline bytes to skip)`.
    ready: Option<(usize, usize)>,
}

impl ChunkedLines {
    fn open(
        file: &CsvFile,
        offset: u64,
        lineno: usize,
        chunk: usize,
        read_ahead: bool,
    ) -> Result<Self> {
        let mut buf = Vec::new();
        let src = if file.gz {
            let file_backed = matches!(file.bytes, CsvBytes::File(_));
            if offset == 0 && read_ahead && file_backed {
                ChunkSrc::GzAhead(ReadAhead::spawn(raw_src(&file.bytes)?))
            } else {
                let mut feed = GzFeed::new(&file.bytes)?;
                if offset > 0 {
                    buf = feed.skip(offset, chunk.max(1)).map_err(|msg| {
                        FreedomError::InvalidArgument(format!(
                            "{}: {msg}",
                            csv_line_prefix(&file.label, lineno)
                        ))
                    })?;
                }
                ChunkSrc::Gz(Box::new(feed))
            }
        } else {
            match &file.bytes {
                CsvBytes::Mem(data) => ChunkSrc::Mem {
                    data: Arc::clone(data),
                    read: (offset as usize).min(data.len()),
                },
                CsvBytes::File(path) => {
                    let mut f = std::fs::File::open(path).map_err(|e| {
                        FreedomError::InvalidArgument(format!(
                            "cannot read trace CSV {}: {e}",
                            path.display()
                        ))
                    })?;
                    f.seek(SeekFrom::Start(offset)).map_err(|e| {
                        FreedomError::InvalidArgument(format!(
                            "cannot seek trace CSV {}: {e}",
                            path.display()
                        ))
                    })?;
                    ChunkSrc::File(f)
                }
            }
        };
        Ok(Self {
            src,
            buf,
            pos: 0,
            offset,
            lineno,
            chunk: chunk.max(1),
            eof: false,
            label: file.label.clone(),
            ready: None,
        })
    }

    /// (Decompressed) byte offset of the next unread line.
    fn offset(&self) -> u64 {
        self.offset
    }

    /// 0-based index of the next unread line.
    fn lineno(&self) -> usize {
        self.lineno
    }

    /// Locates the next line without consuming it; `false` at end of
    /// input. Idempotent until [`ChunkedLines::take_line`].
    fn fill_line(&mut self) -> Result<bool> {
        if self.ready.is_some() {
            return Ok(true);
        }
        loop {
            if let Some(nl) = self.buf[self.pos..].iter().position(|&b| b == b'\n') {
                self.ready = Some((self.pos + nl, 1));
                return Ok(true);
            }
            if self.eof {
                if self.pos < self.buf.len() {
                    self.ready = Some((self.buf.len(), 0));
                    return Ok(true);
                }
                return Ok(false);
            }
            self.refill()?;
        }
    }

    /// Consumes the line located by [`ChunkedLines::fill_line`],
    /// borrowing it from the internal buffer (no per-line allocation).
    /// The final line may lack a trailing newline, exactly like
    /// `str::lines`; a `\r` before the newline is stripped.
    fn take_line(&mut self) -> Result<(usize, &str)> {
        let (end, skip) = self.ready.take().expect("fill_line located a line");
        let mut bytes = &self.buf[self.pos..end];
        if skip > 0 && bytes.last() == Some(&b'\r') {
            bytes = &bytes[..bytes.len() - 1];
        }
        let lineno = self.lineno;
        self.offset += (end + skip - self.pos) as u64;
        let start = self.pos;
        self.pos = end + skip;
        self.lineno += 1;
        let line = std::str::from_utf8(&self.buf[start..start + bytes.len()]).map_err(|e| {
            FreedomError::InvalidArgument(format!(
                "{}: invalid UTF-8: {e}",
                csv_line_prefix(&self.label, lineno)
            ))
        })?;
        Ok((lineno, line))
    }

    /// Convenience for scan loops: locate and consume in one call.
    fn next_line(&mut self) -> Result<Option<(usize, &str)>> {
        if !self.fill_line()? {
            return Ok(None);
        }
        self.take_line().map(Some)
    }

    fn gz_err(&self, msg: &str) -> FreedomError {
        FreedomError::InvalidArgument(format!(
            "{} near line {}: {msg}",
            if self.label.is_empty() {
                "trace CSV".to_string()
            } else {
                format!("trace CSV {}", self.label)
            },
            self.lineno + 1
        ))
    }

    fn refill(&mut self) -> Result<()> {
        // Drop the consumed prefix before growing the carry.
        self.buf.drain(..self.pos);
        self.pos = 0;
        match &mut self.src {
            ChunkSrc::Mem { data, read } => {
                let take = self.chunk.min(data.len() - *read);
                self.buf.extend_from_slice(&data[*read..*read + take]);
                *read += take;
                if take == 0 {
                    self.eof = true;
                }
            }
            ChunkSrc::File(file) => {
                let start = self.buf.len();
                self.buf.resize(start + self.chunk, 0);
                let n = file
                    .read(&mut self.buf[start..])
                    .map_err(|e| FreedomError::InvalidArgument(format!("trace CSV read: {e}")))?;
                self.buf.truncate(start + n);
                if n == 0 {
                    self.eof = true;
                }
            }
            ChunkSrc::Gz(feed) => {
                if feed.done {
                    self.eof = true;
                } else {
                    let before = self.buf.len();
                    let chunk = self.chunk;
                    let more = match feed.reader.read_chunk(&mut self.buf, chunk) {
                        Ok(more) => more,
                        Err(e) => {
                            let msg = e.to_string();
                            return Err(self.gz_err(&msg));
                        }
                    };
                    if !more {
                        feed.done = true;
                        if self.buf.len() == before {
                            self.eof = true;
                        }
                    }
                }
            }
            ChunkSrc::GzAhead(ahead) => match ahead.recv() {
                None => self.eof = true,
                Some(Ok(bytes)) => self.buf.extend_from_slice(&bytes),
                Some(Err(msg)) => return Err(self.gz_err(&msg)),
            },
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flate::{gzip_compress, CompressMode};

    const SOURCES: [TraceSource; 4] = [
        TraceSource::Poisson {
            rps_per_function: 0.8,
        },
        TraceSource::Bursty {
            calm_rps: 0.2,
            burst_rps: 4.0,
            mean_calm_secs: 40.0,
            mean_burst_secs: 5.0,
        },
        TraceSource::Diurnal {
            mean_rps: 0.8,
            peak_to_trough: 4.0,
            period_secs: 120.0,
        },
        TraceSource::HeavyTail {
            mean_rps: 0.8,
            alpha: 1.5,
        },
    ];

    const AZURE_FIXTURE: &str = include_str!("../testdata/azure_sample.csv");
    /// Golden gzip fixture: `azure_sample.csv` compressed with a
    /// reference implementation (dynamic-Huffman blocks) — known bytes
    /// that must decode to known rows.
    const AZURE_FIXTURE_GZ: &[u8] = include_bytes!("../testdata/azure_sample.csv.gz");

    fn drain(stream: &mut EventStream<'_>) -> Vec<TraceEvent> {
        stream.events().collect()
    }

    #[test]
    fn every_source_streams_the_materialized_events_bit_for_bit() {
        for source in SOURCES {
            let lazy = StreamTrace::generate(source, 10, 200.0, 7).unwrap();
            let full = lazy.materialize().unwrap();
            assert_eq!(lazy.n_functions(), full.n_functions(), "{source:?}");
            assert_eq!(lazy.len(), full.len(), "{source:?}");
            assert_eq!(
                lazy.horizon_nanos(),
                event_nanos(full.events().last().unwrap().at_secs),
                "{source:?}"
            );
            let events = drain(&mut lazy.open().unwrap());
            assert_eq!(events.as_slice(), full.events(), "{source:?}");
            // The scan pass fans out bit-identically.
            let sharded = StreamTrace::generate_sharded(source, 10, 200.0, 7, 8).unwrap();
            assert_eq!(sharded.len(), lazy.len());
            assert_eq!(sharded.horizon_nanos(), lazy.horizon_nanos());
        }
    }

    #[test]
    fn checkpoints_replay_identical_suffixes() {
        let lazy = StreamTrace::generate(SOURCES[3], 6, 120.0, 3).unwrap();
        let mut stream = lazy.open().unwrap();
        let all = drain(&mut lazy.open().unwrap());
        for split in [0usize, 1, 7, all.len() - 1, all.len()] {
            let mut stream2 = lazy.open().unwrap();
            for _ in 0..split {
                stream2.next();
            }
            let cp = stream2.checkpoint();
            // Rewind twice: the checkpoint is reusable, not consumed.
            for _ in 0..2 {
                let suffix = drain(&mut lazy.open_at(&cp).unwrap());
                assert_eq!(suffix.as_slice(), &all[split..], "split at {split}");
            }
        }
        // A checkpoint taken after peeking is position-identical to one
        // taken before.
        stream.next();
        let before = stream.checkpoint();
        stream.peek();
        let after = stream.checkpoint();
        assert_eq!(
            drain(&mut lazy.open_at(&before).unwrap()),
            drain(&mut lazy.open_at(&after).unwrap()),
        );
    }

    #[test]
    fn sharded_boundary_checkpoints_match_the_sequential_walk() {
        // The ladder pass (`checkpoints_at`) must produce checkpoints
        // whose suffixes are bit-identical to those of a sequential
        // drain-to-boundary walk — for synthetic shards and the serial
        // CSV fallback alike.
        let window = event_nanos(25.0);
        let traces = [
            StreamTrace::generate(SOURCES[1], 6, 120.0, 9).unwrap(),
            StreamTrace::from_csv(AZURE_FIXTURE).unwrap(),
        ];
        for lazy in traces {
            let boundaries: Vec<u64> = (0..6).map(|k| k * window).collect();
            // Reference: one sequential walk over the merged stream.
            let mut stream = lazy.open().unwrap();
            let mut reference = Vec::new();
            for &t in &boundaries {
                while stream.peek().is_some_and(|e| event_nanos(e.at_secs) < t) {
                    stream.next();
                }
                reference.push(stream.checkpoint());
            }
            for threads in [1, 4] {
                let ladder = lazy.checkpoints_at(&boundaries, threads).unwrap();
                assert_eq!(ladder.len(), reference.len());
                for (k, (a, b)) in ladder.iter().zip(&reference).enumerate() {
                    let ours = drain(&mut lazy.open_at(a).unwrap());
                    let theirs = drain(&mut lazy.open_at(b).unwrap());
                    assert_eq!(ours, theirs, "boundary {k}, threads {threads}");
                }
            }
        }
    }

    #[test]
    fn csv_stream_matches_materialized_reader() {
        for chunk in [3usize, 17, 64 * 1024] {
            let lazy = StreamTrace::from_csv_chunked(AZURE_FIXTURE, chunk).unwrap();
            let full = TraceSource::from_csv(AZURE_FIXTURE).unwrap();
            assert_eq!(lazy.n_functions(), 6);
            assert_eq!(lazy.len(), 113);
            assert_eq!(
                lazy.horizon_nanos(),
                event_nanos(full.events().last().unwrap().at_secs)
            );
            let events = drain(&mut lazy.open().unwrap());
            assert_eq!(events.as_slice(), full.events(), "chunk {chunk}");
            // Mid-stream checkpoints re-seek exactly, and the lookahead
            // stays bounded by the open rows.
            let mut stream = lazy.open().unwrap();
            for _ in 0..40 {
                stream.next();
            }
            let cp = stream.checkpoint();
            let suffix = drain(&mut lazy.open_at(&cp).unwrap());
            assert_eq!(suffix.as_slice(), &events[40..]);
            assert!(lazy.open().unwrap().peak_resident() <= AZURE_FIXTURE.lines().count());
        }
    }

    #[test]
    fn csv_negative_paths_report_accurate_line_numbers() {
        let err = |csv: &str, chunk: usize| match StreamTrace::from_csv_chunked(csv, chunk) {
            Err(FreedomError::InvalidArgument(msg)) => msg,
            other => panic!("expected InvalidArgument, got {other:?}"),
        };
        // A truncated final line — the file ends mid-record, no trailing
        // newline — is a malformed row at its own line number, even when
        // the chunk boundary lands inside it.
        for chunk in [1usize, 4, 1 << 16] {
            let msg = err("a,f,0,3\nb,g,1,2\na,f,2", chunk);
            assert!(msg.contains("line 3"), "chunk {chunk}: {msg}");
            assert!(msg.contains("4 columns"), "chunk {chunk}: {msg}");
        }
        // A record split mid-field across a chunk boundary still parses
        // as one line; when malformed, the error names that line.
        for chunk in 1..12 {
            let msg = err("a,f,0,3\na,f,1,not-a-count\na,f,2,1\n", chunk);
            assert!(msg.contains("line 2"), "chunk {chunk}: {msg}");
        }
        // Functions interleaved out of minute order across chunk
        // boundaries stream fine within the lookahead bound...
        let ok = "a,f,9,1\nb,g,2,1\na,f,10,1\n";
        let lazy = StreamTrace::from_csv_chunked(ok, 5).unwrap();
        let full = TraceSource::from_csv(ok).unwrap();
        assert_eq!(drain(&mut lazy.open().unwrap()).as_slice(), full.events());
        // ...but beyond it the scan rejects the file with the offending
        // line, while the materialized reader still accepts it.
        let disordered = "a,f,30,1\nb,g,2,1\n";
        let msg = err(disordered, 4);
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("lookahead"), "{msg}");
        assert!(TraceSource::from_csv(disordered).is_ok());
        // Scan-time grammar errors match the materialized reader's.
        assert!(StreamTrace::from_csv("").is_err());
        assert!(StreamTrace::from_csv("app,func,minute,count\n").is_err());
        assert!(StreamTrace::from_csv("a,f,0,1000001\n").is_err());
        assert!(StreamTrace::from_csv_path("/nonexistent/trace.csv").is_err());
    }

    #[test]
    fn csv_streaming_handles_headers_zero_counts_and_crlf() {
        // Header skipped, zero-count rows register their function, CRLF
        // endings tolerated — all matching the materialized reader.
        let csv = "app,func,minute,count\r\na,f,0,3\r\nb,g,1,0\r\n";
        let lazy = StreamTrace::from_csv(csv).unwrap();
        assert_eq!(lazy.n_functions(), 2);
        assert_eq!(lazy.len(), 3);
        let full = TraceSource::from_csv(csv).unwrap();
        assert_eq!(drain(&mut lazy.open().unwrap()).as_slice(), full.events());
        // An empty trace of registered functions is well-formed.
        let empty = StreamTrace::from_csv("a,f,0,0\n").unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.horizon_nanos(), 0);
        assert!(drain(&mut empty.open().unwrap()).is_empty());
    }

    #[test]
    fn file_backed_streams_checkpoint_and_reopen() {
        let dir = std::env::temp_dir().join(format!("freedom_stream_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("azure.csv");
        std::fs::write(&path, AZURE_FIXTURE).unwrap();
        let lazy = StreamTrace::from_csv_path(&path).unwrap();
        let full = TraceSource::from_csv_path(&path).unwrap();
        let events = drain(&mut lazy.open().unwrap());
        assert_eq!(events.as_slice(), full.events());
        let mut stream = lazy.open().unwrap();
        for _ in 0..25 {
            stream.next();
        }
        let cp = stream.checkpoint();
        assert_eq!(
            drain(&mut lazy.open_at(&cp).unwrap()).as_slice(),
            &events[25..]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_kind_mismatch_is_rejected() {
        let synthetic = StreamTrace::generate(SOURCES[0], 3, 30.0, 1).unwrap();
        let csv = StreamTrace::from_csv("a,f,0,2\n").unwrap();
        let cp = synthetic.open().unwrap().checkpoint();
        assert!(csv.open_at(&cp).is_err());
        let cp = csv.open().unwrap().checkpoint();
        assert!(synthetic.open_at(&cp).is_err());
    }

    // ---- gzip and multi-file ingestion ------------------------------

    #[test]
    fn golden_gz_fixture_decodes_to_known_rows() {
        // Known bytes → known rows: the checked-in gzip fixture must
        // replay exactly like its plain-text source, through both the
        // file-backed and in-memory paths.
        let plain = StreamTrace::from_csv(AZURE_FIXTURE).unwrap();
        let reference = drain(&mut plain.open().unwrap());
        let gz = StreamTrace::from_csv_gz_bytes(AZURE_FIXTURE_GZ).unwrap();
        assert_eq!(gz.n_functions(), plain.n_functions());
        assert_eq!(gz.len(), plain.len());
        assert_eq!(gz.horizon_nanos(), plain.horizon_nanos());
        assert_eq!(drain(&mut gz.open().unwrap()), reference);
        let dir = std::env::temp_dir().join(format!("freedom_gz_golden_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("azure.csv.gz");
        std::fs::write(&path, AZURE_FIXTURE_GZ).unwrap();
        let from_file = StreamTrace::from_csv_gz(&path).unwrap();
        assert_eq!(drain(&mut from_file.open().unwrap()), reference);
        // Auto-detection picks the gz path too.
        let detected = StreamTrace::from_csv_path(&path).unwrap();
        assert_eq!(drain(&mut detected.open().unwrap()), reference);
        // And the materialized escape hatch agrees.
        let full = from_file.materialize().unwrap();
        assert_eq!(reference.as_slice(), full.events());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gz_streams_match_plain_for_both_compress_modes() {
        for mode in [CompressMode::Stored, CompressMode::FixedHuffman] {
            let gz_bytes = gzip_compress(AZURE_FIXTURE.as_bytes(), mode);
            let gz = StreamTrace::from_csv_gz_bytes(&gz_bytes).unwrap();
            let plain = StreamTrace::from_csv(AZURE_FIXTURE).unwrap();
            let reference = drain(&mut plain.open().unwrap());
            assert_eq!(drain(&mut gz.open().unwrap()), reference, "{mode:?}");
            // Checkpoints into the middle of the gzip stream re-seek by
            // re-inflating the prefix.
            let mut stream = gz.open().unwrap();
            for _ in 0..50 {
                stream.next();
            }
            let cp = stream.checkpoint();
            assert_eq!(
                drain(&mut gz.open_at(&cp).unwrap()).as_slice(),
                &reference[50..],
                "{mode:?}"
            );
        }
    }

    #[test]
    fn gz_negative_paths_are_file_qualified_and_line_accurate() {
        let gz = gzip_compress(AZURE_FIXTURE.as_bytes(), CompressMode::FixedHuffman);
        let err = |bytes: &[u8]| match StreamTrace::from_csv_gz_bytes(bytes) {
            Err(FreedomError::InvalidArgument(msg)) => msg,
            other => panic!("expected InvalidArgument, got {other:?}"),
        };
        // Garbage member header: from_csv_gz* requires a gzip member.
        let msg = err(b"app,func,minute,count\na,f,0,1\n");
        assert!(msg.contains("bad gzip member header"), "{msg}");
        assert!(msg.contains("near line 1"), "{msg}");
        // Truncated stream: decode dies mid-file with the line reached.
        let msg = err(&gz[..gz.len() / 2]);
        assert!(msg.contains("truncated gzip stream"), "{msg}");
        assert!(msg.contains("near line"), "{msg}");
        // Bad CRC: the trailer check fires after the last line.
        let mut bad_crc = gz.clone();
        let n = bad_crc.len();
        bad_crc[n - 6] ^= 0xff;
        let msg = err(&bad_crc);
        assert!(msg.contains("CRC mismatch"), "{msg}");
        // Corrupt block: an invalid symbol inside the deflate stream.
        let mut corrupt = gz.clone();
        for b in corrupt.iter_mut().skip(20).take(16) {
            *b = 0xff;
        }
        let res = StreamTrace::from_csv_gz_bytes(&corrupt);
        assert!(res.is_err(), "corrupted block must not scan cleanly");
        // File-backed errors carry the path.
        let dir = std::env::temp_dir().join(format!("freedom_gz_neg_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("broken.csv.gz");
        std::fs::write(&path, &gz[..gz.len() - 3]).unwrap();
        match StreamTrace::from_csv_gz(&path) {
            Err(FreedomError::InvalidArgument(msg)) => {
                assert!(msg.contains("broken.csv.gz"), "{msg}");
                assert!(msg.contains("truncated gzip stream"), "{msg}");
            }
            other => panic!("expected InvalidArgument, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn multi_file_parts_replay_like_the_concatenation() {
        // Three "daily" files, the middle one gzip'd with its own
        // header, split mid-minute — the logical trace is the row
        // concatenation.
        let part1 = "app,func,minute,count\na,f,0,3\nb,g,1,2\na,f,2,1\n";
        let part2_plain = "app,func,minute,count\na,f,2,2\nc,h,3,4\n";
        let part2 = gzip_compress(part2_plain.as_bytes(), CompressMode::FixedHuffman);
        let part3 = "b,g,4,1\na,f,5,2\n";
        let concat = "app,func,minute,count\na,f,0,3\nb,g,1,2\na,f,2,1\na,f,2,2\nc,h,3,4\n\
                      b,g,4,1\na,f,5,2\n";
        let reference_trace = StreamTrace::from_csv(concat).unwrap();
        let reference = drain(&mut reference_trace.open().unwrap());
        for chunk in [3usize, 64 * 1024] {
            let multi = StreamTrace::from_csv_parts_chunked(
                &[part1.as_bytes(), &part2, part3.as_bytes()],
                chunk,
            )
            .unwrap();
            assert_eq!(multi.n_functions(), reference_trace.n_functions());
            assert_eq!(multi.len(), reference_trace.len());
            assert_eq!(multi.horizon_nanos(), reference_trace.horizon_nanos());
            assert_eq!(
                drain(&mut multi.open().unwrap()),
                reference,
                "chunk {chunk}"
            );
            // The materialized escape hatch strips the per-file headers
            // and agrees too.
            assert_eq!(
                drain(&mut multi.open().unwrap()).as_slice(),
                multi.materialize().unwrap().events(),
                "chunk {chunk}"
            );
            // Checkpoints landing inside any file re-seek exactly.
            for split in [0usize, 2, 5, reference.len() - 1, reference.len()] {
                let mut stream = multi.open().unwrap();
                for _ in 0..split {
                    stream.next();
                }
                let cp = stream.checkpoint();
                assert_eq!(
                    drain(&mut multi.open_at(&cp).unwrap()).as_slice(),
                    &reference[split..],
                    "chunk {chunk}, split {split}"
                );
            }
        }
    }

    #[test]
    fn file_seam_disorder_is_bounded_and_attributed() {
        // Within the lookahead bound, a later file may open behind the
        // carried maximum...
        let ok1 = "a,f,9,1\n";
        let ok2 = "b,g,2,1\na,f,10,1\n";
        let multi = StreamTrace::from_csv_parts(&[ok1.as_bytes(), ok2.as_bytes()]).unwrap();
        let concat = StreamTrace::from_csv("a,f,9,1\nb,g,2,1\na,f,10,1\n").unwrap();
        assert_eq!(
            drain(&mut multi.open().unwrap()),
            drain(&mut concat.open().unwrap())
        );
        // ...beyond it, the scan rejects with exact file:line
        // attribution, even when the violating row is not the file's
        // first (it is a prefix-min within its file).
        let bad1 = "a,f,30,1\n";
        let bad2 = "x,y,29,1\nb,g,21,1\n";
        match StreamTrace::from_csv_parts(&[bad1.as_bytes(), bad2.as_bytes()]) {
            Err(FreedomError::InvalidArgument(msg)) => {
                assert!(msg.contains("part 2"), "{msg}");
                assert!(msg.contains("line 2"), "{msg}");
                assert!(msg.contains("file seam"), "{msg}");
                assert!(msg.contains("minute 21"), "{msg}");
            }
            other => panic!("expected InvalidArgument, got {other:?}"),
        }
        // The materialized reader remains the escape hatch.
        // (Concatenating the same rows is accepted there.)
        assert!(TraceSource::from_csv("a,f,30,1\nx,y,29,1\nb,g,2,1\n").is_ok());
        // In-file grammar errors name their part.
        let good = "a,f,0,1\n";
        let malformed = "a,f,1,1\nbroken-row\n";
        match StreamTrace::from_csv_parts(&[good.as_bytes(), malformed.as_bytes()]) {
            Err(FreedomError::InvalidArgument(msg)) => {
                assert!(msg.contains("part 2"), "{msg}");
                assert!(msg.contains("line 2"), "{msg}");
            }
            other => panic!("expected InvalidArgument, got {other:?}"),
        }
    }

    #[test]
    fn multi_file_key_assignment_matches_first_appearance() {
        // A function appearing in several files keeps the index of its
        // first appearance; new functions in later files extend the map.
        let part1 = "appA,f1,0,1\nappB,f2,0,1\n";
        let part2 = "appB,f2,1,1\nappC,f3,1,1\nappA,f1,1,1\n";
        let multi = StreamTrace::from_csv_parts(&[part1.as_bytes(), part2.as_bytes()]).unwrap();
        assert_eq!(multi.n_functions(), 3);
        let concat = StreamTrace::from_csv(
            "appA,f1,0,1\nappB,f2,0,1\nappB,f2,1,1\nappC,f3,1,1\nappA,f1,1,1\n",
        )
        .unwrap();
        assert_eq!(
            drain(&mut multi.open().unwrap()),
            drain(&mut concat.open().unwrap())
        );
        // The composite key disambiguates app/func boundaries:
        // ("ab","c") and ("a","bc") are distinct functions.
        let tricky = StreamTrace::from_csv("ab,c,0,1\na,bc,0,1\n").unwrap();
        assert_eq!(tricky.n_functions(), 2);
    }

    #[test]
    fn file_backed_multi_file_gz_checkpoints_reopen() {
        let dir = std::env::temp_dir().join(format!("freedom_multi_gz_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Day 1 plain, day 2 gz — mixed inputs on disk.
        let day1 = dir.join("day1.csv");
        let day2 = dir.join("day2.csv.gz");
        let half = AZURE_FIXTURE.lines().count() / 2;
        let part1: String = AZURE_FIXTURE
            .lines()
            .take(half)
            .map(|l| format!("{l}\n"))
            .collect();
        let part2: String = AZURE_FIXTURE
            .lines()
            .skip(half)
            .map(|l| format!("{l}\n"))
            .collect();
        std::fs::write(&day1, &part1).unwrap();
        std::fs::write(
            &day2,
            gzip_compress(part2.as_bytes(), CompressMode::FixedHuffman),
        )
        .unwrap();
        let multi = StreamTrace::from_csv_files(&[&day1, &day2]).unwrap();
        let reference = drain(
            &mut StreamTrace::from_csv(AZURE_FIXTURE)
                .unwrap()
                .open()
                .unwrap(),
        );
        let events = drain(&mut multi.open().unwrap());
        assert_eq!(events, reference);
        // A checkpoint inside the gz'd second file reopens exactly
        // (exercising the decompress-and-skip resume path).
        let into_second = events.len() - 10;
        let mut stream = multi.open().unwrap();
        for _ in 0..into_second {
            stream.next();
        }
        let cp = stream.checkpoint();
        assert_eq!(
            drain(&mut multi.open_at(&cp).unwrap()).as_slice(),
            &reference[into_second..]
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

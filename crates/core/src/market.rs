//! The shared cross-function spot market: supply process, capacity
//! ledger, and admission controller.
//!
//! The per-function warm pools of the earlier fleet model made sharding
//! exact but assumed every function owns private idle capacity. Real
//! providers harvest a *shared, fluctuating* pool ("Accelerating
//! Serverless Computing by Harvesting Idle Resources", "Serverless in
//! the Wild"): functions contend for the same idle VMs, supply grows and
//! shrinks as the provider's first-party load moves, and placements can
//! be reclaimed mid-flight. This module models that market:
//!
//! - [`SupplyProcess`] × [`ZoneConfig`]: a seeded, piecewise-constant
//!   capacity process per failure zone. Every `step_secs` each zone's
//!   per-family warm-VM count is redrawn between
//!   `min_fraction · vms_per_family` and `vms_per_family`; zones mix a
//!   shared *shock* draw into their own stream (`ZoneConfig::shock`), so
//!   drops correlate across zones the way a region-wide first-party
//!   load spike would. The whole process — including injected
//!   [`FaultPlan`](crate::faults::FaultPlan) outages and bursts — is
//!   precomputed into a [`SupplySchedule`], a pure function of
//!   `(config, faults, horizon)`, so any replay window can reconstruct
//!   the supply in effect at any instant without sequential state.
//! - **Preemption notices**: when `ZoneConfig::notice_secs > 0`, every
//!   capacity drop is announced `notice_secs` ahead by a
//!   [`NoticeStep`]. A notified slot stops admitting; its in-flight
//!   work either drains (completes before the withdrawal), migrates to
//!   another zone at withdrawal time (re-billed at
//!   `migration_rebill · list`), or is force-demoted to on-demand.
//! - [`SpotLedger`]: the live market state during a replay — zone-major
//!   VM slots with free capacity, the available prefix dictated by the
//!   current supply step, per-slot resident placements, and market-wide
//!   occupancy counters. Supply drops *withdraw* the highest-indexed
//!   slots of a zone-family; the withdrawal hands the displaced
//!   residents back to the engine (canonically ordered) so their fate —
//!   migrate or demote — is decided *at the step*, and bumps the slot
//!   epoch so stale completion-queue entries are recognized as ghosts
//!   in `O(1)` when popped.
//! - [`AdmissionPolicy`]: the provider-level controller deciding whether
//!   a spot placement request may even try the ledger. [`AdmissionPolicy::Greedy`]
//!   admits whenever capacity fits; [`AdmissionPolicy::Headroom`]
//!   rejects once market utilization crosses a threshold, keeping slack
//!   so supply drops demote fewer in-flight placements.
//!
//! Admitted placements are priced through
//! [`SpotPricing::demand_fraction`]: the discount shrinks as the market
//! fills, so a tight market both rejects more and saves less per
//! admission.

use freedom_cluster::{InstanceFamily, InstanceSize, InstanceType};
use freedom_pricing::SpotPricing;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::faults::{FaultPlan, FaultTimeline, NOTICE_DROP_SALT};
use crate::{FreedomError, Result};

/// The instance families backed by warm market capacity, in the paper's
/// search-space order. Family indices throughout the market refer to
/// positions in this array.
pub const MARKET_FAMILIES: [InstanceFamily; 6] = InstanceFamily::SEARCH_SPACE;

/// Number of families in the market.
pub const N_MARKET_FAMILIES: usize = MARKET_FAMILIES.len();

/// Seed salt for the shared shock stream, kept distinct from the
/// per-zone redraw stream so `shock = 0` and `shock > 0` runs share the
/// same zone draws.
const SHOCK_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Index of `family` in [`MARKET_FAMILIES`], if it is marketable.
pub fn family_index(family: InstanceFamily) -> Option<usize> {
    MARKET_FAMILIES.iter().position(|&f| f == family)
}

/// A seeded piecewise-constant supply process for the shared market.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupplyProcess {
    /// Interval between capacity redraws, in seconds.
    pub step_secs: f64,
    /// Lower bound of the available fraction of each family's maximum
    /// pool, in `[0, 1]`. `1.0` means steady full supply (no redraws).
    pub min_fraction: f64,
    /// Seed of the redraw stream (independent of the trace seed).
    pub seed: u64,
}

impl SupplyProcess {
    /// Steady full supply: the market never fluctuates.
    pub const STEADY: SupplyProcess = SupplyProcess {
        step_secs: 60.0,
        min_fraction: 1.0,
        seed: 0,
    };

    fn validate(&self) -> Result<()> {
        if !self.step_secs.is_finite() || self.step_secs <= 0.0 {
            return Err(FreedomError::InvalidArgument(format!(
                "supply step must be positive, got {}s",
                self.step_secs
            )));
        }
        if !self.min_fraction.is_finite() || !(0.0..=1.0).contains(&self.min_fraction) {
            return Err(FreedomError::InvalidArgument(format!(
                "supply min fraction must be in [0, 1], got {}",
                self.min_fraction
            )));
        }
        Ok(())
    }
}

/// The market's failure-domain layout: how many zones it spans, how
/// correlated their supply is, and what a withdrawal announces ahead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneConfig {
    /// Number of failure zones; `vms_per_family` is per zone.
    pub n_zones: usize,
    /// How far ahead of a capacity drop its preemption notice fires, in
    /// seconds. `0` disables notices: withdrawals strike unannounced
    /// (the pre-zone legacy behavior).
    pub notice_secs: f64,
    /// Weight of the shared shock draw each zone mixes into its own
    /// supply redraw, in `[0, 1]`. `0` keeps zones independent (and the
    /// single-zone redraw stream bit-identical to the legacy market);
    /// `1` makes every zone's fraction move in lockstep.
    pub shock: f64,
    /// Fraction of list price a migrated placement is re-billed at, in
    /// `[0, 1]` — cross-zone failover is cheaper than a demotion (list
    /// price) but dearer than an undisturbed spot run.
    pub migration_rebill: f64,
}

impl ZoneConfig {
    /// One zone, no notices, no shared shock: the legacy market.
    pub const SINGLE: ZoneConfig = ZoneConfig {
        n_zones: 1,
        notice_secs: 0.0,
        shock: 0.0,
        migration_rebill: 0.9,
    };

    fn validate(&self) -> Result<()> {
        if self.n_zones == 0 || self.n_zones > 64 {
            return Err(FreedomError::InvalidArgument(format!(
                "market zone count must be in [1, 64], got {}",
                self.n_zones
            )));
        }
        if !self.notice_secs.is_finite() || self.notice_secs < 0.0 {
            return Err(FreedomError::InvalidArgument(format!(
                "notice lead must be finite and >= 0, got {}s",
                self.notice_secs
            )));
        }
        for (name, v) in [
            ("shock", self.shock),
            ("migration_rebill", self.migration_rebill),
        ] {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(FreedomError::InvalidArgument(format!(
                    "zone {name} must be in [0, 1], got {v}"
                )));
            }
        }
        Ok(())
    }
}

impl Default for ZoneConfig {
    fn default() -> Self {
        ZoneConfig::SINGLE
    }
}

/// Provider-level admission control for spot placement requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionPolicy {
    /// Admit any request for which warm capacity fits.
    Greedy,
    /// Admit only while market vCPU utilization stays strictly below
    /// `max_utilization`; beyond it, requests run on-demand even if a
    /// slot would fit. Keeping headroom trades spot share for fewer
    /// demotions when supply contracts.
    Headroom {
        /// Utilization ceiling in `[0, 1]`.
        max_utilization: f64,
    },
}

impl AdmissionPolicy {
    /// Whether a request may try the ledger at the given market
    /// utilization.
    pub fn admits(&self, utilization: f64) -> bool {
        match *self {
            Self::Greedy => true,
            Self::Headroom { max_utilization } => utilization < max_utilization,
        }
    }

    /// Short stable label for report tables.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Greedy => "greedy",
            Self::Headroom { .. } => "headroom",
        }
    }
}

/// Configuration of the shared spot market.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarketConfig {
    /// Maximum warm `.4xlarge` VMs per family *per zone* (shared by
    /// every function in the fleet).
    pub vms_per_family: usize,
    /// How warm capacity fluctuates over the trace.
    pub supply: SupplyProcess,
    /// The failure-domain layout (zones, notices, shock correlation).
    pub zones: ZoneConfig,
    /// Provider-level admission control.
    pub admission: AdmissionPolicy,
    /// Base spot pricing; admissions are billed at
    /// [`SpotPricing::demand_fraction`] of list price.
    pub spot: SpotPricing,
}

impl Default for MarketConfig {
    fn default() -> Self {
        Self {
            vms_per_family: 8,
            supply: SupplyProcess::STEADY,
            zones: ZoneConfig::SINGLE,
            admission: AdmissionPolicy::Greedy,
            spot: SpotPricing::PAPER_DEFAULT,
        }
    }
}

impl MarketConfig {
    pub(crate) fn validate(&self) -> Result<()> {
        if self.vms_per_family == 0 {
            return Err(FreedomError::InvalidArgument(
                "market needs at least one VM per family".into(),
            ));
        }
        if let AdmissionPolicy::Headroom { max_utilization } = self.admission {
            if !max_utilization.is_finite() || !(0.0..=1.0).contains(&max_utilization) {
                return Err(FreedomError::InvalidArgument(format!(
                    "admission utilization ceiling must be in [0, 1], got {max_utilization}"
                )));
            }
        }
        self.zones.validate()?;
        self.supply.validate()
    }

    /// Number of `(zone, family)` capacity lanes: the width of every
    /// caps vector in this market's schedule and ledger.
    pub(crate) fn width(&self) -> usize {
        self.zones.n_zones * N_MARKET_FAMILIES
    }
}

/// One precomputed supply event: the zone-major per-family available VM
/// counts (`caps[zone · N_MARKET_FAMILIES + family]`) in effect from
/// `at_nanos` onward.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SupplyStep {
    pub at_nanos: u64,
    pub caps: Vec<u32>,
}

/// One precomputed preemption notice: at `at_nanos` the market learns
/// the caps of `steps[step]` ahead of time and marks the slots that
/// step will withdraw, so they stop admitting and start draining.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct NoticeStep {
    pub at_nanos: u64,
    /// Index into [`SupplySchedule::steps`] of the announced step.
    pub step: u32,
}

/// The whole supply process — zone redraws, injected faults, and the
/// preemption notices announcing its drops — materialized over a replay
/// horizon. A pure function of `(MarketConfig, FaultPlan, horizon)`, so
/// the sequential engine and every replay window see the same capacity
/// and the same notices at the same instant.
#[derive(Debug, Clone)]
pub(crate) struct SupplySchedule {
    /// Capacity before the first event (the full pool), zone-major.
    pub base: Vec<u32>,
    /// Capacity events sorted by time: supply redraws at multiples of
    /// `step_secs`, plus fault boundaries (outage/burst starts and
    /// ends), covering every instant `≤ horizon`.
    pub steps: Vec<SupplyStep>,
    /// Preemption notices, strictly increasing in time; each announces
    /// a later step, and at most one notice is pending at any instant
    /// (a notice's step always fires before the next notice).
    pub notices: Vec<NoticeStep>,
}

/// The supply state a replay window starting at some instant must
/// reconstruct: the caps in effect, both event cursors, and — when a
/// notice fired earlier whose step is still ahead — the announced caps
/// whose withdrawn slots the window must re-mark as notified.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SupplyStart<'a> {
    pub cursor: usize,
    pub notice_cursor: usize,
    pub caps: &'a [u32],
    pub notified_next: Option<&'a [u32]>,
}

impl SupplySchedule {
    /// Materializes the supply process up to `horizon_nanos` (the last
    /// arrival of the trace being replayed), composing `faults` into
    /// the timeline as simulated-time capacity events.
    pub fn generate(config: &MarketConfig, faults: &FaultPlan, horizon_nanos: u64) -> Result<Self> {
        config.validate()?;
        let n_zones = config.zones.n_zones;
        let width = config.width();
        let max = config.vms_per_family as u32;
        let base = vec![max; width];

        // 1. The seeded redraw stream, zone-major per step. With
        //    `shock = 0` the draw call sequence is bit-identical to the
        //    legacy single-zone market (one `gen_range` per lane).
        let mut redraws: Vec<SupplyStep> = Vec::new();
        if config.supply.min_fraction < 1.0 {
            let mut rng = StdRng::seed_from_u64(config.supply.seed);
            let mut shock_rng = StdRng::seed_from_u64(config.supply.seed ^ SHOCK_SALT);
            let shock = config.zones.shock;
            let lo = (config.supply.min_fraction * max as f64).floor() as u32;
            let span = max - lo;
            let step_nanos = ((config.supply.step_secs * 1e9) as u64).max(1);
            let mut t = step_nanos;
            while t <= horizon_nanos {
                let mut caps = vec![0u32; width];
                if shock > 0.0 {
                    // Mix the shared shock draw into each lane's own:
                    // the same region-wide s pulls every zone the same
                    // way, correlating drops without equalizing them.
                    let s: f64 = shock_rng.gen();
                    for cap in &mut caps {
                        let u: f64 = rng.gen();
                        let v = shock * s + (1.0 - shock) * u;
                        *cap = lo + ((v * (span + 1) as f64) as u32).min(span);
                    }
                } else {
                    for cap in &mut caps {
                        *cap = rng.gen_range(lo..max + 1);
                    }
                }
                redraws.push(SupplyStep { at_nanos: t, caps });
                t += step_nanos;
            }
        }

        // 2. Compose the fault timeline. With no faults the redraws ARE
        //    the schedule (the legacy fast path).
        let timeline = FaultTimeline::generate(faults, n_zones, horizon_nanos)?;
        let steps = if timeline == FaultTimeline::default() {
            redraws
        } else {
            compose_faults(&base, &redraws, &timeline, n_zones, horizon_nanos)
        };

        // 3. Announce the drops. A notice fires `notice_secs` ahead of
        //    any step that lowers at least one lane, clamped to the
        //    previous step so at most one notice is ever pending; fault
        //    plans may drop individual deliveries.
        let mut notices = Vec::new();
        if config.zones.notice_secs > 0.0 {
            let notice_nanos = ((config.zones.notice_secs * 1e9) as u64).max(1);
            let mut drop_rng = StdRng::seed_from_u64(faults.seed ^ NOTICE_DROP_SALT);
            let mut prev_at = 0u64;
            let mut prev_caps: &[u32] = &base;
            for (k, step) in steps.iter().enumerate() {
                let drops = step.caps.iter().zip(prev_caps).any(|(n, o)| n < o);
                if drops {
                    let at = step.at_nanos.saturating_sub(notice_nanos).max(prev_at);
                    if at < step.at_nanos {
                        let delivered = faults.notice_drop_fraction == 0.0
                            || drop_rng.gen::<f64>() >= faults.notice_drop_fraction;
                        if delivered {
                            notices.push(NoticeStep {
                                at_nanos: at,
                                step: k as u32,
                            });
                        }
                    }
                }
                prev_at = step.at_nanos;
                prev_caps = &step.caps;
            }
        }

        Ok(Self {
            base,
            steps,
            notices,
        })
    }

    /// The supply state in effect just before any event at `start_nanos`
    /// fires (i.e. after every event strictly earlier than it): the
    /// caps, both cursors, and the pending notice if one fired earlier
    /// for a step at or after `start_nanos`.
    pub fn start_state(&self, start_nanos: u64) -> SupplyStart<'_> {
        let cursor = self.steps.partition_point(|s| s.at_nanos < start_nanos);
        let caps = if cursor == 0 {
            &self.base[..]
        } else {
            &self.steps[cursor - 1].caps[..]
        };
        let notice_cursor = self.notices.partition_point(|n| n.at_nanos < start_nanos);
        let notified_next = notice_cursor
            .checked_sub(1)
            .map(|i| self.notices[i])
            .filter(|n| n.step as usize >= cursor)
            .map(|n| &self.steps[n.step as usize].caps[..]);
        SupplyStart {
            cursor,
            notice_cursor,
            caps,
            notified_next,
        }
    }
}

/// Overlays fault intervals onto the redraw stream: the union of redraw
/// times and interval boundaries becomes the step timeline, and each
/// step's caps are the redraw in effect with active bursts (floored
/// multiplicative cut) and active zone outages (capacity pinned to 0)
/// applied. Intervals never overlap within a lane (per zone for
/// outages, globally for bursts), so one cursor per lane walks them.
fn compose_faults(
    base: &[u32],
    redraws: &[SupplyStep],
    timeline: &FaultTimeline,
    n_zones: usize,
    horizon_nanos: u64,
) -> Vec<SupplyStep> {
    let mut points: Vec<u64> = redraws.iter().map(|s| s.at_nanos).collect();
    for o in &timeline.outages {
        if o.start_nanos <= horizon_nanos {
            points.push(o.start_nanos);
            if o.end_nanos <= horizon_nanos {
                points.push(o.end_nanos);
            }
        }
    }
    for b in &timeline.bursts {
        if b.start_nanos <= horizon_nanos {
            points.push(b.start_nanos);
            if b.end_nanos <= horizon_nanos {
                points.push(b.end_nanos);
            }
        }
    }
    points.sort_unstable();
    points.dedup();

    // Per-zone outage slices (outages are emitted zone-major).
    let mut zone_ranges = vec![(0usize, 0usize); n_zones];
    {
        let mut i = 0;
        for (zone, range) in zone_ranges.iter_mut().enumerate() {
            let start = i;
            while i < timeline.outages.len() && timeline.outages[i].zone == zone {
                i += 1;
            }
            *range = (start, i);
        }
    }

    let mut steps = Vec::with_capacity(points.len());
    let mut rc = 0usize; // redraw cursor
    let mut bc = 0usize; // burst cursor
    let mut oc: Vec<usize> = zone_ranges.iter().map(|&(s, _)| s).collect();
    for &t in &points {
        while rc < redraws.len() && redraws[rc].at_nanos <= t {
            rc += 1;
        }
        let mut caps = if rc == 0 {
            base.to_vec()
        } else {
            redraws[rc - 1].caps.clone()
        };
        while bc < timeline.bursts.len() && timeline.bursts[bc].end_nanos <= t {
            bc += 1;
        }
        if let Some(b) = timeline.bursts.get(bc) {
            if b.start_nanos <= t {
                for cap in &mut caps {
                    *cap = (*cap as f64 * (1.0 - b.severity)).floor() as u32;
                }
            }
        }
        for (zone, range) in zone_ranges.iter().enumerate() {
            let c = &mut oc[zone];
            while *c < range.1 && timeline.outages[*c].end_nanos <= t {
                *c += 1;
            }
            if let Some(o) = timeline.outages.get(*c) {
                if *c < range.1 && o.start_nanos <= t {
                    caps[zone * N_MARKET_FAMILIES..(zone + 1) * N_MARKET_FAMILIES].fill(0);
                }
            }
        }
        steps.push(SupplyStep { at_nanos: t, caps });
    }
    steps
}

/// One in-flight spot placement, as stored in the completion queue and
/// in the carry-over state crossing replay-window boundaries.
///
/// Ordering (and equality) is by `(completion_nanos, slot, idx, meta)`:
/// `slot` is a flat market-wide index so it encodes the zone and family,
/// and `(idx, meta)` — the invocation's global arrival index plus its
/// attempt/kind word — uniquely names one run of it, so ties never
/// cascade to the remaining fields. `epoch` deliberately stays out
/// of the key: the sequential engine and a window reconstructing carried
/// state assign different epochs to the same placement.
#[derive(Debug, Clone, Copy)]
pub(crate) struct InFlight {
    /// Completion time in integer nanoseconds.
    pub completion_nanos: u64,
    /// Flat slot index:
    /// `(zone · N_MARKET_FAMILIES + family) · vms_per_family + k`.
    pub slot: u32,
    /// Global arrival index of the invocation (into the merged trace).
    pub idx: u32,
    /// Slot epoch at placement time; a mismatch against the ledger's
    /// current epoch marks the entry a ghost (its slot was withdrawn and
    /// the placement's fate — migrated or demoted — was already decided
    /// at the step).
    pub epoch: u32,
    /// Reserved milli-vCPUs.
    pub milli: u32,
    /// Reserved MiB.
    pub mib: u32,
    /// Undiscounted list-price cost of the placement's configuration —
    /// what the invocation is re-billed if demoted (or a
    /// `migration_rebill` fraction of it if migrated).
    pub list_cost_usd: f64,
    /// Retry-layer metadata, packed by [`InFlight::meta_of`]: low 2 bits
    /// the run kind ([`RUN_NORMAL`] / [`RUN_ABORT`] / [`RUN_HEDGE`]),
    /// next 6 bits the 1-based attempt number. Participates in the key
    /// so an invocation's racing copies (a straggler and its hedge, or
    /// successive attempts) order canonically even on a completion tie.
    pub meta: u32,
}

/// A plain execution: completes its work, drains under notice as usual.
pub(crate) const RUN_NORMAL: u32 = 0;
/// A mid-flight abort: occupies its slot until the seeded abort instant,
/// then releases without having completed (the retry layer re-issues).
pub(crate) const RUN_ABORT: u32 = 1;
/// A hedged re-issue racing a straggler; invisible to retry/drain
/// accounting, dropped (not migrated) if its slot is withdrawn.
pub(crate) const RUN_HEDGE: u32 = 2;

impl InFlight {
    pub(crate) fn key(&self) -> (u64, u32, u32, u32) {
        (self.completion_nanos, self.slot, self.idx, self.meta)
    }

    /// Packs the retry layer's run metadata.
    pub(crate) fn meta_of(kind: u32, attempt: u8) -> u32 {
        kind | (u32::from(attempt) << 2)
    }

    /// The run kind packed into `meta`.
    pub(crate) fn run_kind(&self) -> u32 {
        self.meta & 3
    }

    /// The 1-based attempt number packed into `meta`.
    pub(crate) fn attempt(&self) -> u8 {
        ((self.meta >> 2) & 63) as u8
    }
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Whether two carry-over states are identical — the speculation check of
/// the windowed replay. Entries are canonically sorted (queue-drain
/// order), so element-wise comparison suffices; every field participates,
/// costs bit-for-bit.
pub(crate) fn carry_eq(a: &[InFlight], b: &[InFlight]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.key() == y.key()
                && x.milli == y.milli
                && x.mib == y.mib
                && x.list_cost_usd.to_bits() == y.list_cost_usd.to_bits()
                && x.meta == y.meta
        })
}

/// Word-wise FNV-1a with a splitmix64 finisher — the structural hash
/// behind carry fingerprinting. Reconciliation compares fingerprints
/// first and only falls back to the field-by-field `carry_eq` /
/// `control_state_eq` walk on mismatch, so clean windows verify in
/// O(1). The hash covers exactly the fields those comparators read
/// (notably *excluding* `InFlight::epoch`), keeping `fp(a) == fp(b)`
/// whenever the bit-exact compare would say equal.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;

    pub fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    pub fn write(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(Self::PRIME);
    }

    /// Avalanche finisher so low-entropy field patterns still spread
    /// across all 64 bits.
    pub fn finish(self) -> u64 {
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Hashes a canonically sorted in-flight ledger, field-for-field what
/// [`carry_eq`] compares: length, then per entry the key triple plus
/// reservation and cost bits, epoch excluded.
pub(crate) fn hash_inflight(h: &mut Fnv64, entries: &[InFlight]) {
    h.write(entries.len() as u64);
    for e in entries {
        h.write(e.completion_nanos);
        h.write((u64::from(e.slot) << 32) | u64::from(e.idx));
        h.write((u64::from(e.milli) << 32) | u64::from(e.mib));
        h.write(e.list_cost_usd.to_bits());
        h.write(u64::from(e.meta));
    }
}

/// One warm VM slot's free capacity.
#[derive(Debug, Clone, Copy)]
struct VmSlot {
    free_milli: u32,
    free_mib: u32,
}

/// The live market state during a replay: zone-major slots, the
/// available prefix per `(zone, family)` lane, per-slot residents,
/// notice flags, epochs for ghost detection, and market-wide occupancy.
///
/// Capacity and occupancy are integer milli-vCPU counters, so the
/// utilization driving admission and demand pricing is an exact ratio of
/// integers — deterministic across engines. Per-slot resident lists are
/// kept order-insensitive (every consumer either counts them, searches
/// by `idx`, or canonically sorts them), so the sequential engine and a
/// window reconstructing carried state — which insert in different
/// orders — stay bit-identical.
#[derive(Debug)]
pub(crate) struct SpotLedger {
    vms_per_family: u32,
    slots: Vec<VmSlot>,
    epochs: Vec<u32>,
    /// Live placements per slot — what a withdrawal displaces. Kept
    /// exact so [`SpotLedger::withdraw`] can hand every displaced
    /// in-flight entry to the engine *at the supply step itself* (where
    /// migrate-vs-demote is decided and the feedback signal counted),
    /// instead of waiting for stale queue entries to surface.
    residents: Vec<Vec<InFlight>>,
    /// Slots under a preemption notice: they stop admitting and their
    /// residents drain (or migrate at the announced withdrawal).
    notified: Vec<bool>,
    /// Available-slot prefix per `(zone, family)` lane, zone-major.
    avail: Vec<u32>,
    full_milli: u32,
    full_mib: [u32; N_MARKET_FAMILIES],
    capacity_milli: u64,
    occupied_milli: u64,
}

impl SpotLedger {
    /// A fresh (fully idle) ledger under the capacity `caps`
    /// (zone-major, `config.width()` lanes).
    pub fn new(config: &MarketConfig, caps: &[u32]) -> Self {
        debug_assert_eq!(caps.len(), config.width());
        let vms = config.vms_per_family as u32;
        let full_milli = InstanceSize::X4Large.vcpus() * 1000;
        let mut full_mib = [0u32; N_MARKET_FAMILIES];
        for (i, &family) in MARKET_FAMILIES.iter().enumerate() {
            full_mib[i] = InstanceType::new(family, InstanceSize::X4Large).memory_mib();
        }
        let n_slots = config.width() * vms as usize;
        let mut slots = Vec::with_capacity(n_slots);
        for _ in 0..config.zones.n_zones {
            for &mib in &full_mib {
                for _ in 0..vms {
                    slots.push(VmSlot {
                        free_milli: full_milli,
                        free_mib: mib,
                    });
                }
            }
        }
        let capacity_milli = caps.iter().map(|&c| c as u64 * full_milli as u64).sum();
        Self {
            vms_per_family: vms,
            epochs: vec![0; n_slots],
            residents: vec![Vec::new(); n_slots],
            notified: vec![false; n_slots],
            slots,
            avail: caps.to_vec(),
            full_milli,
            full_mib,
            capacity_milli,
            occupied_milli: 0,
        }
    }

    /// The family (index into [`MARKET_FAMILIES`]) a flat slot belongs to.
    fn family_of(&self, flat: u32) -> usize {
        (flat / self.vms_per_family) as usize % N_MARKET_FAMILIES
    }

    /// The zone a flat slot belongs to.
    pub fn zone_of(&self, flat: u32) -> usize {
        (flat / self.vms_per_family) as usize / N_MARKET_FAMILIES
    }

    /// Re-places a carried in-flight entry onto its slot (window-start
    /// reconstruction). The entry's slot is available by construction: it
    /// survived every earlier supply drop.
    pub fn restore(&mut self, entry: &InFlight) {
        let slot = &mut self.slots[entry.slot as usize];
        slot.free_milli -= entry.milli;
        slot.free_mib -= entry.mib;
        Self::insert_resident(&mut self.residents[entry.slot as usize], entry);
        self.occupied_milli += entry.milli as u64;
    }

    /// Records a resident with an O(1) append. Resident order is not
    /// observable: withdrawals hand displaced entries to the engine
    /// canonically re-sorted, notices only count them, and
    /// [`SpotLedger::release`] matches its exact record by `(idx, meta,
    /// completion)` — unique even for a straggler/hedge twin pair — so
    /// no path needs the vector sorted. Keeping it unsorted turns the
    /// retry-heavy placement mix (which re-places old indices out of
    /// arrival order) from a mid-vector memmove into a push, and
    /// release into a swap-remove.
    #[inline]
    fn insert_resident(residents: &mut Vec<InFlight>, entry: &InFlight) {
        residents.push(*entry);
    }

    /// Market vCPU utilization in `[0, 1]`; a zero-capacity market reads
    /// as saturated.
    pub fn utilization(&self) -> f64 {
        if self.capacity_milli == 0 {
            1.0
        } else {
            self.occupied_milli as f64 / self.capacity_milli as f64
        }
    }

    /// Current epoch of a flat slot.
    pub fn epoch(&self, slot: u32) -> u32 {
        self.epochs[slot as usize]
    }

    /// Whether a queue entry is still live (its slot was not withdrawn
    /// since placement).
    pub fn is_live(&self, entry: &InFlight) -> bool {
        self.epochs[entry.slot as usize] == entry.epoch
    }

    /// Whether a flat slot is under a preemption notice.
    pub fn is_notified(&self, slot: u32) -> bool {
        self.notified[slot as usize]
    }

    /// Marks every slot the announced step will withdraw as notified and
    /// returns how many in-flight placements just received a notice.
    /// Marked slots stop admitting ([`SpotLedger::best_fit`] skips them)
    /// until the withdrawal clears the flag.
    pub fn mark_notified(&mut self, next_caps: &[u32]) -> u32 {
        let mut hit = 0;
        for (lane, &next) in next_caps.iter().enumerate() {
            let cur = self.avail[lane];
            let base = lane as u32 * self.vms_per_family;
            for k in next..cur {
                let flat = (base + k) as usize;
                if !self.notified[flat] {
                    self.notified[flat] = true;
                    hit += self.residents[flat].len() as u32;
                }
            }
        }
        hit
    }

    /// Applies a supply event and returns the in-flight placements it
    /// displaced, canonically sorted by `(completion, slot, idx)` so
    /// every engine resolves them (migrate or demote) in the same
    /// order. Withdrawing a slot empties it immediately: its occupancy
    /// leaves the market, its notice flag clears, and its epoch
    /// advances so queue entries pointing at it read as ghosts when
    /// popped. Restored slots come back empty.
    ///
    /// Resolving displacement *at the step* (rather than when stale
    /// queue entries surface) is what makes the per-epoch
    /// demotion/migration signal a pure function of simulated time — a
    /// window that replays this instant observes the same displaced set
    /// as the sequential engine, so the control plane's feedback is
    /// partition-independent.
    pub fn withdraw(&mut self, caps: &[u32]) -> Vec<InFlight> {
        let mut displaced = Vec::new();
        for (lane, &new) in caps.iter().enumerate() {
            let old = self.avail[lane];
            let family = lane % N_MARKET_FAMILIES;
            let base = lane as u32 * self.vms_per_family;
            if new < old {
                for k in new..old {
                    let flat = (base + k) as usize;
                    if !self.residents[flat].is_empty() {
                        let occupied = (self.full_milli - self.slots[flat].free_milli) as u64;
                        self.occupied_milli -= occupied;
                        self.epochs[flat] += 1;
                        displaced.append(&mut self.residents[flat]);
                        self.slots[flat] = VmSlot {
                            free_milli: self.full_milli,
                            free_mib: self.full_mib[family],
                        };
                    }
                    self.notified[flat] = false;
                    self.capacity_milli -= self.full_milli as u64;
                }
            } else {
                for _ in old..new {
                    self.capacity_milli += self.full_milli as u64;
                }
            }
            self.avail[lane] = new;
        }
        displaced.sort_unstable_by_key(|e| e.key());
        displaced
    }

    /// Best-fit scan over a family's available, un-notified slots across
    /// every zone: the least free vCPUs that still fit, lowest flat
    /// index on ties. Returns the flat slot index.
    pub fn best_fit(&self, family: usize, milli: u32, mib: u32) -> Option<u32> {
        let mut best: Option<(u32, u32)> = None; // (free_milli, flat slot)
        let n_zones = self.avail.len() / N_MARKET_FAMILIES;
        for zone in 0..n_zones {
            let lane = zone * N_MARKET_FAMILIES + family;
            let base = lane as u32 * self.vms_per_family;
            for k in 0..self.avail[lane] {
                let flat = base + k;
                if self.notified[flat as usize] {
                    continue;
                }
                let slot = self.slots[flat as usize];
                if slot.free_milli >= milli
                    && slot.free_mib >= mib
                    && best.is_none_or(|(free, _)| slot.free_milli < free)
                {
                    if slot.free_milli == milli {
                        // A perfect CPU fit cannot be beaten, and ties keep
                        // the first slot in flat order — exactly this one.
                        return Some(flat);
                    }
                    best = Some((slot.free_milli, flat));
                }
            }
        }
        best.map(|(_, flat)| flat)
    }

    /// A migration target for a displaced placement: best-fit within the
    /// same family across every *other* zone (the source zone is the one
    /// failing), skipping notified slots. `None` forces a demotion.
    pub fn migrate_target(&self, from: u32, milli: u32, mib: u32) -> Option<u32> {
        let family = self.family_of(from);
        let src_zone = self.zone_of(from);
        let mut best: Option<(u32, u32)> = None;
        let n_zones = self.avail.len() / N_MARKET_FAMILIES;
        for zone in 0..n_zones {
            if zone == src_zone {
                continue;
            }
            let lane = zone * N_MARKET_FAMILIES + family;
            let base = lane as u32 * self.vms_per_family;
            for k in 0..self.avail[lane] {
                let flat = base + k;
                if self.notified[flat as usize] {
                    continue;
                }
                let slot = self.slots[flat as usize];
                if slot.free_milli >= milli
                    && slot.free_mib >= mib
                    && best.is_none_or(|(free, _)| slot.free_milli < free)
                {
                    best = Some((slot.free_milli, flat));
                }
            }
        }
        best.map(|(_, flat)| flat)
    }

    /// Reserves capacity on a slot returned by [`SpotLedger::best_fit`]
    /// or [`SpotLedger::migrate_target`] and records the resident.
    pub fn place(&mut self, entry: &InFlight) {
        let slot = &mut self.slots[entry.slot as usize];
        slot.free_milli -= entry.milli;
        slot.free_mib -= entry.mib;
        Self::insert_resident(&mut self.residents[entry.slot as usize], entry);
        self.occupied_milli += entry.milli as u64;
    }

    /// Releases a live completion's capacity back to its slot.
    ///
    /// A slot can host two records with the same invocation index — a
    /// straggling attempt and the hedge racing it — so the scan matches
    /// the exact record by `(idx, meta, completion)`. Releasing an
    /// arbitrary same-index twin would leave the wrong record standing,
    /// and a later withdrawal would misclassify the survivor (a hedge
    /// drops silently; a real attempt must migrate or demote). The
    /// unordered resident vector makes the removal a swap-remove.
    pub fn release(&mut self, entry: &InFlight) {
        let slot = &mut self.slots[entry.slot as usize];
        slot.free_milli += entry.milli;
        slot.free_mib += entry.mib;
        let residents = &mut self.residents[entry.slot as usize];
        let pos = residents
            .iter()
            .position(|p| {
                p.idx == entry.idx
                    && p.meta == entry.meta
                    && p.completion_nanos == entry.completion_nanos
            })
            .expect("released entry must be resident on its slot");
        residents.swap_remove(pos);
        self.occupied_milli -= entry.milli as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fluctuating() -> MarketConfig {
        MarketConfig {
            vms_per_family: 4,
            supply: SupplyProcess {
                step_secs: 10.0,
                min_fraction: 0.25,
                seed: 7,
            },
            ..MarketConfig::default()
        }
    }

    fn entry(completion: u64, slot: u32, idx: u32, milli: u32, mib: u32) -> InFlight {
        InFlight {
            completion_nanos: completion,
            slot,
            idx,
            epoch: 0,
            milli,
            mib,
            list_cost_usd: 0.1,
            meta: InFlight::meta_of(RUN_NORMAL, 1),
        }
    }

    #[test]
    fn schedule_is_deterministic_and_bounded() {
        let config = fluctuating();
        let horizon = 120_000_000_000; // 120 s
        let a = SupplySchedule::generate(&config, &FaultPlan::NONE, horizon).unwrap();
        let b = SupplySchedule::generate(&config, &FaultPlan::NONE, horizon).unwrap();
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.steps.len(), 12, "one redraw per 10 s step");
        assert!(a.notices.is_empty(), "no notices without notice_secs");
        for step in &a.steps {
            assert!(step.at_nanos <= horizon);
            assert_eq!(step.caps.len(), config.width());
            for &cap in &step.caps {
                assert!((1..=4).contains(&cap), "cap {cap} outside [1, 4]");
            }
        }
        // A different supply seed redraws differently.
        let other = SupplySchedule::generate(
            &MarketConfig {
                supply: SupplyProcess {
                    seed: 8,
                    ..config.supply
                },
                ..config
            },
            &FaultPlan::NONE,
            horizon,
        )
        .unwrap();
        assert_ne!(a.steps, other.steps);
        // Steady supply never steps.
        let steady =
            SupplySchedule::generate(&MarketConfig::default(), &FaultPlan::NONE, horizon).unwrap();
        assert!(steady.steps.is_empty());
        assert_eq!(steady.base, vec![8; N_MARKET_FAMILIES]);
    }

    #[test]
    fn shock_couples_zone_supplies() {
        let zoned = |shock| MarketConfig {
            zones: ZoneConfig {
                n_zones: 4,
                shock,
                ..ZoneConfig::SINGLE
            },
            ..fluctuating()
        };
        let horizon = 600_000_000_000;
        // Full shock: every lane sees the same draw at every step.
        let locked = SupplySchedule::generate(&zoned(1.0), &FaultPlan::NONE, horizon).unwrap();
        for step in &locked.steps {
            assert!(step.caps.iter().all(|&c| c == step.caps[0]));
        }
        // No shock: zones move independently (some step differs by lane).
        let free = SupplySchedule::generate(&zoned(0.0), &FaultPlan::NONE, horizon).unwrap();
        assert!(free
            .steps
            .iter()
            .any(|s| s.caps.iter().any(|&c| c != s.caps[0])));
        // The single-zone prefix of the shock-free stream is exactly the
        // legacy schedule: adding zones extends each step's draw list
        // without perturbing the first zone's draws at step 1.
        let legacy = SupplySchedule::generate(&fluctuating(), &FaultPlan::NONE, horizon).unwrap();
        assert_eq!(
            free.steps[0].caps[..N_MARKET_FAMILIES],
            legacy.steps[0].caps[..]
        );
    }

    #[test]
    fn notices_precede_every_drop_and_clamp_to_the_previous_step() {
        let config = MarketConfig {
            zones: ZoneConfig {
                notice_secs: 3.0,
                ..ZoneConfig::SINGLE
            },
            ..fluctuating()
        };
        let horizon = 120_000_000_000;
        let s = SupplySchedule::generate(&config, &FaultPlan::NONE, horizon).unwrap();
        assert!(!s.notices.is_empty());
        let mut prev_at = 0;
        for n in &s.notices {
            let step = &s.steps[n.step as usize];
            assert!(n.at_nanos < step.at_nanos, "notice strictly precedes step");
            assert!(
                step.at_nanos - n.at_nanos <= 3_000_000_000,
                "lead never exceeds notice_secs"
            );
            assert!(n.at_nanos > prev_at, "notices strictly increase");
            // The announced step really drops at least one lane.
            let before = if n.step == 0 {
                &s.base
            } else {
                &s.steps[n.step as usize - 1].caps
            };
            assert!(step.caps.iter().zip(before).any(|(c, b)| c < b));
            prev_at = n.at_nanos;
        }
        // A long lead clamps at the previous step: with step_secs = 10
        // and notice_secs = 30 the notice fires right at the prior step.
        let long = MarketConfig {
            zones: ZoneConfig {
                notice_secs: 30.0,
                ..ZoneConfig::SINGLE
            },
            ..fluctuating()
        };
        let s = SupplySchedule::generate(&long, &FaultPlan::NONE, horizon).unwrap();
        for n in &s.notices {
            let step_at = s.steps[n.step as usize].at_nanos;
            let prev = if n.step == 0 {
                0
            } else {
                s.steps[n.step as usize - 1].at_nanos
            };
            assert_eq!(n.at_nanos, prev.max(step_at.saturating_sub(30_000_000_000)));
        }
    }

    #[test]
    fn faults_compose_into_the_schedule_as_capacity_events() {
        let config = MarketConfig {
            zones: ZoneConfig {
                n_zones: 3,
                notice_secs: 2.0,
                ..ZoneConfig::SINGLE
            },
            ..fluctuating()
        };
        let faults = FaultPlan {
            seed: 21,
            outage_rate_per_hour: 60.0,
            mean_outage_secs: 15.0,
            burst_rate_per_hour: 30.0,
            mean_burst_secs: 10.0,
            burst_severity: 0.5,
            notice_drop_fraction: 0.0,
            ..FaultPlan::NONE
        };
        let horizon = 600_000_000_000;
        let a = SupplySchedule::generate(&config, &faults, horizon).unwrap();
        let b = SupplySchedule::generate(&config, &faults, horizon).unwrap();
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.notices, b.notices);
        let plain = SupplySchedule::generate(&config, &FaultPlan::NONE, horizon).unwrap();
        assert!(
            a.steps.len() > plain.steps.len(),
            "fault boundaries add steps"
        );
        // During an outage the zone's caps read zero in the schedule.
        let timeline = FaultTimeline::generate(&faults, 3, horizon).unwrap();
        let o = timeline.outages[0];
        let at_outage = a
            .steps
            .iter()
            .rfind(|s| s.at_nanos >= o.start_nanos && s.at_nanos < o.end_nanos);
        if let Some(step) = at_outage {
            let lane0 = o.zone * N_MARKET_FAMILIES;
            assert!(step.caps[lane0..lane0 + N_MARKET_FAMILIES]
                .iter()
                .all(|&c| c == 0));
        }
        // Dropping every notice delivery silences the schedule without
        // moving a single capacity event.
        let muted = SupplySchedule::generate(
            &config,
            &FaultPlan {
                notice_drop_fraction: 1.0,
                ..faults
            },
            horizon,
        )
        .unwrap();
        assert_eq!(muted.steps, a.steps);
        assert!(muted.notices.is_empty());
    }

    #[test]
    fn start_state_is_a_prefix_function() {
        let config = MarketConfig {
            zones: ZoneConfig {
                notice_secs: 3.0,
                ..ZoneConfig::SINGLE
            },
            ..fluctuating()
        };
        let schedule =
            SupplySchedule::generate(&config, &FaultPlan::NONE, 100_000_000_000).unwrap();
        let s0 = schedule.start_state(0);
        assert_eq!((s0.cursor, s0.notice_cursor), (0, 0));
        assert_eq!(s0.caps, &schedule.base[..]);
        assert!(s0.notified_next.is_none());
        // A start exactly on a step instant leaves that step unprocessed.
        let t1 = schedule.steps[0].at_nanos;
        let s1 = schedule.start_state(t1);
        assert_eq!(s1.cursor, 0);
        assert_eq!(s1.caps, &schedule.base[..]);
        let s2 = schedule.start_state(t1 + 1);
        assert_eq!(s2.cursor, 1);
        assert_eq!(s2.caps, &schedule.steps[0].caps[..]);
        // A start between a notice and its step re-marks the pending
        // notice; a start after the step does not.
        let n = schedule.notices[0];
        let mid = schedule.start_state(n.at_nanos + 1);
        assert_eq!(mid.notice_cursor, 1);
        assert_eq!(
            mid.notified_next,
            Some(&schedule.steps[n.step as usize].caps[..]),
        );
        let after = schedule.start_state(schedule.steps[n.step as usize].at_nanos + 1);
        assert!(after.notified_next.is_none());
    }

    #[test]
    fn withdrawal_displaces_residents_and_restores_empty_slots() {
        let config = fluctuating();
        let mut ledger = SpotLedger::new(&config, &[4; N_MARKET_FAMILIES]);
        let full = ledger.capacity_milli;
        assert_eq!(ledger.utilization(), 0.0);

        // Occupy the last slot of family 0 (flat index 3).
        let placed = entry(50, 3, 9, 2000, 1024);
        ledger.place(&placed);
        assert!(ledger.utilization() > 0.0);
        let epoch_before = ledger.epoch(3);

        // Drop family 0 to 2 VMs: slots 2..4 withdrawn, occupancy leaves,
        // and the step hands back exactly the one displaced resident.
        let mut caps = [4; N_MARKET_FAMILIES];
        caps[0] = 2;
        let displaced = ledger.withdraw(&caps);
        assert_eq!(displaced.len(), 1);
        assert_eq!(displaced[0], placed);
        assert_eq!(ledger.occupied_milli, 0);
        assert_eq!(ledger.capacity_milli, full - 2 * ledger.full_milli as u64);
        assert_eq!(ledger.epoch(3), epoch_before + 1, "withdrawn+occupied");
        assert_eq!(ledger.epoch(2), 0, "idle withdrawn slot keeps its epoch");
        assert!(!ledger.is_live(&placed), "displaced entry reads as a ghost");

        // Bring it back: the slot returns empty, nothing left to displace.
        assert!(ledger.withdraw(&[4; N_MARKET_FAMILIES]).is_empty());
        assert_eq!(ledger.capacity_milli, full);
        assert_eq!(ledger.slots[3].free_milli, ledger.full_milli);
    }

    #[test]
    fn best_fit_prefers_fullest_fitting_slot() {
        let config = MarketConfig {
            vms_per_family: 3,
            ..MarketConfig::default()
        };
        let mut ledger = SpotLedger::new(&config, &[3; N_MARKET_FAMILIES]);
        // Slot 0 nearly full, slot 1 half full, slot 2 empty.
        ledger.place(&entry(10, 0, 0, 15_000, 1024));
        ledger.place(&entry(11, 1, 1, 8_000, 1024));
        // A 2-vCPU request fits slots 1 and 2; best-fit picks 1.
        assert_eq!(ledger.best_fit(0, 2000, 512), Some(1));
        // A 10-vCPU request only fits slot 2.
        assert_eq!(ledger.best_fit(0, 10_000, 512), Some(2));
        // Nothing fits 17 vCPUs.
        assert_eq!(ledger.best_fit(0, 17_000, 512), None);
        // Availability gates the scan: with only slot 0 available the
        // 2-vCPU request has nowhere to go. The withdrawal displaces the
        // one placement living on slot 1.
        let mut caps = [3; N_MARKET_FAMILIES];
        caps[0] = 1;
        assert_eq!(ledger.withdraw(&caps).len(), 1);
        assert_eq!(ledger.best_fit(0, 2000, 512), None);
    }

    #[test]
    fn displacement_is_per_placement_and_canonically_ordered() {
        // Two placements packed onto one slot are two displacements,
        // returned in (completion, slot, idx) order regardless of
        // insertion order.
        let config = MarketConfig {
            vms_per_family: 2,
            ..MarketConfig::default()
        };
        let mut ledger = SpotLedger::new(&config, &[2; N_MARKET_FAMILIES]);
        ledger.place(&entry(90, 1, 7, 2000, 1024));
        ledger.place(&entry(30, 1, 3, 3000, 2048));
        ledger.place(&entry(10, 0, 1, 1000, 512));
        let mut caps = [2; N_MARKET_FAMILIES];
        caps[0] = 1; // withdraws slot 1 only
        let displaced = ledger.withdraw(&caps);
        assert_eq!(displaced.len(), 2);
        assert!(displaced[0].completion_nanos < displaced[1].completion_nanos);
        // A released completion no longer counts as a displaceable
        // resident.
        ledger.release(&entry(10, 0, 1, 1000, 512));
        caps[0] = 0;
        assert!(
            ledger.withdraw(&caps).is_empty(),
            "slot 0 drained before drop"
        );
    }

    #[test]
    fn release_distinguishes_same_index_twins() {
        // A straggling attempt and its hedge share one invocation index
        // and may land on the same slot. Releasing the hedge must leave
        // the original attempt resident — not an arbitrary same-index
        // twin — or a later withdrawal misclassifies the survivor.
        let config = MarketConfig {
            vms_per_family: 2,
            ..MarketConfig::default()
        };
        let mut ledger = SpotLedger::new(&config, &[2; N_MARKET_FAMILIES]);
        let original = entry(90, 1, 7, 1000, 512);
        let mut hedge = entry(50, 1, 7, 1000, 512);
        hedge.meta = InFlight::meta_of(RUN_HEDGE, 2);
        ledger.place(&original);
        ledger.place(&hedge);
        // The hedge wins the race and completes first.
        ledger.release(&hedge);
        // Supply withdraws the slot: the displaced record must be the
        // still-running original attempt, not the released hedge.
        let mut caps = [2; N_MARKET_FAMILIES];
        caps[0] = 1;
        let displaced = ledger.withdraw(&caps);
        assert_eq!(displaced.len(), 1);
        assert_eq!(displaced[0].completion_nanos, 90);
        assert_eq!(displaced[0].run_kind(), RUN_NORMAL);
    }

    #[test]
    fn notified_slots_stop_admitting_and_clear_at_withdrawal() {
        let config = MarketConfig {
            vms_per_family: 2,
            zones: ZoneConfig {
                n_zones: 2,
                notice_secs: 5.0,
                ..ZoneConfig::SINGLE
            },
            ..MarketConfig::default()
        };
        let width = config.width();
        let mut ledger = SpotLedger::new(&config, &vec![2u32; width]);
        // Resident on zone 0, family 0, slot 1 (flat 1).
        ledger.place(&entry(40, 1, 4, 2000, 1024));
        // Announce: zone 0 family 0 drops to 1 VM → flat slot 1 notified.
        let mut next = vec![2u32; width];
        next[0] = 1;
        assert_eq!(ledger.mark_notified(&next), 1, "one resident notified");
        assert!(ledger.is_notified(1));
        // Re-marking the same pending drop is idempotent.
        assert_eq!(ledger.mark_notified(&next), 0);
        // Admission skips the notified slot: family 0 requests land on
        // flat 0 or zone 1's lane instead.
        let fit = ledger.best_fit(0, 1000, 256).unwrap();
        assert_ne!(fit, 1);
        // Migration from the notified slot targets the other zone only.
        let target = ledger.migrate_target(1, 2000, 1024).unwrap();
        assert_eq!(ledger.zone_of(target), 1);
        // The announced withdrawal clears the flag.
        let displaced = ledger.withdraw(&next);
        assert_eq!(displaced.len(), 1);
        assert!(!ledger.is_notified(1));
    }

    #[test]
    fn migration_targets_exclude_the_failing_zone() {
        let config = MarketConfig {
            vms_per_family: 2,
            zones: ZoneConfig {
                n_zones: 2,
                ..ZoneConfig::SINGLE
            },
            ..MarketConfig::default()
        };
        let width = config.width();
        let ledger = SpotLedger::new(&config, &vec![2u32; width]);
        // From zone 0 the best fit lands in zone 1 (lowest flat index of
        // the empty lane), never back into zone 0.
        let from = 0u32;
        let target = ledger.migrate_target(from, 2000, 1024).unwrap();
        assert_eq!(ledger.zone_of(target), 1);
        assert_eq!(target % (config.vms_per_family as u32), 0);
        // Single-zone markets have nowhere to fail over to.
        let single = SpotLedger::new(&MarketConfig::default(), &[8u32; N_MARKET_FAMILIES]);
        assert_eq!(single.migrate_target(0, 1000, 256), None);
    }

    #[test]
    fn admission_policies_gate_on_utilization() {
        assert!(AdmissionPolicy::Greedy.admits(1.0));
        let headroom = AdmissionPolicy::Headroom {
            max_utilization: 0.8,
        };
        assert!(headroom.admits(0.0));
        assert!(headroom.admits(0.79));
        assert!(!headroom.admits(0.8));
        assert!(!headroom.admits(1.0));
        assert!(!AdmissionPolicy::Headroom {
            max_utilization: 0.0
        }
        .admits(0.0));
        assert_eq!(AdmissionPolicy::Greedy.label(), "greedy");
        assert_eq!(headroom.label(), "headroom");
    }

    #[test]
    fn admission_boundaries_are_exact_and_nan_free() {
        // Utilization exactly at the ceiling is a rejection: the policy
        // admits strictly below it, so a full-to-the-ceiling market never
        // over-admits by an epsilon.
        for ceiling in [0.25, 0.5, 0.85, 1.0] {
            let p = AdmissionPolicy::Headroom {
                max_utilization: ceiling,
            };
            assert!(!p.admits(ceiling), "exactly-at-ceiling must reject");
            assert!(p.admits(ceiling - 1e-12));
        }
        // A ceiling of 1.0 still admits any real sub-saturation load;
        // greedy admits everything, even a saturated market.
        assert!(AdmissionPolicy::Headroom {
            max_utilization: 1.0
        }
        .admits(0.999_999));
        assert!(AdmissionPolicy::Greedy.admits(1.0));
        // NaN utilization can never sneak a request past a headroom
        // policy (`NaN < x` is false), and the decision itself is a
        // plain bool — no NaN propagates out of admission control.
        assert!(!AdmissionPolicy::Headroom {
            max_utilization: 0.9
        }
        .admits(f64::NAN));
        assert!(AdmissionPolicy::Greedy.admits(f64::NAN));
    }

    #[test]
    fn demand_pricing_endpoints_bound_the_admission_bill() {
        // The discount the ledger bills admissions at: an empty market
        // charges the full spot discount, a saturated one list price,
        // for any base fraction.
        for fraction in [0.0, 0.2, 0.5, 1.0] {
            let spot = SpotPricing { fraction };
            assert_eq!(spot.demand_fraction(0.0), fraction, "empty market");
            assert_eq!(spot.demand_fraction(1.0), 1.0, "saturated market");
        }
        // The zero-capacity ledger reads as saturated, so its admissions
        // (there are none — nothing fits) would bill at list price.
        let ledger = SpotLedger::new(&MarketConfig::default(), &[0; N_MARKET_FAMILIES]);
        assert_eq!(ledger.utilization(), 1.0);
        assert_eq!(
            SpotPricing::PAPER_DEFAULT.demand_fraction(ledger.utilization()),
            1.0
        );
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(MarketConfig {
            vms_per_family: 0,
            ..MarketConfig::default()
        }
        .validate()
        .is_err());
        assert!(MarketConfig {
            supply: SupplyProcess {
                step_secs: 0.0,
                ..SupplyProcess::STEADY
            },
            ..MarketConfig::default()
        }
        .validate()
        .is_err());
        assert!(MarketConfig {
            supply: SupplyProcess {
                min_fraction: 1.5,
                ..SupplyProcess::STEADY
            },
            ..MarketConfig::default()
        }
        .validate()
        .is_err());
        assert!(MarketConfig {
            admission: AdmissionPolicy::Headroom {
                max_utilization: f64::NAN
            },
            ..MarketConfig::default()
        }
        .validate()
        .is_err());
        for bad in [
            ZoneConfig {
                n_zones: 0,
                ..ZoneConfig::SINGLE
            },
            ZoneConfig {
                notice_secs: -1.0,
                ..ZoneConfig::SINGLE
            },
            ZoneConfig {
                shock: 1.5,
                ..ZoneConfig::SINGLE
            },
            ZoneConfig {
                migration_rebill: f64::INFINITY,
                ..ZoneConfig::SINGLE
            },
        ] {
            assert!(MarketConfig {
                zones: bad,
                ..MarketConfig::default()
            }
            .validate()
            .is_err());
        }
        assert!(MarketConfig::default().validate().is_ok());
    }

    #[test]
    fn carry_equality_is_exact() {
        let entry = InFlight {
            completion_nanos: 10,
            slot: 1,
            idx: 0,
            epoch: 3,
            milli: 500,
            mib: 256,
            list_cost_usd: 0.25,
            meta: InFlight::meta_of(RUN_NORMAL, 1),
        };
        let mut other = entry;
        other.epoch = 0; // epoch is not part of the carried identity
        assert!(carry_eq(&[entry], &[other]));
        other.list_cost_usd = 0.26;
        assert!(!carry_eq(&[entry], &[other]));
        assert!(!carry_eq(&[entry], &[]));
        let mut other = entry;
        other.meta = InFlight::meta_of(RUN_ABORT, 2);
        assert!(!carry_eq(&[entry], &[other]), "meta is carried identity");
    }
}

//! The shared cross-function spot market: supply process, capacity
//! ledger, and admission controller.
//!
//! The per-function warm pools of the earlier fleet model made sharding
//! exact but assumed every function owns private idle capacity. Real
//! providers harvest a *shared, fluctuating* pool ("Accelerating
//! Serverless Computing by Harvesting Idle Resources", "Serverless in
//! the Wild"): functions contend for the same idle VMs, supply grows and
//! shrinks as the provider's first-party load moves, and placements can
//! be reclaimed mid-flight. This module models that market:
//!
//! - [`SupplyProcess`]: a seeded, piecewise-constant capacity process.
//!   Every `step_secs` the per-family warm-VM count is redrawn uniformly
//!   between `min_fraction · vms_per_family` and `vms_per_family`. The
//!   whole process is precomputed into a [`SupplySchedule`] — a pure
//!   function of `(config, horizon)` — so any replay window can
//!   reconstruct the supply in effect at any instant without sequential
//!   state.
//! - [`SpotLedger`]: the live market state during a replay — per-family
//!   VM slots with free capacity, the available prefix dictated by the
//!   current supply step, and market-wide occupancy counters. Supply
//!   drops *withdraw* the highest-indexed slots of a family; in-flight
//!   placements on withdrawn slots are **demoted** (live-migrated to
//!   on-demand and re-billed at list price). Withdrawn slots are
//!   invalidated by bumping a per-slot epoch, so stale completion-heap
//!   entries are discovered lazily in `O(1)` per event.
//! - [`AdmissionPolicy`]: the provider-level controller deciding whether
//!   a spot placement request may even try the ledger. [`AdmissionPolicy::Greedy`]
//!   admits whenever capacity fits; [`AdmissionPolicy::Headroom`]
//!   rejects once market utilization crosses a threshold, keeping slack
//!   so supply drops demote fewer in-flight placements.
//!
//! Admitted placements are priced through
//! [`SpotPricing::demand_fraction`]: the discount shrinks as the market
//! fills, so a tight market both rejects more and saves less per
//! admission.

use freedom_cluster::{InstanceFamily, InstanceSize, InstanceType};
use freedom_pricing::SpotPricing;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{FreedomError, Result};

/// The instance families backed by warm market capacity, in the paper's
/// search-space order. Family indices throughout the market refer to
/// positions in this array.
pub const MARKET_FAMILIES: [InstanceFamily; 6] = InstanceFamily::SEARCH_SPACE;

/// Number of families in the market.
pub const N_MARKET_FAMILIES: usize = MARKET_FAMILIES.len();

/// Index of `family` in [`MARKET_FAMILIES`], if it is marketable.
pub fn family_index(family: InstanceFamily) -> Option<usize> {
    MARKET_FAMILIES.iter().position(|&f| f == family)
}

/// A seeded piecewise-constant supply process for the shared market.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupplyProcess {
    /// Interval between capacity redraws, in seconds.
    pub step_secs: f64,
    /// Lower bound of the available fraction of each family's maximum
    /// pool, in `[0, 1]`. `1.0` means steady full supply (no redraws).
    pub min_fraction: f64,
    /// Seed of the redraw stream (independent of the trace seed).
    pub seed: u64,
}

impl SupplyProcess {
    /// Steady full supply: the market never fluctuates.
    pub const STEADY: SupplyProcess = SupplyProcess {
        step_secs: 60.0,
        min_fraction: 1.0,
        seed: 0,
    };

    fn validate(&self) -> Result<()> {
        if !self.step_secs.is_finite() || self.step_secs <= 0.0 {
            return Err(FreedomError::InvalidArgument(format!(
                "supply step must be positive, got {}s",
                self.step_secs
            )));
        }
        if !self.min_fraction.is_finite() || !(0.0..=1.0).contains(&self.min_fraction) {
            return Err(FreedomError::InvalidArgument(format!(
                "supply min fraction must be in [0, 1], got {}",
                self.min_fraction
            )));
        }
        Ok(())
    }
}

/// Provider-level admission control for spot placement requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionPolicy {
    /// Admit any request for which warm capacity fits.
    Greedy,
    /// Admit only while market vCPU utilization stays strictly below
    /// `max_utilization`; beyond it, requests run on-demand even if a
    /// slot would fit. Keeping headroom trades spot share for fewer
    /// demotions when supply contracts.
    Headroom {
        /// Utilization ceiling in `[0, 1]`.
        max_utilization: f64,
    },
}

impl AdmissionPolicy {
    /// Whether a request may try the ledger at the given market
    /// utilization.
    pub fn admits(&self, utilization: f64) -> bool {
        match *self {
            Self::Greedy => true,
            Self::Headroom { max_utilization } => utilization < max_utilization,
        }
    }

    /// Short stable label for report tables.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Greedy => "greedy",
            Self::Headroom { .. } => "headroom",
        }
    }
}

/// Configuration of the shared spot market.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarketConfig {
    /// Maximum warm `.4xlarge` VMs per family, market-wide (shared by
    /// every function in the fleet).
    pub vms_per_family: usize,
    /// How warm capacity fluctuates over the trace.
    pub supply: SupplyProcess,
    /// Provider-level admission control.
    pub admission: AdmissionPolicy,
    /// Base spot pricing; admissions are billed at
    /// [`SpotPricing::demand_fraction`] of list price.
    pub spot: SpotPricing,
}

impl Default for MarketConfig {
    fn default() -> Self {
        Self {
            vms_per_family: 8,
            supply: SupplyProcess::STEADY,
            admission: AdmissionPolicy::Greedy,
            spot: SpotPricing::PAPER_DEFAULT,
        }
    }
}

impl MarketConfig {
    pub(crate) fn validate(&self) -> Result<()> {
        if self.vms_per_family == 0 {
            return Err(FreedomError::InvalidArgument(
                "market needs at least one VM per family".into(),
            ));
        }
        if let AdmissionPolicy::Headroom { max_utilization } = self.admission {
            if !max_utilization.is_finite() || !(0.0..=1.0).contains(&max_utilization) {
                return Err(FreedomError::InvalidArgument(format!(
                    "admission utilization ceiling must be in [0, 1], got {max_utilization}"
                )));
            }
        }
        self.supply.validate()
    }
}

/// One precomputed supply redraw: the per-family available VM counts in
/// effect from `at_nanos` onward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SupplyStep {
    pub at_nanos: u64,
    pub caps: [u32; N_MARKET_FAMILIES],
}

/// The whole supply process materialized over a replay horizon. A pure
/// function of `(MarketConfig, horizon)`, so the sequential engine and
/// every replay window see the same capacity at the same instant.
#[derive(Debug, Clone)]
pub(crate) struct SupplySchedule {
    /// Capacity before the first redraw (the full pool).
    pub base: [u32; N_MARKET_FAMILIES],
    /// Redraws at `step_secs`, `2·step_secs`, …, sorted by time, covering
    /// every step instant `≤ horizon`.
    pub steps: Vec<SupplyStep>,
}

impl SupplySchedule {
    /// Materializes the supply process up to `horizon_nanos` (the last
    /// arrival of the trace being replayed).
    pub fn generate(config: &MarketConfig, horizon_nanos: u64) -> Result<Self> {
        config.validate()?;
        let max = config.vms_per_family as u32;
        let base = [max; N_MARKET_FAMILIES];
        let mut steps = Vec::new();
        if config.supply.min_fraction < 1.0 {
            let mut rng = StdRng::seed_from_u64(config.supply.seed);
            let lo = (config.supply.min_fraction * max as f64).floor() as u32;
            let step_nanos = ((config.supply.step_secs * 1e9) as u64).max(1);
            let mut t = step_nanos;
            while t <= horizon_nanos {
                let mut caps = [0u32; N_MARKET_FAMILIES];
                for cap in &mut caps {
                    *cap = rng.gen_range(lo..max + 1);
                }
                steps.push(SupplyStep { at_nanos: t, caps });
                t += step_nanos;
            }
        }
        Ok(Self { base, steps })
    }

    /// The capacity in effect just before any step at `start_nanos` fires
    /// (i.e. after every step strictly earlier than `start_nanos`), plus
    /// the cursor of the first step a window starting there must process.
    pub fn start_state(&self, start_nanos: u64) -> (usize, [u32; N_MARKET_FAMILIES]) {
        let cursor = self.steps.partition_point(|s| s.at_nanos < start_nanos);
        let caps = if cursor == 0 {
            self.base
        } else {
            self.steps[cursor - 1].caps
        };
        (cursor, caps)
    }
}

/// One in-flight spot placement, as stored in the completion heap and in
/// the carry-over state crossing replay-window boundaries.
///
/// Ordering (and equality) is by `(completion_nanos, slot, idx)`: `slot`
/// is a flat market-wide index so it encodes the family, and `idx` — the
/// invocation's global arrival index — is unique, so ties never cascade
/// to the remaining fields. `epoch` deliberately stays out of the key:
/// the sequential engine and a window reconstructing carried state assign
/// different epochs to the same placement.
#[derive(Debug, Clone, Copy)]
pub(crate) struct InFlight {
    /// Completion time in integer nanoseconds.
    pub completion_nanos: u64,
    /// Flat slot index: `family_index · vms_per_family + slot_in_family`.
    pub slot: u32,
    /// Global arrival index of the invocation (into the merged trace).
    pub idx: u32,
    /// Slot epoch at placement time; a mismatch against the ledger's
    /// current epoch marks the entry stale (its slot was withdrawn and
    /// the placement demoted).
    pub epoch: u32,
    /// Reserved milli-vCPUs.
    pub milli: u32,
    /// Reserved MiB.
    pub mib: u32,
    /// Undiscounted list-price cost of the placement's configuration —
    /// what the invocation is re-billed if demoted.
    pub list_cost_usd: f64,
}

impl InFlight {
    pub(crate) fn key(&self) -> (u64, u32, u32) {
        (self.completion_nanos, self.slot, self.idx)
    }
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Whether two carry-over states are identical — the speculation check of
/// the windowed replay. Entries are canonically sorted (heap-drain
/// order), so element-wise comparison suffices; every field participates,
/// costs bit-for-bit.
pub(crate) fn carry_eq(a: &[InFlight], b: &[InFlight]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.key() == y.key()
                && x.milli == y.milli
                && x.mib == y.mib
                && x.list_cost_usd.to_bits() == y.list_cost_usd.to_bits()
        })
}

/// Word-wise FNV-1a with a splitmix64 finisher — the structural hash
/// behind carry fingerprinting. Reconciliation compares fingerprints
/// first and only falls back to the field-by-field `carry_eq` /
/// `control_state_eq` walk on mismatch, so clean windows verify in
/// O(1). The hash covers exactly the fields those comparators read
/// (notably *excluding* `InFlight::epoch`), keeping `fp(a) == fp(b)`
/// whenever the bit-exact compare would say equal.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;

    pub fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    pub fn write(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(Self::PRIME);
    }

    /// Avalanche finisher so low-entropy field patterns still spread
    /// across all 64 bits.
    pub fn finish(self) -> u64 {
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Hashes a canonically sorted in-flight ledger, field-for-field what
/// [`carry_eq`] compares: length, then per entry the key triple plus
/// reservation and cost bits, epoch excluded.
pub(crate) fn hash_inflight(h: &mut Fnv64, entries: &[InFlight]) {
    h.write(entries.len() as u64);
    for e in entries {
        h.write(e.completion_nanos);
        h.write((u64::from(e.slot) << 32) | u64::from(e.idx));
        h.write((u64::from(e.milli) << 32) | u64::from(e.mib));
        h.write(e.list_cost_usd.to_bits());
    }
}

/// One warm VM slot's free capacity.
#[derive(Debug, Clone, Copy)]
struct VmSlot {
    free_milli: u32,
    free_mib: u32,
}

/// The live market state during a replay: slots, the available prefix per
/// family, epochs for lazy invalidation, and market-wide occupancy.
///
/// Capacity and occupancy are integer milli-vCPU counters, so the
/// utilization driving admission and demand pricing is an exact ratio of
/// integers — deterministic across engines.
#[derive(Debug)]
pub(crate) struct SpotLedger {
    vms_per_family: u32,
    slots: Vec<VmSlot>,
    epochs: Vec<u32>,
    /// Live placements per slot — what a withdrawal demotes. Kept exact
    /// so [`SpotLedger::apply_step`] can report the demotion count at
    /// the supply step itself (the feedback signal the control plane
    /// consumes), instead of waiting for stale heap entries to surface.
    placements: Vec<u32>,
    avail: [u32; N_MARKET_FAMILIES],
    full_milli: u32,
    full_mib: [u32; N_MARKET_FAMILIES],
    capacity_milli: u64,
    occupied_milli: u64,
}

impl SpotLedger {
    /// A fresh (fully idle) ledger under the capacity `caps`.
    pub fn new(config: &MarketConfig, caps: [u32; N_MARKET_FAMILIES]) -> Self {
        let vms = config.vms_per_family as u32;
        let full_milli = InstanceSize::X4Large.vcpus() * 1000;
        let mut full_mib = [0u32; N_MARKET_FAMILIES];
        for (i, &family) in MARKET_FAMILIES.iter().enumerate() {
            full_mib[i] = InstanceType::new(family, InstanceSize::X4Large).memory_mib();
        }
        let mut slots = Vec::with_capacity(N_MARKET_FAMILIES * vms as usize);
        for &mib in &full_mib {
            for _ in 0..vms {
                slots.push(VmSlot {
                    free_milli: full_milli,
                    free_mib: mib,
                });
            }
        }
        let capacity_milli = caps.iter().map(|&c| c as u64 * full_milli as u64).sum();
        Self {
            vms_per_family: vms,
            epochs: vec![0; slots.len()],
            placements: vec![0; slots.len()],
            slots,
            avail: caps,
            full_milli,
            full_mib,
            capacity_milli,
            occupied_milli: 0,
        }
    }

    /// Re-places a carried in-flight entry onto its slot (window-start
    /// reconstruction). The entry's slot is available by construction: it
    /// survived every earlier supply drop.
    pub fn restore(&mut self, entry: &InFlight) {
        let slot = &mut self.slots[entry.slot as usize];
        slot.free_milli -= entry.milli;
        slot.free_mib -= entry.mib;
        self.placements[entry.slot as usize] += 1;
        self.occupied_milli += entry.milli as u64;
    }

    /// Market vCPU utilization in `[0, 1]`; a zero-capacity market reads
    /// as saturated.
    pub fn utilization(&self) -> f64 {
        if self.capacity_milli == 0 {
            1.0
        } else {
            self.occupied_milli as f64 / self.capacity_milli as f64
        }
    }

    /// Current epoch of a flat slot.
    pub fn epoch(&self, slot: u32) -> u32 {
        self.epochs[slot as usize]
    }

    /// Whether a heap entry is still live (its slot was not withdrawn
    /// since placement).
    pub fn is_live(&self, entry: &InFlight) -> bool {
        self.epochs[entry.slot as usize] == entry.epoch
    }

    /// Applies a supply redraw and returns the number of in-flight
    /// placements it demoted. Withdrawing a slot demotes whatever runs
    /// on it: the slot's occupancy leaves the market immediately and its
    /// epoch advances so heap entries pointing at it are discovered stale
    /// when popped. Restored slots come back empty.
    ///
    /// Counting demotions *at the step* (rather than when stale heap
    /// entries surface) is what makes the per-epoch demotion signal a
    /// pure function of simulated time — a window that replays this
    /// instant observes the same count as the sequential engine, so the
    /// control plane's feedback is partition-independent.
    pub fn apply_step(&mut self, caps: &[u32; N_MARKET_FAMILIES]) -> u32 {
        let mut demoted = 0;
        for (f, &new) in caps.iter().enumerate() {
            let old = self.avail[f];
            let base = f as u32 * self.vms_per_family;
            if new < old {
                for k in new..old {
                    let flat = (base + k) as usize;
                    let occupied = (self.full_milli - self.slots[flat].free_milli) as u64;
                    if occupied > 0 {
                        self.occupied_milli -= occupied;
                        self.epochs[flat] += 1;
                        demoted += self.placements[flat];
                        self.placements[flat] = 0;
                        self.slots[flat] = VmSlot {
                            free_milli: self.full_milli,
                            free_mib: self.full_mib[f],
                        };
                    }
                    self.capacity_milli -= self.full_milli as u64;
                }
            } else {
                for _ in old..new {
                    self.capacity_milli += self.full_milli as u64;
                }
            }
            self.avail[f] = new;
        }
        demoted
    }

    /// Best-fit scan over a family's available slots: the least free
    /// vCPUs that still fit, lowest flat index on ties. Returns the flat
    /// slot index.
    pub fn best_fit(&self, family: usize, milli: u32, mib: u32) -> Option<u32> {
        let base = family as u32 * self.vms_per_family;
        let mut best: Option<(u32, u32)> = None; // (free_milli, flat slot)
        for k in 0..self.avail[family] {
            let flat = base + k;
            let slot = self.slots[flat as usize];
            if slot.free_milli >= milli
                && slot.free_mib >= mib
                && best.is_none_or(|(free, _)| slot.free_milli < free)
            {
                best = Some((slot.free_milli, flat));
            }
        }
        best.map(|(_, flat)| flat)
    }

    /// Reserves capacity on a slot returned by [`SpotLedger::best_fit`].
    pub fn place(&mut self, flat: u32, milli: u32, mib: u32) {
        let slot = &mut self.slots[flat as usize];
        slot.free_milli -= milli;
        slot.free_mib -= mib;
        self.placements[flat as usize] += 1;
        self.occupied_milli += milli as u64;
    }

    /// Releases a live completion's capacity back to its slot.
    pub fn release(&mut self, entry: &InFlight) {
        let slot = &mut self.slots[entry.slot as usize];
        slot.free_milli += entry.milli;
        slot.free_mib += entry.mib;
        self.placements[entry.slot as usize] -= 1;
        self.occupied_milli -= entry.milli as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fluctuating() -> MarketConfig {
        MarketConfig {
            vms_per_family: 4,
            supply: SupplyProcess {
                step_secs: 10.0,
                min_fraction: 0.25,
                seed: 7,
            },
            ..MarketConfig::default()
        }
    }

    #[test]
    fn schedule_is_deterministic_and_bounded() {
        let config = fluctuating();
        let horizon = 120_000_000_000; // 120 s
        let a = SupplySchedule::generate(&config, horizon).unwrap();
        let b = SupplySchedule::generate(&config, horizon).unwrap();
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.steps.len(), 12, "one redraw per 10 s step");
        for step in &a.steps {
            assert!(step.at_nanos <= horizon);
            for &cap in &step.caps {
                assert!((1..=4).contains(&cap), "cap {cap} outside [1, 4]");
            }
        }
        // A different supply seed redraws differently.
        let other = SupplySchedule::generate(
            &MarketConfig {
                supply: SupplyProcess {
                    seed: 8,
                    ..config.supply
                },
                ..config
            },
            horizon,
        )
        .unwrap();
        assert_ne!(a.steps, other.steps);
        // Steady supply never steps.
        let steady = SupplySchedule::generate(&MarketConfig::default(), horizon).unwrap();
        assert!(steady.steps.is_empty());
        assert_eq!(steady.base, [8; N_MARKET_FAMILIES]);
    }

    #[test]
    fn start_state_is_a_prefix_function() {
        let config = fluctuating();
        let schedule = SupplySchedule::generate(&config, 100_000_000_000).unwrap();
        let (c0, caps0) = schedule.start_state(0);
        assert_eq!((c0, caps0), (0, schedule.base));
        // A start exactly on a step instant leaves that step unprocessed.
        let t1 = schedule.steps[0].at_nanos;
        let (c1, caps1) = schedule.start_state(t1);
        assert_eq!((c1, caps1), (0, schedule.base));
        let (c2, caps2) = schedule.start_state(t1 + 1);
        assert_eq!((c2, caps2), (1, schedule.steps[0].caps));
    }

    #[test]
    fn withdrawal_demotes_occupancy_and_restores_empty_slots() {
        let config = fluctuating();
        let mut ledger = SpotLedger::new(&config, [4; N_MARKET_FAMILIES]);
        let full = ledger.capacity_milli;
        assert_eq!(ledger.utilization(), 0.0);

        // Occupy the last slot of family 0 (flat index 3).
        let slot = 3u32;
        ledger.place(slot, 2000, 1024);
        assert!(ledger.utilization() > 0.0);
        let epoch_before = ledger.epoch(slot);

        // Drop family 0 to 2 VMs: slots 2..4 withdrawn, occupancy leaves,
        // and the step reports exactly one demoted placement.
        let mut caps = [4; N_MARKET_FAMILIES];
        caps[0] = 2;
        assert_eq!(ledger.apply_step(&caps), 1);
        assert_eq!(ledger.occupied_milli, 0);
        assert_eq!(ledger.capacity_milli, full - 2 * ledger.full_milli as u64);
        assert_eq!(ledger.epoch(slot), epoch_before + 1, "withdrawn+occupied");
        assert_eq!(ledger.epoch(2), 0, "idle withdrawn slot keeps its epoch");

        // Bring it back: the slot returns empty, nothing left to demote.
        assert_eq!(ledger.apply_step(&[4; N_MARKET_FAMILIES]), 0);
        assert_eq!(ledger.capacity_milli, full);
        assert_eq!(ledger.slots[slot as usize].free_milli, ledger.full_milli);
    }

    #[test]
    fn best_fit_prefers_fullest_fitting_slot() {
        let config = MarketConfig {
            vms_per_family: 3,
            ..MarketConfig::default()
        };
        let mut ledger = SpotLedger::new(&config, [3; N_MARKET_FAMILIES]);
        // Slot 0 nearly full, slot 1 half full, slot 2 empty.
        ledger.place(0, 15_000, 1024);
        ledger.place(1, 8_000, 1024);
        // A 2-vCPU request fits slots 1 and 2; best-fit picks 1.
        assert_eq!(ledger.best_fit(0, 2000, 512), Some(1));
        // A 10-vCPU request only fits slot 2.
        assert_eq!(ledger.best_fit(0, 10_000, 512), Some(2));
        // Nothing fits 17 vCPUs.
        assert_eq!(ledger.best_fit(0, 17_000, 512), None);
        // Availability gates the scan: with only slot 0 available the
        // 2-vCPU request has nowhere to go. The withdrawal demotes the
        // one placement living on slot 1.
        let mut caps = [3; N_MARKET_FAMILIES];
        caps[0] = 1;
        assert_eq!(ledger.apply_step(&caps), 1);
        assert_eq!(ledger.best_fit(0, 2000, 512), None);
    }

    #[test]
    fn step_demotion_count_is_per_placement_not_per_slot() {
        // Two placements packed onto one slot are two demotions.
        let config = MarketConfig {
            vms_per_family: 2,
            ..MarketConfig::default()
        };
        let mut ledger = SpotLedger::new(&config, [2; N_MARKET_FAMILIES]);
        ledger.place(1, 2000, 1024);
        ledger.place(1, 3000, 2048);
        ledger.place(0, 1000, 512);
        let mut caps = [2; N_MARKET_FAMILIES];
        caps[0] = 1; // withdraws slot 1 only
        assert_eq!(ledger.apply_step(&caps), 2);
        // A released completion no longer counts as a demotable placement.
        let entry = InFlight {
            completion_nanos: 5,
            slot: 0,
            idx: 9,
            epoch: 0,
            milli: 1000,
            mib: 512,
            list_cost_usd: 0.1,
        };
        ledger.release(&entry);
        caps[0] = 0;
        assert_eq!(ledger.apply_step(&caps), 0, "slot 0 drained before drop");
    }

    #[test]
    fn admission_policies_gate_on_utilization() {
        assert!(AdmissionPolicy::Greedy.admits(1.0));
        let headroom = AdmissionPolicy::Headroom {
            max_utilization: 0.8,
        };
        assert!(headroom.admits(0.0));
        assert!(headroom.admits(0.79));
        assert!(!headroom.admits(0.8));
        assert!(!headroom.admits(1.0));
        assert!(!AdmissionPolicy::Headroom {
            max_utilization: 0.0
        }
        .admits(0.0));
        assert_eq!(AdmissionPolicy::Greedy.label(), "greedy");
        assert_eq!(headroom.label(), "headroom");
    }

    #[test]
    fn admission_boundaries_are_exact_and_nan_free() {
        // Utilization exactly at the ceiling is a rejection: the policy
        // admits strictly below it, so a full-to-the-ceiling market never
        // over-admits by an epsilon.
        for ceiling in [0.25, 0.5, 0.85, 1.0] {
            let p = AdmissionPolicy::Headroom {
                max_utilization: ceiling,
            };
            assert!(!p.admits(ceiling), "exactly-at-ceiling must reject");
            assert!(p.admits(ceiling - 1e-12));
        }
        // A ceiling of 1.0 still admits any real sub-saturation load;
        // greedy admits everything, even a saturated market.
        assert!(AdmissionPolicy::Headroom {
            max_utilization: 1.0
        }
        .admits(0.999_999));
        assert!(AdmissionPolicy::Greedy.admits(1.0));
        // NaN utilization can never sneak a request past a headroom
        // policy (`NaN < x` is false), and the decision itself is a
        // plain bool — no NaN propagates out of admission control.
        assert!(!AdmissionPolicy::Headroom {
            max_utilization: 0.9
        }
        .admits(f64::NAN));
        assert!(AdmissionPolicy::Greedy.admits(f64::NAN));
    }

    #[test]
    fn demand_pricing_endpoints_bound_the_admission_bill() {
        // The discount the ledger bills admissions at: an empty market
        // charges the full spot discount, a saturated one list price,
        // for any base fraction.
        for fraction in [0.0, 0.2, 0.5, 1.0] {
            let spot = SpotPricing { fraction };
            assert_eq!(spot.demand_fraction(0.0), fraction, "empty market");
            assert_eq!(spot.demand_fraction(1.0), 1.0, "saturated market");
        }
        // The zero-capacity ledger reads as saturated, so its admissions
        // (there are none — nothing fits) would bill at list price.
        let ledger = SpotLedger::new(&MarketConfig::default(), [0; N_MARKET_FAMILIES]);
        assert_eq!(ledger.utilization(), 1.0);
        assert_eq!(
            SpotPricing::PAPER_DEFAULT.demand_fraction(ledger.utilization()),
            1.0
        );
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(MarketConfig {
            vms_per_family: 0,
            ..MarketConfig::default()
        }
        .validate()
        .is_err());
        assert!(MarketConfig {
            supply: SupplyProcess {
                step_secs: 0.0,
                ..SupplyProcess::STEADY
            },
            ..MarketConfig::default()
        }
        .validate()
        .is_err());
        assert!(MarketConfig {
            supply: SupplyProcess {
                min_fraction: 1.5,
                ..SupplyProcess::STEADY
            },
            ..MarketConfig::default()
        }
        .validate()
        .is_err());
        assert!(MarketConfig {
            admission: AdmissionPolicy::Headroom {
                max_utilization: f64::NAN
            },
            ..MarketConfig::default()
        }
        .validate()
        .is_err());
        assert!(MarketConfig::default().validate().is_ok());
    }

    #[test]
    fn carry_equality_is_exact() {
        let entry = InFlight {
            completion_nanos: 10,
            slot: 1,
            idx: 0,
            epoch: 3,
            milli: 500,
            mib: 256,
            list_cost_usd: 0.25,
        };
        let mut other = entry;
        other.epoch = 0; // epoch is not part of the carried identity
        assert!(carry_eq(&[entry], &[other]));
        other.list_cost_usd = 0.26;
        assert!(!carry_eq(&[entry], &[other]));
        assert!(!carry_eq(&[entry], &[]));
    }
}

//! `freedom` — the paper's core contribution as a library.
//!
//! *With Great Freedom Comes Great Opportunity* (EuroSys 2023) argues that
//! serverless platforms should decouple CPU, memory, and instance-type
//! allocation, and shows how black-box optimization turns the resulting
//! 288-point configuration space (Table 1) into simple user-facing choices.
//! This crate assembles the substrates into that system:
//!
//! - [`strategies`]: the four §4.1 allocation strategies (Fixed CPU,
//!   Prop. CPU, Decoupled (m5), Decoupled) with their billing rules;
//! - [`Autotuner`]: offline and online optimization of a deployed function
//!   over a live [`freedom_faas::Gateway`] (§5);
//! - [`interfaces`]: the three §6.1 user interfaces — predicted Pareto
//!   front, weighted multi-objective, hierarchical multi-objective;
//! - [`provider`]: the §4.2/§6.2 provider-side machinery — alternative
//!   instance-type counting (Table 3) and the idle-capacity planner that
//!   trades ≤θ execution time for spot-priced instance types (Figure 15),
//!   emitting both placements and a market admission policy;
//! - [`market`] and [`fleet`]: the shared cross-function spot market
//!   (supply process, capacity ledger, admission control) and the
//!   windowed trace replay that simulates a whole fleet against it;
//! - [`stream`]: the constant-memory trace pipeline — resumable
//!   per-function event cursors ([`stream::StreamTrace`]) replayed by
//!   `FleetSimulator::run_stream` with peak memory O(functions +
//!   in-flight) instead of O(total arrivals);
//! - [`faults`]: seeded fault-injection plans (zone outages, supply
//!   shocks, dropped preemption notices) expanded into simulated-time
//!   events the market schedule composes, so every fault scenario is a
//!   pure function of its seed;
//! - [`retry`]: invocation-level failure semantics — seeded per-attempt
//!   transient faults ([`faults::TransientFault`]) absorbed by a
//!   [`retry::RetryPolicy`]: exponential backoff with deterministic
//!   jitter, per-family token-bucket retry budgets in simulated time,
//!   hedged re-issue of stragglers, dead-letter accounting, and a
//!   brownout mode that sheds retries before fresh arrivals under
//!   retry-pressure overload;
//! - [`snapshot`]: versioned crash-resume snapshots — the stream
//!   checkpoint plus the windowed carry serialized at epoch boundaries
//!   so a killed replay resumes bit-identically;
//! - [`telemetry`]: the zero-allocation observability layer — the
//!   replay engines are generic over a
//!   [`Recorder`](telemetry::Recorder) (noop by default, monomorphized
//!   away) that collects preallocated counters, log2 latency/value
//!   histograms, and simulated-time + wall-time span traces, exported
//!   as JSONL snapshots, Chrome trace-event JSON, or a terminal
//!   summary; see the "observability contract" in
//!   `crates/core/README.md`;
//! - [`controller`]: the closed-loop control plane — per-epoch
//!   [`Observation`](controller::Observation)s feed a
//!   [`Controller`](controller::Controller) that revises admission
//!   control (PID on the demotion rate) or re-plans placements online
//!   from observed latencies through the surrogate stack.
//!
//! # Examples
//!
//! ```
//! use freedom::Autotuner;
//! use freedom_optimizer::Objective;
//! use freedom_surrogates::SurrogateKind;
//! use freedom_workloads::FunctionKind;
//!
//! // Autotune faceblur's resource configuration for execution time.
//! let tuner = Autotuner::new(SurrogateKind::Gp);
//! let outcome = tuner
//!     .tune_offline(
//!         FunctionKind::Faceblur,
//!         &FunctionKind::Faceblur.default_input(),
//!         Objective::ExecutionTime,
//!         42,
//!     )
//!     .unwrap();
//! let best = outcome.run.best_feasible().unwrap();
//! assert!(!best.failed);
//! ```

mod autotuner;
pub mod controller;
mod error;
pub mod faults;
pub mod fleet;
pub mod interfaces;
pub mod market;
pub mod provider;
pub mod retry;
pub mod snapshot;
pub mod strategies;
pub mod stream;
pub mod trace;
mod wheel;

pub use freedom_telemetry as telemetry;

pub use autotuner::{Autotuner, GatewayEvaluator, TuneOutcome};
pub use error::FreedomError;
pub use strategies::AllocationStrategy;

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, FreedomError>;

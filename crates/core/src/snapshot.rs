//! Versioned crash-resume snapshots for the streaming fleet replay.
//!
//! `FleetSimulator::run_stream_resumable` chains exact-carry windows
//! sequentially and, at every window (epoch) boundary, hands the caller
//! a [`ReplaySnapshot`]: the trace stream's resumable position
//! ([`crate::stream::StreamCheckpoint`]), the carried simulation state
//! (in-flight ledger, controller state, partial observation epoch), and
//! the concatenated per-invocation metering prefix. Feeding the
//! snapshot back as the `resume` argument replays the remaining windows
//! and produces a [`crate::fleet::FleetReport`] **bit-identical** to an
//! uninterrupted run — kill the process at any epoch, reload the last
//! snapshot, and the report cannot tell.
//!
//! # Wire format
//!
//! Snapshots serialize to a hand-rolled little-endian binary layout (no
//! external serialization crates): magic, [`SNAPSHOT_VERSION`], a replay
//! fingerprint (strategy + config + trace shape + cadence, so a snapshot
//! cannot silently resume a *different* replay), then the epoch header
//! and the length-prefixed checkpoint/carry/metering sections, closed by
//! a trailing FNV-64 checksum over every preceding byte. Floats travel
//! as IEEE-754 bit patterns — bit-identity survives the disk round-trip
//! by construction. Decoding validates the checksum first, then magic,
//! version, and exact length; truncation, bit flips, and version skew
//! are each a clean [`FreedomError::InvalidArgument`], never a panic or
//! a partial state.

use std::path::Path;

use crate::fleet::{Carry, WindowMetering};
use crate::stream::StreamCheckpoint;
use crate::{FreedomError, Result};

/// Current snapshot wire-format version. Bumped on any layout change;
/// decoders reject other versions rather than guessing. Version 2 added
/// the file index to CSV stream checkpoints (multi-file traces); version
/// 3 added the pending-retry heap and retry-budget carry state plus the
/// trailing FNV-64 integrity checksum.
pub const SNAPSHOT_VERSION: u32 = 3;

/// File magic: "FDSN" little-endian.
const MAGIC: u32 = u32::from_le_bytes(*b"FDSN");

/// FNV-1a 64-bit over `bytes` — the snapshot's integrity checksum. Not
/// cryptographic; it exists to turn torn writes and bit rot into clean
/// decode errors instead of silently resuming corrupt state.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A resumable position in a streaming fleet replay, taken at a window
/// (epoch) boundary. Opaque outside the crate: produce one with
/// `FleetSimulator::run_stream_resumable`'s snapshot callback, persist
/// it with [`ReplaySnapshot::write_to`] (or [`ReplaySnapshot::to_bytes`]),
/// and feed it back as the `resume` argument after a crash.
#[derive(Debug, Clone)]
pub struct ReplaySnapshot {
    /// Wire-format version this snapshot was encoded with.
    pub(crate) version: u32,
    /// Fingerprint of the replay (strategy, config, fleet shape, trace
    /// shape, snapshot cadence) this position belongs to.
    pub(crate) fingerprint: u64,
    /// Next window index to simulate: windows `0..epoch` are folded
    /// into `metering`, the stream checkpoint sits at the first event
    /// of window `epoch`.
    pub(crate) epoch: u64,
    /// Snapshot cadence in integer nanoseconds (the window size).
    pub(crate) window_nanos: u64,
    /// Trace events consumed by the folded prefix.
    pub(crate) events_consumed: u64,
    /// The trace stream's position at the boundary.
    pub(crate) checkpoint: StreamCheckpoint,
    /// Everything crossing the boundary: in-flight ledger, controller
    /// state, partial observation epoch.
    pub(crate) carry: Carry,
    /// Concatenated per-invocation metering of windows `0..epoch`.
    pub(crate) metering: WindowMetering,
}

impl ReplaySnapshot {
    /// Next window index to simulate on resume.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Trace events already consumed by the snapshotted prefix.
    pub fn events_consumed(&self) -> u64 {
        self.events_consumed
    }

    /// Snapshot cadence (window size) in integer nanoseconds.
    pub fn window_nanos(&self) -> u64 {
        self.window_nanos
    }

    /// Fingerprint of the replay this snapshot belongs to; resuming
    /// under a different strategy/config/trace is rejected.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Serializes the snapshot to its versioned wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Wire::new();
        w.u32(MAGIC);
        w.u32(self.version);
        w.u64(self.fingerprint);
        w.u64(self.epoch);
        w.u64(self.window_nanos);
        w.u64(self.events_consumed);
        self.checkpoint.save(&mut w);
        self.carry.save(&mut w);
        self.metering.save(&mut w);
        let mut bytes = w.into_bytes();
        let checksum = fnv64(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        bytes
    }

    /// Decodes a snapshot, validating the trailing checksum first, then
    /// magic, version, and exact length.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let Some(body_len) = bytes.len().checked_sub(8) else {
            return Err(FreedomError::InvalidArgument(
                "snapshot: too short to hold the integrity checksum".into(),
            ));
        };
        let stored = u64::from_le_bytes(bytes[body_len..].try_into().unwrap());
        if stored != fnv64(&bytes[..body_len]) {
            return Err(FreedomError::InvalidArgument(
                "snapshot: checksum mismatch (truncated, torn, or bit-flipped)".into(),
            ));
        }
        let mut r = Unwire::new(&bytes[..body_len]);
        if r.u32()? != MAGIC {
            return Err(FreedomError::InvalidArgument(
                "snapshot: bad magic (not a replay snapshot)".into(),
            ));
        }
        let version = r.u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(FreedomError::InvalidArgument(format!(
                "snapshot: version {version} is not the supported {SNAPSHOT_VERSION}"
            )));
        }
        let snap = Self {
            version,
            fingerprint: r.u64()?,
            epoch: r.u64()?,
            window_nanos: r.u64()?,
            events_consumed: r.u64()?,
            checkpoint: StreamCheckpoint::load(&mut r)?,
            carry: Carry::load(&mut r)?,
            metering: WindowMetering::load(&mut r)?,
        };
        r.finish()?;
        Ok(snap)
    }

    /// Writes the snapshot to `path` atomically: encode to a sibling
    /// temporary file, then rename over the target — a crash mid-write
    /// leaves either the previous snapshot or none, never a torn one.
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        let io_err = |what: &str, e: std::io::Error| {
            FreedomError::InvalidArgument(format!("snapshot {what} {}: {e}", path.display()))
        };
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".tmp.{}", std::process::id()));
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.to_bytes()).map_err(|e| io_err("write", e))?;
        std::fs::rename(&tmp, path).map_err(|e| {
            std::fs::remove_file(&tmp).ok();
            io_err("rename", e)
        })
    }

    /// Reads and decodes a snapshot previously written with
    /// [`ReplaySnapshot::write_to`].
    pub fn read_from(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| {
            FreedomError::InvalidArgument(format!("snapshot read {}: {e}", path.display()))
        })?;
        Self::from_bytes(&bytes)
    }
}

/// Little-endian byte writer for the snapshot wire format.
pub(crate) struct Wire {
    buf: Vec<u8>,
}

impl Wire {
    pub(crate) fn new() -> Self {
        Self { buf: Vec::new() }
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Floats travel as IEEE-754 bit patterns: the round-trip is the
    /// identity on every value, NaN payloads and signed zeros included.
    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Length prefix for a following sequence.
    pub(crate) fn len(&mut self, n: usize) {
        self.u64(n as u64);
    }
}

/// Checked little-endian reader over a snapshot byte buffer.
pub(crate) struct Unwire<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Unwire<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let Some(end) = end else {
            return Err(FreedomError::InvalidArgument(
                "snapshot: truncated (unexpected end of data)".into(),
            ));
        };
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(FreedomError::InvalidArgument(format!(
                "snapshot: invalid bool byte {v}"
            ))),
        }
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A length prefix, sanity-capped so a corrupt prefix cannot drive
    /// a giant pre-allocation: every element of every sequence in the
    /// format occupies at least one byte, so a plausible length never
    /// exceeds the bytes remaining.
    pub(crate) fn len(&mut self) -> Result<usize> {
        let n = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n > remaining {
            return Err(FreedomError::InvalidArgument(format!(
                "snapshot: length prefix {n} exceeds the {remaining} bytes remaining"
            )));
        }
        Ok(n as usize)
    }

    /// Requires the buffer to be fully consumed.
    pub(crate) fn finish(&self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(FreedomError::InvalidArgument(format!(
                "snapshot: {} trailing bytes after the decoded state",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trips_every_primitive() {
        let mut w = Wire::new();
        w.u8(0xAB);
        w.bool(true);
        w.bool(false);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 7);
        w.f64(-0.0);
        w.f64(f64::from_bits(0x7FF8_0000_0000_1234)); // NaN payload
        w.len(3);
        w.u8(1);
        w.u8(2);
        w.u8(3);
        let bytes = w.into_bytes();
        let mut r = Unwire::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 7);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap().to_bits(), 0x7FF8_0000_0000_1234);
        let n = r.len().unwrap();
        assert_eq!(n, 3);
        for expected in 1..=3u8 {
            assert_eq!(r.u8().unwrap(), expected);
        }
        // Exhaustion and truncation are clean errors:
        assert!(r.finish().is_ok());
        assert!(r.u8().is_err());
        let mut r2 = Unwire::new(&bytes[..2]);
        r2.u8().unwrap();
        assert!(r2.u32().is_err());
    }

    /// Seals a raw body with the trailing checksum the decoder expects,
    /// so header-validation tests get past the integrity layer.
    fn sealed(body: Vec<u8>) -> Vec<u8> {
        let mut bytes = body;
        let checksum = fnv64(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        bytes
    }

    #[test]
    fn corrupt_headers_are_rejected() {
        assert!(ReplaySnapshot::from_bytes(b"").is_err());
        assert!(ReplaySnapshot::from_bytes(b"NOPE").is_err());
        // Wrong magic and version skew each fail cleanly even when the
        // checksum itself is intact.
        let mut w = Wire::new();
        w.u32(u32::from_le_bytes(*b"XXXX"));
        w.u32(SNAPSHOT_VERSION);
        assert!(ReplaySnapshot::from_bytes(&sealed(w.into_bytes())).is_err());
        let mut w = Wire::new();
        w.u32(MAGIC);
        w.u32(SNAPSHOT_VERSION + 1);
        assert!(ReplaySnapshot::from_bytes(&sealed(w.into_bytes())).is_err());
        // A giant length prefix fails cleanly instead of allocating.
        let mut w = Wire::new();
        w.u64(u64::MAX);
        let bytes = w.into_bytes();
        assert!(Unwire::new(&bytes).len().is_err());
    }

    #[test]
    fn every_single_bit_flip_breaks_the_checksum() {
        // A sealed header: any one-bit corruption anywhere in the file —
        // body or checksum — must be rejected before decoding begins.
        let mut w = Wire::new();
        w.u32(MAGIC);
        w.u32(SNAPSHOT_VERSION);
        w.u64(0x1234_5678_9abc_def0);
        let bytes = sealed(w.into_bytes());
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[byte] ^= 1 << bit;
                let err =
                    ReplaySnapshot::from_bytes(&flipped).expect_err("bit flip must not decode");
                assert!(
                    format!("{err}").contains("checksum"),
                    "flip at byte {byte} bit {bit} failed past the checksum: {err}"
                );
            }
        }
    }

    #[test]
    fn missing_files_and_bad_paths_are_clean_errors() {
        assert!(ReplaySnapshot::read_from("/nonexistent/replay.snap").is_err());
    }
}

//! The provider's closed-loop control plane.
//!
//! The paper's thesis is that allocation freedom should be exercised
//! *continuously*: the provider picks configurations behind the
//! customer's back, watches what production traffic does to them, and
//! revises — it does not commit to one offline plan. Shabari (delayed
//! decision-making) and "Accelerating Serverless Computing by Harvesting
//! Idle Resources" both locate the win in reacting to observed load
//! in-flight. This module closes that loop over the
//! [fleet replay](crate::fleet):
//!
//! - the engine aggregates an [`Observation`] per control epoch —
//!   market utilization, the admission ledger (admitted / demoted /
//!   rejected), and per-function placement counts — and hands it to a
//!   [`Controller`] at every tick of the control cadence;
//! - [`StaticController`] does nothing: it is the open-loop baseline
//!   (exactly the pre-controller engine) every feedback policy is
//!   scored against;
//! - [`HeadroomPid`] runs a PID loop on the demotion rate: when supply
//!   drops start reclaiming in-flight placements it tightens the
//!   [`AdmissionPolicy`] utilization ceiling, and it relaxes the
//!   ceiling again while the market stays calm;
//! - [`SurrogateRightSizer`] re-fits a per-function surrogate on the
//!   latencies production traffic *actually observed* (warm-start
//!   [`fit_update`](freedom_surrogates::Surrogate::fit_update), batched
//!   [`predict_batch`](freedom_surrogates::Surrogate::predict_batch)
//!   acquisition — the same incremental stack the offline tuner uses)
//!   and re-plans each function's placement order through
//!   [`IdleCapacityPlanner::revise_order`], dropping alternates whose
//!   observed inflation breaks the θ guardrail the offline model
//!   mispredicted;
//! - [`update_brownout`] layers graceful degradation over any of them:
//!   when the epoch's retry pressure (retried / admitted) crosses the
//!   [`BrownoutConfig`] enter threshold, the fleet sheds retries before
//!   fresh arrivals and tightens the admission ceiling, recovering with
//!   hysteresis once pressure falls below the exit threshold.
//!
//! # Determinism
//!
//! Controllers are **pure state machines**: the controller object
//! itself is immutable configuration (shared across replay threads),
//! and every piece of evolving state lives in a [`ControlState`] that
//! the windowed engine carries across window boundaries next to the
//! in-flight ledger. Ticks fire at fixed instants of *simulated* time
//! (multiples of the cadence, capped at the trace horizon), so the
//! sequence of `(state, observation) → state'` transitions — and
//! therefore every admission decision and placement revision — is a
//! pure function of the trace, never of the window partition or thread
//! schedule. [`control_state_eq`] compares two states bit-exactly; it
//! is part of the windowed replay's reconciliation check. The
//! right-sizer's surrogates are *derived* state: they are rebuilt from
//! the carried observation log by replaying the canonical
//! `fit`/`fit_update` call sequence, so a window reconstructing
//! mid-trace holds the same model, bit for bit, as the sequential
//! engine that grew it incrementally.

use freedom_surrogates::{Surrogate, SurrogateKind};

use crate::market::AdmissionPolicy;
use crate::provider::{IdleCapacityPlanner, PlannerConfig};
use crate::retry::BrownoutConfig;
use crate::{FreedomError, Result};

/// Upper bound on controller ticks per replay, mirroring
/// [`crate::trace::MAX_WINDOWS`]: a cadence far below the trace span
/// would spend the whole replay ticking.
pub const MAX_TICKS: u64 = 1 << 22;

/// Which feedback policy closes the loop, as plain configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ControllerConfig {
    /// Open loop: admission policy and placement orders stay exactly as
    /// planned. The determinism and savings baseline.
    Static,
    /// PID feedback from the demotion rate to the admission ceiling.
    HeadroomPid(PidConfig),
    /// Online re-planning of per-function placements from observed
    /// latencies, through the surrogate stack and the idle-capacity
    /// planner.
    SurrogateRightSizer(RightSizerConfig),
}

impl ControllerConfig {
    /// Instantiates the controller this configuration describes. The
    /// built controller's [`Controller::name`] is the label reports use.
    pub fn build(&self) -> Box<dyn Controller> {
        match *self {
            Self::Static => Box::new(StaticController),
            Self::HeadroomPid(config) => Box::new(HeadroomPid { config }),
            Self::SurrogateRightSizer(config) => Box::new(SurrogateRightSizer { config }),
        }
    }

    pub(crate) fn validate(&self) -> Result<()> {
        match self {
            Self::Static => Ok(()),
            Self::HeadroomPid(pid) => pid.validate(),
            Self::SurrogateRightSizer(rs) => rs.validate(),
        }
    }
}

/// The control loop's cadence plus the controller running on it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlConfig {
    /// Seconds of simulated time between controller ticks.
    pub cadence_secs: f64,
    /// The feedback policy.
    pub controller: ControllerConfig,
}

impl Default for ControlConfig {
    fn default() -> Self {
        Self {
            cadence_secs: 30.0,
            controller: ControllerConfig::Static,
        }
    }
}

impl ControlConfig {
    pub(crate) fn validate(&self) -> Result<()> {
        if !self.cadence_secs.is_finite() || self.cadence_secs <= 0.0 {
            return Err(FreedomError::InvalidArgument(format!(
                "control cadence must be positive, got {}s",
                self.cadence_secs
            )));
        }
        self.controller.validate()
    }
}

/// Gains and bounds of the [`HeadroomPid`] controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PidConfig {
    /// Demotion rate (demoted ÷ spot placements per epoch) the loop
    /// drives toward. Rates above it tighten the ceiling, calm epochs
    /// relax it.
    pub target_demotion_rate: f64,
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain (the integral term is clamped to ±[`PidConfig::integral_cap`]).
    pub ki: f64,
    /// Derivative gain.
    pub kd: f64,
    /// Anti-windup clamp on the accumulated error integral.
    pub integral_cap: f64,
    /// Hard floor of the admission ceiling: feedback may not close the
    /// market entirely.
    pub min_ceiling: f64,
    /// Hard cap of the admission ceiling (1.0 ≈ greedy).
    pub max_ceiling: f64,
    /// Ceiling in force before the first tick.
    pub initial_ceiling: f64,
}

impl Default for PidConfig {
    fn default() -> Self {
        Self {
            target_demotion_rate: 0.02,
            kp: 0.9,
            ki: 0.35,
            kd: 0.15,
            integral_cap: 2.0,
            min_ceiling: 0.30,
            max_ceiling: 1.0,
            initial_ceiling: 1.0,
        }
    }
}

impl PidConfig {
    fn validate(&self) -> Result<()> {
        let finite = [
            ("target demotion rate", self.target_demotion_rate),
            ("kp", self.kp),
            ("ki", self.ki),
            ("kd", self.kd),
            ("integral cap", self.integral_cap),
        ];
        for (name, v) in finite {
            if !v.is_finite() || v < 0.0 {
                return Err(FreedomError::InvalidArgument(format!(
                    "PID {name} must be finite and non-negative, got {v}"
                )));
            }
        }
        let unit = [
            ("min ceiling", self.min_ceiling),
            ("max ceiling", self.max_ceiling),
            ("initial ceiling", self.initial_ceiling),
        ];
        for (name, v) in unit {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(FreedomError::InvalidArgument(format!(
                    "PID {name} must be in [0, 1], got {v}"
                )));
            }
        }
        if self.min_ceiling > self.max_ceiling {
            return Err(FreedomError::InvalidArgument(format!(
                "PID ceiling floor {} exceeds cap {}",
                self.min_ceiling, self.max_ceiling
            )));
        }
        Ok(())
    }
}

/// Configuration of the [`SurrogateRightSizer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RightSizerConfig {
    /// Guardrail and risk posture of the online re-planning: the
    /// revised order keeps alternates whose predicted inflation
    /// `mean + beta·std` stays within `1 + theta`.
    pub planner: PlannerConfig,
    /// Surrogate family fitted on the observed latencies.
    pub surrogate: SurrogateKind,
    /// Base seed of the per-function models.
    pub seed: u64,
}

impl Default for RightSizerConfig {
    fn default() -> Self {
        Self {
            planner: PlannerConfig::default(),
            surrogate: SurrogateKind::Gp,
            seed: 0x51DE,
        }
    }
}

impl RightSizerConfig {
    fn validate(&self) -> Result<()> {
        if !self.planner.theta.is_finite() || self.planner.theta < 0.0 {
            return Err(FreedomError::InvalidArgument(format!(
                "right-sizer theta must be non-negative, got {}",
                self.planner.theta
            )));
        }
        if !self.planner.beta.is_finite() || self.planner.beta < 0.0 {
            return Err(FreedomError::InvalidArgument(format!(
                "right-sizer beta must be non-negative, got {}",
                self.planner.beta
            )));
        }
        Ok(())
    }
}

/// Per-epoch counters the engine accumulates between ticks. Part of the
/// windowed replay's carried state: an epoch routinely spans a window
/// boundary, so the partial sums must travel with the in-flight ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsAccum {
    /// Invocations that arrived this epoch.
    pub arrivals: u32,
    /// Spot admissions this epoch.
    pub spot_admitted: u32,
    /// In-flight placements force-demoted by supply drops this epoch
    /// (counted at the step, not at lazy discovery).
    pub spot_demoted: u32,
    /// In-flight placements migrated cross-zone by supply drops this
    /// epoch (counted at the step).
    pub migrated: u32,
    /// In-flight placements that received a preemption notice this
    /// epoch (counted at the notice).
    pub notified: u32,
    /// Admission-policy denials this epoch.
    pub policy_rejected: u32,
    /// Admitted-but-nothing-fits misses this epoch.
    pub capacity_missed: u32,
    /// Retry activations this epoch — the numerator of the brownout
    /// pressure signal `retried / max(spot_admitted, 1)`.
    pub retried: u32,
    /// Flattened per-(function, placement) invocation counts; function
    /// `f` owns `offsets[f]..offsets[f + 1]`, one slot per accepted
    /// alternate plus a trailing on-demand slot.
    pub per_function: Vec<u32>,
}

impl ObsAccum {
    /// A zeroed accumulator over `slots` flattened placement counters.
    pub fn zero(slots: usize) -> Self {
        Self {
            arrivals: 0,
            spot_admitted: 0,
            spot_demoted: 0,
            migrated: 0,
            notified: 0,
            policy_rejected: 0,
            capacity_missed: 0,
            retried: 0,
            per_function: vec![0; slots],
        }
    }

    /// Resets every counter for the next epoch.
    pub fn reset(&mut self) {
        self.arrivals = 0;
        self.spot_admitted = 0;
        self.spot_demoted = 0;
        self.migrated = 0;
        self.notified = 0;
        self.policy_rejected = 0;
        self.capacity_missed = 0;
        self.retried = 0;
        self.per_function.fill(0);
    }

    /// Serializes the partial epoch into a crash-resume snapshot.
    pub(crate) fn save(&self, w: &mut crate::snapshot::Wire) {
        w.u32(self.arrivals);
        w.u32(self.spot_admitted);
        w.u32(self.spot_demoted);
        w.u32(self.migrated);
        w.u32(self.notified);
        w.u32(self.policy_rejected);
        w.u32(self.capacity_missed);
        w.u32(self.retried);
        w.len(self.per_function.len());
        for &c in &self.per_function {
            w.u32(c);
        }
    }

    /// Restores an accumulator serialized with [`ObsAccum::save`].
    pub(crate) fn load(r: &mut crate::snapshot::Unwire) -> crate::Result<Self> {
        let arrivals = r.u32()?;
        let spot_admitted = r.u32()?;
        let spot_demoted = r.u32()?;
        let migrated = r.u32()?;
        let notified = r.u32()?;
        let policy_rejected = r.u32()?;
        let capacity_missed = r.u32()?;
        let retried = r.u32()?;
        let n = r.len()?;
        let mut per_function = Vec::with_capacity(n);
        for _ in 0..n {
            per_function.push(r.u32()?);
        }
        Ok(Self {
            arrivals,
            spot_admitted,
            spot_demoted,
            migrated,
            notified,
            policy_rejected,
            capacity_missed,
            retried,
            per_function,
        })
    }
}

/// What one control epoch looked like: the snapshot a [`Controller`]
/// receives at each tick.
#[derive(Debug, Clone, Copy)]
pub struct Observation<'a> {
    /// Global tick index (1-based: the first tick fires one cadence into
    /// the trace).
    pub tick: u32,
    /// Tick instant in integer nanoseconds of simulated time.
    pub at_nanos: u64,
    /// Market vCPU utilization at the tick instant (after any supply
    /// step at the same instant).
    pub utilization: f64,
    /// The epoch's counters.
    pub accum: &'a ObsAccum,
    /// Flattened-counter offsets, `n_functions + 1` entries.
    pub offsets: &'a [u32],
}

impl Observation<'_> {
    /// Force-demotions as a fraction of the epoch's spot placements
    /// (admitted plus demoted plus migrated — a migration saved its
    /// placement, so it dilutes rather than drives the rate); 0 when
    /// the epoch saw no spot activity.
    pub fn demotion_rate(&self) -> f64 {
        let at_risk = self.accum.spot_admitted + self.accum.spot_demoted + self.accum.migrated;
        if at_risk == 0 {
            0.0
        } else {
            f64::from(self.accum.spot_demoted) / f64::from(at_risk)
        }
    }

    /// One function's placement counts this epoch: one entry per
    /// accepted alternate (plan order) plus a trailing on-demand count.
    pub fn function_counts(&self, function: usize) -> &[u32] {
        let lo = self.offsets[function] as usize;
        let hi = self.offsets[function + 1] as usize;
        &self.accum.per_function[lo..hi]
    }

    /// Number of functions covered by the observation.
    pub fn n_functions(&self) -> usize {
        self.offsets.len() - 1
    }
}

/// What the engine sees of one function's plan: the encoded
/// configurations and actual inflations the right-sizer learns from.
/// Built once per replay, immutable.
#[derive(Debug, Clone)]
pub struct FunctionView {
    /// Encoded best (on-demand) configuration — the y = 1.0 anchor row
    /// of the observed-latency model.
    pub best_encoding: Vec<f64>,
    /// Encoded configuration of each accepted alternate, plan order.
    pub alt_encodings: Vec<Vec<f64>>,
    /// Actual latency inflation of each accepted alternate.
    pub alt_inflations: Vec<f64>,
}

/// Everything a controller evolves, carried across replay-window
/// boundaries next to the in-flight ledger and compared bit-exactly by
/// the reconciliation loop.
#[derive(Debug, Clone)]
pub struct ControlState {
    /// Admission policy currently in force (starts at the market's
    /// configured policy, or the PID's initial ceiling).
    pub admission: AdmissionPolicy,
    /// PID error integral.
    pub integral: f64,
    /// PID error at the previous tick.
    pub prev_error: f64,
    /// Right-sizer observation log: per function, the accepted-alternate
    /// indices in first-observed order. The per-function surrogate is a
    /// pure function of this log and its batch partition (see
    /// [`SurrogateRightSizer`]), which is what lets a window reconstruct
    /// it mid-trace.
    pub observed: Vec<Vec<u8>>,
    /// The log's batch partition: per function, how many entries each
    /// observing tick appended (entries sum to the log's length). Part
    /// of the carried state because the canonical model-fitting sequence
    /// is **one warm-start `fit_update` per batch**, not per entry — a
    /// reconstructing window must replay the same batching the
    /// sequential engine performed.
    pub observed_batches: Vec<Vec<u8>>,
    /// Right-sizer output: per function, the revised placement order
    /// (`None` = the planner's original order).
    pub orders: Vec<Option<Vec<u8>>>,
    /// Whether the control plane is in brownout: retry pressure crossed
    /// the enter threshold and has not yet recovered below the exit
    /// threshold. While set, retries are shed before fresh arrivals and
    /// fresh admissions face the tightened brownout ceiling. Carried
    /// state — a window reconstructing mid-trace must agree on the mode.
    pub brownout: bool,
}

impl ControlState {
    /// Open-loop state: the base admission policy and no revisions.
    pub fn passthrough(admission: AdmissionPolicy) -> Self {
        Self {
            admission,
            integral: 0.0,
            prev_error: 0.0,
            observed: Vec::new(),
            observed_batches: Vec::new(),
            orders: Vec::new(),
            brownout: false,
        }
    }

    /// The function's placement order if this state revised it.
    pub fn order_for(&self, function: usize) -> Option<&[u8]> {
        self.orders.get(function).and_then(|o| o.as_deref())
    }

    /// Serializes exactly the fields [`control_state_eq`] compares into
    /// a crash-resume snapshot ([`crate::snapshot`]): floats as bit
    /// patterns, logs length-prefixed, `orders` entries tagged.
    pub(crate) fn save(&self, w: &mut crate::snapshot::Wire) {
        let (tag, bits) = admission_bits(&self.admission);
        w.u8(tag);
        w.u64(bits);
        w.f64(self.integral);
        w.f64(self.prev_error);
        let save_log = |w: &mut crate::snapshot::Wire, log: &[Vec<u8>]| {
            w.len(log.len());
            for entries in log {
                w.len(entries.len());
                for &e in entries {
                    w.u8(e);
                }
            }
        };
        save_log(w, &self.observed);
        save_log(w, &self.observed_batches);
        w.bool(self.brownout);
        w.len(self.orders.len());
        for order in &self.orders {
            match order {
                None => w.u8(0),
                Some(entries) => {
                    w.u8(1);
                    w.len(entries.len());
                    for &e in entries {
                        w.u8(e);
                    }
                }
            }
        }
    }

    /// Restores a state serialized with [`ControlState::save`],
    /// bit-identical under [`control_state_eq`].
    pub(crate) fn load(r: &mut crate::snapshot::Unwire) -> crate::Result<Self> {
        let admission = match (r.u8()?, r.u64()?) {
            (0, _) => AdmissionPolicy::Greedy,
            (1, bits) => AdmissionPolicy::Headroom {
                max_utilization: f64::from_bits(bits),
            },
            (tag, _) => {
                return Err(crate::FreedomError::InvalidArgument(format!(
                    "snapshot: unknown admission-policy tag {tag}"
                )))
            }
        };
        let integral = r.f64()?;
        let prev_error = r.f64()?;
        let load_log = |r: &mut crate::snapshot::Unwire| -> crate::Result<Vec<Vec<u8>>> {
            let n = r.len()?;
            let mut log = Vec::with_capacity(n);
            for _ in 0..n {
                let m = r.len()?;
                let mut entries = Vec::with_capacity(m);
                for _ in 0..m {
                    entries.push(r.u8()?);
                }
                log.push(entries);
            }
            Ok(log)
        };
        let observed = load_log(r)?;
        let observed_batches = load_log(r)?;
        let brownout = r.bool()?;
        let n = r.len()?;
        let mut orders = Vec::with_capacity(n);
        for _ in 0..n {
            orders.push(match r.u8()? {
                0 => None,
                1 => {
                    let m = r.len()?;
                    let mut entries = Vec::with_capacity(m);
                    for _ in 0..m {
                        entries.push(r.u8()?);
                    }
                    Some(entries)
                }
                tag => {
                    return Err(crate::FreedomError::InvalidArgument(format!(
                        "snapshot: invalid order tag {tag}"
                    )))
                }
            });
        }
        Ok(Self {
            admission,
            integral,
            prev_error,
            observed,
            observed_batches,
            orders,
            brownout,
        })
    }
}

fn admission_bits(policy: &AdmissionPolicy) -> (u8, u64) {
    match *policy {
        AdmissionPolicy::Greedy => (0, 0),
        AdmissionPolicy::Headroom { max_utilization } => (1, max_utilization.to_bits()),
    }
}

/// Bit-exact equality of two carried controller states — every float by
/// bit pattern, every log and order element-wise. Part of the windowed
/// replay's carry comparison.
pub fn control_state_eq(a: &ControlState, b: &ControlState) -> bool {
    admission_bits(&a.admission) == admission_bits(&b.admission)
        && a.integral.to_bits() == b.integral.to_bits()
        && a.prev_error.to_bits() == b.prev_error.to_bits()
        && a.observed == b.observed
        && a.observed_batches == b.observed_batches
        && a.orders == b.orders
        && a.brownout == b.brownout
}

/// Hashes exactly the fields [`control_state_eq`] compares, in the same
/// order, into the carry fingerprint. Nested byte logs are
/// length-prefixed and `orders` entries tagged, so distinct structures
/// cannot collide by concatenation.
pub(crate) fn hash_control_state(h: &mut crate::market::Fnv64, s: &ControlState) {
    let (tag, bits) = admission_bits(&s.admission);
    h.write(u64::from(tag));
    h.write(bits);
    h.write(s.integral.to_bits());
    h.write(s.prev_error.to_bits());
    let hash_log = |h: &mut crate::market::Fnv64, log: &[Vec<u8>]| {
        h.write(log.len() as u64);
        for entries in log {
            h.write(entries.len() as u64);
            for &e in entries {
                h.write(u64::from(e));
            }
        }
    };
    hash_log(h, &s.observed);
    hash_log(h, &s.observed_batches);
    h.write(u64::from(s.brownout));
    h.write(s.orders.len() as u64);
    for order in &s.orders {
        match order {
            None => h.write(u64::MAX),
            Some(entries) => {
                h.write(entries.len() as u64);
                for &e in entries {
                    h.write(u64::from(e));
                }
            }
        }
    }
}

/// Hashes an [`ObsAccum`] field-for-field into the carry fingerprint
/// (its `==` is already structural, so every field participates).
pub(crate) fn hash_obs_accum(h: &mut crate::market::Fnv64, a: &ObsAccum) {
    h.write(u64::from(a.arrivals) | (u64::from(a.spot_admitted) << 32));
    h.write(u64::from(a.spot_demoted) | (u64::from(a.policy_rejected) << 32));
    h.write(u64::from(a.capacity_missed) | (u64::from(a.migrated) << 32));
    h.write(u64::from(a.notified) | (u64::from(a.retried) << 32));
    h.write(a.per_function.len() as u64);
    for &c in &a.per_function {
        h.write(u64::from(c));
    }
}

/// Advances the brownout state machine at a controller tick.
///
/// Pressure is the closing epoch's `retried / max(spot_admitted, 1)`.
/// The mode enters at `enter_pressure` and exits only strictly below
/// `exit_pressure` (`< enter_pressure` by validation) — the hysteresis
/// band keeps one noisy epoch from flapping the fleet in and out of
/// degradation. Runs *after* the controller's own `tick` so every
/// controller composes with brownout without knowing about it.
pub fn update_brownout(state: &mut ControlState, accum: &ObsAccum, cfg: &BrownoutConfig) {
    let pressure = f64::from(accum.retried) / f64::from(accum.spot_admitted.max(1));
    if state.brownout {
        if pressure < cfg.exit_pressure {
            state.brownout = false;
        }
    } else if pressure >= cfg.enter_pressure {
        state.brownout = true;
    }
}

/// The admission ceiling a state enforces; ∞ for a greedy policy.
pub fn admission_ceiling(policy: &AdmissionPolicy) -> f64 {
    match *policy {
        AdmissionPolicy::Greedy => f64::INFINITY,
        AdmissionPolicy::Headroom { max_utilization } => max_utilization,
    }
}

/// Per-window transient caches — the right-sizer's fitted surrogates.
/// Never carried or compared: everything here is derived from
/// [`ControlState`] by a deterministic replay, so a fresh window
/// rebuilds it on demand.
#[derive(Default)]
pub struct ControlScratch {
    models: Vec<Option<Box<dyn Surrogate>>>,
}

impl ControlScratch {
    fn model_slot(&mut self, n_functions: usize, f: usize) -> &mut Option<Box<dyn Surrogate>> {
        if self.models.len() < n_functions {
            self.models.resize_with(n_functions, || None);
        }
        &mut self.models[f]
    }
}

/// One tick's telemetry, recorded into the [`FleetReport`](crate::fleet::FleetReport)
/// so experiments can score settling time and ceiling trajectories.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlSample {
    /// Tick instant in seconds of simulated time.
    pub at_secs: f64,
    /// Market utilization at the tick.
    pub utilization: f64,
    /// Admission ceiling after the tick (∞ = greedy).
    pub ceiling: f64,
    /// Arrivals in the epoch that ended at this tick.
    pub arrivals: u32,
    /// Spot admissions in the epoch.
    pub spot_admitted: u32,
    /// Force-demotions in the epoch.
    pub spot_demoted: u32,
    /// Cross-zone migrations in the epoch.
    pub migrated: u32,
    /// Policy rejections plus capacity misses in the epoch.
    pub rejected: u32,
    /// Functions whose placement order this tick revised.
    pub replanned: u32,
    /// Retry activations in the epoch.
    pub retried: u32,
    /// Whether the control plane was in brownout after this tick.
    pub brownout: bool,
}

impl ControlSample {
    /// Serializes the sample into a crash-resume snapshot.
    pub(crate) fn save(&self, w: &mut crate::snapshot::Wire) {
        w.f64(self.at_secs);
        w.f64(self.utilization);
        w.f64(self.ceiling);
        w.u32(self.arrivals);
        w.u32(self.spot_admitted);
        w.u32(self.spot_demoted);
        w.u32(self.migrated);
        w.u32(self.rejected);
        w.u32(self.replanned);
        w.u32(self.retried);
        w.bool(self.brownout);
    }

    /// Restores a sample serialized with [`ControlSample::save`].
    pub(crate) fn load(r: &mut crate::snapshot::Unwire) -> crate::Result<Self> {
        Ok(Self {
            at_secs: r.f64()?,
            utilization: r.f64()?,
            ceiling: r.f64()?,
            arrivals: r.u32()?,
            spot_admitted: r.u32()?,
            spot_demoted: r.u32()?,
            migrated: r.u32()?,
            rejected: r.u32()?,
            replanned: r.u32()?,
            retried: r.u32()?,
            brownout: r.bool()?,
        })
    }
}

/// A feedback policy closing the provider's control loop.
///
/// Implementations must be pure: `tick` may read only its arguments and
/// the immutable `self`, and must evolve nothing but the passed
/// [`ControlState`] (plus derived caches in [`ControlScratch`]). The
/// windowed replay relies on that purity to carry, compare, and
/// reconstruct controller state at window boundaries.
pub trait Controller: Send + Sync {
    /// Stable label for reports.
    fn name(&self) -> &'static str;

    /// The state in force before the first tick.
    fn init(&self, base_admission: AdmissionPolicy, n_functions: usize) -> ControlState;

    /// Consumes one epoch's observation, evolving `state`. Returns the
    /// number of functions whose placement order changed.
    fn tick(
        &self,
        state: &mut ControlState,
        scratch: &mut ControlScratch,
        obs: &Observation<'_>,
        plans: &[FunctionView],
    ) -> u32;
}

/// Open loop: today's behavior, and the baseline every feedback policy
/// is scored against.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticController;

impl Controller for StaticController {
    fn name(&self) -> &'static str {
        "static"
    }

    fn init(&self, base_admission: AdmissionPolicy, _n_functions: usize) -> ControlState {
        ControlState::passthrough(base_admission)
    }

    fn tick(
        &self,
        _state: &mut ControlState,
        _scratch: &mut ControlScratch,
        _obs: &Observation<'_>,
        _plans: &[FunctionView],
    ) -> u32 {
        0
    }
}

/// PID feedback from the epoch demotion rate to the admission
/// utilization ceiling: demotion bursts tighten the market so supply
/// drops find slack instead of in-flight work; calm epochs relax it
/// back toward the cap, recovering spot savings.
#[derive(Debug, Clone, Copy)]
pub struct HeadroomPid {
    config: PidConfig,
}

impl HeadroomPid {
    /// Creates the controller.
    pub fn new(config: PidConfig) -> Self {
        Self { config }
    }
}

impl Controller for HeadroomPid {
    fn name(&self) -> &'static str {
        "pid"
    }

    fn init(&self, _base_admission: AdmissionPolicy, _n_functions: usize) -> ControlState {
        ControlState::passthrough(AdmissionPolicy::Headroom {
            max_utilization: self.config.initial_ceiling,
        })
    }

    fn tick(
        &self,
        state: &mut ControlState,
        _scratch: &mut ControlScratch,
        obs: &Observation<'_>,
        _plans: &[FunctionView],
    ) -> u32 {
        let c = &self.config;
        let error = obs.demotion_rate() - c.target_demotion_rate;
        state.integral = (state.integral + error).clamp(-c.integral_cap, c.integral_cap);
        let derivative = error - state.prev_error;
        state.prev_error = error;
        let u = c.kp * error + c.ki * state.integral + c.kd * derivative;
        let ceiling = match state.admission {
            AdmissionPolicy::Headroom { max_utilization } => max_utilization,
            AdmissionPolicy::Greedy => c.max_ceiling,
        };
        state.admission = AdmissionPolicy::Headroom {
            max_utilization: (ceiling - u).clamp(c.min_ceiling, c.max_ceiling),
        };
        0
    }
}

/// Online right-sizing from observed latencies.
///
/// The offline planner accepted each alternate because the *model*
/// predicted its execution time within θ of the best configuration;
/// production traffic then reveals the actual latency. This controller
/// maintains one surrogate per function over the observed
/// (configuration → inflation) pairs — anchored by the best
/// configuration at inflation 1.0 — and at each tick re-scores every
/// alternate with a batched prediction, re-planning the placement order
/// through [`IdleCapacityPlanner::revise_order`]. Alternates the
/// offline model mispredicted past the guardrail are dropped; the rest
/// are reordered best-predicted-first; never-observed alternates stay
/// at the tail so exploration continues.
///
/// # Model reconstruction
///
/// The surrogate for a function is *defined* by its observation log and
/// the log's **batch partition** (one batch per tick that observed
/// something new, both carried in [`ControlState`]): the canonical call
/// sequence is `fit(anchor + first batch)`, then one warm-start
/// `fit_update(log[..=eₖ], seed(eₖ))` per subsequent batch, where `eₖ`
/// is the batch's cumulative end. The sequential engine grows the model
/// with exactly those calls — a tick that surfaces several alternates
/// at once absorbs them in **one** `fit_update`, which is what keeps
/// the tick cost amortized — and a replay window holding only the
/// carried log replays the same batches from scratch. Same sequence,
/// same seeds, same model — bit for bit.
#[derive(Debug, Clone, Copy)]
pub struct SurrogateRightSizer {
    config: RightSizerConfig,
}

impl SurrogateRightSizer {
    /// Creates the controller.
    pub fn new(config: RightSizerConfig) -> Self {
        Self { config }
    }

    fn row_seed(&self, function: usize, row: usize) -> u64 {
        self.config
            .seed
            .wrapping_add((function as u64) << 32)
            .wrapping_add(row as u64)
    }

    /// Training rows for a function: the anchor plus the observed log.
    fn rows(view: &FunctionView, log: &[u8]) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut x = Vec::with_capacity(log.len() + 1);
        let mut y = Vec::with_capacity(log.len() + 1);
        x.push(view.best_encoding.clone());
        y.push(1.0);
        for &ai in log {
            x.push(view.alt_encodings[ai as usize].clone());
            y.push(view.alt_inflations[ai as usize]);
        }
        (x, y)
    }

    /// Brings the function's surrogate up to date with its log, whose
    /// batch partition `batches` records how many entries each observing
    /// tick appended. A window holding no model yet replays the
    /// canonical batched call sequence from scratch; otherwise only the
    /// newest batch is absorbed — **one** warm-start `fit_update` per
    /// tick no matter how many alternates the epoch surfaced, which is
    /// what amortizes the tick cost. Returns `None` when fitting fails
    /// (degenerate data) — deterministically, since the inputs are.
    fn advance_model<'m>(
        &self,
        slot: &'m mut Option<Box<dyn Surrogate>>,
        view: &FunctionView,
        log: &[u8],
        batches: &[u8],
        function: usize,
    ) -> Option<&'m mut Box<dyn Surrogate>> {
        let (x, y) = Self::rows(view, log);
        if slot.is_none() {
            // Cumulative batch ends in x-row coordinates (the anchor is
            // row 0, so batch k ending at log position e covers x[..=e]).
            let mut ends = batches.iter().scan(0usize, |acc, &b| {
                *acc += b as usize;
                Some(*acc)
            });
            let first = ends.next()?;
            let mut model = self.config.surrogate.build(self.row_seed(function, 0));
            if model.fit(&x[..=first], &y[..=first]).is_err() {
                return None;
            }
            for e in ends {
                if model
                    .fit_update(&x[..=e], &y[..=e], self.row_seed(function, e))
                    .is_err()
                {
                    return None;
                }
            }
            *slot = Some(model);
        } else {
            let e = log.len();
            let model = slot.as_mut().expect("checked above");
            if model
                .fit_update(&x[..=e], &y[..=e], self.row_seed(function, e))
                .is_err()
            {
                *slot = None;
                return None;
            }
        }
        slot.as_mut()
    }
}

impl Controller for SurrogateRightSizer {
    fn name(&self) -> &'static str {
        "right_sizer"
    }

    fn init(&self, base_admission: AdmissionPolicy, n_functions: usize) -> ControlState {
        ControlState {
            admission: base_admission,
            integral: 0.0,
            prev_error: 0.0,
            observed: vec![Vec::new(); n_functions],
            observed_batches: vec![Vec::new(); n_functions],
            orders: vec![None; n_functions],
            brownout: false,
        }
    }

    fn tick(
        &self,
        state: &mut ControlState,
        scratch: &mut ControlScratch,
        obs: &Observation<'_>,
        plans: &[FunctionView],
    ) -> u32 {
        let planner = IdleCapacityPlanner::new(self.config.planner);
        let mut replanned = 0;
        for f in 0..plans.len() {
            let view = &plans[f];
            let n_alts = view.alt_encodings.len();
            if n_alts == 0 {
                continue;
            }
            // Extend the observation log with alternates production
            // traffic exercised for the first time this epoch (ascending
            // index within the epoch, deterministically).
            let counts = obs.function_counts(f);
            let log = &mut state.observed[f];
            let before = log.len();
            for (ai, &count) in counts.iter().take(n_alts).enumerate() {
                if count > 0 && !log.contains(&(ai as u8)) {
                    log.push(ai as u8);
                }
            }
            let fresh = log.len() - before;
            if fresh == 0 {
                continue; // nothing new observed → the order stands
            }
            state.observed_batches[f].push(fresh as u8);
            let log = state.observed[f].clone();
            let batches = state.observed_batches[f].clone();
            let Some(model) =
                self.advance_model(scratch.model_slot(plans.len(), f), view, &log, &batches, f)
            else {
                continue;
            };
            // Batched acquisition over every alternate, then the
            // planner's guardrail decides who stays and in what order.
            let Ok(predictions) = model.predict_batch(&view.alt_encodings) else {
                continue;
            };
            let mut order = planner.revise_order(&predictions);
            // Keep never-observed alternates explorable: append them in
            // plan order behind the model-vetted ones.
            for ai in 0..n_alts as u8 {
                if !log.contains(&ai) && !order.contains(&ai) {
                    order.push(ai);
                }
            }
            if state.orders[f].as_deref() != Some(order.as_slice()) {
                replanned += 1;
                state.orders[f] = Some(order);
            }
        }
        replanned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs_with<'a>(accum: &'a ObsAccum, offsets: &'a [u32], utilization: f64) -> Observation<'a> {
        Observation {
            tick: 1,
            at_nanos: 30_000_000_000,
            utilization,
            accum,
            offsets,
        }
    }

    #[test]
    fn demotion_rate_handles_empty_epochs() {
        let offsets = [0u32, 1];
        let mut accum = ObsAccum::zero(1);
        assert_eq!(obs_with(&accum, &offsets, 0.0).demotion_rate(), 0.0);
        accum.spot_admitted = 6;
        accum.spot_demoted = 2;
        let rate = obs_with(&accum, &offsets, 0.5).demotion_rate();
        assert!((rate - 0.25).abs() < 1e-15);
    }

    #[test]
    fn static_controller_is_open_loop() {
        let ctl = StaticController;
        let base = AdmissionPolicy::Headroom {
            max_utilization: 0.8,
        };
        let mut state = ctl.init(base, 4);
        let snapshot = state.clone();
        let offsets = [0u32, 1];
        let accum = ObsAccum {
            spot_demoted: 50,
            spot_admitted: 1,
            ..ObsAccum::zero(1)
        };
        let replanned = ctl.tick(
            &mut state,
            &mut ControlScratch::default(),
            &obs_with(&accum, &offsets, 0.99),
            &[],
        );
        assert_eq!(replanned, 0);
        assert!(control_state_eq(&state, &snapshot), "static must not move");
    }

    #[test]
    fn pid_tightens_on_demotions_and_relaxes_when_calm() {
        let ctl = HeadroomPid::new(PidConfig::default());
        let mut state = ctl.init(AdmissionPolicy::Greedy, 4);
        assert_eq!(admission_ceiling(&state.admission), 1.0);
        let offsets = [0u32, 1];
        let mut stormy = ObsAccum::zero(1);
        stormy.spot_admitted = 4;
        stormy.spot_demoted = 6;
        let mut scratch = ControlScratch::default();
        ctl.tick(
            &mut state,
            &mut scratch,
            &obs_with(&stormy, &offsets, 0.9),
            &[],
        );
        let tightened = admission_ceiling(&state.admission);
        assert!(
            tightened < 1.0,
            "demotion burst must tighten, got {tightened}"
        );
        assert!(tightened >= PidConfig::default().min_ceiling);
        // A long calm stretch relaxes back toward the cap.
        let calm = ObsAccum {
            spot_admitted: 10,
            ..ObsAccum::zero(1)
        };
        let mut prev = tightened;
        for _ in 0..64 {
            ctl.tick(
                &mut state,
                &mut scratch,
                &obs_with(&calm, &offsets, 0.2),
                &[],
            );
            let now = admission_ceiling(&state.admission);
            assert!(now >= prev - 1e-12, "calm epochs must not tighten");
            prev = now;
        }
        assert!(
            (prev - PidConfig::default().max_ceiling).abs() < 1e-9,
            "calm loop must recover the cap, got {prev}"
        );
        // The trajectory is a pure function of the observation sequence.
        let replay = || {
            let mut s = ctl.init(AdmissionPolicy::Greedy, 4);
            let mut sc = ControlScratch::default();
            ctl.tick(&mut s, &mut sc, &obs_with(&stormy, &offsets, 0.9), &[]);
            ctl.tick(&mut s, &mut sc, &obs_with(&calm, &offsets, 0.2), &[]);
            s
        };
        assert!(control_state_eq(&replay(), &replay()));
    }

    #[test]
    fn right_sizer_drops_observed_guardrail_breakers() {
        // Three alternates: a good one (1.05×), a mispredicted bad one
        // (1.60×), and a never-observed one. After observing the first
        // two, the revised order must drop the breaker, keep the good
        // one, and leave the unobserved alternate explorable at the
        // tail.
        let view = FunctionView {
            best_encoding: vec![0.5, 0.5],
            alt_encodings: vec![vec![0.1, 0.9], vec![0.9, 0.1], vec![0.4, 0.6]],
            alt_inflations: vec![1.05, 1.60, 1.08],
        };
        let ctl = SurrogateRightSizer::new(RightSizerConfig::default());
        let mut state = ctl.init(AdmissionPolicy::Greedy, 1);
        let mut scratch = ControlScratch::default();
        let offsets = [0u32, 4]; // 3 alternates + on-demand
        let mut accum = ObsAccum::zero(4);
        accum.per_function[0] = 7; // alternate 0 observed
        accum.per_function[1] = 3; // alternate 1 observed
        let replanned = ctl.tick(
            &mut state,
            &mut scratch,
            &obs_with(&accum, &offsets, 0.4),
            std::slice::from_ref(&view),
        );
        assert_eq!(replanned, 1);
        let order = state.order_for(0).expect("revised");
        assert!(
            !order.contains(&1),
            "observed 1.60× alternate must be dropped, got {order:?}"
        );
        assert!(order.contains(&0), "observed good alternate stays");
        assert_eq!(
            *order.last().unwrap(),
            2,
            "unobserved alternate stays explorable"
        );
        // A tick with nothing new observed leaves the order untouched.
        accum.reset();
        accum.per_function[0] = 2;
        let replanned = ctl.tick(
            &mut state,
            &mut scratch,
            &obs_with(&accum, &offsets, 0.4),
            std::slice::from_ref(&view),
        );
        assert_eq!(replanned, 0);
    }

    #[test]
    fn right_sizer_model_reconstruction_matches_incremental_growth() {
        // Observing alternates over two ticks (incremental fit_update)
        // must leave the same state as a fresh scratch replaying the
        // carried log in one go — the property windowed reconstruction
        // rests on.
        let view = FunctionView {
            best_encoding: vec![0.5, 0.5],
            alt_encodings: vec![vec![0.1, 0.9], vec![0.9, 0.1], vec![0.4, 0.6]],
            alt_inflations: vec![1.02, 1.25, 1.07],
        };
        let ctl = SurrogateRightSizer::new(RightSizerConfig::default());
        let offsets = [0u32, 4];

        // Incremental: alternate 1 on tick A, alternates 0 and 2 on tick B.
        let mut incremental = ctl.init(AdmissionPolicy::Greedy, 1);
        let mut scratch = ControlScratch::default();
        let mut accum = ObsAccum::zero(4);
        accum.per_function[1] = 1;
        ctl.tick(
            &mut incremental,
            &mut scratch,
            &obs_with(&accum, &offsets, 0.1),
            std::slice::from_ref(&view),
        );
        accum.reset();
        accum.per_function[0] = 1;
        accum.per_function[2] = 1;
        ctl.tick(
            &mut incremental,
            &mut scratch,
            &obs_with(&accum, &offsets, 0.1),
            std::slice::from_ref(&view),
        );

        // Reconstruction: a fresh scratch (as a new replay window would
        // hold) sees the same second tick after carrying only the state —
        // the observation log plus its batch partition.
        let mut carried = ctl.init(AdmissionPolicy::Greedy, 1);
        carried.observed = vec![vec![1]];
        carried.observed_batches = vec![vec![1]];
        carried.orders = {
            let mut s = ctl.init(AdmissionPolicy::Greedy, 1);
            let mut sc = ControlScratch::default();
            let mut a = ObsAccum::zero(4);
            a.per_function[1] = 1;
            ctl.tick(
                &mut s,
                &mut sc,
                &obs_with(&a, &offsets, 0.1),
                std::slice::from_ref(&view),
            );
            s.orders
        };
        let mut fresh_scratch = ControlScratch::default();
        accum.reset();
        accum.per_function[0] = 1;
        accum.per_function[2] = 1;
        ctl.tick(
            &mut carried,
            &mut fresh_scratch,
            &obs_with(&accum, &offsets, 0.1),
            std::slice::from_ref(&view),
        );
        assert!(
            control_state_eq(&incremental, &carried),
            "reconstructed state diverged:\n{incremental:?}\nvs\n{carried:?}"
        );
    }

    #[test]
    fn configs_validate_and_label() {
        assert!(ControlConfig::default().validate().is_ok());
        assert_eq!(ControllerConfig::Static.build().name(), "static");
        assert_eq!(
            ControllerConfig::HeadroomPid(PidConfig::default())
                .build()
                .name(),
            "pid"
        );
        assert_eq!(
            ControllerConfig::SurrogateRightSizer(RightSizerConfig::default())
                .build()
                .name(),
            "right_sizer"
        );
        assert!(ControlConfig {
            cadence_secs: 0.0,
            ..ControlConfig::default()
        }
        .validate()
        .is_err());
        assert!(ControlConfig {
            cadence_secs: f64::NAN,
            ..ControlConfig::default()
        }
        .validate()
        .is_err());
        assert!(ControllerConfig::HeadroomPid(PidConfig {
            min_ceiling: 0.9,
            max_ceiling: 0.5,
            ..PidConfig::default()
        })
        .validate()
        .is_err());
        assert!(ControllerConfig::HeadroomPid(PidConfig {
            kp: f64::INFINITY,
            ..PidConfig::default()
        })
        .validate()
        .is_err());
        assert!(ControllerConfig::SurrogateRightSizer(RightSizerConfig {
            planner: PlannerConfig {
                theta: -0.1,
                ..PlannerConfig::default()
            },
            ..RightSizerConfig::default()
        })
        .validate()
        .is_err());
    }

    #[test]
    fn control_state_equality_is_bitwise() {
        let a = ControlState::passthrough(AdmissionPolicy::Headroom {
            max_utilization: 0.8,
        });
        let mut b = a.clone();
        assert!(control_state_eq(&a, &b));
        b.integral = 1e-300;
        assert!(!control_state_eq(&a, &b));
        b = a.clone();
        b.admission = AdmissionPolicy::Greedy;
        assert!(!control_state_eq(&a, &b));
        b = a.clone();
        b.orders = vec![Some(vec![1])];
        assert!(!control_state_eq(&a, &b));
        b = a.clone();
        b.observed_batches = vec![vec![2]];
        assert!(
            !control_state_eq(&a, &b),
            "the batch partition is carried state"
        );
        b = a.clone();
        b.brownout = true;
        assert!(!control_state_eq(&a, &b), "brownout mode is carried state");
        assert_eq!(admission_ceiling(&AdmissionPolicy::Greedy), f64::INFINITY);
    }

    #[test]
    fn brownout_enters_at_pressure_and_exits_with_hysteresis() {
        let cfg = BrownoutConfig {
            enter_pressure: 0.5,
            exit_pressure: 0.2,
            utilization_ceiling: 0.6,
        };
        let mut state = ControlState::passthrough(AdmissionPolicy::Greedy);
        let mut accum = ObsAccum::zero(1);

        // Calm epoch: stays out.
        accum.spot_admitted = 10;
        accum.retried = 2;
        update_brownout(&mut state, &accum, &cfg);
        assert!(!state.brownout, "0.2 pressure is below the 0.5 entry");

        // Storm epoch: enters.
        accum.retried = 5;
        update_brownout(&mut state, &accum, &cfg);
        assert!(state.brownout);

        // Pressure back inside the hysteresis band: still browned out.
        accum.retried = 3;
        update_brownout(&mut state, &accum, &cfg);
        assert!(state.brownout, "0.3 is above the 0.2 exit — must hold");

        // Recovery below the exit threshold releases the mode.
        accum.retried = 1;
        update_brownout(&mut state, &accum, &cfg);
        assert!(!state.brownout);

        // An epoch with zero admissions uses the max(1) denominator
        // rather than dividing by zero.
        let mut empty = ObsAccum::zero(1);
        empty.retried = 1;
        update_brownout(&mut state, &empty, &cfg);
        assert!(state.brownout, "1 retry over 0 admissions is pressure 1.0");
    }
}

//! The three §6.1 user interfaces.
//!
//! Instead of exposing raw (CPU, memory, family) knobs, the provider can
//! speak to users in outcomes — performance and cost:
//!
//! 1. **Predicted Pareto front**: train one model for execution time and
//!    one for execution cost, predict both metrics for the whole space,
//!    and offer the configurations on the predicted front (2–10 options).
//! 2. **Weighted multi-objective**: pre-train models for
//!    `W_t ∈ {0, 0.25, 0.5, 0.75, 1}` (Eq. 2) and offer each one's best
//!    configuration — at most five options.
//! 3. **Hierarchical multi-objective**: optimize a primary objective, then
//!    use the model to pick the configuration that minimizes the secondary
//!    objective while degrading the primary by at most θ.

use freedom_faas::{PerfTable, ResourceConfig};
use freedom_optimizer::pareto::{pareto_front_indices, BiPoint};
use freedom_optimizer::{Objective, SearchSpace, Trial};
use freedom_surrogates::{Surrogate, SurrogateKind};
use freedom_workloads::{FunctionKind, InputData};

use crate::{Autotuner, FreedomError, Result, TuneOutcome};

/// One user-facing choice: a configuration with its predicted outcomes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostPerfOption {
    /// The configuration behind this option (hidden from the user in a
    /// production interface, shown here for observability).
    pub config: ResourceConfig,
    /// Predicted execution time, seconds.
    pub predicted_time_secs: f64,
    /// Predicted execution cost, USD.
    pub predicted_cost_usd: f64,
}

/// Fits a fresh surrogate of `kind` on a run's trials under `objective`.
fn fit_model(
    kind: SurrogateKind,
    trials: &[Trial],
    objective: Objective,
    seed: u64,
) -> Result<Box<dyn Surrogate>> {
    freedom_optimizer::BayesianOptimizer::new(kind, freedom_optimizer::BoConfig::default())
        .fit_on_trials(trials, objective, seed)
        .ok_or_else(|| {
            FreedomError::InsufficientData("too few successful trials to fit a model".into())
        })
}

/// Builds the predicted Pareto front from two trained models (§6.1).
///
/// `bt`/`bc` are the normalizers observed while optimizing each objective
/// (the paper: "we use the minimum values observed while optimizing
/// execution cost and execution time to perform normalization"). At most
/// `max_options` evenly-spaced front points are returned (the paper
/// exposes 2–10).
pub fn predicted_pareto_options(
    et_model: &dyn Surrogate,
    ec_model: &dyn Surrogate,
    space: &SearchSpace,
    bt: f64,
    bc: f64,
    max_options: usize,
) -> Result<Vec<CostPerfOption>> {
    if max_options == 0 {
        return Err(FreedomError::InvalidArgument(
            "max_options must be at least 1".into(),
        ));
    }
    let mut options = Vec::with_capacity(space.len());
    let mut normalized: Vec<BiPoint> = Vec::with_capacity(space.len());
    for config in space.configs() {
        let features = SearchSpace::encode(config);
        let t = et_model
            .predict(&features)
            .map_err(freedom_optimizer::OptimizerError::Surrogate)?;
        let c = ec_model
            .predict(&features)
            .map_err(freedom_optimizer::OptimizerError::Surrogate)?;
        options.push(CostPerfOption {
            config: *config,
            predicted_time_secs: t.mean,
            predicted_cost_usd: c.mean,
        });
        let bt = if bt > 0.0 { bt } else { 1.0 };
        let bc = if bc > 0.0 { bc } else { 1.0 };
        normalized.push((t.mean / bt, c.mean / bc));
    }
    let mut front: Vec<CostPerfOption> = pareto_front_indices(&normalized)
        .into_iter()
        .map(|i| options[i])
        .collect();
    front.sort_by(|a, b| a.predicted_time_secs.total_cmp(&b.predicted_time_secs));
    front.dedup_by(|a, b| a.config == b.config);
    if front.len() > max_options {
        // Keep evenly spaced representatives, always including both ends.
        let k = max_options;
        let picked: Vec<CostPerfOption> = (0..k)
            .map(|i| front[i * (front.len() - 1) / (k - 1).max(1)])
            .collect();
        front = picked;
        front.dedup_by(|a, b| a.config == b.config);
    }
    Ok(front)
}

/// Convenience: run the two optimizations (§6.1 trains two models) and
/// return the predicted Pareto options for a function.
pub fn pareto_interface(
    function: FunctionKind,
    input: &InputData,
    kind: SurrogateKind,
    seed: u64,
) -> Result<Vec<CostPerfOption>> {
    let tuner = Autotuner::new(kind);
    let et = tuner.tune_offline(function, input, Objective::ExecutionTime, seed)?;
    let ec = tuner.tune_offline(function, input, Objective::ExecutionCost, seed ^ 0x5bd1)?;
    let et_model = et
        .model
        .as_ref()
        .ok_or_else(|| FreedomError::InsufficientData("ET model missing".into()))?;
    let ec_model = ec
        .model
        .as_ref()
        .ok_or_else(|| FreedomError::InsufficientData("EC model missing".into()))?;
    let (bt, _) = et.run.bt_bc();
    let (_, bc) = ec.run.bt_bc();
    // Never offer configurations the runs learned are OOM-infeasible.
    let space = ec
        .run
        .apply_slicing(&et.run.apply_slicing(&SearchSpace::table1()));
    predicted_pareto_options(et_model.as_ref(), ec_model.as_ref(), &space, bt, bc, 10)
}

/// One weighted-interface option: the best configuration found under a
/// particular weighting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedOption {
    /// Weight of execution time in this option's objective.
    pub wt: f64,
    /// The offered configuration with its *measured* outcomes (the values
    /// the optimization observed at its best trial).
    pub option: CostPerfOption,
}

/// The weighted multi-objective interface: five pre-trained weightings
/// `W_t ∈ {0, 0.25, 0.5, 0.75, 1}`, each contributing its best
/// configuration (§6.1).
pub fn weighted_interface(
    function: FunctionKind,
    input: &InputData,
    kind: SurrogateKind,
    seed: u64,
) -> Result<Vec<WeightedOption>> {
    let tuner = Autotuner::new(kind);
    let mut out = Vec::with_capacity(5);
    for (i, &wt) in [1.0, 0.75, 0.5, 0.25, 0.0].iter().enumerate() {
        let objective = if wt == 1.0 {
            Objective::ExecutionTime
        } else if wt == 0.0 {
            Objective::ExecutionCost
        } else {
            Objective::weighted(wt, 1.0 - wt)?
        };
        let outcome = tuner.tune_offline(function, input, objective, seed + i as u64)?;
        let best = outcome.run.best_feasible().ok_or_else(|| {
            FreedomError::InsufficientData(format!("no feasible trial for wt={wt}"))
        })?;
        out.push(WeightedOption {
            wt,
            option: CostPerfOption {
                config: best.config,
                predicted_time_secs: best.exec_time_secs,
                predicted_cost_usd: best.exec_cost_usd,
            },
        });
    }
    Ok(out)
}

/// Outcome of the hierarchical interface (§6.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchicalOutcome {
    /// The primary objective that was optimized first.
    pub primary: Objective,
    /// The user's degradation budget θ (e.g. 0.2 = 20%).
    pub theta: f64,
    /// Best configuration found for the primary objective alone.
    pub primary_best: CostPerfOption,
    /// Configuration chosen to minimize the secondary objective within the
    /// θ-budget on the (predicted) primary objective.
    pub chosen: CostPerfOption,
}

/// Hierarchical multi-objective optimization: optimize `primary`, then let
/// the model trade ≤ θ of it for the best secondary objective.
///
/// Only one optimization process runs (the paper's cost argument); the
/// secondary-objective model is fitted on the same trials at no extra
/// profiling cost.
pub fn hierarchical_interface(
    function: FunctionKind,
    input: &InputData,
    primary: Objective,
    theta: f64,
    kind: SurrogateKind,
    seed: u64,
) -> Result<HierarchicalOutcome> {
    if !(0.0..=10.0).contains(&theta) {
        return Err(FreedomError::InvalidArgument(format!(
            "theta must be in [0, 10], got {theta}"
        )));
    }
    let secondary = match primary {
        Objective::ExecutionTime => Objective::ExecutionCost,
        Objective::ExecutionCost => Objective::ExecutionTime,
        Objective::Weighted { .. } => {
            return Err(FreedomError::InvalidArgument(
                "hierarchical primary must be ET or EC".into(),
            ))
        }
    };
    let tuner = Autotuner::new(kind);
    let outcome: TuneOutcome = tuner.tune_offline(function, input, primary, seed)?;
    let best = outcome.run.best_feasible().ok_or_else(|| {
        FreedomError::InsufficientData("no feasible trial for the primary objective".into())
    })?;
    let primary_model = outcome
        .model
        .ok_or_else(|| FreedomError::InsufficientData("primary model missing".into()))?;
    let secondary_model = fit_model(kind, &outcome.run.trials, secondary, seed ^ 0x2545)?;

    let best_primary_value = match primary {
        Objective::ExecutionTime => best.exec_time_secs,
        _ => best.exec_cost_usd,
    };
    let budget = best_primary_value * (1.0 + theta);

    // Among configurations the model predicts to fit the budget, pick the
    // best predicted secondary value. Fall back to the primary best.
    let mut chosen = CostPerfOption {
        config: best.config,
        predicted_time_secs: best.exec_time_secs,
        predicted_cost_usd: best.exec_cost_usd,
    };
    let mut best_secondary = f64::INFINITY;
    // Candidates come from the run-sliced space: configurations at or
    // below the observed OOM watermark are known-infeasible and must not
    // be offered, however cheap the model predicts them to be. On top of
    // that, both objectives are scored by the conservative `mean + std`
    // bound, so poorly-explored regions (where the watermark may
    // underestimate the true memory cliff) do not win on wishful
    // predictions.
    let candidate_space = outcome.run.apply_slicing(&SearchSpace::table1());
    for config in candidate_space.configs() {
        let features = SearchSpace::encode(config);
        let p_primary = primary_model
            .predict(&features)
            .map_err(freedom_optimizer::OptimizerError::Surrogate)?;
        if p_primary.mean + p_primary.std > budget {
            continue;
        }
        let p_secondary = secondary_model
            .predict(&features)
            .map_err(freedom_optimizer::OptimizerError::Surrogate)?;
        let secondary_ucb = p_secondary.mean + p_secondary.std;
        if secondary_ucb < best_secondary {
            best_secondary = secondary_ucb;
            let (t, c) = match primary {
                Objective::ExecutionTime => (p_primary.mean, p_secondary.mean),
                _ => (p_secondary.mean, p_primary.mean),
            };
            chosen = CostPerfOption {
                config: *config,
                predicted_time_secs: t,
                predicted_cost_usd: c,
            };
        }
    }

    Ok(HierarchicalOutcome {
        primary,
        theta,
        primary_best: CostPerfOption {
            config: best.config,
            predicted_time_secs: best.exec_time_secs,
            predicted_cost_usd: best.exec_cost_usd,
        },
        chosen,
    })
}

/// Oracle version of the hierarchical trade-off over ground truth: the
/// configuration with the best actual secondary objective among those
/// whose actual primary objective is within θ of the table's best
/// (Figure 14's "ideal" bars).
pub fn hierarchical_ideal(
    table: &PerfTable,
    primary: Objective,
    theta: f64,
) -> Option<CostPerfOption> {
    let best_primary = match primary {
        Objective::ExecutionTime => table.best_by_time()?.exec_time_secs,
        _ => table.best_by_cost()?.exec_cost_usd,
    };
    let budget = best_primary * (1.0 + theta);
    let candidate = table
        .feasible()
        .filter(|p| {
            let v = match primary {
                Objective::ExecutionTime => p.exec_time_secs,
                _ => p.exec_cost_usd,
            };
            v <= budget
        })
        .min_by(|a, b| {
            let (sa, sb) = match primary {
                Objective::ExecutionTime => (a.exec_cost_usd, b.exec_cost_usd),
                _ => (a.exec_time_secs, b.exec_time_secs),
            };
            sa.total_cmp(&sb)
        })?;
    Some(CostPerfOption {
        config: candidate.config,
        predicted_time_secs: candidate.exec_time_secs,
        predicted_cost_usd: candidate.exec_cost_usd,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use freedom_faas::collect_ground_truth;

    #[test]
    fn pareto_interface_offers_a_small_tradeoff_menu() {
        let options = pareto_interface(
            FunctionKind::S3,
            &FunctionKind::S3.default_input(),
            SurrogateKind::Gp,
            3,
        )
        .unwrap();
        assert!(
            (1..=10).contains(&options.len()),
            "expected 1-10 options, got {}",
            options.len()
        );
        // Sorted by predicted time; costs trend the other way (trade-off).
        for w in options.windows(2) {
            assert!(w[0].predicted_time_secs <= w[1].predicted_time_secs + 1e-9);
        }
    }

    #[test]
    fn weighted_interface_offers_five_options() {
        let options = weighted_interface(
            FunctionKind::Faceblur,
            &FunctionKind::Faceblur.default_input(),
            SurrogateKind::Gp,
            1,
        )
        .unwrap();
        assert_eq!(options.len(), 5);
        let wts: Vec<f64> = options.iter().map(|o| o.wt).collect();
        assert_eq!(wts, vec![1.0, 0.75, 0.5, 0.25, 0.0]);
        // The pure-ET option should be roughly the fastest of the menu and
        // the pure-EC option roughly the cheapest. Each run is a single
        // seeded 20-trial optimization, so allow optimizer slack.
        let et = &options[0].option;
        let ec = &options[4].option;
        assert!(et.predicted_time_secs <= ec.predicted_time_secs * 1.5);
        assert!(ec.predicted_cost_usd <= et.predicted_cost_usd * 1.75);
    }

    #[test]
    fn hierarchical_trades_primary_for_secondary() {
        let outcome = hierarchical_interface(
            FunctionKind::Linpack,
            &FunctionKind::Linpack.default_input(),
            Objective::ExecutionTime,
            0.2,
            SurrogateKind::Gp,
            5,
        )
        .unwrap();
        // The chosen configuration should not cost more than the pure-ET
        // best (that is the whole point of the trade).
        assert!(
            outcome.chosen.predicted_cost_usd <= outcome.primary_best.predicted_cost_usd * 1.05,
            "{} vs {}",
            outcome.chosen.predicted_cost_usd,
            outcome.primary_best.predicted_cost_usd
        );
        assert_eq!(outcome.theta, 0.2);
    }

    #[test]
    fn hierarchical_validates_arguments() {
        let input = FunctionKind::S3.default_input();
        assert!(hierarchical_interface(
            FunctionKind::S3,
            &input,
            Objective::ExecutionTime,
            -1.0,
            SurrogateKind::Gp,
            1,
        )
        .is_err());
        assert!(hierarchical_interface(
            FunctionKind::S3,
            &input,
            Objective::Weighted { wt: 0.5, wc: 0.5 },
            0.2,
            SurrogateKind::Gp,
            1,
        )
        .is_err());
    }

    #[test]
    fn ideal_hierarchical_respects_the_budget() {
        let space = SearchSpace::table1();
        let table = collect_ground_truth(
            FunctionKind::S3,
            &FunctionKind::S3.default_input(),
            space.configs(),
            3,
            7,
        )
        .unwrap();
        let best_et = table.best_by_time().unwrap().exec_time_secs;
        let ideal = hierarchical_ideal(&table, Objective::ExecutionTime, 0.2).unwrap();
        assert!(ideal.predicted_time_secs <= best_et * 1.2 + 1e-9);
        // And it is at least as cheap as the raw ET-best configuration.
        let et_best_cost = table.best_by_time().unwrap().exec_cost_usd;
        assert!(ideal.predicted_cost_usd <= et_best_cost + 1e-12);
    }

    #[test]
    fn pareto_option_cap_is_enforced() {
        // A synthetic pair of models with a big front: cap at 4.
        struct Linear {
            slope_t: f64,
            slope_c: f64,
        }
        impl Surrogate for Linear {
            fn fit(&mut self, _x: &[Vec<f64>], _y: &[f64]) -> freedom_surrogates::Result<()> {
                Ok(())
            }
            fn predict(
                &self,
                p: &[f64],
            ) -> freedom_surrogates::Result<freedom_surrogates::Prediction> {
                // Time falls with share, cost rises with share: every share
                // level is on the front.
                Ok(freedom_surrogates::Prediction {
                    mean: 10.0 + self.slope_t * p[0] + self.slope_c * p[1],
                    std: 0.0,
                })
            }
            fn name(&self) -> &'static str {
                "linear"
            }
        }
        let et = Linear {
            slope_t: -2.0,
            slope_c: 0.0,
        };
        let ec = Linear {
            slope_t: 2.0,
            slope_c: 0.1,
        };
        let options =
            predicted_pareto_options(&et, &ec, &SearchSpace::table1(), 1.0, 1.0, 4).unwrap();
        assert!(options.len() <= 4);
        assert!(options.len() >= 2);
    }
}

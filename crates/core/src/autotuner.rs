//! Offline and online autotuning over a live gateway (§5).
//!
//! *Offline* optimization profiles a function at deployment time: each
//! trial reconfigures the deployment and runs several repetitions of a
//! representative input. *Online* optimization uses production invocations
//! themselves as trials (one invocation per trial), which is cheaper but
//! exposes users to bad configurations — quantified by
//! [`freedom_optimizer::online`].

use freedom_faas::{FunctionSpec, Gateway, InvocationStatus, ResourceConfig};
use freedom_linalg::stats;
use freedom_optimizer::{
    BayesianOptimizer, BoConfig, Evaluator, Objective, OptimizationRun, SearchSpace, Trial,
};
use freedom_surrogates::{Surrogate, SurrogateKind};
use freedom_workloads::{FunctionKind, InputData};

use crate::Result;

/// An [`Evaluator`] that measures configurations by reconfiguring and
/// invoking a deployed function on a live gateway.
pub struct GatewayEvaluator {
    gateway: Gateway,
    function: String,
    input: InputData,
    reps: usize,
}

impl GatewayEvaluator {
    /// Creates an evaluator that runs `reps` invocations per trial
    /// (clamped to ≥ 1) and aggregates by median.
    pub fn new(
        gateway: Gateway,
        function: impl Into<String>,
        input: InputData,
        reps: usize,
    ) -> Self {
        Self {
            gateway,
            function: function.into(),
            input,
            reps: reps.max(1),
        }
    }

    /// Total invocations issued so far (cost-of-profiling accounting).
    pub fn gateway(&self) -> &Gateway {
        &self.gateway
    }
}

impl Evaluator for GatewayEvaluator {
    fn evaluate(&mut self, config: &ResourceConfig) -> freedom_optimizer::Result<Trial> {
        self.gateway
            .reconfigure(&self.function, *config)
            .map_err(freedom_optimizer::OptimizerError::Evaluation)?;
        let mut times = Vec::with_capacity(self.reps);
        let mut costs = Vec::with_capacity(self.reps);
        let mut failed = false;
        for _ in 0..self.reps {
            let record = self
                .gateway
                .invoke(&self.function, &self.input)
                .map_err(freedom_optimizer::OptimizerError::Evaluation)?;
            failed |= record.status == InvocationStatus::OomKilled;
            times.push(record.duration_secs);
            costs.push(record.cost_usd);
        }
        Ok(Trial {
            config: *config,
            exec_time_secs: stats::median(&times).unwrap_or(f64::NAN),
            exec_cost_usd: stats::median(&costs).unwrap_or(f64::NAN),
            failed,
        })
    }
}

/// Everything an autotuning session produces.
pub struct TuneOutcome {
    /// The full optimization history.
    pub run: OptimizationRun,
    /// The surrogate fitted on the run's trials (for §5.5 predictions and
    /// the §6 interfaces); `None` when too few trials succeeded.
    pub model: Option<Box<dyn Surrogate>>,
}

impl TuneOutcome {
    /// The recommended configuration, if any trial succeeded.
    pub fn recommended(&self) -> Option<ResourceConfig> {
        self.run.best_feasible().map(|t| t.config)
    }
}

/// High-level driver tying the optimizer to the platform.
#[derive(Debug, Clone)]
pub struct Autotuner {
    surrogate: SurrogateKind,
    bo: BoConfig,
}

impl Autotuner {
    /// Creates an autotuner with the paper's defaults (3 initial samples,
    /// 20-trial budget, EI, §5.1 slicing).
    pub fn new(surrogate: SurrogateKind) -> Self {
        Self {
            surrogate,
            bo: BoConfig::default(),
        }
    }

    /// Overrides the optimization-loop settings.
    pub fn with_bo_config(mut self, bo: BoConfig) -> Self {
        self.bo = bo;
        self
    }

    /// The configured surrogate kind.
    pub fn surrogate_kind(&self) -> SurrogateKind {
        self.surrogate
    }

    /// Offline tuning (§5.2): deploys `function` on a fresh gateway and
    /// profiles it with 5 repetitions per trial over the full Decoupled
    /// space.
    pub fn tune_offline(
        &self,
        function: FunctionKind,
        input: &InputData,
        objective: Objective,
        seed: u64,
    ) -> Result<TuneOutcome> {
        self.tune_offline_in_space(function, input, objective, &SearchSpace::table1(), seed)
    }

    /// Offline tuning restricted to a caller-chosen space (e.g. one
    /// strategy's space, or a family-restricted space for §6.2).
    pub fn tune_offline_in_space(
        &self,
        function: FunctionKind,
        input: &InputData,
        objective: Objective,
        space: &SearchSpace,
        seed: u64,
    ) -> Result<TuneOutcome> {
        self.tune(function, input, objective, space, seed, 5)
    }

    /// Online tuning (§5.4): each trial is a single production invocation.
    pub fn tune_online(
        &self,
        function: FunctionKind,
        input: &InputData,
        objective: Objective,
        seed: u64,
    ) -> Result<TuneOutcome> {
        self.tune(function, input, objective, &SearchSpace::table1(), seed, 1)
    }

    fn tune(
        &self,
        function: FunctionKind,
        input: &InputData,
        objective: Objective,
        space: &SearchSpace,
        seed: u64,
        reps: usize,
    ) -> Result<TuneOutcome> {
        let mut gateway = Gateway::new(seed)?;
        let initial = space
            .configs()
            .first()
            .copied()
            .ok_or(freedom_optimizer::OptimizerError::EmptySearchSpace)?;
        gateway.deploy(FunctionSpec::new(function.name(), function), initial)?;
        let mut evaluator = GatewayEvaluator::new(gateway, function.name(), input.clone(), reps);

        let bo = BoConfig { seed, ..self.bo };
        let optimizer = BayesianOptimizer::new(self.surrogate, bo);
        let run = optimizer.optimize(space, &mut evaluator, objective)?;
        let model = optimizer.fit_on_trials(&run.trials, objective, seed);
        Ok(TuneOutcome { run, model })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offline_tuning_finds_a_good_faceblur_config() {
        let tuner = Autotuner::new(SurrogateKind::Gp);
        let outcome = tuner
            .tune_offline(
                FunctionKind::Faceblur,
                &FunctionKind::Faceblur.default_input(),
                Objective::ExecutionTime,
                7,
            )
            .unwrap();
        assert_eq!(outcome.run.trials.len(), 20);
        let best = outcome.run.best_feasible().unwrap();
        // faceblur is serial: a good config has share ≥ 0.75 and a fast
        // family; its ET should be within 2x of the global best (~4 s).
        assert!(best.exec_time_secs < 8.0, "ET {}", best.exec_time_secs);
        assert!(outcome.recommended().is_some());
        assert!(outcome.model.is_some());
    }

    #[test]
    fn online_tuning_uses_single_invocations() {
        let tuner = Autotuner::new(SurrogateKind::Rf);
        let outcome = tuner
            .tune_online(
                FunctionKind::S3,
                &FunctionKind::S3.default_input(),
                Objective::ExecutionCost,
                3,
            )
            .unwrap();
        assert_eq!(outcome.run.trials.len(), 20);
        assert!(outcome.run.best_value().unwrap() > 0.0);
    }

    #[test]
    fn slicing_kicks_in_for_memory_hungry_functions() {
        // transcode OOMs below ~256 MiB: the run must slice, and no trial
        // after the first failure may use a sliced memory level.
        let tuner = Autotuner::new(SurrogateKind::Gp);
        let outcome = tuner
            .tune_offline(
                FunctionKind::Transcode,
                &FunctionKind::Transcode.default_input(),
                Objective::ExecutionTime,
                11,
            )
            .unwrap();
        let failures = outcome.run.failures();
        if failures > 0 {
            assert!(outcome.run.sliced_away > 0);
        }
    }

    #[test]
    fn restricted_space_stays_restricted() {
        let space = SearchSpace::decoupled_m5();
        let tuner = Autotuner::new(SurrogateKind::Et);
        let outcome = tuner
            .tune_offline_in_space(
                FunctionKind::Linpack,
                &FunctionKind::Linpack.default_input(),
                Objective::ExecutionTime,
                &space,
                5,
            )
            .unwrap();
        assert!(outcome
            .run
            .trials
            .iter()
            .all(|t| t.config.family() == freedom_cluster::InstanceFamily::M5));
    }

    #[test]
    fn outcomes_are_reproducible_per_seed() {
        let tuner = Autotuner::new(SurrogateKind::Gp);
        let input = FunctionKind::Ocr.default_input();
        let a = tuner
            .tune_offline(FunctionKind::Ocr, &input, Objective::ExecutionTime, 9)
            .unwrap();
        let b = tuner
            .tune_offline(FunctionKind::Ocr, &input, Objective::ExecutionTime, 9)
            .unwrap();
        assert_eq!(a.run.trials, b.run.trials);
    }
}

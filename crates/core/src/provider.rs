//! Provider-side machinery: alternative instance types and idle capacity.
//!
//! §4.2 (Table 3) quantifies how often a *different* instance family can
//! serve a function within θ% of its best configuration — the prerequisite
//! for steering load onto whatever capacity is idle. §6.2 (Figure 15)
//! turns that into money: a planner that places functions on
//! spot-discounted idle families whenever the model predicts an execution
//! time within θ of the best found configuration.

use freedom_cluster::InstanceFamily;
use freedom_faas::PerfTable;
use freedom_optimizer::eval::{best_predicted_per_family_with, table_normalizers};
use freedom_optimizer::{Objective, SearchSpace};
use freedom_pricing::SpotPricing;
use freedom_surrogates::Prediction;

use crate::market::AdmissionPolicy;
use crate::{FreedomError, Result, TuneOutcome};

/// Table 3: the number of *alternative* instance families (excluding the
/// best configuration's own family) that have at least one feasible
/// configuration within `theta` (e.g. 0.1 = 10%) of the best objective
/// value in the table.
///
/// Weighted objectives are normalized with the table's own best time/cost
/// (Eq. 2).
pub fn alternative_families_within(
    table: &PerfTable,
    objective: Objective,
    theta: f64,
) -> Result<usize> {
    if !(0.0..=10.0).contains(&theta) {
        return Err(FreedomError::InvalidArgument(format!(
            "theta must be in [0, 10], got {theta}"
        )));
    }
    let (bt, bc) = table_normalizers(table);
    let value =
        |p: &freedom_faas::PerfPoint| objective.value_of(p.exec_time_secs, p.exec_cost_usd, bt, bc);
    let best = table
        .feasible()
        .min_by(|a, b| value(a).total_cmp(&value(b)))
        .ok_or_else(|| FreedomError::InsufficientData("no feasible configuration".into()))?;
    let best_value = value(best);
    let budget = best_value * (1.0 + theta);
    let count = InstanceFamily::SEARCH_SPACE
        .iter()
        .filter(|&&family| family != best.config.family())
        .filter(|&&family| {
            table
                .feasible()
                .any(|p| p.config.family() == family && value(p) <= budget)
        })
        .count();
    Ok(count)
}

/// Planner settings for §6.2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannerConfig {
    /// Allowed predicted execution-time degradation (paper: 0.10).
    pub theta: f64,
    /// Spot pricing applied to idle families (paper: 20% of list price).
    pub spot: SpotPricing,
    /// Risk aversion: candidates are scored by `mean + beta·std`, so
    /// high-uncertainty extrapolations fail the guardrail instead of
    /// surprising production traffic.
    pub beta: f64,
    /// Market headroom the emitted admission policy reserves: spot
    /// requests are denied once utilization of the shared idle pool
    /// crosses `1 − target_headroom`, so supply drops find slack instead
    /// of in-flight work to demote. `0` emits a greedy policy.
    pub target_headroom: f64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            theta: 0.10,
            spot: SpotPricing::PAPER_DEFAULT,
            beta: 1.0,
            target_headroom: 0.15,
        }
    }
}

/// One family's planned placement, normalized against the best found
/// configuration (Figure 15's y-axis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannedPlacement {
    /// Idle family considered.
    pub family: InstanceFamily,
    /// The model's best-predicted configuration on that family.
    pub config: freedom_faas::ResourceConfig,
    /// Whether the prediction passed the θ execution-time guardrail.
    pub accepted: bool,
    /// Actual execution time ÷ best-found execution time.
    pub norm_exec_time: f64,
    /// Spot-discounted actual cost ÷ best-found (undiscounted) cost.
    pub norm_spot_cost: f64,
}

/// The planner's full provider-side output: where each family's load may
/// go, plus how the shared market should gate spot requests. The fleet
/// simulator consumes both halves — placements become
/// `FunctionPlan::alternates`, the admission policy configures the
/// market.
#[derive(Debug, Clone, PartialEq)]
pub struct ProviderPlan {
    /// Per-family predicted-best placements, θ-guardrailed.
    pub placements: Vec<PlannedPlacement>,
    /// Provider-level admission control derived from the planner's risk
    /// posture ([`PlannerConfig::target_headroom`]).
    pub admission: AdmissionPolicy,
}

/// The §6.2 idle-capacity planner.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IdleCapacityPlanner {
    config: PlannerConfig,
}

impl IdleCapacityPlanner {
    /// Creates a planner.
    pub fn new(config: PlannerConfig) -> Self {
        Self { config }
    }

    /// The planner's settings.
    pub fn config(&self) -> PlannerConfig {
        self.config
    }

    /// The admission policy this planner emits for the shared market:
    /// greedy at zero target headroom, otherwise a utilization ceiling
    /// of `1 − target_headroom`.
    pub fn admission_policy(&self) -> AdmissionPolicy {
        if self.config.target_headroom <= 0.0 {
            AdmissionPolicy::Greedy
        } else {
            AdmissionPolicy::Headroom {
                max_utilization: (1.0 - self.config.target_headroom).max(0.0),
            }
        }
    }

    /// Plans placements for every instance family using an execution-time
    /// tuning outcome and the ground-truth table (to score the decisions),
    /// and emits the admission policy the shared market should run with.
    ///
    /// The planner only sees the model and the best-found trial; the table
    /// supplies the *actual* outcomes the experiment reports.
    pub fn plan(
        &self,
        outcome: &TuneOutcome,
        table: &PerfTable,
        space: &SearchSpace,
    ) -> Result<ProviderPlan> {
        let model = outcome
            .model
            .as_ref()
            .ok_or_else(|| FreedomError::InsufficientData("no fitted model".into()))?;
        let best = outcome
            .run
            .best_feasible()
            .ok_or_else(|| FreedomError::InsufficientData("no feasible trial".into()))?;
        let best_point = table
            .lookup(&best.config)
            .ok_or_else(|| FreedomError::InsufficientData("best config missing in table".into()))?;
        let base_time = best_point.exec_time_secs;
        let base_cost = best_point.exec_cost_usd;
        if base_time.is_nan() || base_time <= 0.0 || base_cost.is_nan() || base_cost <= 0.0 {
            return Err(FreedomError::InsufficientData(
                "degenerate best configuration metrics".into(),
            ));
        }

        let per_family = best_predicted_per_family_with(
            model.as_ref(),
            space,
            table,
            Objective::ExecutionTime,
            self.config.beta,
        )?;
        let budget = base_time * (1.0 + self.config.theta);
        let mut out = Vec::with_capacity(per_family.len());
        for fb in per_family {
            let point = table
                .lookup(&fb.config)
                .ok_or_else(|| FreedomError::InsufficientData("config missing in table".into()))?;
            out.push(PlannedPlacement {
                family: fb.family,
                config: fb.config,
                accepted: fb.predicted <= budget,
                norm_exec_time: point.exec_time_secs / base_time,
                norm_spot_cost: point.exec_cost_usd * self.config.spot.fraction / base_cost,
            });
        }
        Ok(ProviderPlan {
            placements: out,
            admission: self.admission_policy(),
        })
    }

    /// Online plan revision: given predicted latency inflations for a
    /// function's alternate placements (index `i` scoring alternate
    /// `i`), returns the indices that pass the θ guardrail under the
    /// planner's risk posture, ordered best-predicted-first (ties by
    /// index).
    ///
    /// Candidates are scored by the conservative `mean + beta·std`
    /// bound, exactly like [`IdleCapacityPlanner::plan`]'s offline
    /// selection — this is the same guardrail applied to *observed*
    /// rather than tuning-time predictions. Non-finite scores never
    /// pass. The control plane's
    /// [`SurrogateRightSizer`](crate::controller::SurrogateRightSizer)
    /// calls this at every controller tick.
    pub fn revise_order(&self, predictions: &[Prediction]) -> Vec<u8> {
        let budget = 1.0 + self.config.theta;
        let mut scored: Vec<(f64, usize)> = predictions
            .iter()
            .enumerate()
            .filter_map(|(i, p)| {
                let score = p.mean + self.config.beta * p.std;
                (score.is_finite() && score <= budget).then_some((score, i))
            })
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        scored.into_iter().map(|(_, i)| i as u8).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Autotuner;
    use freedom_faas::collect_ground_truth;
    use freedom_optimizer::Objective;
    use freedom_surrogates::SurrogateKind;
    use freedom_workloads::FunctionKind;

    fn table_for(kind: FunctionKind, seed: u64) -> PerfTable {
        collect_ground_truth(
            kind,
            &kind.default_input(),
            SearchSpace::table1().configs(),
            3,
            seed,
        )
        .unwrap()
    }

    #[test]
    fn alternative_counts_grow_with_theta() {
        let table = table_for(FunctionKind::Faceblur, 1);
        let tight = alternative_families_within(&table, Objective::ExecutionTime, 0.05).unwrap();
        let loose = alternative_families_within(&table, Objective::ExecutionTime, 0.20).unwrap();
        assert!(tight <= loose);
        assert!(loose <= 5, "at most five alternatives exist");
    }

    #[test]
    fn network_bound_function_has_many_alternatives() {
        // s3 barely cares about the family: nearly every family has a
        // configuration within 10% of the best execution time.
        let table = table_for(FunctionKind::S3, 2);
        let n = alternative_families_within(&table, Objective::ExecutionTime, 0.10).unwrap();
        assert!(n >= 4, "s3 should have ≥4 alternatives, got {n}");
    }

    #[test]
    fn arch_bound_function_has_few_cheap_alternatives() {
        // transcode's Intel affinity means few families reach within 5%
        // of its best execution time.
        let table = table_for(FunctionKind::Transcode, 3);
        let n = alternative_families_within(&table, Objective::ExecutionTime, 0.05).unwrap();
        assert!(
            n <= 2,
            "transcode should have ≤2 close alternatives, got {n}"
        );
    }

    #[test]
    fn theta_validation() {
        let table = table_for(FunctionKind::S3, 4);
        assert!(alternative_families_within(&table, Objective::ExecutionTime, -0.1).is_err());
    }

    #[test]
    fn planner_produces_discounted_placements() {
        let kind = FunctionKind::Faceblur;
        let table = table_for(kind, 5);
        let outcome = Autotuner::new(SurrogateKind::Gp)
            .tune_offline(kind, &kind.default_input(), Objective::ExecutionTime, 5)
            .unwrap();
        let planner = IdleCapacityPlanner::default();
        let plan = planner
            .plan(&outcome, &table, &SearchSpace::table1())
            .unwrap();
        // The default planner reserves 15% market headroom.
        let AdmissionPolicy::Headroom { max_utilization } = plan.admission else {
            panic!("default planner must emit a headroom policy");
        };
        assert!((max_utilization - 0.85).abs() < 1e-12);
        let placements = plan.placements;
        assert_eq!(placements.len(), 6, "one placement per family");
        let accepted: Vec<_> = placements.iter().filter(|p| p.accepted).collect();
        assert!(!accepted.is_empty(), "some family must pass the guardrail");
        for p in &accepted {
            // Spot discount should push most accepted placements below the
            // best configuration's cost.
            assert!(p.norm_spot_cost < 1.0, "{:?}", p);
            // Actual time can exceed the guardrail due to prediction error,
            // but not absurdly.
            assert!(p.norm_exec_time < 2.5, "{:?}", p);
        }
    }

    #[test]
    fn revise_order_applies_the_guardrail_to_online_predictions() {
        let planner = IdleCapacityPlanner::new(PlannerConfig {
            theta: 0.10,
            beta: 1.0,
            ..PlannerConfig::default()
        });
        let p = |mean: f64, std: f64| freedom_surrogates::Prediction { mean, std };
        // Scores: 1.05, 1.02+0.10=1.12 (out), 1.08, NaN (out), 1.05 (tie
        // with index 0 → index order), inf (out).
        let order = planner.revise_order(&[
            p(1.05, 0.0),
            p(1.02, 0.10),
            p(1.08, 0.0),
            p(f64::NAN, 0.0),
            p(1.00, 0.05),
            p(f64::INFINITY, 0.0),
        ]);
        assert_eq!(order, vec![0, 4, 2]);
        // beta = 0 ignores uncertainty: the 1.02-mean candidate is back.
        let mean_only = IdleCapacityPlanner::new(PlannerConfig {
            theta: 0.10,
            beta: 0.0,
            ..PlannerConfig::default()
        });
        let order = mean_only.revise_order(&[p(1.05, 0.0), p(1.02, 0.10)]);
        assert_eq!(order, vec![1, 0]);
        assert!(planner.revise_order(&[]).is_empty());
    }

    #[test]
    fn planner_config_is_visible() {
        let planner = IdleCapacityPlanner::new(PlannerConfig {
            theta: 0.25,
            spot: SpotPricing { fraction: 0.5 },
            beta: 0.5,
            target_headroom: 0.3,
        });
        assert_eq!(planner.config().theta, 0.25);
        assert_eq!(planner.config().spot.fraction, 0.5);
        let AdmissionPolicy::Headroom { max_utilization } = planner.admission_policy() else {
            panic!("positive headroom must emit a headroom policy");
        };
        assert!((max_utilization - 0.7).abs() < 1e-12);
        // Zero headroom degenerates to a greedy market.
        let greedy = IdleCapacityPlanner::new(PlannerConfig {
            target_headroom: 0.0,
            ..PlannerConfig::default()
        });
        assert_eq!(greedy.admission_policy(), AdmissionPolicy::Greedy);
    }
}

//! Error type for the core framework.

use std::fmt;

use freedom_faas::FaasError;
use freedom_optimizer::OptimizerError;
use freedom_pricing::PricingError;

/// Errors produced by the autotuning framework.
#[derive(Debug, Clone, PartialEq)]
pub enum FreedomError {
    /// The underlying platform failed.
    Faas(FaasError),
    /// The optimizer failed.
    Optimizer(OptimizerError),
    /// The pricing model failed.
    Pricing(PricingError),
    /// Not enough data to serve the request (e.g. all trials failed).
    InsufficientData(String),
    /// An invalid argument (θ out of range, empty weight list, …).
    InvalidArgument(String),
}

impl fmt::Display for FreedomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Faas(e) => write!(f, "platform error: {e}"),
            Self::Optimizer(e) => write!(f, "optimizer error: {e}"),
            Self::Pricing(e) => write!(f, "pricing error: {e}"),
            Self::InsufficientData(msg) => write!(f, "insufficient data: {msg}"),
            Self::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for FreedomError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Faas(e) => Some(e),
            Self::Optimizer(e) => Some(e),
            Self::Pricing(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FaasError> for FreedomError {
    fn from(e: FaasError) -> Self {
        Self::Faas(e)
    }
}

impl From<OptimizerError> for FreedomError {
    fn from(e: OptimizerError) -> Self {
        Self::Optimizer(e)
    }
}

impl From<PricingError> for FreedomError {
    fn from(e: PricingError) -> Self {
        Self::Pricing(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        use std::error::Error;
        let e: FreedomError = FaasError::UnknownFunction("f".into()).into();
        assert!(e.to_string().contains("platform"));
        assert!(e.source().is_some());
        let o: FreedomError = OptimizerError::EmptySearchSpace.into();
        assert!(o.to_string().contains("optimizer"));
        assert!(FreedomError::InsufficientData("x".into())
            .source()
            .is_none());
    }
}

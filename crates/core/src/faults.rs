//! Seeded fault-injection plans for the fleet replay.
//!
//! A [`FaultPlan`] describes failure-domain events — whole-zone outages,
//! fleet-wide supply-shock bursts, and dropped preemption-notice
//! deliveries — as a *pure function of its seed*. Faults are never wall
//! clock callbacks or out-of-band mutations: the plan expands into a
//! [`FaultTimeline`] of simulated-time intervals that
//! [`crate::market::SupplySchedule::generate`] composes into the same
//! precomputed supply timeline every replay engine walks. Because the
//! composed schedule is immutable state shared by `run()` and every
//! windowed/streaming engine, the determinism lattice (sequential ≡
//! windowed ≡ streaming, bit-identical for every thread count × window
//! size × controller) holds with faults enabled by construction.

use crate::{FreedomError, Result};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Guard against pathological plans (e.g. a huge rate over a long
/// horizon) expanding into an event count that would dwarf the trace.
const MAX_FAULT_EVENTS: usize = 1 << 20;

/// Seed salt for the notice-delivery drop stream, kept distinct from the
/// interval streams so adding drops never perturbs outage placement.
pub(crate) const NOTICE_DROP_SALT: u64 = 0xa076_1d64_78bd_642f;

/// A seeded description of the failure events to inject into a replay.
///
/// All rates are Poisson (exponential gaps), all durations exponential
/// with the given mean; the expansion is a pure function of `seed`, so a
/// `FaultPlan` value fully names a fault scenario. [`FaultPlan::NONE`]
/// (the [`Default`]) injects nothing and leaves every schedule
/// bit-identical to the fault-free build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for every fault stream derived from this plan.
    pub seed: u64,
    /// Whole-zone outages per zone-hour (capacity pinned to zero).
    pub outage_rate_per_hour: f64,
    /// Mean outage duration in seconds.
    pub mean_outage_secs: f64,
    /// Fraction of preemption notices whose delivery is dropped
    /// (in `[0, 1]`): the affected step withdraws without warning.
    pub notice_drop_fraction: f64,
    /// Fleet-wide supply-shock bursts per hour (all zones lose a
    /// `burst_severity` fraction of capacity for the burst's duration).
    pub burst_rate_per_hour: f64,
    /// Mean burst duration in seconds.
    pub mean_burst_secs: f64,
    /// Fractional capacity cut applied while a burst is active
    /// (in `[0, 1]`; caps are floored, so small slots can hit zero).
    pub burst_severity: f64,
}

impl FaultPlan {
    /// The inert plan: no outages, no bursts, no dropped notices.
    pub const NONE: FaultPlan = FaultPlan {
        seed: 0,
        outage_rate_per_hour: 0.0,
        mean_outage_secs: 0.0,
        notice_drop_fraction: 0.0,
        burst_rate_per_hour: 0.0,
        mean_burst_secs: 0.0,
        burst_severity: 0.0,
    };

    /// Whether this plan injects anything at all.
    pub fn is_active(&self) -> bool {
        self.outage_rate_per_hour > 0.0
            || self.burst_rate_per_hour > 0.0
            || self.notice_drop_fraction > 0.0
    }

    /// Validates rates, durations, and fractions.
    pub fn validate(&self) -> Result<()> {
        let nonneg = [
            ("outage_rate_per_hour", self.outage_rate_per_hour),
            ("mean_outage_secs", self.mean_outage_secs),
            ("burst_rate_per_hour", self.burst_rate_per_hour),
            ("mean_burst_secs", self.mean_burst_secs),
        ];
        for (name, v) in nonneg {
            if !v.is_finite() || v < 0.0 {
                return Err(FreedomError::InvalidArgument(format!(
                    "FaultPlan.{name} must be finite and >= 0, got {v}"
                )));
            }
        }
        for (name, v) in [
            ("notice_drop_fraction", self.notice_drop_fraction),
            ("burst_severity", self.burst_severity),
        ] {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(FreedomError::InvalidArgument(format!(
                    "FaultPlan.{name} must be in [0, 1], got {v}"
                )));
            }
        }
        if self.outage_rate_per_hour > 0.0 && self.mean_outage_secs <= 0.0 {
            return Err(FreedomError::InvalidArgument(
                "FaultPlan.mean_outage_secs must be > 0 when outages are enabled".into(),
            ));
        }
        if self.burst_rate_per_hour > 0.0 && self.mean_burst_secs <= 0.0 {
            return Err(FreedomError::InvalidArgument(
                "FaultPlan.mean_burst_secs must be > 0 when bursts are enabled".into(),
            ));
        }
        Ok(())
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::NONE
    }
}

/// One whole-zone capacity outage: `zone` holds zero capacity on
/// `[start_nanos, end_nanos)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneOutage {
    /// Index of the affected zone.
    pub zone: usize,
    /// Inclusive start of the outage, simulated nanoseconds.
    pub start_nanos: u64,
    /// Exclusive end of the outage.
    pub end_nanos: u64,
}

/// One fleet-wide supply-shock burst: every zone's caps are cut by
/// `severity` on `[start_nanos, end_nanos)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShockBurst {
    /// Inclusive start of the burst, simulated nanoseconds.
    pub start_nanos: u64,
    /// Exclusive end of the burst.
    pub end_nanos: u64,
    /// Fractional capacity cut while active (in `[0, 1]`).
    pub severity: f64,
}

/// A [`FaultPlan`] expanded over a concrete horizon: sorted outage and
/// burst intervals, ready to compose into a supply schedule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultTimeline {
    /// Zone outages, sorted by zone then start (non-overlapping per zone).
    pub outages: Vec<ZoneOutage>,
    /// Fleet-wide bursts, sorted by start (non-overlapping).
    pub bursts: Vec<ShockBurst>,
}

/// Draws an exponential interval with the given mean (nanoseconds),
/// at least 1 ns so consecutive events never collapse onto one instant.
fn exp_nanos(rng: &mut StdRng, mean_nanos: f64) -> u64 {
    let u: f64 = rng.gen();
    let draw = -(1.0 - u).ln() * mean_nanos;
    (draw as u64).max(1)
}

impl FaultTimeline {
    /// Expands `plan` over `[0, horizon_nanos)` for `n_zones` zones.
    ///
    /// Pure in `(plan, n_zones, horizon_nanos)`: zone outage streams are
    /// drawn per zone in zone order, then the burst stream, all from one
    /// generator seeded with `plan.seed` — so the same plan yields the
    /// same timeline on every engine and every run.
    pub fn generate(plan: &FaultPlan, n_zones: usize, horizon_nanos: u64) -> Result<FaultTimeline> {
        plan.validate()?;
        let mut timeline = FaultTimeline::default();
        if !plan.is_active() || horizon_nanos == 0 {
            return Ok(timeline);
        }
        let mut rng = StdRng::seed_from_u64(plan.seed);
        if plan.outage_rate_per_hour > 0.0 {
            let mean_gap = 3_600e9 / plan.outage_rate_per_hour;
            let mean_len = plan.mean_outage_secs * 1e9;
            for zone in 0..n_zones {
                let mut t = 0u64;
                loop {
                    t = t.saturating_add(exp_nanos(&mut rng, mean_gap));
                    if t >= horizon_nanos {
                        break;
                    }
                    let end = t.saturating_add(exp_nanos(&mut rng, mean_len));
                    timeline.outages.push(ZoneOutage {
                        zone,
                        start_nanos: t,
                        end_nanos: end,
                    });
                    if timeline.outages.len() > MAX_FAULT_EVENTS {
                        return Err(FreedomError::InvalidArgument(
                            "FaultPlan expands into too many outage events".into(),
                        ));
                    }
                    // Resume the gap draw after the outage: intervals
                    // within one zone never overlap.
                    t = end;
                }
            }
        }
        if plan.burst_rate_per_hour > 0.0 {
            let mean_gap = 3_600e9 / plan.burst_rate_per_hour;
            let mean_len = plan.mean_burst_secs * 1e9;
            let mut t = 0u64;
            loop {
                t = t.saturating_add(exp_nanos(&mut rng, mean_gap));
                if t >= horizon_nanos {
                    break;
                }
                let end = t.saturating_add(exp_nanos(&mut rng, mean_len));
                timeline.bursts.push(ShockBurst {
                    start_nanos: t,
                    end_nanos: end,
                    severity: plan.burst_severity,
                });
                if timeline.bursts.len() > MAX_FAULT_EVENTS {
                    return Err(FreedomError::InvalidArgument(
                        "FaultPlan expands into too many burst events".into(),
                    ));
                }
                t = end;
            }
        }
        Ok(timeline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn active_plan(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            outage_rate_per_hour: 6.0,
            mean_outage_secs: 40.0,
            notice_drop_fraction: 0.25,
            burst_rate_per_hour: 4.0,
            mean_burst_secs: 20.0,
            burst_severity: 0.5,
        }
    }

    #[test]
    fn timeline_is_a_pure_function_of_the_seed() {
        let horizon = 3_600_000_000_000; // one hour
        let a = FaultTimeline::generate(&active_plan(7), 3, horizon).unwrap();
        let b = FaultTimeline::generate(&active_plan(7), 3, horizon).unwrap();
        assert_eq!(a, b);
        assert!(!a.outages.is_empty());
        assert!(!a.bursts.is_empty());
        let c = FaultTimeline::generate(&active_plan(8), 3, horizon).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn intervals_start_inside_the_horizon_and_never_overlap_per_zone() {
        let horizon = 7_200_000_000_000;
        let t = FaultTimeline::generate(&active_plan(11), 4, horizon).unwrap();
        for o in &t.outages {
            assert!(o.start_nanos < horizon);
            assert!(o.end_nanos > o.start_nanos);
        }
        for pair in t.outages.windows(2) {
            if pair[0].zone == pair[1].zone {
                assert!(pair[0].end_nanos <= pair[1].start_nanos);
            }
        }
        for pair in t.bursts.windows(2) {
            assert!(pair[0].end_nanos <= pair[1].start_nanos);
        }
    }

    #[test]
    fn inert_plan_expands_to_nothing() {
        let t = FaultTimeline::generate(&FaultPlan::NONE, 8, u64::MAX / 2).unwrap();
        assert!(t.outages.is_empty() && t.bursts.is_empty());
        assert!(!FaultPlan::NONE.is_active());
        assert_eq!(FaultPlan::default(), FaultPlan::NONE);
    }

    #[test]
    fn invalid_plans_are_rejected() {
        let mut p = active_plan(1);
        p.burst_severity = 1.5;
        assert!(p.validate().is_err());
        let mut p = active_plan(1);
        p.notice_drop_fraction = -0.1;
        assert!(p.validate().is_err());
        let mut p = active_plan(1);
        p.mean_outage_secs = 0.0;
        assert!(p.validate().is_err());
        let mut p = active_plan(1);
        p.outage_rate_per_hour = f64::NAN;
        assert!(p.validate().is_err());
    }
}

//! Seeded fault-injection plans for the fleet replay.
//!
//! A [`FaultPlan`] describes failure-domain events — whole-zone outages,
//! fleet-wide supply-shock bursts, and dropped preemption-notice
//! deliveries — as a *pure function of its seed*. Faults are never wall
//! clock callbacks or out-of-band mutations: the plan expands into a
//! [`FaultTimeline`] of simulated-time intervals that
//! [`crate::market::SupplySchedule::generate`] composes into the same
//! precomputed supply timeline every replay engine walks. Because the
//! composed schedule is immutable state shared by `run()` and every
//! windowed/streaming engine, the determinism lattice (sequential ≡
//! windowed ≡ streaming, bit-identical for every thread count × window
//! size × controller) holds with faults enabled by construction.
//!
//! Per-invocation *transient* faults (crash-on-start, mid-flight abort,
//! straggler slowdown) ride the same contract from the other direction:
//! instead of expanding into a timeline up front, each spot attempt
//! draws its fault as a stateless hash of `(seed, function, arrival
//! index, attempt)` — see [`FaultPlan::fault_for`] — so the retry layer
//! in [`crate::fleet`] replays the identical failure script no matter
//! how the windowed engines partition the trace.

use crate::{FreedomError, Result};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Guard against pathological plans (e.g. a huge rate over a long
/// horizon) expanding into an event count that would dwarf the trace.
const MAX_FAULT_EVENTS: usize = 1 << 20;

/// Seed salt for the notice-delivery drop stream, kept distinct from the
/// interval streams so adding drops never perturbs outage placement.
pub(crate) const NOTICE_DROP_SALT: u64 = 0xa076_1d64_78bd_642f;

/// Seed salt for the per-invocation transient-fault stream. Transient
/// faults are drawn *statelessly* — a hash of `(seed, function, arrival
/// index, attempt)` rather than a sequential RNG walk — so a windowed
/// replay that sees arrivals partitioned across windows draws the exact
/// same fault for every attempt as the sequential engine.
pub(crate) const TRANSIENT_SALT: u64 = 0x2545_f491_4f6c_dd1d;

/// A seeded description of the failure events to inject into a replay.
///
/// All rates are Poisson (exponential gaps), all durations exponential
/// with the given mean; the expansion is a pure function of `seed`, so a
/// `FaultPlan` value fully names a fault scenario. [`FaultPlan::NONE`]
/// (the [`Default`]) injects nothing and leaves every schedule
/// bit-identical to the fault-free build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for every fault stream derived from this plan.
    pub seed: u64,
    /// Whole-zone outages per zone-hour (capacity pinned to zero).
    pub outage_rate_per_hour: f64,
    /// Mean outage duration in seconds.
    pub mean_outage_secs: f64,
    /// Fraction of preemption notices whose delivery is dropped
    /// (in `[0, 1]`): the affected step withdraws without warning.
    pub notice_drop_fraction: f64,
    /// Fleet-wide supply-shock bursts per hour (all zones lose a
    /// `burst_severity` fraction of capacity for the burst's duration).
    pub burst_rate_per_hour: f64,
    /// Mean burst duration in seconds.
    pub mean_burst_secs: f64,
    /// Fractional capacity cut applied while a burst is active
    /// (in `[0, 1]`; caps are floored, so small slots can hit zero).
    pub burst_severity: f64,
    /// Per-attempt probability that a spot placement crashes before it
    /// starts (sandbox init failure): nothing runs, nothing is billed,
    /// and the retry layer re-admits the invocation after backoff.
    pub crash_prob: f64,
    /// Per-attempt probability that a spot execution aborts mid-flight
    /// at a seeded fraction of its duration. The partial run bills at
    /// the admitted spot price before the retry layer takes over.
    pub abort_prob: f64,
    /// Per-attempt probability that a spot execution straggles: it
    /// completes, but `straggler_factor` slower than planned. Stragglers
    /// are the hedging target — they finish eventually, so a hedged
    /// re-issue can race them instead of waiting.
    pub straggler_prob: f64,
    /// Duration multiplier applied to straggler attempts (>= 1).
    pub straggler_factor: f64,
}

/// One transient per-invocation fault, drawn for a single spot attempt.
///
/// On-demand placements never fault: the paper's premise is that the
/// *cheap* capacity is the unreliable capacity, and the platform absorbs
/// its failures through retries rather than surfacing them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TransientFault {
    /// The attempt crashes before starting; zero occupancy, zero bill.
    CrashOnStart,
    /// The attempt aborts after running `at_fraction` of its duration.
    MidFlightAbort {
        /// Fraction of the planned duration that elapses before the
        /// abort, in `(0, 1)`.
        at_fraction: f64,
    },
    /// The attempt completes, but `factor` slower than planned.
    Straggler {
        /// Duration multiplier (>= 1).
        factor: f64,
    },
}

/// splitmix64 finisher: the avalanche stage used by every stateless
/// per-event draw in this module (and by the retry layer's jitter).
pub(crate) fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Maps the top 53 bits of a hash onto `[0, 1)`.
pub(crate) fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultPlan {
    /// The inert plan: no outages, no bursts, no dropped notices.
    pub const NONE: FaultPlan = FaultPlan {
        seed: 0,
        outage_rate_per_hour: 0.0,
        mean_outage_secs: 0.0,
        notice_drop_fraction: 0.0,
        burst_rate_per_hour: 0.0,
        mean_burst_secs: 0.0,
        burst_severity: 0.0,
        crash_prob: 0.0,
        abort_prob: 0.0,
        straggler_prob: 0.0,
        straggler_factor: 0.0,
    };

    /// Whether this plan injects any *supply-side* faults (outages,
    /// bursts, dropped notices). Transient per-invocation faults are
    /// gated separately by [`FaultPlan::has_transient`].
    pub fn is_active(&self) -> bool {
        self.outage_rate_per_hour > 0.0
            || self.burst_rate_per_hour > 0.0
            || self.notice_drop_fraction > 0.0
    }

    /// Whether this plan injects per-invocation transient faults.
    pub fn has_transient(&self) -> bool {
        self.crash_prob > 0.0 || self.abort_prob > 0.0 || self.straggler_prob > 0.0
    }

    /// Draws the transient fault (if any) for one spot attempt.
    ///
    /// Stateless and pure in `(seed, function, idx, attempt)`: the draw
    /// hashes the attempt's identity instead of consuming a sequential
    /// RNG stream, so the windowed engines — which interleave attempts
    /// in a different order than the sequential walk — reproduce every
    /// draw exactly. `attempt` is 1-based; a retried invocation rolls a
    /// fresh, independent fault on each attempt.
    ///
    /// The identity packs into one word — `idx` in the low 32 bits,
    /// `attempt` above it, `function` in the high bits — finished by a
    /// single avalanche round: this draw sits on the per-placement hot
    /// path of the replay engines, and one [`mix`] of a packed distinct
    /// input is the same construction (and statistical quality) as a
    /// SplitMix64 output step.
    pub fn fault_for(&self, function: u32, idx: u32, attempt: u8) -> Option<TransientFault> {
        if !self.has_transient() {
            return None;
        }
        let packed = u64::from(idx) | (u64::from(attempt) << 32) | (u64::from(function) << 40);
        let h = mix(self.seed ^ TRANSIENT_SALT ^ packed);
        let u = unit(h);
        if u < self.crash_prob {
            return Some(TransientFault::CrashOnStart);
        }
        if u < self.crash_prob + self.abort_prob {
            // Second independent draw for where in the run the abort
            // lands, kept away from the endpoints.
            let at_fraction = 0.10 + 0.80 * unit(mix(h));
            return Some(TransientFault::MidFlightAbort { at_fraction });
        }
        if u < self.crash_prob + self.abort_prob + self.straggler_prob {
            return Some(TransientFault::Straggler {
                factor: self.straggler_factor,
            });
        }
        None
    }

    /// Validates rates, durations, and fractions.
    pub fn validate(&self) -> Result<()> {
        let nonneg = [
            ("outage_rate_per_hour", self.outage_rate_per_hour),
            ("mean_outage_secs", self.mean_outage_secs),
            ("burst_rate_per_hour", self.burst_rate_per_hour),
            ("mean_burst_secs", self.mean_burst_secs),
        ];
        for (name, v) in nonneg {
            if !v.is_finite() || v < 0.0 {
                return Err(FreedomError::InvalidArgument(format!(
                    "FaultPlan.{name} must be finite and >= 0, got {v}"
                )));
            }
        }
        for (name, v) in [
            ("notice_drop_fraction", self.notice_drop_fraction),
            ("burst_severity", self.burst_severity),
        ] {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(FreedomError::InvalidArgument(format!(
                    "FaultPlan.{name} must be in [0, 1], got {v}"
                )));
            }
        }
        if self.outage_rate_per_hour > 0.0 && self.mean_outage_secs <= 0.0 {
            return Err(FreedomError::InvalidArgument(
                "FaultPlan.mean_outage_secs must be > 0 when outages are enabled".into(),
            ));
        }
        if self.burst_rate_per_hour > 0.0 && self.mean_burst_secs <= 0.0 {
            return Err(FreedomError::InvalidArgument(
                "FaultPlan.mean_burst_secs must be > 0 when bursts are enabled".into(),
            ));
        }
        for (name, v) in [
            ("crash_prob", self.crash_prob),
            ("abort_prob", self.abort_prob),
            ("straggler_prob", self.straggler_prob),
        ] {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(FreedomError::InvalidArgument(format!(
                    "FaultPlan.{name} must be in [0, 1], got {v}"
                )));
            }
        }
        if self.crash_prob + self.abort_prob + self.straggler_prob > 1.0 {
            return Err(FreedomError::InvalidArgument(
                "FaultPlan transient fault probabilities must sum to <= 1".into(),
            ));
        }
        if self.straggler_prob > 0.0
            && !(self.straggler_factor.is_finite() && self.straggler_factor >= 1.0)
        {
            return Err(FreedomError::InvalidArgument(format!(
                "FaultPlan.straggler_factor must be finite and >= 1 when stragglers are enabled, got {}",
                self.straggler_factor
            )));
        }
        Ok(())
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::NONE
    }
}

/// One whole-zone capacity outage: `zone` holds zero capacity on
/// `[start_nanos, end_nanos)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneOutage {
    /// Index of the affected zone.
    pub zone: usize,
    /// Inclusive start of the outage, simulated nanoseconds.
    pub start_nanos: u64,
    /// Exclusive end of the outage.
    pub end_nanos: u64,
}

/// One fleet-wide supply-shock burst: every zone's caps are cut by
/// `severity` on `[start_nanos, end_nanos)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShockBurst {
    /// Inclusive start of the burst, simulated nanoseconds.
    pub start_nanos: u64,
    /// Exclusive end of the burst.
    pub end_nanos: u64,
    /// Fractional capacity cut while active (in `[0, 1]`).
    pub severity: f64,
}

/// A [`FaultPlan`] expanded over a concrete horizon: sorted outage and
/// burst intervals, ready to compose into a supply schedule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultTimeline {
    /// Zone outages, sorted by zone then start (non-overlapping per zone).
    pub outages: Vec<ZoneOutage>,
    /// Fleet-wide bursts, sorted by start (non-overlapping).
    pub bursts: Vec<ShockBurst>,
}

/// Draws an exponential interval with the given mean (nanoseconds),
/// at least 1 ns so consecutive events never collapse onto one instant.
fn exp_nanos(rng: &mut StdRng, mean_nanos: f64) -> u64 {
    let u: f64 = rng.gen();
    let draw = -(1.0 - u).ln() * mean_nanos;
    (draw as u64).max(1)
}

impl FaultTimeline {
    /// Expands `plan` over `[0, horizon_nanos)` for `n_zones` zones.
    ///
    /// Pure in `(plan, n_zones, horizon_nanos)`: zone outage streams are
    /// drawn per zone in zone order, then the burst stream, all from one
    /// generator seeded with `plan.seed` — so the same plan yields the
    /// same timeline on every engine and every run.
    pub fn generate(plan: &FaultPlan, n_zones: usize, horizon_nanos: u64) -> Result<FaultTimeline> {
        plan.validate()?;
        let mut timeline = FaultTimeline::default();
        if !plan.is_active() || horizon_nanos == 0 {
            return Ok(timeline);
        }
        let mut rng = StdRng::seed_from_u64(plan.seed);
        if plan.outage_rate_per_hour > 0.0 {
            let mean_gap = 3_600e9 / plan.outage_rate_per_hour;
            let mean_len = plan.mean_outage_secs * 1e9;
            for zone in 0..n_zones {
                let mut t = 0u64;
                loop {
                    t = t.saturating_add(exp_nanos(&mut rng, mean_gap));
                    if t >= horizon_nanos {
                        break;
                    }
                    let end = t.saturating_add(exp_nanos(&mut rng, mean_len));
                    timeline.outages.push(ZoneOutage {
                        zone,
                        start_nanos: t,
                        end_nanos: end,
                    });
                    if timeline.outages.len() > MAX_FAULT_EVENTS {
                        return Err(FreedomError::InvalidArgument(
                            "FaultPlan expands into too many outage events".into(),
                        ));
                    }
                    // Resume the gap draw after the outage: intervals
                    // within one zone never overlap.
                    t = end;
                }
            }
        }
        if plan.burst_rate_per_hour > 0.0 {
            let mean_gap = 3_600e9 / plan.burst_rate_per_hour;
            let mean_len = plan.mean_burst_secs * 1e9;
            let mut t = 0u64;
            loop {
                t = t.saturating_add(exp_nanos(&mut rng, mean_gap));
                if t >= horizon_nanos {
                    break;
                }
                let end = t.saturating_add(exp_nanos(&mut rng, mean_len));
                timeline.bursts.push(ShockBurst {
                    start_nanos: t,
                    end_nanos: end,
                    severity: plan.burst_severity,
                });
                if timeline.bursts.len() > MAX_FAULT_EVENTS {
                    return Err(FreedomError::InvalidArgument(
                        "FaultPlan expands into too many burst events".into(),
                    ));
                }
                t = end;
            }
        }
        Ok(timeline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn active_plan(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            outage_rate_per_hour: 6.0,
            mean_outage_secs: 40.0,
            notice_drop_fraction: 0.25,
            burst_rate_per_hour: 4.0,
            mean_burst_secs: 20.0,
            burst_severity: 0.5,
            crash_prob: 0.02,
            abort_prob: 0.03,
            straggler_prob: 0.05,
            straggler_factor: 3.0,
        }
    }

    #[test]
    fn timeline_is_a_pure_function_of_the_seed() {
        let horizon = 3_600_000_000_000; // one hour
        let a = FaultTimeline::generate(&active_plan(7), 3, horizon).unwrap();
        let b = FaultTimeline::generate(&active_plan(7), 3, horizon).unwrap();
        assert_eq!(a, b);
        assert!(!a.outages.is_empty());
        assert!(!a.bursts.is_empty());
        let c = FaultTimeline::generate(&active_plan(8), 3, horizon).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn intervals_start_inside_the_horizon_and_never_overlap_per_zone() {
        let horizon = 7_200_000_000_000;
        let t = FaultTimeline::generate(&active_plan(11), 4, horizon).unwrap();
        for o in &t.outages {
            assert!(o.start_nanos < horizon);
            assert!(o.end_nanos > o.start_nanos);
        }
        for pair in t.outages.windows(2) {
            if pair[0].zone == pair[1].zone {
                assert!(pair[0].end_nanos <= pair[1].start_nanos);
            }
        }
        for pair in t.bursts.windows(2) {
            assert!(pair[0].end_nanos <= pair[1].start_nanos);
        }
    }

    #[test]
    fn inert_plan_expands_to_nothing() {
        let t = FaultTimeline::generate(&FaultPlan::NONE, 8, u64::MAX / 2).unwrap();
        assert!(t.outages.is_empty() && t.bursts.is_empty());
        assert!(!FaultPlan::NONE.is_active());
        assert_eq!(FaultPlan::default(), FaultPlan::NONE);
    }

    #[test]
    fn transient_draws_are_stateless_and_track_their_probabilities() {
        let plan = FaultPlan {
            seed: 33,
            crash_prob: 0.10,
            abort_prob: 0.15,
            straggler_prob: 0.20,
            straggler_factor: 4.0,
            ..FaultPlan::NONE
        };
        assert!(plan.has_transient() && !plan.is_active());
        let (mut crash, mut abort, mut straggle) = (0u32, 0u32, 0u32);
        const N: u32 = 20_000;
        for idx in 0..N {
            let f = plan.fault_for(idx % 7, idx, 1);
            assert_eq!(f, plan.fault_for(idx % 7, idx, 1), "draws must be pure");
            match f {
                Some(TransientFault::CrashOnStart) => crash += 1,
                Some(TransientFault::MidFlightAbort { at_fraction }) => {
                    assert!((0.10..0.90).contains(&at_fraction));
                    abort += 1;
                }
                Some(TransientFault::Straggler { factor }) => {
                    assert_eq!(factor, 4.0);
                    straggle += 1;
                }
                None => {}
            }
        }
        for (hits, expect) in [(crash, 0.10), (abort, 0.15), (straggle, 0.20)] {
            let rate = f64::from(hits) / f64::from(N);
            assert!(
                (rate - expect).abs() < 0.02,
                "rate {rate} too far from {expect}"
            );
        }
        // Fresh attempts re-roll: the same invocation must not be doomed
        // to the identical fault forever.
        let differs = (0..N).any(|idx| plan.fault_for(0, idx, 1) != plan.fault_for(0, idx, 2));
        assert!(differs);
        assert_eq!(FaultPlan::NONE.fault_for(1, 2, 1), None);
        assert!(!FaultPlan::NONE.has_transient());
    }

    #[test]
    fn invalid_plans_are_rejected() {
        let mut p = active_plan(1);
        p.burst_severity = 1.5;
        assert!(p.validate().is_err());
        let mut p = active_plan(1);
        p.notice_drop_fraction = -0.1;
        assert!(p.validate().is_err());
        let mut p = active_plan(1);
        p.mean_outage_secs = 0.0;
        assert!(p.validate().is_err());
        let mut p = active_plan(1);
        p.outage_rate_per_hour = f64::NAN;
        assert!(p.validate().is_err());
        let mut p = active_plan(1);
        p.crash_prob = 1.2;
        assert!(p.validate().is_err());
        let mut p = active_plan(1);
        p.crash_prob = 0.5;
        p.abort_prob = 0.4;
        p.straggler_prob = 0.3;
        assert!(p.validate().is_err());
        let mut p = active_plan(1);
        p.straggler_factor = 0.5;
        assert!(p.validate().is_err());
    }
}

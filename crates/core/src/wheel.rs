//! The completion queue of the replay's event core: a hierarchical
//! timer wheel keyed on integer completion nanoseconds, with a
//! binary-heap sorted-drain fallback.
//!
//! Every arrival pushes one [`InFlight`] completion and every advance
//! pops the due ones back out in `(completion_nanos, slot, idx)` order.
//! A `BinaryHeap` pays `O(log n)` per event on that hot path; the wheel
//! pays `O(1)` amortized by hashing completion times into hierarchical
//! buckets of ~1 ms at the finest level ([`FINEST_SHIFT`]) and cascading
//! coarser buckets only when simulated time reaches them.
//!
//! # Completion-order guarantee
//!
//! Both [`CompletionQueue`] variants surface entries in **exactly** the
//! total order [`InFlight`] defines — time, then slot, then arrival
//! index. Two entries due at the same nanosecond land in the same finest
//! bucket, and buckets are drained sorted, so the wheel's pop sequence is
//! bit-identical to the heap's. That makes the queue choice an engine
//! knob ([`crate::fleet::ReplayConfig`]), never an observable: the
//! determinism lattice pins `Wheel ≡ Sorted` alongside `windowed ≡
//! sequential`.
//!
//! The one contract the wheel adds over a heap: time may not run
//! backwards. [`TimerWheel::next_due`] advances the internal cursor at
//! most to its `limit`, and the replay only pushes completions at or
//! after the instant it is advancing toward, so a push never lands
//! behind the cursor. [`TimerWheel::push`] debug-asserts it.
//!
//! Multi-zone markets lean on that contract at supply steps: a
//! cross-zone migration re-pushes a displaced entry — same completion
//! instant, a fresh slot in the surviving zone — at the step instant
//! itself, possibly while the cursor is parked mid-drain on that very
//! instant. The replay caps each completion scan at the next unprocessed
//! step (see `fleet.rs`), so the cursor never advances past a future
//! push; an entry landing exactly *at* the cursor is legal and merges
//! into the ready run. The stale pre-migration twin stays queued under
//! its old slot and is filtered by the ledger's epoch check when it
//! pops, and same-instant entries across zones drain in the usual
//! `(time, slot, idx)` order.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::market::InFlight;

/// log2 of the finest bucket width: 2^20 ns ≈ 1.05 ms. Completions
/// within the same ~millisecond share a bucket and are order-resolved by
/// an in-bucket sort at drain time.
const FINEST_SHIFT: u32 = 20;

/// log2 of the slots per level.
const LVL_BITS: u32 = 6;

/// Slots per level.
const SLOTS: usize = 1 << LVL_BITS;

/// Levels: 8 × 6 bits above the finest shift cover bits 20..64, i.e.
/// every representable `u64` nanosecond.
const LEVELS: usize = 8;

const SLOT_MASK: u64 = (SLOTS - 1) as u64;

/// Which completion-queue implementation the replay engines drive
/// events with. The two are bit-identical in completion order (see the
/// module docs); the wheel is the fast default, the sorted drain the
/// reference fallback the determinism lattice compares it against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompletionQueueKind {
    /// Hierarchical timer wheel: `O(1)` amortized push/pop.
    #[default]
    TimerWheel,
    /// Binary min-heap: `O(log n)` per event, the reference order.
    SortedDrain,
}

/// The completion queue behind [`crate::fleet`]'s window simulation.
pub(crate) enum CompletionQueue {
    Wheel(TimerWheel),
    Sorted(BinaryHeap<Reverse<InFlight>>),
}

impl Default for CompletionQueue {
    fn default() -> Self {
        CompletionQueue::Sorted(BinaryHeap::new())
    }
}

impl CompletionQueue {
    /// An empty queue expecting roughly `capacity` entries, none of them
    /// completing before `start` (the window's start instant — the
    /// wheel's cursor begins there) and none of them popped at or after
    /// `horizon` (the window's end — completions beyond it bypass the
    /// wheel's buckets entirely, see [`TimerWheel`]).
    pub fn new(kind: CompletionQueueKind, capacity: usize, start: u64, horizon: u64) -> Self {
        match kind {
            CompletionQueueKind::TimerWheel => {
                CompletionQueue::Wheel(TimerWheel::acquire(start, horizon))
            }
            CompletionQueueKind::SortedDrain => {
                CompletionQueue::Sorted(BinaryHeap::with_capacity(capacity))
            }
        }
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        match self {
            CompletionQueue::Wheel(w) => w.len(),
            CompletionQueue::Sorted(h) => h.len(),
        }
    }

    pub fn push(&mut self, entry: InFlight) {
        match self {
            CompletionQueue::Wheel(w) => w.push(entry),
            CompletionQueue::Sorted(h) => h.push(Reverse(entry)),
        }
    }

    /// Completion instant of the earliest entry due at or before
    /// `limit`, without consuming it.
    pub fn next_due(&mut self, limit: u64) -> Option<u64> {
        match self {
            CompletionQueue::Wheel(w) => w.next_due(limit),
            CompletionQueue::Sorted(h) => h
                .peek()
                .map(|Reverse(e)| e.completion_nanos)
                .filter(|&v| v <= limit),
        }
    }

    /// Pops the entry a preceding [`CompletionQueue::next_due`] surfaced.
    pub fn pop_due(&mut self) -> InFlight {
        match self {
            CompletionQueue::Wheel(w) => w.pop_due(),
            CompletionQueue::Sorted(h) => h.pop().expect("next_due surfaced an entry").0,
        }
    }

    /// Consumes the queue, returning every remaining entry in ascending
    /// `(completion_nanos, slot, idx)` order — the window-close drain.
    #[cfg(test)]
    pub fn into_sorted(self) -> Vec<InFlight> {
        let mut out = Vec::new();
        self.drain_into(&mut out);
        out
    }

    /// The window-close drain without the per-window allocation:
    /// consumes the queue and appends every remaining entry to `out` in
    /// ascending `(completion_nanos, slot, idx)` order. The replay
    /// passes a pooled buffer that keeps its capacity across windows, so
    /// a steady-state window drains allocation-free.
    pub fn drain_into(self, out: &mut Vec<InFlight>) {
        match self {
            CompletionQueue::Wheel(mut w) => {
                w.drain_sorted_into(out);
                w.release();
            }
            CompletionQueue::Sorted(mut h) => {
                out.reserve(h.len());
                while let Some(Reverse(e)) = h.pop() {
                    out.push(e);
                }
            }
        }
    }
}

/// Hierarchical timer wheel over integer completion nanoseconds.
///
/// `levels[l][s]` buckets entries whose completion time shares the
/// cursor's bits above level `l`'s 6-bit field and has `s` in that
/// field. The finest bucket the cursor currently points at is held
/// drained and sorted in `ready` (descending, so the minimum pops from
/// the back); coarser buckets cascade down as the cursor reaches them.
pub(crate) struct TimerWheel {
    levels: Box<[[Vec<InFlight>; SLOTS]; LEVELS]>,
    /// Completions at or beyond `horizon` in arrival order. A window
    /// never advances past its own end, so boundary-crossing
    /// completions — roughly the whole in-flight carry, half of all
    /// pushes at 10-second windows — can never pop during the window.
    /// Bucketing them would pay placement plus a cascade per level the
    /// cursor crosses, only to drain them at close anyway; a flat list
    /// sorted once at [`TimerWheel::into_sorted`] pays one push.
    overflow: Vec<InFlight>,
    /// Exclusive upper bound on every `limit` passed to
    /// [`TimerWheel::next_due`]: the window's end instant.
    horizon: u64,
    /// One bit per slot per level marking non-empty buckets, so the
    /// cursor scan is a find-first-set per level instead of a walk over
    /// 64 `Vec` headers — the scan cost is what makes the wheel beat
    /// the heap on windows with few events.
    occupied: [u64; LEVELS],
    /// Current cursor instant. Invariants: `now` never exceeds any
    /// `limit` passed to [`TimerWheel::next_due`]; every queued entry's
    /// finest bucket is ≥ `now`'s; entries in `now`'s own finest bucket
    /// live in `ready`, never in `levels`.
    now: u64,
    /// `now`'s finest bucket, sorted descending by key.
    ready: Vec<InFlight>,
    /// Scratch for cascading a coarser bucket: entries are swapped out
    /// here, re-placed, and the buffer cleared — a `mem::take` of the
    /// bucket would drop its capacity and put an allocation on the
    /// steady-state event path (`tests/alloc_steady_state.rs`).
    cascade: Vec<InFlight>,
    len: usize,
}

impl TimerWheel {
    /// An empty wheel with its cursor at `start`. Every subsequent push
    /// must be at or after `start` — windows seed it with their start
    /// instant so carried completions land near the cursor instead of
    /// cascading down from epoch zero — and every `next_due` limit must
    /// stay below `horizon`, the window's end.
    pub fn new(start: u64, horizon: u64) -> Self {
        Self {
            levels: Box::new(std::array::from_fn(|_| std::array::from_fn(|_| Vec::new()))),
            occupied: [0; LEVELS],
            overflow: Vec::new(),
            horizon,
            now: start,
            ready: Vec::new(),
            cascade: Vec::new(),
            len: 0,
        }
    }

    /// Entries queued, bucketed and overflowed alike — the replay's
    /// in-flight count.
    pub fn len(&self) -> usize {
        self.len + self.overflow.len()
    }

    /// Level whose 6-bit field holds the highest bit where `t` differs
    /// from the cursor; `t` in the cursor's own finest bucket is the
    /// caller's "ready" case.
    fn level_for(&self, t: u64) -> usize {
        let masked = (t ^ self.now) >> FINEST_SHIFT;
        debug_assert!(masked != 0, "same-bucket entries belong in ready");
        ((63 - masked.leading_zeros()) / LVL_BITS) as usize
    }

    /// Start instant of `slot` at `level` within the cursor's current
    /// span of that level.
    fn span_start(&self, level: usize, slot: u64) -> u64 {
        let shift = FINEST_SHIFT + LVL_BITS * level as u32;
        let above = shift + LVL_BITS;
        let prefix = if above >= 64 {
            0
        } else {
            (self.now >> above) << above
        };
        prefix | (slot << shift)
    }

    pub fn push(&mut self, entry: InFlight) {
        if entry.completion_nanos >= self.horizon {
            self.overflow.push(entry);
        } else {
            self.len += 1;
            self.place(entry);
        }
    }

    /// Routes one entry to `ready` (cursor's bucket) or its level
    /// bucket — shared by pushes and cascades so both obey the same
    /// placement invariants.
    fn place(&mut self, entry: InFlight) {
        let t = entry.completion_nanos;
        debug_assert!(t >= self.now, "completion {} behind cursor {}", t, self.now);
        if t >> FINEST_SHIFT == self.now >> FINEST_SHIFT {
            let key = (t, entry.slot, entry.idx);
            let pos = self
                .ready
                .partition_point(|x| (x.completion_nanos, x.slot, x.idx) > key);
            self.ready.insert(pos, entry);
        } else {
            let level = self.level_for(t);
            let slot = ((t >> (FINEST_SHIFT + LVL_BITS * level as u32)) & SLOT_MASK) as usize;
            self.levels[level][slot].push(entry);
            self.occupied[level] |= 1 << slot;
        }
    }

    /// Earliest completion due at or before `limit`, without consuming
    /// it. Advances the cursor no further than `limit`, so later pushes
    /// at or after `limit` can never land behind it.
    pub fn next_due(&mut self, limit: u64) -> Option<u64> {
        debug_assert!(
            limit < self.horizon || self.horizon == u64::MAX,
            "advance past the window end"
        );
        'refill: loop {
            if let Some(e) = self.ready.last() {
                // Every level bucket is in a strictly later finest
                // bucket than `ready`'s, so its minimum is global.
                return (e.completion_nanos <= limit).then_some(e.completion_nanos);
            }
            if self.len == 0 {
                self.now = self.now.max(limit);
                return None;
            }
            // Scan each level fully before the next: a level's
            // remaining span ends where the next level's first
            // candidate slot begins, so this order is time-correct. The
            // occupancy bitmaps turn the per-level slot walk into one
            // find-first-set; the cursor's own slot at a coarser level
            // can never hold entries (they would differ from `now` at a
            // finer level and be placed there), so the first occupied
            // slot at or after the cursor is the global earliest.
            for level in 0..LEVELS {
                let shift = FINEST_SHIFT + LVL_BITS * level as u32;
                let from = (self.now >> shift) & SLOT_MASK;
                let candidates = self.occupied[level] & (!0u64 << from);
                if candidates == 0 {
                    continue;
                }
                let slot = candidates.trailing_zeros() as usize;
                let start = self.span_start(level, slot as u64);
                if start > limit {
                    // Nothing anywhere is due ≤ limit: later slots
                    // and coarser levels all start even later.
                    self.now = self.now.max(limit);
                    return None;
                }
                self.now = self.now.max(start);
                self.occupied[level] &= !(1 << slot);
                // Both arms *swap* the bucket out instead of taking it,
                // so the drained `Vec`'s capacity stays in rotation —
                // the steady-state refill path allocates nothing.
                if level == 0 {
                    // The cursor's new finest bucket: drain it
                    // sorted descending so the minimum pops O(1).
                    // `ready` is empty here (the refill loop only runs
                    // when it is), so the swap hands its spare capacity
                    // to the emptied bucket.
                    std::mem::swap(&mut self.ready, &mut self.levels[0][slot]);
                    self.ready.sort_unstable_by(|a, b| {
                        (b.completion_nanos, b.slot, b.idx).cmp(&(
                            a.completion_nanos,
                            a.slot,
                            a.idx,
                        ))
                    });
                } else {
                    // Cascade a coarser bucket: every entry re-routes
                    // at least one level down (or into ready), so a
                    // re-place can never land back in this bucket
                    // while the scratch holds its entries.
                    std::mem::swap(&mut self.cascade, &mut self.levels[level][slot]);
                    for i in 0..self.cascade.len() {
                        let e = self.cascade[i];
                        self.place(e);
                    }
                    self.cascade.clear();
                }
                continue 'refill;
            }
            // All occupied buckets sit below their level's cursor slot —
            // impossible while the push invariant (no entry behind the
            // cursor) holds.
            unreachable!("len > 0 but no occupied bucket at or after the cursor");
        }
    }

    /// Pops the entry a preceding [`TimerWheel::next_due`] surfaced.
    pub fn pop_due(&mut self) -> InFlight {
        let e = self.ready.pop().expect("next_due surfaced an entry");
        self.len -= 1;
        e
    }

    /// Drains the wheel, returning every entry in ascending key order
    /// and leaving it empty.
    #[cfg(test)]
    pub fn into_sorted(mut self) -> Vec<InFlight> {
        let mut out = Vec::new();
        self.drain_sorted_into(&mut out);
        self.release();
        out
    }

    /// Appends every queued entry to `out` in ascending key order and
    /// leaves the wheel empty. The occupancy bitmaps make this walk only
    /// the non-empty buckets; emptied buckets — the overflow list
    /// included — keep their capacity, so a recycled wheel
    /// ([`TimerWheel::acquire`]) simulates its next window
    /// allocation-free. The sort covers only the appended suffix, so the
    /// caller's buffer may carry unrelated prior contents.
    fn drain_sorted_into(&mut self, out: &mut Vec<InFlight>) {
        let from = out.len();
        out.reserve(self.len + self.overflow.len());
        out.append(&mut self.overflow);
        out.extend(self.ready.drain(..).rev());
        for level in 0..LEVELS {
            let mut bits = self.occupied[level];
            while bits != 0 {
                let slot = bits.trailing_zeros() as usize;
                out.append(&mut self.levels[level][slot]);
                bits &= bits - 1;
            }
            self.occupied[level] = 0;
        }
        out[from..].sort_unstable_by_key(|e| (e.completion_nanos, e.slot, e.idx));
        self.len = 0;
    }

    /// Hands a drained wheel back to the thread-local pool for the next
    /// window on this thread.
    fn release(self) {
        debug_assert!(
            self.len == 0 && self.overflow.is_empty(),
            "released wheels must be drained"
        );
        POOL.with(|pool| *pool.borrow_mut() = Some(self));
    }

    /// A wheel with its cursor at `start`, recycled from this thread's
    /// pool when a previous window returned one. A day-scale windowed
    /// replay opens one wheel per window; constructing each from scratch
    /// pays a 512-`Vec` zeroing plus fresh bucket allocations per
    /// window, which at 10-second windows costs more than the event
    /// loop itself. The pooled wheel is already empty (every drain path
    /// clears it) and its buckets keep their capacities warm.
    pub fn acquire(start: u64, horizon: u64) -> Self {
        match POOL.with(|pool| pool.borrow_mut().take()) {
            Some(mut wheel) => {
                wheel.now = start;
                wheel.horizon = horizon;
                wheel
            }
            None => TimerWheel::new(start, horizon),
        }
    }
}

thread_local! {
    /// Per-thread wheel cache backing [`TimerWheel::acquire`]. One slot
    /// suffices: each window simulation holds exactly one wheel at a
    /// time, and replay worker threads simulate windows sequentially.
    static POOL: std::cell::RefCell<Option<TimerWheel>> = const { std::cell::RefCell::new(None) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn entry(t: u64, slot: u32, idx: u32) -> InFlight {
        InFlight {
            completion_nanos: t,
            slot,
            idx,
            epoch: 0,
            milli: 100,
            mib: 64,
            meta: InFlight::meta_of(crate::market::RUN_NORMAL, 1),
            list_cost_usd: 0.1,
        }
    }

    /// The packed meta word every test entry carries
    /// (`meta_of(RUN_NORMAL, 1)`).
    const META: u32 = 1 << 2;

    /// Drives a wheel and a heap through the same push/advance schedule
    /// and asserts identical pop sequences — the model-based pin of the
    /// completion-order guarantee.
    fn check_against_heap(seed: u64, spread: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut wheel = TimerWheel::new(0, u64::MAX);
        let mut heap: BinaryHeap<Reverse<InFlight>> = BinaryHeap::new();
        let mut clock = 0u64;
        let mut idx = 0u32;
        for _ in 0..400 {
            // Simulated time moves forward; each instant pushes a few
            // completions ahead of the clock, then drains the due ones.
            clock += rng.gen_range(0..1u64 << 21);
            for _ in 0..rng.gen_range(0..4) {
                let t = clock + rng.gen_range(0..spread);
                let e = entry(t, rng.gen_range(0..4), idx);
                idx += 1;
                wheel.push(e);
                heap.push(Reverse(e));
            }
            loop {
                let expect = heap
                    .peek()
                    .map(|Reverse(e)| e.completion_nanos)
                    .filter(|&v| v <= clock);
                assert_eq!(wheel.next_due(clock), expect, "seed {seed} at {clock}");
                if expect.is_none() {
                    break;
                }
                let Reverse(want) = heap.pop().unwrap();
                let got = wheel.pop_due();
                assert_eq!(got.key(), want.key(), "seed {seed} at {clock}");
            }
            assert_eq!(wheel.len(), heap.len());
        }
        // Final drain: everything left comes out in heap order.
        let mut rest = Vec::new();
        while let Some(Reverse(e)) = heap.pop() {
            rest.push(e.key());
        }
        let drained: Vec<_> = wheel.into_sorted().iter().map(|e| e.key()).collect();
        assert_eq!(drained, rest, "seed {seed}");
    }

    #[test]
    fn wheel_matches_heap_order_across_spreads() {
        // Spreads from sub-bucket (ties in one finest bucket) to
        // multi-level (cascades across coarse buckets).
        for (seed, spread) in [
            (1, 1 << 10),
            (2, 1 << 20),
            (3, 1 << 26),
            (4, 1 << 33),
            (5, 1 << 44),
        ] {
            check_against_heap(seed, spread);
        }
    }

    #[test]
    fn ties_resolve_by_slot_then_idx() {
        let mut wheel = TimerWheel::new(0, u64::MAX);
        let t = 5 << FINEST_SHIFT;
        wheel.push(entry(t, 2, 9));
        wheel.push(entry(t, 0, 7));
        wheel.push(entry(t, 0, 3));
        wheel.push(entry(t, 1, 1));
        assert_eq!(wheel.next_due(t), Some(t));
        let order: Vec<_> = (0..4).map(|_| wheel.pop_due()).map(|e| e.key()).collect();
        assert_eq!(
            order,
            vec![
                (t, 0, 3, META),
                (t, 0, 7, META),
                (t, 1, 1, META),
                (t, 2, 9, META)
            ],
            "equal instants must drain by (slot, idx)"
        );
    }

    #[test]
    fn pushes_into_the_ready_bucket_keep_order() {
        // A push landing in the bucket the cursor is draining must
        // merge into the sorted ready run, not trail it.
        let mut wheel = TimerWheel::new(0, u64::MAX);
        let base = 7 << FINEST_SHIFT;
        wheel.push(entry(base + 10, 0, 0));
        wheel.push(entry(base + 30, 0, 1));
        assert_eq!(wheel.next_due(base + 5), None, "nothing due yet");
        assert_eq!(wheel.next_due(base + 40), Some(base + 10));
        assert_eq!(wheel.pop_due().idx, 0);
        // Same finest bucket as the cursor now points at.
        wheel.push(entry(base + 20, 0, 2));
        assert_eq!(wheel.next_due(base + 40), Some(base + 20));
        assert_eq!(wheel.pop_due().idx, 2);
        assert_eq!(wheel.pop_due().idx, 1);
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn migration_pushes_at_the_cursor_instant_stay_ordered() {
        // The cross-zone migration pattern: the replay drains completions
        // up to a supply step, then re-pushes displaced entries at that
        // very step instant under new slots while the stale twins stay
        // queued under their old slots. Entries landing exactly AT the
        // cursor are legal and same-instant entries across zones must
        // still drain by (time, slot, idx).
        let mut wheel = TimerWheel::new(0, u64::MAX);
        let step = 9 << FINEST_SHIFT;
        wheel.push(entry(step, 1, 0)); // completes exactly at the step
        wheel.push(entry(step + 50, 0, 1)); // will be "migrated" at the step
        assert_eq!(wheel.next_due(step), Some(step));
        assert_eq!(wheel.pop_due().idx, 0); // cursor now parked at `step`

        // The migration: same completion instants, fresh slots in the
        // surviving zone, pushed while the cursor sits at `step`.
        wheel.push(entry(step, 3, 2));
        wheel.push(entry(step + 50, 2, 3));
        assert_eq!(wheel.next_due(step), Some(step), "push at the cursor");
        assert_eq!(wheel.pop_due().key(), (step, 3, 2, META));
        assert_eq!(wheel.next_due(step + 50), Some(step + 50));
        // Stale twin (slot 0) pops before the migrated clone (slot 2).
        assert_eq!(wheel.pop_due().key(), (step + 50, 0, 1, META));
        assert_eq!(wheel.pop_due().key(), (step + 50, 2, 3, META));
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn far_future_entries_cascade_down_exactly_once_due() {
        let mut wheel = TimerWheel::new(0, u64::MAX);
        // One entry per level distance, including the top level.
        let times = [1u64 << 21, 1 << 30, 1 << 40, 1 << 50, 1 << 63];
        for (i, &t) in times.iter().enumerate() {
            wheel.push(entry(t, 0, i as u32));
        }
        for (i, &t) in times.iter().enumerate() {
            assert_eq!(wheel.next_due(t - 1), None, "entry {i} not yet due");
            assert_eq!(wheel.next_due(t), Some(t), "entry {i} due at {t}");
            assert_eq!(wheel.pop_due().idx, i as u32);
        }
        assert_eq!(wheel.next_due(u64::MAX), None);
    }

    #[test]
    fn queue_kinds_agree_end_to_end() {
        let mut rng = StdRng::seed_from_u64(42);
        for kind in [
            CompletionQueueKind::TimerWheel,
            CompletionQueueKind::SortedDrain,
        ] {
            let mut q = CompletionQueue::new(kind, 8, 0, u64::MAX);
            let mut clock = 0u64;
            let mut popped = Vec::new();
            for i in 0..200u32 {
                clock += rng.gen_range(0..1u64 << 22);
                q.push(entry(clock + rng.gen_range(0..1u64 << 24), 0, i));
                while let Some(due) = q.next_due(clock) {
                    let e = q.pop_due();
                    assert_eq!(e.completion_nanos, due);
                    popped.push(e.key());
                }
            }
            popped.extend(q.into_sorted().iter().map(|e| e.key()));
            assert_eq!(popped.len(), 200);
            assert!(popped.windows(2).all(|w| w[0] <= w[1]), "{kind:?}");
            // The schedule is deterministic, so both kinds pop the
            // exact same sequence.
            rng = StdRng::seed_from_u64(42);
        }
    }
}

//! Trace-driven fleet simulation (extension of §6.2), sharded per
//! function for Azure-trace-scale replay.
//!
//! Figure 15 scores the planner's per-family decisions one function at a
//! time. A provider, though, operates a *fleet*: invocations arrive
//! concurrently, warm capacity is finite, and the bill is the sum over
//! every placement. This module closes that loop with a discrete-event
//! simulation:
//!
//! - an arrival [`Trace`] over `N` functions (see [`TraceSource`] for the
//!   Poisson / bursty / diurnal / heavy-tail generators);
//! - per function, a fixed **warm pool** of spot-priced VMs on the
//!   instance families its planner accepted, plus an elastic on-demand
//!   pool that always has room for the tuned best configuration at list
//!   price;
//! - two [`PlacementStrategy`]s: always-best-config (baseline) and
//!   idle-aware (prefer θ-guardrailed alternate families on warm spot
//!   capacity, fall back to on-demand);
//! - a [`FleetReport`] with cost, latency inflation, spot utilization.
//!
//! # Sharding and determinism
//!
//! Each function owns its arrival stream and its warm pool, so the fleet
//! decomposes into independent per-function event streams. [`run`]
//! (`FleetSimulator::run`) is the sequential reference engine: it replays
//! the shards one by one, in function order. [`run_sharded`] fans the
//! same shards across worker threads and reduces the per-shard
//! [`ShardMetering`] in **function-index order**, so every float
//! accumulation happens in the same sequence and the two engines produce
//! bit-identical [`FleetReport`]s for every thread count (guarded by
//! `tests/determinism.rs`). See `crates/core/README.md` for the full
//! contract.
//!
//! The inner event loop is allocation-free: per-alternate placement
//! requests and metering are resolved to plain numbers before the loop,
//! the warm pool is a flat slot vector (no maps, no ids), and the only
//! per-shard allocations are the reusable completion heap and the
//! pre-sized inflation buffer.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use freedom_cluster::{InstanceFamily, InstanceSize, InstanceType};
use freedom_faas::{PerfTable, ResourceConfig};
use freedom_linalg::stats;
use freedom_pricing::SpotPricing;
use freedom_workloads::FunctionKind;

use crate::provider::PlannedPlacement;
use crate::{FreedomError, Result};

pub use crate::trace::{Trace, TraceEvent, TraceSource};

/// How the provider places each invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// Always run the tuned best configuration on the on-demand pool.
    BestConfigOnly,
    /// Prefer θ-accepted alternate families while their warm (spot)
    /// capacity lasts; fall back to the on-demand best configuration.
    IdleAware,
}

impl PlacementStrategy {
    /// Both strategies, baseline first.
    pub const ALL: [PlacementStrategy; 2] = [
        PlacementStrategy::BestConfigOnly,
        PlacementStrategy::IdleAware,
    ];
}

/// Everything the simulator needs to place one function.
#[derive(Debug, Clone)]
pub struct FunctionPlan {
    /// The function this plan serves.
    pub function: FunctionKind,
    /// The tuned best configuration (on-demand fallback).
    pub best_config: ResourceConfig,
    /// Planner output: per-family predicted-best placements; only
    /// `accepted` ones are used, in the given order.
    pub alternates: Vec<PlannedPlacement>,
    /// Ground truth used to look up execution outcomes.
    pub table: PerfTable,
}

/// Fleet-simulation knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Warm `.4xlarge` VMs per accepted family in each function's private
    /// spot pool.
    pub idle_vms_per_family: usize,
    /// Spot pricing on the warm pools.
    pub spot: SpotPricing,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            idle_vms_per_family: 2,
            spot: SpotPricing::PAPER_DEFAULT,
        }
    }
}

/// Aggregate outcome of one simulated trace.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Strategy simulated.
    pub strategy: PlacementStrategy,
    /// Invocations served.
    pub invocations: usize,
    /// Total provider cost in USD.
    pub total_cost_usd: f64,
    /// Mean latency inflation vs. each function's best configuration
    /// (1.0 = every invocation ran at best-config speed).
    pub mean_latency_inflation: f64,
    /// 95th-percentile latency inflation.
    pub p95_latency_inflation: f64,
    /// Invocations served from the warm (spot) pools.
    pub spot_placements: usize,
    /// Spot placements that failed for lack of warm capacity and fell
    /// back to on-demand.
    pub spot_capacity_misses: usize,
}

impl FleetReport {
    /// Fraction of invocations served from warm capacity.
    pub fn spot_share(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.spot_placements as f64 / self.invocations as f64
        }
    }
}

/// Per-shard metering, reduced in function-index order into a
/// [`FleetReport`]. All fields are order-independent counters except the
/// float accumulations, which the reduction performs in index order to
/// stay bit-identical to the sequential engine.
#[derive(Debug, Clone)]
struct ShardMetering {
    invocations: usize,
    total_cost_usd: f64,
    spot_placements: usize,
    spot_capacity_misses: usize,
    /// Latency inflation per invocation, in this shard's arrival order.
    inflations: Vec<f64>,
}

/// An accepted alternate placement with everything the event loop needs,
/// resolved to plain numbers up front so the hot loop does no table
/// lookups or config math.
#[derive(Debug, Clone, Copy)]
struct ResolvedAlternate {
    /// Index range of this alternate's family in the shard's warm pool.
    pool_start: u32,
    pool_end: u32,
    milli_vcpus: u32,
    memory_mib: u32,
    duration_nanos: u64,
    spot_cost_usd: f64,
    inflation: f64,
}

/// One warm VM: a flat capacity slot (family is implied by the
/// `ResolvedAlternate` index ranges pointing at it).
#[derive(Debug, Clone, Copy)]
struct VmSlot {
    free_milli: u32,
    free_mib: u32,
}

/// Reusable per-worker scratch: the completion heap. Entries are
/// `(completion_nanos, pool slot, milli vCPUs, MiB)`; releasing an entry
/// returns its capacity to the slot. Draining every due completion before
/// each arrival makes release order within a timestamp immaterial, so no
/// sequence numbers are needed.
type CompletionHeap = BinaryHeap<Reverse<(u64, u32, u32, u32)>>;

/// The fleet simulator: per-function warm pools plus elastic on-demand.
pub struct FleetSimulator {
    plans: Vec<FunctionPlan>,
}

impl FleetSimulator {
    /// Creates a simulator serving `plans[i]` for trace function index
    /// `i`.
    ///
    /// The pairing is **positional**: the simulator never inspects
    /// `FunctionPlan::function`, it drives `plans[i]` with the trace's
    /// stream `i`. Each invocation is metered against the plan that
    /// served it, so any ordering is self-consistent — but callers
    /// pairing a fleet with [`Trace::poisson`] (whose six streams are
    /// documented as `FunctionKind::ALL` order) should push plans in
    /// that same order, as the tests and experiments do.
    ///
    /// Returns [`FreedomError::InvalidArgument`] when `plans` is empty.
    pub fn new(plans: Vec<FunctionPlan>) -> Result<Self> {
        if plans.is_empty() {
            return Err(FreedomError::InvalidArgument(
                "fleet needs at least one function plan".into(),
            ));
        }
        Ok(Self { plans })
    }

    /// Replays the trace under a strategy with the **sequential reference
    /// engine**: shards run one by one in function order.
    pub fn run(
        &self,
        trace: &Trace,
        strategy: PlacementStrategy,
        config: &FleetConfig,
    ) -> Result<FleetReport> {
        self.check_trace(trace)?;
        let mut scratch = CompletionHeap::new();
        let mut shards = Vec::with_capacity(self.plans.len());
        for (plan, arrivals) in self
            .plans
            .iter()
            .zip((0..trace.n_functions()).map(|f| trace.stream(f)))
        {
            shards.push(simulate_shard(
                plan,
                arrivals,
                strategy,
                config,
                &mut scratch,
            )?);
        }
        Ok(reduce(strategy, shards))
    }

    /// Replays the trace with per-function shards fanned out over
    /// `threads` workers, then reduces the shard metering in
    /// function-index order. Bit-identical to [`FleetSimulator::run`] for
    /// every thread count; `threads <= 1` dispatches to the sequential
    /// engine itself (the flag the determinism guard compares against).
    pub fn run_sharded(
        &self,
        trace: &Trace,
        strategy: PlacementStrategy,
        config: &FleetConfig,
        threads: usize,
    ) -> Result<FleetReport> {
        if threads <= 1 {
            return self.run(trace, strategy, config);
        }
        self.check_trace(trace)?;
        // One completion heap per worker thread, reused across every
        // shard that worker picks up within this replay (par_run's
        // scoped workers end with the call, so reuse does not extend
        // across replays) — the parallel counterpart of the sequential
        // engine's single scratch heap.
        std::thread_local! {
            static SCRATCH: std::cell::RefCell<CompletionHeap> =
                const { std::cell::RefCell::new(BinaryHeap::new()) };
        }
        let shards = freedom_parallel::par_run(self.plans.len(), threads, |f| {
            SCRATCH.with_borrow_mut(|scratch| {
                simulate_shard(&self.plans[f], trace.stream(f), strategy, config, scratch)
            })
        })
        .into_iter()
        .collect::<Result<Vec<ShardMetering>>>()?;
        Ok(reduce(strategy, shards))
    }

    fn check_trace(&self, trace: &Trace) -> Result<()> {
        if trace.n_functions() != self.plans.len() {
            return Err(FreedomError::InvalidArgument(format!(
                "trace has {} function streams but the fleet has {} plans",
                trace.n_functions(),
                self.plans.len()
            )));
        }
        Ok(())
    }
}

/// Replays one function's arrival stream against its private warm pool.
fn simulate_shard(
    plan: &FunctionPlan,
    arrivals: &[f64],
    strategy: PlacementStrategy,
    config: &FleetConfig,
    completions: &mut CompletionHeap,
) -> Result<ShardMetering> {
    let best_point = plan
        .table
        .lookup(&plan.best_config)
        .ok_or_else(|| FreedomError::InsufficientData("best config missing in table".into()))?;
    let best_cost = best_point.exec_cost_usd;

    // Resolve the accepted alternates once: pool layout, capacity
    // requests, metering. The event loop then touches only these numbers.
    let mut pool: Vec<VmSlot> = Vec::new();
    let mut alternates: Vec<ResolvedAlternate> = Vec::new();
    if strategy == PlacementStrategy::IdleAware {
        let mut families: Vec<(InstanceFamily, u32, u32)> = Vec::new(); // (family, start, end)
        for alt in plan.alternates.iter().filter(|a| a.accepted) {
            let cfg = alt.config;
            let point = plan.table.lookup(&cfg).ok_or_else(|| {
                FreedomError::InsufficientData("alternate config missing in table".into())
            })?;
            let (pool_start, pool_end) = match families.iter().find(|f| f.0 == cfg.family()) {
                Some(&(_, start, end)) => (start, end),
                None => {
                    let vm = InstanceType::new(cfg.family(), InstanceSize::X4Large);
                    let start = pool.len() as u32;
                    for _ in 0..config.idle_vms_per_family {
                        pool.push(VmSlot {
                            free_milli: vm.vcpus() * 1000,
                            free_mib: vm.memory_mib(),
                        });
                    }
                    let end = pool.len() as u32;
                    families.push((cfg.family(), start, end));
                    (start, end)
                }
            };
            alternates.push(ResolvedAlternate {
                pool_start,
                pool_end,
                milli_vcpus: (cfg.cpu_share() * 1000.0).round() as u32,
                memory_mib: cfg.memory_mib(),
                duration_nanos: (point.exec_time_secs * 1e9) as u64,
                spot_cost_usd: point.exec_cost_usd * config.spot.fraction,
                inflation: point.exec_time_secs / best_point.exec_time_secs,
            });
        }
    }

    completions.clear();
    let mut metering = ShardMetering {
        invocations: arrivals.len(),
        total_cost_usd: 0.0,
        spot_placements: 0,
        spot_capacity_misses: 0,
        inflations: Vec::with_capacity(arrivals.len()),
    };

    for &at_secs in arrivals {
        let at_nanos = (at_secs * 1e9) as u64;
        // Release every completion due at or before this arrival
        // (completions at the same instant free capacity first).
        while let Some(&Reverse((t, slot, milli, mib))) = completions.peek() {
            if t > at_nanos {
                break;
            }
            completions.pop();
            let vm = &mut pool[slot as usize];
            vm.free_milli += milli;
            vm.free_mib += mib;
        }

        // Try the θ-accepted alternates in planner order, best-fit within
        // each family's slots (least free vCPU that still fits, lowest
        // index on ties — mirroring the cluster crate's BestFit policy).
        let mut placed = false;
        for alt in &alternates {
            let mut best: Option<(u32, u32)> = None; // (free_milli, slot)
            for slot in alt.pool_start..alt.pool_end {
                let vm = pool[slot as usize];
                if vm.free_milli >= alt.milli_vcpus
                    && vm.free_mib >= alt.memory_mib
                    && best.is_none_or(|(free, _)| vm.free_milli < free)
                {
                    best = Some((vm.free_milli, slot));
                }
            }
            if let Some((_, slot)) = best {
                let vm = &mut pool[slot as usize];
                vm.free_milli -= alt.milli_vcpus;
                vm.free_mib -= alt.memory_mib;
                completions.push(Reverse((
                    at_nanos + alt.duration_nanos,
                    slot,
                    alt.milli_vcpus,
                    alt.memory_mib,
                )));
                metering.total_cost_usd += alt.spot_cost_usd;
                metering.inflations.push(alt.inflation);
                metering.spot_placements += 1;
                placed = true;
                break;
            }
        }
        if !placed {
            if !alternates.is_empty() {
                metering.spot_capacity_misses += 1;
            }
            // On-demand pool: elastic, always fits, list price.
            metering.total_cost_usd += best_cost;
            metering.inflations.push(1.0);
        }
    }
    Ok(metering)
}

/// Reduces per-shard metering into the fleet report, accumulating floats
/// in shard (function-index) order so the result does not depend on which
/// thread finished first.
fn reduce(strategy: PlacementStrategy, shards: Vec<ShardMetering>) -> FleetReport {
    let total: usize = shards.iter().map(|s| s.invocations).sum();
    let mut total_cost = 0.0;
    let mut spot_placements = 0;
    let mut spot_capacity_misses = 0;
    let mut inflations = Vec::with_capacity(total);
    for shard in shards {
        total_cost += shard.total_cost_usd;
        spot_placements += shard.spot_placements;
        spot_capacity_misses += shard.spot_capacity_misses;
        inflations.extend_from_slice(&shard.inflations);
    }
    FleetReport {
        strategy,
        invocations: total,
        total_cost_usd: total_cost,
        mean_latency_inflation: stats::mean(&inflations).unwrap_or(1.0),
        p95_latency_inflation: stats::quantile(&inflations, 0.95).unwrap_or(1.0),
        spot_placements,
        spot_capacity_misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::IdleCapacityPlanner;
    use crate::Autotuner;
    use freedom_faas::collect_ground_truth;
    use freedom_optimizer::{Objective, SearchSpace};
    use freedom_surrogates::SurrogateKind;

    fn make_plans(seed: u64) -> Vec<FunctionPlan> {
        let planner = IdleCapacityPlanner::default();
        let space = SearchSpace::table1();
        FunctionKind::ALL
            .into_iter()
            .map(|function| {
                let input = function.default_input();
                let table =
                    collect_ground_truth(function, &input, space.configs(), 2, seed).unwrap();
                let outcome = Autotuner::new(SurrogateKind::Gp)
                    .tune_offline(function, &input, Objective::ExecutionTime, seed)
                    .unwrap();
                let alternates = planner.plan(&outcome, &table, &space).unwrap();
                FunctionPlan {
                    function,
                    best_config: outcome.recommended().unwrap(),
                    alternates,
                    table,
                }
            })
            .collect()
    }

    #[test]
    fn poisson_trace_shape() {
        let trace = Trace::poisson(100.0, 0.5, 7).unwrap();
        // ~0.5 rps × 6 functions × 100 s = ~300 arrivals.
        assert!((150..=450).contains(&trace.len()), "{}", trace.len());
        assert!(!trace.is_empty());
        assert_eq!(trace.n_functions(), FunctionKind::ALL.len());
        // Sorted by time, all within the window.
        for w in trace.events().windows(2) {
            assert!(w[0].at_secs <= w[1].at_secs);
        }
        assert!(trace.events().iter().all(|e| e.at_secs < 100.0));
        // Deterministic per seed.
        let again = Trace::poisson(100.0, 0.5, 7).unwrap();
        assert_eq!(trace.events(), again.events());
        assert!(Trace::poisson(-1.0, 0.5, 7).is_err());
        assert!(Trace::poisson(10.0, 0.0, 7).is_err());
    }

    #[test]
    fn idle_aware_strategy_cuts_cost_within_latency_budget() {
        let plans = make_plans(5);
        let sim = FleetSimulator::new(plans).unwrap();
        let config = FleetConfig::default();
        let trace = Trace::poisson(120.0, 0.3, 5).unwrap();

        let baseline = sim
            .run(&trace, PlacementStrategy::BestConfigOnly, &config)
            .unwrap();
        let idle_aware = sim
            .run(&trace, PlacementStrategy::IdleAware, &config)
            .unwrap();

        assert_eq!(baseline.invocations, idle_aware.invocations);
        assert_eq!(baseline.spot_placements, 0);
        assert!((baseline.mean_latency_inflation - 1.0).abs() < 1e-12);

        // The idle-aware fleet serves a meaningful share from spot and
        // pays less overall.
        assert!(idle_aware.spot_share() > 0.2, "{}", idle_aware.spot_share());
        assert!(
            idle_aware.total_cost_usd < baseline.total_cost_usd,
            "{} vs {}",
            idle_aware.total_cost_usd,
            baseline.total_cost_usd
        );
        // Latency inflation stays near the θ=10% guardrail on average.
        assert!(
            idle_aware.mean_latency_inflation < 1.25,
            "{}",
            idle_aware.mean_latency_inflation
        );
    }

    #[test]
    fn capacity_pressure_forces_on_demand_fallbacks() {
        let plans = make_plans(5);
        // A starved warm pool under a hot trace must miss sometimes.
        let sim = FleetSimulator::new(plans).unwrap();
        let config = FleetConfig {
            idle_vms_per_family: 1,
            ..FleetConfig::default()
        };
        let trace = TraceSource::Poisson {
            rps_per_function: 8.0,
        }
        .generate(FunctionKind::ALL.len(), 60.0, 5)
        .unwrap();
        let report = sim
            .run(&trace, PlacementStrategy::IdleAware, &config)
            .unwrap();
        assert!(report.spot_placements > 0);
        assert!(
            report.spot_capacity_misses > 0,
            "expected misses under pressure"
        );
        assert!(report.spot_placements + report.spot_capacity_misses <= report.invocations);
    }

    #[test]
    fn sharded_replay_is_bit_identical_to_sequential() {
        let plans = make_plans(5);
        let sim = FleetSimulator::new(plans).unwrap();
        let config = FleetConfig::default();
        let trace = TraceSource::Bursty {
            calm_rps: 0.2,
            burst_rps: 3.0,
            mean_calm_secs: 30.0,
            mean_burst_secs: 6.0,
        }
        .generate(FunctionKind::ALL.len(), 120.0, 5)
        .unwrap();
        for strategy in PlacementStrategy::ALL {
            let seq = sim.run(&trace, strategy, &config).unwrap();
            for threads in [2, 4, 8] {
                let sharded = sim.run_sharded(&trace, strategy, &config, threads).unwrap();
                assert_eq!(
                    format!("{seq:?}"),
                    format!("{sharded:?}"),
                    "{strategy:?} diverged at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn empty_fleet_and_mismatched_trace_are_rejected() {
        assert!(matches!(
            FleetSimulator::new(Vec::new()),
            Err(FreedomError::InvalidArgument(_))
        ));
        let plans = make_plans(1);
        let sim = FleetSimulator::new(plans).unwrap();
        // A 4-function trace cannot drive a 6-function fleet.
        let trace = TraceSource::Poisson {
            rps_per_function: 0.5,
        }
        .generate(4, 30.0, 1)
        .unwrap();
        assert!(matches!(
            sim.run(
                &trace,
                PlacementStrategy::IdleAware,
                &FleetConfig::default()
            ),
            Err(FreedomError::InvalidArgument(_))
        ));
    }
}

//! Trace-driven fleet simulation over a shared spot market (extension of
//! §6.2).
//!
//! Figure 15 scores the planner's per-family decisions one function at a
//! time. A provider, though, operates a *fleet*: invocations arrive
//! concurrently, warm capacity is finite, **shared across every
//! function**, and fluctuates as the provider's own load moves. This
//! module closes that loop with a discrete-event simulation:
//!
//! - an arrival [`Trace`] over `N` functions (see [`TraceSource`] for the
//!   Poisson / bursty / diurnal / heavy-tail generators and the Azure CSV
//!   ingestion);
//! - a provider-wide [spot market](crate::market): per-family warm VM
//!   slots whose supply follows a seeded
//!   [`SupplyProcess`](crate::market::SupplyProcess), an
//!   [`AdmissionPolicy`] gating spot requests on market utilization, and
//!   demand-dependent pricing
//!   ([`SpotPricing::demand_fraction`](freedom_pricing::SpotPricing::demand_fraction));
//! - two [`PlacementStrategy`]s: always-best-config (baseline, pure
//!   on-demand) and idle-aware (try θ-guardrailed alternate families on
//!   the shared market, fall back to on-demand);
//! - a [`FleetReport`] with provider cost, latency inflation, SLO
//!   violations, and the admission ledger (admitted / demoted /
//!   rejected).
//!
//! # Windowed replay and determinism
//!
//! The shared ledger couples every function, so the old per-function
//! sharding no longer decomposes the fleet. Instead the replay is
//! **time-windowed with boundary reconciliation**: the merged event
//! stream splits into fixed epochs ([`Trace::window_bounds`]), windows
//! simulate speculatively in parallel, and the in-flight ledger state
//! crossing each boundary is reconciled — a window whose speculative
//! starting state turns out wrong is re-run with the true carry-over
//! until the chain reaches a fixed point. [`run`](FleetSimulator::run)
//! is the sequential reference engine (one window spanning the whole
//! trace); [`run_windowed`](FleetSimulator::run_windowed) is
//! bit-identical to it for every thread count and window size (guarded
//! by `tests/determinism.rs`). See `crates/core/README.md` for the full
//! contract.
//!
//! Every engine pulls events through the same iterator interface, so
//! the trace may be a materialized [`Trace`] or a lazy [`StreamTrace`]:
//! [`run_stream`](FleetSimulator::run_stream) and
//! [`run_stream_windowed`](FleetSimulator::run_stream_windowed) replay
//! with peak memory O(functions + in-flight placements) instead of
//! O(total arrivals) — windows re-seek their events by epoch through
//! cursor checkpoints ([`crate::stream`], "streaming cursor contract"
//! in the README) — and stay bit-identical to the materialized
//! reference.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};

use freedom_faas::PerfTable;
use freedom_linalg::stats;
use freedom_optimizer::SearchSpace;
use freedom_telemetry as tel;
use freedom_workloads::FunctionKind;

use crate::controller::{
    admission_ceiling, control_state_eq, hash_control_state, hash_obs_accum, update_brownout,
    ControlSample, ControlScratch, ControlState, Controller, FunctionView, ObsAccum, Observation,
    MAX_TICKS,
};
pub use crate::faults::FaultPlan;
use crate::faults::TransientFault;
use crate::market::{
    carry_eq, family_index, hash_inflight, Fnv64, InFlight, MarketConfig, SpotLedger,
    SupplySchedule, N_MARKET_FAMILIES, RUN_ABORT, RUN_HEDGE, RUN_NORMAL,
};
use crate::provider::PlannedPlacement;
use crate::retry::{PendingRetry, RetryBudget, KIND_HEDGE, KIND_RETRY};
use crate::snapshot::{ReplaySnapshot, Unwire, Wire, SNAPSHOT_VERSION};
use crate::trace::{event_nanos, MAX_WINDOWS};
use crate::wheel::CompletionQueue;
use crate::{FreedomError, Result};

pub use crate::controller::{ControlConfig, ControllerConfig, PidConfig, RightSizerConfig};
pub use crate::market::{AdmissionPolicy, SupplyProcess, ZoneConfig};
pub use crate::retry::{BrownoutConfig, RetryPolicy};
pub use crate::snapshot::SNAPSHOT_VERSION as REPLAY_SNAPSHOT_VERSION;
pub use crate::stream::{EventStream, StreamCheckpoint, StreamTrace};
pub use crate::trace::{Trace, TraceEvent, TraceSource};
pub use crate::wheel::CompletionQueueKind;
pub use freedom_telemetry::{NoopRecorder, Recorder, Telemetry};

/// How the provider places each invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// Always run the tuned best configuration on the on-demand pool.
    BestConfigOnly,
    /// Request a spot placement on a θ-accepted alternate family from the
    /// shared market; fall back to the on-demand best configuration when
    /// admission is denied or nothing fits.
    IdleAware,
}

impl PlacementStrategy {
    /// Both strategies, baseline first.
    pub const ALL: [PlacementStrategy; 2] = [
        PlacementStrategy::BestConfigOnly,
        PlacementStrategy::IdleAware,
    ];
}

/// Everything the simulator needs to place one function.
#[derive(Debug, Clone)]
pub struct FunctionPlan {
    /// The function this plan serves.
    pub function: FunctionKind,
    /// The tuned best configuration (on-demand fallback).
    pub best_config: freedom_faas::ResourceConfig,
    /// Planner output: per-family predicted-best placements; only
    /// `accepted` ones are used, in the given order.
    pub alternates: Vec<PlannedPlacement>,
    /// Ground truth used to look up execution outcomes.
    pub table: PerfTable,
}

/// Fleet-simulation knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// The shared spot market every function contends for.
    pub market: MarketConfig,
    /// SLO guardrail: an invocation whose latency inflation exceeds
    /// `1 + slo_theta` counts as a violation (paper: θ = 0.10).
    pub slo_theta: f64,
    /// The closed-loop control plane: tick cadence plus the feedback
    /// controller revising admission and placements during the replay.
    /// Defaults to [`ControllerConfig::Static`] — the open-loop engine.
    pub control: ControlConfig,
    /// Seeded fault injection: zone outages, supply-shock bursts, and
    /// dropped preemption-notice deliveries, all expanded into
    /// simulated-time events the supply schedule composes. Defaults to
    /// [`FaultPlan::NONE`] — nothing injected.
    pub faults: FaultPlan,
    /// How the platform absorbs the per-invocation transient faults a
    /// [`FaultPlan`] injects: backoff/attempt caps, per-family retry
    /// budgets, hedged re-issue of stragglers, and the brownout
    /// thresholds. Inert unless `faults` draws transient faults (or
    /// hedging is enabled).
    pub retry: RetryPolicy,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            market: MarketConfig::default(),
            slo_theta: 0.10,
            control: ControlConfig::default(),
            faults: FaultPlan::NONE,
            retry: RetryPolicy::DEFAULT,
        }
    }
}

/// Aggregate outcome of one simulated trace.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Strategy simulated.
    pub strategy: PlacementStrategy,
    /// Invocations served.
    pub invocations: usize,
    /// Total provider cost in USD (spot admissions at the
    /// demand-dependent discount, demotions re-billed at list price,
    /// everything else on-demand).
    pub total_cost_usd: f64,
    /// Mean latency inflation vs. each function's best configuration
    /// (1.0 = every invocation ran at best-config speed).
    pub mean_latency_inflation: f64,
    /// 95th-percentile latency inflation.
    pub p95_latency_inflation: f64,
    /// Invocations admitted to the spot market that ran there to
    /// completion undisturbed (never notified, migrated, or demoted).
    pub spot_admitted: usize,
    /// Spot placements that completed on a slot *under a preemption
    /// notice* — the notice's drain window saved them from the
    /// withdrawal. Billed like an undisturbed admission.
    pub drained: usize,
    /// Spot placements migrated to another zone when their slot was
    /// withdrawn (re-billed at
    /// [`ZoneConfig::migration_rebill`](crate::market::ZoneConfig) ×
    /// list price).
    pub migrated: usize,
    /// Spot placements force-demoted mid-flight when a supply drop
    /// withdrew their VM and no other zone could absorb them
    /// (live-migrated to on-demand, re-billed at list price).
    pub spot_demoted: usize,
    /// In-flight placements that received a preemption notice.
    /// Telemetry, not an outcome class: a notified placement still ends
    /// up drained, migrated, or demoted (or admitted, if the engine
    /// never reached its withdrawal).
    pub notified: usize,
    /// Invocations served on-demand: the baseline strategy, plans with
    /// no accepted alternates, admission-policy denials, and capacity
    /// misses. Every invocation is exactly one of admitted / drained /
    /// migrated / demoted / rejected.
    pub rejected: usize,
    /// Rejections where the admission controller denied the request
    /// outright (utilization above the policy ceiling).
    pub policy_rejections: usize,
    /// Rejections where the policy admitted but no warm slot fit the
    /// request.
    pub capacity_misses: usize,
    /// Retry activations: every time a pending retry reached its fire
    /// instant — or was dead-lettered at scheduling time (attempt cap,
    /// past-horizon backoff). Each activation lands in exactly one
    /// outcome class, extending the accounting partition to
    /// `invocations + retried` records.
    pub retried: usize,
    /// Hedged re-issues that beat their straggler to completion (the
    /// hedge defines the invocation's latency). Hedges are extra racing
    /// copies, not activations: they carry cost but no outcome class.
    pub hedge_wins: usize,
    /// Retry activations abandoned without re-execution: attempt cap or
    /// horizon reached, family retry budget dry, or shed by brownout.
    /// The invocation never completed.
    pub dead_lettered: usize,
    /// The subset of `dead_lettered` dropped by brownout mode (retry
    /// pressure shedding), telemetry for the degradation experiments.
    pub shed_retries: usize,
    /// Invocations whose latency inflation exceeded `1 + slo_theta`.
    pub slo_violations: usize,
    /// Label of the controller that ran the control loop.
    pub controller: &'static str,
    /// Per-tick control-plane telemetry, in tick order: what the
    /// controller observed and how it moved the admission ceiling and
    /// placement orders. Empty when the trace is shorter than one
    /// control cadence.
    pub control: Vec<ControlSample>,
}

impl FleetReport {
    /// Fraction of invocations that started on the spot market
    /// (admitted + drained + migrated + demoted).
    pub fn spot_share(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            (self.spot_admitted + self.drained + self.migrated + self.spot_demoted) as f64
                / self.invocations as f64
        }
    }
}

/// Outcome class of one invocation, recorded per arrival and finalized
/// at reduction: demotions and migrations overwrite the admission
/// record (class and cost), a drain annotates the class only — and only
/// while the record still reads `ADMITTED`, so a migrated placement that
/// later drains keeps its migration bill.
const CLASS_ON_DEMAND: u8 = 0;
const CLASS_CAPACITY_MISS: u8 = 1;
const CLASS_ADMITTED: u8 = 2;
const CLASS_DEMOTED: u8 = 3;
const CLASS_POLICY_REJECT: u8 = 4;
const CLASS_MIGRATED: u8 = 5;
const CLASS_DRAINED: u8 = 6;
/// A retry activation abandoned without re-execution (attempt cap,
/// past-horizon backoff, dry budget, or brownout shed). Only retry
/// records carry this class — a first attempt always lands in one of
/// the classes above.
const CLASS_DEAD_LETTERED: u8 = 7;

/// [`RetryRecord`] flag bit: the activation was shed by brownout mode.
const RETRY_FLAG_SHED: u8 = 1;

/// Engine knobs of the windowed replay — none of them observable in the
/// [`FleetReport`], which stays bit-identical to the sequential
/// reference for every setting. The plain `run_windowed` /
/// `run_stream_windowed` entry points use [`ReplayConfig::default`];
/// the `_with` variants take an explicit config.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayConfig {
    /// Speculative-round cap: after this many rounds the reconciliation
    /// loop bails out to chaining the remaining stale windows
    /// sequentially with exact carry-ins, bounding total work at
    /// `O(rounds + windows)` window simulations even when the market is
    /// so contended that speculation never converges. `0` forces the
    /// sequential fallback after the first speculative round.
    pub max_speculative_rounds: usize,
    /// Stall margin of the adaptive bail-out: a round that shrinks the
    /// stale set by fewer than this many windows is judged to be
    /// churning, and the loop bails out early rather than burn another
    /// round. `0` disables the stall check (only the round cap bails
    /// out).
    pub stall_margin: usize,
    /// Which completion-queue implementation windows drive events with;
    /// both orders are bit-identical (see [`CompletionQueueKind`]).
    pub completion_queue: CompletionQueueKind,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            max_speculative_rounds: 8,
            stall_margin: 2,
            completion_queue: CompletionQueueKind::TimerWheel,
        }
    }
}

/// An accepted alternate placement resolved to plain numbers, so the hot
/// loop does no table lookups or config math.
#[derive(Debug, Clone, Copy)]
struct ResolvedAlternate {
    /// Index of the alternate's family in the market.
    family: usize,
    milli_vcpus: u32,
    memory_mib: u32,
    duration_nanos: u64,
    /// Undiscounted list-price execution cost (demand pricing and
    /// demotion re-billing both start from this).
    list_cost_usd: f64,
    inflation: f64,
}

/// Everything a window simulation reads: immutable and shared across
/// worker threads.
struct ReplayCtx {
    /// Per-function list-price cost of the best configuration.
    best_costs: Vec<f64>,
    /// All accepted alternates across every function in one flat array:
    /// function `f` owns `alts[alt_offsets[f]..alt_offsets[f + 1]]`, in
    /// planner order. One contiguous table instead of a `Vec` per
    /// function keeps the 10k-function arrival path free of per-plan
    /// pointer chases.
    alts: Vec<ResolvedAlternate>,
    alt_offsets: Vec<u32>,
    /// Per-function encoded configurations and actual inflations — what
    /// the control plane's right-sizer learns from.
    views: Vec<FunctionView>,
    schedule: SupplySchedule,
    market: MarketConfig,
    /// The control loop: immutable controller configuration (state lives
    /// in the carry), tick cadence in integer nanoseconds, and the trace
    /// horizon ticks are capped at — like supply steps, no tick fires
    /// after the last arrival, so the reference engine (which never
    /// advances past it) and the windowed engine (whose last window
    /// does) agree on the tick sequence.
    controller: Box<dyn Controller>,
    controller_label: &'static str,
    cadence_nanos: u64,
    horizon_nanos: u64,
    /// Flattened-counter offsets of the per-(function, placement)
    /// observation accumulator: function `f` owns
    /// `obs_offsets[f]..obs_offsets[f + 1]`, one slot per accepted
    /// alternate plus a trailing on-demand slot.
    obs_offsets: Vec<u32>,
    /// Completion-queue implementation windows simulate with
    /// ([`ReplayConfig::completion_queue`]; both orders bit-identical).
    queue: CompletionQueueKind,
    /// The fault plan, kept past schedule generation for the
    /// per-invocation transient draws ([`FaultPlan::fault_for`]).
    faults: FaultPlan,
    /// The retry policy in force.
    retry: RetryPolicy,
    /// Whether any transient-fault probability is non-zero — hoisted so
    /// the no-fault arrival path skips the draw entirely and stays
    /// byte-identical to the pre-retry engine.
    transient_active: bool,
    /// Per-function best-config execution time in nanoseconds — the
    /// denominator of every end-to-end (queueing-inclusive) inflation a
    /// retry chain records.
    best_duration_nanos: Vec<u64>,
    /// `retry.hedge_delay_secs` in integer nanoseconds (0 = disabled).
    hedge_delay_nanos: u64,
}

/// One retry activation's outcome, recorded at the instant the
/// activation resolved (fire or immediate dead-letter). Retry records
/// extend the per-invocation accounting: every activation lands in
/// exactly one outcome class, and its inflation — always end-to-end,
/// `(completion − arrival) / best_duration` — overrides the
/// invocation's earlier (placeholder) inflation at reduction, last
/// record wins.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RetryRecord {
    /// Global arrival index of the invocation retried.
    idx: u32,
    /// 1-based attempt number the activation started (>= 2).
    attempt: u8,
    /// Outcome class (same encoding as per-invocation classes, plus
    /// [`CLASS_DEAD_LETTERED`]). Supply steps may re-bill it through an
    /// adjustment keyed by `(idx, attempt)`, like a first attempt.
    class: u8,
    /// [`RETRY_FLAG_SHED`] when brownout dropped the activation.
    flags: u8,
    /// What the activation billed (spot price when placed, on-demand
    /// fallback otherwise, 0 for dead letters).
    cost_usd: f64,
    /// End-to-end latency inflation as of this activation's resolution.
    inflation: f64,
}

/// One hedged re-issue: an extra copy racing a straggler. Hedges carry
/// cost (the race's loser still billed) but no outcome class — the
/// invocation's class stays with the straggling attempt — and a winning
/// hedge overrides the invocation's latency inflation at reduction.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HedgeRecord {
    /// Global arrival index of the invocation hedged.
    idx: u32,
    /// Whether the hedge finishes before the straggler it races.
    won: bool,
    /// Spot cost of the hedged copy.
    cost_usd: f64,
    /// End-to-end inflation if the hedge defines the latency.
    inflation_if_won: f64,
}

/// Per-arrival metering of one window, in arrival order, plus outcome
/// adjustments keyed by global arrival index (a supply step may re-bill
/// an invocation admitted in an earlier window) and the control-plane
/// samples of the ticks the window processed. Per-invocation records —
/// rather than window-local accumulators — are what make the final
/// reduction's float-accumulation order independent of the window
/// partition, and therefore bit-identical between the reference and
/// windowed engines.
#[derive(Debug, Clone, Default)]
pub(crate) struct WindowMetering {
    costs: Vec<f64>,
    inflations: Vec<f64>,
    classes: Vec<u8>,
    /// `(global index, attempt, new class, re-billed cost)` — recorded
    /// at the event that changed an outcome (a withdrawal step for
    /// migrations/demotions, a completion under notice for drains; the
    /// drain's cost field is ignored at reduction). Attempt 1 targets
    /// the per-invocation record, attempts >= 2 the matching
    /// [`RetryRecord`].
    adjustments: Vec<(u32, u8, u8, f64)>,
    /// Retry activations resolved this window, in resolution order.
    retries: Vec<RetryRecord>,
    /// Hedged re-issues placed this window, in placement order.
    hedges: Vec<HedgeRecord>,
    samples: Vec<ControlSample>,
    /// In-flight placements notified this window (telemetry sum).
    notified: u32,
}

impl WindowMetering {
    /// Serializes the metering into a crash-resume snapshot: the
    /// per-invocation records, outcome adjustments, and control samples
    /// of everything simulated so far, floats as bit patterns.
    pub(crate) fn save(&self, w: &mut Wire) {
        debug_assert_eq!(self.costs.len(), self.inflations.len());
        debug_assert_eq!(self.costs.len(), self.classes.len());
        w.len(self.costs.len());
        for &c in &self.costs {
            w.f64(c);
        }
        for &i in &self.inflations {
            w.f64(i);
        }
        for &c in &self.classes {
            w.u8(c);
        }
        w.len(self.adjustments.len());
        for &(idx, attempt, class, cost) in &self.adjustments {
            w.u32(idx);
            w.u8(attempt);
            w.u8(class);
            w.f64(cost);
        }
        w.len(self.retries.len());
        for r in &self.retries {
            w.u32(r.idx);
            w.u8(r.attempt);
            w.u8(r.class);
            w.u8(r.flags);
            w.f64(r.cost_usd);
            w.f64(r.inflation);
        }
        w.len(self.hedges.len());
        for h in &self.hedges {
            w.u32(h.idx);
            w.u8(u8::from(h.won));
            w.f64(h.cost_usd);
            w.f64(h.inflation_if_won);
        }
        w.len(self.samples.len());
        for s in &self.samples {
            s.save(w);
        }
        w.u32(self.notified);
    }

    /// Restores metering serialized with [`WindowMetering::save`].
    pub(crate) fn load(r: &mut Unwire) -> Result<Self> {
        let n = r.len()?;
        let mut costs = Vec::with_capacity(n);
        for _ in 0..n {
            costs.push(r.f64()?);
        }
        let mut inflations = Vec::with_capacity(n);
        for _ in 0..n {
            inflations.push(r.f64()?);
        }
        let mut classes = Vec::with_capacity(n);
        for _ in 0..n {
            classes.push(r.u8()?);
        }
        let n_adj = r.len()?;
        let mut adjustments = Vec::with_capacity(n_adj);
        for _ in 0..n_adj {
            adjustments.push((r.u32()?, r.u8()?, r.u8()?, r.f64()?));
        }
        let n_retries = r.len()?;
        let mut retries = Vec::with_capacity(n_retries);
        for _ in 0..n_retries {
            retries.push(RetryRecord {
                idx: r.u32()?,
                attempt: r.u8()?,
                class: r.u8()?,
                flags: r.u8()?,
                cost_usd: r.f64()?,
                inflation: r.f64()?,
            });
        }
        let n_hedges = r.len()?;
        let mut hedges = Vec::with_capacity(n_hedges);
        for _ in 0..n_hedges {
            hedges.push(HedgeRecord {
                idx: r.u32()?,
                won: r.u8()? != 0,
                cost_usd: r.f64()?,
                inflation_if_won: r.f64()?,
            });
        }
        let n_samples = r.len()?;
        let mut samples = Vec::with_capacity(n_samples);
        for _ in 0..n_samples {
            samples.push(ControlSample::load(r)?);
        }
        let notified = r.u32()?;
        Ok(Self {
            costs,
            inflations,
            classes,
            adjustments,
            retries,
            hedges,
            samples,
            notified,
        })
    }

    /// Folds `other` onto the end of this metering. Concatenation is
    /// exactly what [`reduce`] does across windows, so a folded prefix
    /// reduces bit-identically to the window-by-window originals.
    fn absorb(&mut self, other: &WindowMetering) {
        self.costs.extend_from_slice(&other.costs);
        self.inflations.extend_from_slice(&other.inflations);
        self.classes.extend_from_slice(&other.classes);
        self.adjustments.extend_from_slice(&other.adjustments);
        self.retries.extend_from_slice(&other.retries);
        self.hedges.extend_from_slice(&other.hedges);
        self.samples.extend_from_slice(&other.samples);
        self.notified += other.notified;
    }
}

/// Everything that crosses a window boundary: the canonical
/// (heap-drain-ordered) in-flight ledger state, the controller state,
/// and the partial observation epoch. The reconciliation chain compares
/// all three bit-exactly — see `crates/core/README.md`.
#[derive(Debug, Clone)]
pub(crate) struct Carry {
    inflight: Vec<InFlight>,
    /// Pending retry/hedge events firing in a later window, in
    /// [`PendingRetry::key`] order.
    retries: Vec<PendingRetry>,
    /// Per-family retry token buckets (balance + last refill instant).
    budget: RetryBudget,
    control: ControlState,
    accum: ObsAccum,
}

impl Carry {
    /// The exact state entering window 0: empty market, full retry
    /// budgets, the controller's initial state, a zeroed epoch.
    fn initial(ctx: &ReplayCtx) -> Self {
        Self {
            inflight: Vec::new(),
            retries: Vec::new(),
            budget: RetryBudget::new(&ctx.retry, N_MARKET_FAMILIES),
            control: ctx
                .controller
                .init(ctx.market.admission, ctx.best_costs.len()),
            accum: ObsAccum::zero(*ctx.obs_offsets.last().expect("offsets") as usize),
        }
    }

    /// Serializes the carried state into a crash-resume snapshot:
    /// in-flight entries field-for-field (costs as bit patterns), the
    /// pending retries and budget buckets, then the controller state
    /// and partial observation epoch.
    pub(crate) fn save(&self, w: &mut Wire) {
        w.len(self.inflight.len());
        for e in &self.inflight {
            w.u64(e.completion_nanos);
            w.u32(e.slot);
            w.u32(e.idx);
            w.u32(e.epoch);
            w.u32(e.milli);
            w.u32(e.mib);
            w.u32(e.meta);
            w.f64(e.list_cost_usd);
        }
        w.len(self.retries.len());
        for p in &self.retries {
            w.u64(p.at_nanos);
            w.u32(p.idx);
            w.u32(p.function);
            w.u8(p.attempt);
            w.u8(p.kind);
            w.u8(p.family);
            w.u64(p.arrival_nanos);
            w.u64(p.orig_completion_nanos);
        }
        w.len(self.budget.tokens.len());
        for &t in &self.budget.tokens {
            w.u64(t);
        }
        for &t in &self.budget.last_refill {
            w.u64(t);
        }
        self.control.save(w);
        self.accum.save(w);
    }

    /// Restores a carry serialized with [`Carry::save`], bit-identical
    /// under [`carry_state_eq`].
    pub(crate) fn load(r: &mut Unwire) -> Result<Self> {
        let n = r.len()?;
        let mut inflight = Vec::with_capacity(n);
        for _ in 0..n {
            inflight.push(InFlight {
                completion_nanos: r.u64()?,
                slot: r.u32()?,
                idx: r.u32()?,
                epoch: r.u32()?,
                milli: r.u32()?,
                mib: r.u32()?,
                meta: r.u32()?,
                list_cost_usd: r.f64()?,
            });
        }
        let n_retries = r.len()?;
        let mut retries = Vec::with_capacity(n_retries);
        for _ in 0..n_retries {
            retries.push(PendingRetry {
                at_nanos: r.u64()?,
                idx: r.u32()?,
                function: r.u32()?,
                attempt: r.u8()?,
                kind: r.u8()?,
                family: r.u8()?,
                arrival_nanos: r.u64()?,
                orig_completion_nanos: r.u64()?,
            });
        }
        let n_families = r.len()?;
        let mut tokens = Vec::with_capacity(n_families);
        for _ in 0..n_families {
            tokens.push(r.u64()?);
        }
        let mut last_refill = Vec::with_capacity(n_families);
        for _ in 0..n_families {
            last_refill.push(r.u64()?);
        }
        Ok(Self {
            inflight,
            retries,
            budget: RetryBudget {
                tokens,
                last_refill,
            },
            control: ControlState::load(r)?,
            accum: ObsAccum::load(r)?,
        })
    }
}

/// Whether two carried states are identical — the speculation check of
/// the windowed replay. Every component exact: in-flight entries down to
/// cost bits, pending retries and budget buckets by value, controller
/// floats by bit pattern, epoch counters by value.
fn carry_state_eq(a: &Carry, b: &Carry) -> bool {
    carry_eq(&a.inflight, &b.inflight)
        && a.retries == b.retries
        && a.budget == b.budget
        && control_state_eq(&a.control, &b.control)
        && a.accum == b.accum
}

/// A window's result: metering plus the carried state crossing into the
/// next window.
struct WindowOutcome {
    metering: WindowMetering,
    carry_out: Carry,
    /// Most in-flight placements the completion heap ever held.
    peak_inflight: usize,
}

/// Peak-memory telemetry of one streaming replay
/// ([`FleetSimulator::run_stream_with_stats`]): evidence that resident
/// state is bounded by in-flight placements plus cursor lookahead, never
/// by total arrivals.
#[derive(Debug, Clone, Copy)]
pub struct ReplayStats {
    /// Arrivals replayed (streamed through, never resident).
    pub events: usize,
    /// Peak size of the in-flight completion queue.
    pub peak_inflight: usize,
    /// Peak events the trace cursors held: one pending arrival per
    /// function (synthetic) or the open rows of the CSV lookahead
    /// window.
    pub peak_cursor_resident: usize,
    /// Anchor checkpoints the windowed pre-pass held — the ladder's
    /// O(√W) term, each O(functions) in size. 0 for non-windowed
    /// replays (no pre-pass).
    pub ladder_anchors: usize,
    /// Events re-drained when windows derived their boundary positions
    /// from the nearest ladder anchor (each bounded by one anchor
    /// stride's worth of events). 0 for non-windowed replays.
    pub ladder_redrain_events: usize,
    /// Windows the reconciliation loop re-ran via the sequential
    /// exact-carry fallback after bailing out of speculation
    /// ([`ReplayConfig::max_speculative_rounds`] /
    /// [`ReplayConfig::stall_margin`]). 0 for non-windowed replays.
    pub fallback_windows: usize,
}

impl ReplayStats {
    /// Peak resident events: in-flight placements + cursor lookahead.
    pub fn peak_resident_events(&self) -> usize {
        self.peak_inflight + self.peak_cursor_resident
    }
}

/// The fleet simulator: a shared spot market plus elastic on-demand.
pub struct FleetSimulator {
    plans: Vec<FunctionPlan>,
}

impl FleetSimulator {
    /// Creates a simulator serving `plans[i]` for trace function index
    /// `i`.
    ///
    /// The pairing is **positional**: the simulator never inspects
    /// `FunctionPlan::function`, it drives `plans[i]` with the trace's
    /// stream `i`. Each invocation is metered against the plan that
    /// served it, so any ordering is self-consistent — but callers
    /// pairing a fleet with [`Trace::poisson`] (whose six streams are
    /// documented as `FunctionKind::ALL` order) should push plans in
    /// that same order, as the tests and experiments do.
    ///
    /// Returns [`FreedomError::InvalidArgument`] when `plans` is empty.
    pub fn new(plans: Vec<FunctionPlan>) -> Result<Self> {
        if plans.is_empty() {
            return Err(FreedomError::InvalidArgument(
                "fleet needs at least one function plan".into(),
            ));
        }
        Ok(Self { plans })
    }

    /// Replays the trace under a strategy with the **sequential reference
    /// engine**: one simulation window spanning the whole trace, no
    /// speculation, no carry-over. The engine pulls events through the
    /// same iterator interface as the streaming replay; here the
    /// iterator happens to walk a materialized slice.
    pub fn run(
        &self,
        trace: &Trace,
        strategy: PlacementStrategy,
        config: &FleetConfig,
    ) -> Result<FleetReport> {
        self.run_traced(trace, strategy, config, &mut NoopRecorder)
    }

    /// [`FleetSimulator::run`] with a telemetry [`Recorder`] attached.
    /// Telemetry is strictly observational: the report is bit-identical
    /// to the untraced run for every recorder (the determinism lattice
    /// pins this), and with [`NoopRecorder`] the instrumentation
    /// monomorphizes away entirely.
    pub fn run_traced<R: Recorder>(
        &self,
        trace: &Trace,
        strategy: PlacementStrategy,
        config: &FleetConfig,
        rec: &mut R,
    ) -> Result<FleetReport> {
        let horizon = trace
            .events()
            .last()
            .map(|e| event_nanos(e.at_secs))
            .unwrap_or(0);
        let ctx = self.prepare(trace.n_functions(), horizon, strategy, config)?;
        let events = trace.events();
        let outcome = simulate_window(
            &ctx,
            events.iter().copied(),
            events.len(),
            0,
            &Carry::initial(&ctx),
            0,
            u64::MAX,
            rec,
        );
        rec.add(tel::Counter::WindowsSimulated, 1);
        Ok(reduce(
            strategy,
            config.slo_theta,
            events.len(),
            vec![outcome.metering],
            ctx.controller_label,
        ))
    }

    /// Replays a [`StreamTrace`] with the sequential reference engine,
    /// producing events lazily and consuming each exactly once: peak
    /// memory is O(functions + in-flight placements) instead of O(total
    /// arrivals). Bit-identical to [`FleetSimulator::run`] on the
    /// materialized equivalent ([`StreamTrace::materialize`]).
    pub fn run_stream(
        &self,
        trace: &StreamTrace,
        strategy: PlacementStrategy,
        config: &FleetConfig,
    ) -> Result<FleetReport> {
        Ok(self.run_stream_with_stats(trace, strategy, config)?.0)
    }

    /// [`FleetSimulator::run_stream`] plus the replay's peak-memory
    /// telemetry. The stats are measurement, not output: they stay out
    /// of the [`FleetReport`] because peak heap depth depends on the
    /// engine (windowed replays speculate), while the report is
    /// bit-identical across engines.
    pub fn run_stream_with_stats(
        &self,
        trace: &StreamTrace,
        strategy: PlacementStrategy,
        config: &FleetConfig,
    ) -> Result<(FleetReport, ReplayStats)> {
        self.run_stream_traced(trace, strategy, config, &mut NoopRecorder)
    }

    /// [`FleetSimulator::run_stream_with_stats`] with a telemetry
    /// [`Recorder`] attached. Strictly observational — the report is
    /// bit-identical to the untraced streaming replay for every
    /// recorder.
    pub fn run_stream_traced<R: Recorder>(
        &self,
        trace: &StreamTrace,
        strategy: PlacementStrategy,
        config: &FleetConfig,
        rec: &mut R,
    ) -> Result<(FleetReport, ReplayStats)> {
        let ctx = self.prepare(trace.n_functions(), trace.horizon_nanos(), strategy, config)?;
        let mut stream = trace.open()?;
        let outcome = simulate_window(
            &ctx,
            stream.events(),
            trace.len(),
            0,
            &Carry::initial(&ctx),
            0,
            u64::MAX,
            rec,
        );
        rec.add(tel::Counter::WindowsSimulated, 1);
        let stats = ReplayStats {
            events: trace.len(),
            peak_inflight: outcome.peak_inflight,
            peak_cursor_resident: stream.peak_resident(),
            ladder_anchors: 0,
            ladder_redrain_events: 0,
            fallback_windows: 0,
        };
        let report = reduce(
            strategy,
            config.slo_theta,
            trace.len(),
            vec![outcome.metering],
            ctx.controller_label,
        );
        Ok((report, stats))
    }

    /// Replays the trace as time windows of `window_secs`, simulated
    /// speculatively in parallel over `threads` workers and reconciled at
    /// the boundaries until the carried ledger state reaches a fixed
    /// point. Bit-identical to [`FleetSimulator::run`] for every thread
    /// count and window size; the windowed machinery runs even at
    /// `threads = 1`, so the determinism guard exercises reconciliation
    /// itself, not a sequential dispatch.
    ///
    /// Speculation starts every window from an empty market; each round
    /// re-runs exactly the windows whose carry-in guess changed, and each
    /// round extends the verified prefix by at least one window, so the
    /// loop terminates. After [`ReplayConfig::max_speculative_rounds`]
    /// rounds — or earlier, when a round stalls — the remaining stale
    /// suffix is chained sequentially instead.
    pub fn run_windowed(
        &self,
        trace: &Trace,
        strategy: PlacementStrategy,
        config: &FleetConfig,
        threads: usize,
        window_secs: f64,
    ) -> Result<FleetReport> {
        self.run_windowed_with(
            trace,
            strategy,
            config,
            &ReplayConfig::default(),
            threads,
            window_secs,
        )
    }

    /// [`FleetSimulator::run_windowed`] with explicit [`ReplayConfig`]
    /// engine knobs. The report is bit-identical for every setting.
    pub fn run_windowed_with(
        &self,
        trace: &Trace,
        strategy: PlacementStrategy,
        config: &FleetConfig,
        replay: &ReplayConfig,
        threads: usize,
        window_secs: f64,
    ) -> Result<FleetReport> {
        self.run_windowed_traced(
            trace,
            strategy,
            config,
            replay,
            threads,
            window_secs,
            &mut NoopRecorder,
        )
    }

    /// [`FleetSimulator::run_windowed_with`] with a telemetry
    /// [`Recorder`] attached. Each parallel window records into a fork
    /// of `rec`; the fork of a window's final accepted run is absorbed
    /// back in window order, so every sim-derived observation is
    /// deterministic for any thread count. Strictly observational.
    #[allow(clippy::too_many_arguments)]
    pub fn run_windowed_traced<R: Recorder + Sync>(
        &self,
        trace: &Trace,
        strategy: PlacementStrategy,
        config: &FleetConfig,
        replay: &ReplayConfig,
        threads: usize,
        window_secs: f64,
        rec: &mut R,
    ) -> Result<FleetReport> {
        let horizon = trace
            .events()
            .last()
            .map(|e| event_nanos(e.at_secs))
            .unwrap_or(0);
        let window_nanos = validate_window(horizon, window_secs)?;
        let mut ctx = self.prepare(trace.n_functions(), horizon, strategy, config)?;
        ctx.queue = replay.completion_queue;
        let events = trace.events();
        if events.is_empty() {
            return Ok(reduce(
                strategy,
                config.slo_theta,
                0,
                Vec::new(),
                ctx.controller_label,
            ));
        }
        let bounds = trace.window_bounds(window_nanos);
        let tmpl = rec.fork();
        let run_one = |k: usize, carry: &Carry, wrec: &mut R| {
            let (start, end) = window_span(k, window_nanos);
            simulate_window(
                &ctx,
                events[bounds[k].clone()].iter().copied(),
                bounds[k].len(),
                bounds[k].start as u32,
                carry,
                start,
                end,
                wrec,
            )
        };
        // Materialized windows position in O(1) (binary-searched
        // slices), so a round is a plain fan-out and the fallback chain
        // needs no walker state: clean windows are free to pass over.
        let run_round = |pending: &[(usize, Carry, u64)]| {
            freedom_parallel::par_run(pending.len(), threads, |i| {
                let mut wrec = tmpl.fork();
                let out = run_one(pending[i].0, &pending[i].1, &mut wrec);
                let fp = carry_fingerprint(&out.carry_out);
                (out, fp, wrec)
            })
        };
        let (meterings, _) =
            reconcile_windows(&ctx, bounds.len(), replay, rec, run_round, |k, carry| {
                carry.map(|c| {
                    let mut wrec = tmpl.fork();
                    let out = run_one(k, c, &mut wrec);
                    (out, wrec)
                })
            });
        Ok(reduce(
            strategy,
            config.slo_theta,
            events.len(),
            meterings,
            ctx.controller_label,
        ))
    }

    /// Windowed replay of a [`StreamTrace`]: the same speculative
    /// engine as [`FleetSimulator::run_windowed`], but windows re-seek
    /// their events **by epoch** through the checkpoint ladder — a
    /// sharded pre-pass takes O(√windows) anchor checkpoints
    /// ([`StreamTrace::checkpoints_at`]), and each window re-derives
    /// its boundary position from the nearest anchor by a bounded
    /// forward drain, so pre-pass seek state is O(√W × functions)
    /// instead of O(W × functions). Reconciliation re-runs a stale
    /// window by rewinding to the same anchor. Bit-identical to
    /// [`FleetSimulator::run_stream`] — and to the materialized engines
    /// — for every thread count and window size.
    pub fn run_stream_windowed(
        &self,
        trace: &StreamTrace,
        strategy: PlacementStrategy,
        config: &FleetConfig,
        threads: usize,
        window_secs: f64,
    ) -> Result<FleetReport> {
        self.run_stream_windowed_with(
            trace,
            strategy,
            config,
            &ReplayConfig::default(),
            threads,
            window_secs,
        )
    }

    /// [`FleetSimulator::run_stream_windowed`] with explicit
    /// [`ReplayConfig`] engine knobs. The report is bit-identical for
    /// every setting.
    pub fn run_stream_windowed_with(
        &self,
        trace: &StreamTrace,
        strategy: PlacementStrategy,
        config: &FleetConfig,
        replay: &ReplayConfig,
        threads: usize,
        window_secs: f64,
    ) -> Result<FleetReport> {
        Ok(self
            .run_stream_windowed_with_stats(trace, strategy, config, replay, threads, window_secs)?
            .0)
    }

    /// [`FleetSimulator::run_stream_windowed_with`] plus the replay's
    /// telemetry: peak in-flight and cursor residency, the ladder's
    /// anchor count and re-drained events, and how many windows the
    /// reconciliation loop re-ran via the sequential fallback.
    pub fn run_stream_windowed_with_stats(
        &self,
        trace: &StreamTrace,
        strategy: PlacementStrategy,
        config: &FleetConfig,
        replay: &ReplayConfig,
        threads: usize,
        window_secs: f64,
    ) -> Result<(FleetReport, ReplayStats)> {
        self.run_stream_windowed_traced(
            trace,
            strategy,
            config,
            replay,
            threads,
            window_secs,
            &mut NoopRecorder,
        )
    }

    /// [`FleetSimulator::run_stream_windowed_with_stats`] with a
    /// telemetry [`Recorder`] attached: per-window forks merged back in
    /// window order (see [`FleetSimulator::run_windowed_traced`]), plus
    /// wall spans for the ladder pre-pass, each speculative round, and
    /// the fallback walk. Strictly observational.
    #[allow(clippy::too_many_arguments)]
    pub fn run_stream_windowed_traced<R: Recorder + Sync>(
        &self,
        trace: &StreamTrace,
        strategy: PlacementStrategy,
        config: &FleetConfig,
        replay: &ReplayConfig,
        threads: usize,
        window_secs: f64,
        rec: &mut R,
    ) -> Result<(FleetReport, ReplayStats)> {
        let horizon = trace.horizon_nanos();
        let window_nanos = validate_window(horizon, window_secs)?;
        let mut ctx = self.prepare(trace.n_functions(), horizon, strategy, config)?;
        ctx.queue = replay.completion_queue;
        if trace.is_empty() {
            let report = reduce(
                strategy,
                config.slo_theta,
                0,
                Vec::new(),
                ctx.controller_label,
            );
            let stats = ReplayStats {
                events: 0,
                peak_inflight: 0,
                peak_cursor_resident: 0,
                ladder_anchors: 0,
                ladder_redrain_events: 0,
                fallback_windows: 0,
            };
            return Ok((report, stats));
        }
        // Checkpoint-ladder pre-pass: anchor checkpoints every `stride`
        // window boundaries (stride ≈ √windows), derived sharded, then
        // one parallel counting drain over the anchor segments records
        // each window's event count. Seek state: O(√W) anchors ×
        // O(functions) each.
        let prepass_wall = rec.now_nanos();
        let n = (horizon / window_nanos) as usize + 1;
        let stride = isqrt_ceil(n);
        let n_anchors = n.div_ceil(stride);
        let anchor_bounds: Vec<u64> = (0..n_anchors)
            .map(|a| (a * stride) as u64 * window_nanos)
            .collect();
        let anchors = trace.checkpoints_at(&anchor_bounds, threads)?;
        let segments = freedom_parallel::par_run(n_anchors, threads, |a| {
            let mut s = trace
                .open_at(&anchors[a])
                .expect("re-seeking a ladder anchor the pre-pass took");
            let lo = a * stride;
            let hi = ((a + 1) * stride).min(n);
            let mut counts = Vec::with_capacity(hi - lo);
            for k in lo..hi {
                let end = (k as u64 + 1).saturating_mul(window_nanos);
                let mut c = 0u32;
                while s.peek().is_some_and(|e| event_nanos(e.at_secs) < end) {
                    s.next();
                    c += 1;
                }
                counts.push(c);
            }
            (counts, s.peak_resident())
        });
        let mut base = Vec::with_capacity(n + 1);
        base.push(0u32);
        let mut consumed = 0u32;
        let mut peak_prepass = 0usize;
        for (counts, peak) in &segments {
            peak_prepass = peak_prepass.max(*peak);
            for &c in counts {
                consumed += c;
                base.push(consumed);
            }
        }
        debug_assert_eq!(consumed as usize, trace.len());
        rec.span_wall(tel::Span::CountPrePass, prepass_wall, anchors.len() as u64);
        rec.add(tel::Counter::LadderAnchors, anchors.len() as u64);
        if R::ENABLED {
            for a in 0..n_anchors {
                let lo = (a * stride) as u64 * window_nanos;
                let hi = (((a + 1) * stride).min(n) as u64)
                    .saturating_mul(window_nanos)
                    .min(horizon);
                rec.span_sim(tel::Span::LadderSegment, lo, hi, a as u64);
            }
        }
        let redrained = AtomicUsize::new(0);
        let peak_stream = AtomicUsize::new(peak_prepass);
        let tmpl = rec.fork();
        // Simulates window `k` from an already-positioned stream (the
        // cursor must sit on the window's first event).
        let sim_at = |s: &mut crate::stream::EventStream, k: usize, carry: &Carry, wrec: &mut R| {
            let (start, end) = window_span(k, window_nanos);
            let n_events = (base[k + 1] - base[k]) as usize;
            let events = std::iter::from_fn(|| s.next()).take(n_events);
            simulate_window(&ctx, events, n_events, base[k], carry, start, end, wrec)
        };
        // A speculative round walks each ladder segment's stream at
        // most once: pending windows (ascending) are grouped by their
        // anchor segment, and a group re-seeks its anchor, then drains
        // forward — skipping the events of windows the round does not
        // touch — so the bounded re-drain is paid per *group*, not per
        // window. Round 0 (every window pending) is therefore exactly
        // one sharded pass over the trace with zero re-drained events.
        let run_round = |pending: &[(usize, Carry, u64)]| {
            let mut groups: Vec<std::ops::Range<usize>> = Vec::new();
            for i in 0..pending.len() {
                match groups.last_mut() {
                    Some(g) if pending[g.start].0 / stride == pending[i].0 / stride => {
                        g.end = i + 1;
                    }
                    _ => groups.push(i..i + 1),
                }
            }
            let per_group = freedom_parallel::par_run(groups.len(), threads, |gi| {
                let group = &pending[groups[gi].clone()];
                let a = group[0].0 / stride;
                let mut s = trace
                    .open_at(&anchors[a])
                    .expect("re-seeking a ladder anchor the pre-pass took");
                let mut pos = base[a * stride];
                let mut outs = Vec::with_capacity(group.len());
                for (k, carry, _) in group {
                    let skip = (base[*k] - pos) as usize;
                    for _ in 0..skip {
                        s.next();
                    }
                    redrained.fetch_add(skip, Ordering::Relaxed);
                    let mut wrec = tmpl.fork();
                    let out = sim_at(&mut s, *k, carry, &mut wrec);
                    pos = base[*k + 1];
                    let fp = carry_fingerprint(&out.carry_out);
                    outs.push((out, fp, wrec));
                }
                peak_stream.fetch_max(s.peak_resident(), Ordering::Relaxed);
                outs
            });
            per_group.into_iter().flatten().collect()
        };
        // The sequential fallback chain is one forward walk of the
        // stream: clean windows drain their (counted) events without
        // simulating, stale windows simulate in place, and the walker
        // only re-seeks an anchor when it starts.
        let mut walker = None;
        let run_suffix = |k: usize, carry: Option<&Carry>| {
            let stale = match &walker {
                Some((_, pos)) => *pos > base[k],
                None => true,
            };
            if stale {
                let a = k / stride;
                let s = trace
                    .open_at(&anchors[a])
                    .expect("re-seeking a ladder anchor the pre-pass took");
                walker = Some((s, base[a * stride]));
            }
            let (s, pos) = walker.as_mut().expect("walker just seeded");
            let skip = (base[k] - *pos) as usize;
            for _ in 0..skip {
                s.next();
            }
            let out = match carry {
                Some(c) => {
                    let mut wrec = tmpl.fork();
                    let o = sim_at(s, k, c, &mut wrec);
                    Some((o, wrec))
                }
                None => {
                    let n_events = (base[k + 1] - base[k]) as usize;
                    for _ in 0..n_events {
                        s.next();
                    }
                    redrained.fetch_add(n_events, Ordering::Relaxed);
                    None
                }
            };
            redrained.fetch_add(skip, Ordering::Relaxed);
            *pos = base[k + 1];
            peak_stream.fetch_max(s.peak_resident(), Ordering::Relaxed);
            out
        };
        let (meterings, telemetry) = reconcile_windows(&ctx, n, replay, rec, run_round, run_suffix);
        let stats = ReplayStats {
            events: trace.len(),
            peak_inflight: telemetry.peak_inflight,
            peak_cursor_resident: peak_stream.into_inner(),
            ladder_anchors: anchors.len(),
            ladder_redrain_events: redrained.into_inner(),
            fallback_windows: telemetry.fallback_windows,
        };
        rec.add(
            tel::Counter::RedrainedEvents,
            stats.ladder_redrain_events as u64,
        );
        let report = reduce(
            strategy,
            config.slo_theta,
            trace.len(),
            meterings,
            ctx.controller_label,
        );
        Ok((report, stats))
    }

    /// Crash-resumable streaming replay: chains exact-carry windows of
    /// `snapshot_secs` sequentially and, at every window (epoch)
    /// boundary, hands `on_snapshot` a versioned [`ReplaySnapshot`] —
    /// the stream checkpoint, the carried state, and the folded metering
    /// prefix. Feeding a persisted snapshot back as `resume` replays
    /// only the remaining windows; the resulting report is
    /// **bit-identical** to [`FleetSimulator::run_stream`] (and the
    /// whole determinism lattice) no matter where the run was killed.
    ///
    /// `on_snapshot` returns `Ok(true)` to continue or `Ok(false)` to
    /// stop (the simulated crash of the kill/resume tests); a stopped
    /// run yields `Ok(None)`. Snapshots are rejected with
    /// [`FreedomError::InvalidArgument`] when their fingerprint —
    /// strategy, config, fleet and trace shape, snapshot cadence — does
    /// not match this replay, so a stale file cannot silently resume a
    /// different simulation.
    pub fn run_stream_resumable(
        &self,
        trace: &StreamTrace,
        strategy: PlacementStrategy,
        config: &FleetConfig,
        snapshot_secs: f64,
        resume: Option<&ReplaySnapshot>,
        mut on_snapshot: impl FnMut(&ReplaySnapshot) -> Result<bool>,
    ) -> Result<Option<FleetReport>> {
        self.run_stream_resumable_traced(
            trace,
            strategy,
            config,
            snapshot_secs,
            resume,
            &mut NoopRecorder,
            |snap, _rec| on_snapshot(snap),
        )
    }

    /// [`FleetSimulator::run_stream_resumable`] with a telemetry
    /// [`Recorder`] attached. `on_snapshot` additionally receives the
    /// recorder at every epoch boundary, which is the natural hook for
    /// emitting per-epoch JSONL metric snapshots
    /// ([`freedom_telemetry::Telemetry::jsonl_snapshot`]). Strictly
    /// observational.
    #[allow(clippy::too_many_arguments)]
    pub fn run_stream_resumable_traced<R: Recorder>(
        &self,
        trace: &StreamTrace,
        strategy: PlacementStrategy,
        config: &FleetConfig,
        snapshot_secs: f64,
        resume: Option<&ReplaySnapshot>,
        rec: &mut R,
        mut on_snapshot: impl FnMut(&ReplaySnapshot, &mut R) -> Result<bool>,
    ) -> Result<Option<FleetReport>> {
        let horizon = trace.horizon_nanos();
        let window_nanos = validate_window(horizon, snapshot_secs)?;
        let ctx = self.prepare(trace.n_functions(), horizon, strategy, config)?;
        if trace.is_empty() {
            return Ok(Some(reduce(
                strategy,
                config.slo_theta,
                0,
                Vec::new(),
                ctx.controller_label,
            )));
        }
        let fingerprint = replay_fingerprint(&ctx, strategy, config, trace.len(), window_nanos);
        let n = (horizon / window_nanos) as usize + 1;
        let (mut k, mut carry, mut stream, mut prefix, mut consumed) = match resume {
            Some(snap) => {
                if snap.fingerprint != fingerprint {
                    return Err(FreedomError::InvalidArgument(
                        "snapshot fingerprint does not match this replay \
                         (different strategy, config, trace, or snapshot cadence)"
                            .into(),
                    ));
                }
                if snap.epoch == 0 || snap.epoch as usize >= n {
                    return Err(FreedomError::InvalidArgument(format!(
                        "snapshot epoch {} is outside this replay's 1..{n} boundaries",
                        snap.epoch
                    )));
                }
                (
                    snap.epoch as usize,
                    snap.carry.clone(),
                    trace.open_at(&snap.checkpoint)?,
                    snap.metering.clone(),
                    snap.events_consumed,
                )
            }
            None => (
                0,
                Carry::initial(&ctx),
                trace.open()?,
                WindowMetering::default(),
                0,
            ),
        };
        while k < n {
            let (start, end) = window_span(k, window_nanos);
            let mut count = 0u64;
            let outcome = {
                let events = std::iter::from_fn(|| {
                    if stream.peek().is_some_and(|e| event_nanos(e.at_secs) < end) {
                        count += 1;
                        stream.next()
                    } else {
                        None
                    }
                });
                simulate_window(&ctx, events, 0, consumed as u32, &carry, start, end, rec)
            };
            rec.add(tel::Counter::WindowsSimulated, 1);
            consumed += count;
            carry = outcome.carry_out;
            prefix.absorb(&outcome.metering);
            k += 1;
            if k < n {
                // Lend the running prefix to the snapshot rather than
                // cloning it: it holds every per-invocation record so
                // far, and a week-scale replay snapshots dozens of
                // times over millions of events.
                let snap = ReplaySnapshot {
                    version: SNAPSHOT_VERSION,
                    fingerprint,
                    epoch: k as u64,
                    window_nanos,
                    events_consumed: consumed,
                    checkpoint: stream.checkpoint(),
                    carry: carry.clone(),
                    metering: std::mem::take(&mut prefix),
                };
                let boundary = k as u64 * window_nanos;
                rec.span_sim(tel::Span::SnapshotEpoch, boundary, boundary, k as u64);
                rec.add(tel::Counter::SnapshotsWritten, 1);
                let snap_wall = rec.now_nanos();
                let keep_going = on_snapshot(&snap, rec)?;
                rec.span_wall(tel::Span::SnapshotEpoch, snap_wall, k as u64);
                prefix = snap.metering;
                if !keep_going {
                    return Ok(None);
                }
            }
        }
        debug_assert_eq!(consumed as usize, trace.len());
        Ok(Some(reduce(
            strategy,
            config.slo_theta,
            trace.len(),
            vec![prefix],
            ctx.controller_label,
        )))
    }

    /// Validates inputs and resolves plans, supply schedule, and market
    /// settings into the immutable replay context. Takes the trace's
    /// shape — stream count and horizon (last arrival in nanoseconds) —
    /// rather than the trace itself, so materialized and streaming
    /// replays prepare identically.
    fn prepare(
        &self,
        n_functions: usize,
        horizon: u64,
        strategy: PlacementStrategy,
        config: &FleetConfig,
    ) -> Result<ReplayCtx> {
        if n_functions != self.plans.len() {
            return Err(FreedomError::InvalidArgument(format!(
                "trace has {} function streams but the fleet has {} plans",
                n_functions,
                self.plans.len()
            )));
        }
        if !config.slo_theta.is_finite() || config.slo_theta < 0.0 {
            return Err(FreedomError::InvalidArgument(format!(
                "SLO theta must be non-negative, got {}",
                config.slo_theta
            )));
        }
        config.control.validate()?;
        config.retry.validate()?;
        let cadence_nanos = ((config.control.cadence_secs * 1e9) as u64).max(1);
        if horizon / cadence_nanos >= MAX_TICKS {
            return Err(FreedomError::InvalidArgument(format!(
                "a {}s control cadence fires more than {MAX_TICKS} ticks over this trace",
                config.control.cadence_secs
            )));
        }
        let schedule = SupplySchedule::generate(&config.market, &config.faults, horizon)?;
        let mut best_costs = Vec::with_capacity(self.plans.len());
        let mut alts = Vec::new();
        let mut alt_offsets = Vec::with_capacity(self.plans.len() + 1);
        alt_offsets.push(0u32);
        let mut views = Vec::with_capacity(self.plans.len());
        let mut obs_offsets = Vec::with_capacity(self.plans.len() + 1);
        obs_offsets.push(0u32);
        let mut best_duration_nanos = Vec::with_capacity(self.plans.len());
        for plan in &self.plans {
            let best = plan.table.lookup(&plan.best_config).ok_or_else(|| {
                FreedomError::InsufficientData("best config missing in table".into())
            })?;
            let mut alt_encodings = Vec::new();
            let mut alt_inflations = Vec::new();
            if strategy == PlacementStrategy::IdleAware {
                for alt in plan.alternates.iter().filter(|a| a.accepted) {
                    let cfg = alt.config;
                    let point = plan.table.lookup(&cfg).ok_or_else(|| {
                        FreedomError::InsufficientData("alternate config missing in table".into())
                    })?;
                    let family = family_index(cfg.family()).ok_or_else(|| {
                        FreedomError::InvalidArgument(format!(
                            "family {} is not backed by market capacity",
                            cfg.family()
                        ))
                    })?;
                    let inflation = point.exec_time_secs / best.exec_time_secs;
                    alts.push(ResolvedAlternate {
                        family,
                        milli_vcpus: (cfg.cpu_share() * 1000.0).round() as u32,
                        memory_mib: cfg.memory_mib(),
                        duration_nanos: (point.exec_time_secs * 1e9) as u64,
                        list_cost_usd: point.exec_cost_usd,
                        inflation,
                    });
                    alt_encodings.push(SearchSpace::encode(&cfg));
                    alt_inflations.push(inflation);
                }
            }
            // One observation slot per accepted alternate plus the
            // trailing on-demand slot.
            let n_alts = alts.len() as u32 - alt_offsets.last().expect("non-empty");
            alt_offsets.push(alts.len() as u32);
            let next = obs_offsets.last().expect("non-empty") + n_alts + 1;
            obs_offsets.push(next);
            best_costs.push(best.exec_cost_usd);
            best_duration_nanos.push(((best.exec_time_secs * 1e9) as u64).max(1));
            views.push(FunctionView {
                best_encoding: SearchSpace::encode(&plan.best_config),
                alt_encodings,
                alt_inflations,
            });
        }
        let controller = config.control.controller.build();
        Ok(ReplayCtx {
            best_costs,
            alts,
            alt_offsets,
            views,
            schedule,
            market: config.market,
            controller_label: controller.name(),
            controller,
            cadence_nanos,
            horizon_nanos: horizon,
            obs_offsets,
            queue: CompletionQueueKind::default(),
            faults: config.faults,
            retry: config.retry,
            transient_active: config.faults.has_transient(),
            best_duration_nanos,
            hedge_delay_nanos: (config.retry.hedge_delay_secs * 1e9) as u64,
        })
    }
}

/// Ceiling integer square root — the ladder stride: `isqrt_ceil(n)`
/// anchors spaced `isqrt_ceil(n)` windows apart cover `n` windows with
/// O(√n) checkpoints and O(√n)-bounded re-drains.
fn isqrt_ceil(n: usize) -> usize {
    let mut r = (n as f64).sqrt() as usize;
    while r.saturating_mul(r) < n {
        r += 1;
    }
    while r > 1 && (r - 1) * (r - 1) >= n {
        r -= 1;
    }
    r.max(1)
}

/// One window's live simulation state: the market ledger and completion
/// queue, the supply and tick cursors, the controller state it carries
/// forward, and the epoch accumulator feeding the next tick.
struct WindowSim<'a, R: Recorder> {
    ctx: &'a ReplayCtx,
    /// The window's telemetry sink: the parent recorder in sequential
    /// engines, a per-window fork in windowed ones. Strictly
    /// observational — nothing in the simulation reads it back.
    rec: &'a mut R,
    /// Simulated instant of the previous arrival ([`u64::MAX`] before
    /// the first), feeding the arrival-gap histogram.
    prev_arrival: u64,
    ledger: SpotLedger,
    queue: CompletionQueue,
    /// Most entries the completion queue ever held — the in-flight term
    /// of the replay's peak-memory bound ([`ReplayStats`]).
    peak_inflight: usize,
    supply_cursor: usize,
    /// Index of the next preemption notice to fire.
    notice_cursor: usize,
    /// Index of the next controller tick to fire (tick `k` fires at
    /// `k · cadence`, `k ≥ 1`, capped at the trace horizon).
    next_tick: u64,
    /// Instant of the next structural break — the earliest pending
    /// supply step, preemption notice, retry/hedge event, or controller
    /// tick (`u64::MAX` when all are exhausted). At fleet scale the
    /// event loop is
    /// dominated by arrivals that advance time *between* breaks;
    /// caching the minimum lets [`WindowSim::advance`] drain due
    /// completions on a three-instruction guard instead of re-deriving
    /// all three cursors per arrival. Every break-firing path
    /// recomputes it.
    next_break: u64,
    /// Pending retry and hedge events, ordered by
    /// [`PendingRetry::key`]. Scheduling always happens at admission
    /// time (an arrival or a firing retry), never at a completion pop —
    /// the reference engine never pops completions after the last
    /// arrival, so completion-time scheduling would diverge the two.
    retries: BinaryHeap<Reverse<PendingRetry>>,
    /// Per-family retry token buckets, charged at fire time.
    budget: RetryBudget,
    control: ControlState,
    accum: ObsAccum,
    scratch: ControlScratch,
    m: WindowMetering,
}

impl<R: Recorder> WindowSim<'_, R> {
    /// The next pending tick instant, if any remains before the horizon.
    fn next_tick_at(&self) -> Option<u64> {
        let at = self.next_tick.checked_mul(self.ctx.cadence_nanos)?;
        (at <= self.ctx.horizon_nanos).then_some(at)
    }

    /// Advances the market through every completion, supply step,
    /// preemption notice, and controller tick due at or before
    /// `to_nanos`, in time order. At one instant completions release
    /// capacity first (so a finishing invocation is never spuriously
    /// demoted by a simultaneous supply drop), then supply steps
    /// withdraw and resolve their displaced residents, then notices
    /// mark slots, then retries and hedges re-enter admission (seeing
    /// the capacity the same-instant completions just released), then
    /// the controller ticks — observing the epoch *including* anything
    /// a same-instant step or retry just caused.
    ///
    /// Ghost completions — entries whose slot was withdrawn since
    /// placement — pop silently: their fate (migrated or demoted) was
    /// already decided and metered at the withdrawal step.
    #[inline]
    fn advance(&mut self, to_nanos: u64) {
        if to_nanos < self.next_break {
            // Fast path: no supply step, notice, or tick falls in
            // `(now, to_nanos]`, so the only work is draining due
            // completions — and the completion-scan cap at the next
            // step is vacuous because `to_nanos` is already below it.
            while self.queue.next_due(to_nanos).is_some() {
                let e = self.queue.pop_due();
                self.complete(e);
            }
            return;
        }
        self.advance_through_breaks(to_nanos);
    }

    /// The general advance: interleaves completions with the structural
    /// breaks due at or before `to_nanos`, re-deriving the break
    /// cursors each iteration (firing a break can move them).
    #[cold]
    fn advance_through_breaks(&mut self, to_nanos: u64) {
        loop {
            let step_at = self
                .ctx
                .schedule
                .steps
                .get(self.supply_cursor)
                .map_or(u64::MAX, |s| s.at_nanos);
            let retry_at = self.retries.peek().map_or(u64::MAX, |r| r.0.at_nanos);
            // Cap the completion scan at the next unprocessed step or
            // pending retry: both push entries back into the queue, and
            // the wheel's cursor must not have advanced past the push
            // instant. Correctness is unaffected — any completion
            // beyond the break fires after it anyway.
            let completion = self
                .queue
                .next_due(to_nanos.min(step_at).min(retry_at))
                .unwrap_or(u64::MAX);
            let notice_at = self
                .ctx
                .schedule
                .notices
                .get(self.notice_cursor)
                .map_or(u64::MAX, |n| n.at_nanos);
            let tick_at = self.next_tick_at().unwrap_or(u64::MAX);
            // `u64::MAX` stands in for "exhausted": the same-instant
            // priority below (completion < step < notice < retry <
            // tick) is a chain of equality checks against the minimum,
            // so the sentinel never wins unless everything is spent.
            let now = completion
                .min(step_at)
                .min(notice_at)
                .min(retry_at)
                .min(tick_at);
            if now > to_nanos {
                break;
            }
            if completion == now {
                let e = self.queue.pop_due();
                self.complete(e);
            } else if step_at == now {
                self.supply_step();
            } else if notice_at == now {
                self.fire_notice();
            } else if retry_at == now {
                let Reverse(p) = self.retries.pop().expect("retry head exists");
                if p.kind == KIND_RETRY {
                    self.fire_retry(p);
                } else {
                    self.fire_hedge(p);
                }
            } else {
                self.fire_tick(now);
            }
        }
        self.next_break = self.compute_next_break();
    }

    /// Recomputes the cached next-break instant from the four break
    /// cursors.
    fn compute_next_break(&self) -> u64 {
        let step = self
            .ctx
            .schedule
            .steps
            .get(self.supply_cursor)
            .map_or(u64::MAX, |s| s.at_nanos);
        let notice = self
            .ctx
            .schedule
            .notices
            .get(self.notice_cursor)
            .map_or(u64::MAX, |n| n.at_nanos);
        let retry = self.retries.peek().map_or(u64::MAX, |r| r.0.at_nanos);
        step.min(notice)
            .min(retry)
            .min(self.next_tick_at().unwrap_or(u64::MAX))
    }

    /// Retires one popped completion: live entries release their market
    /// slot (noting a drain-window save when the slot was under
    /// notice); ghost entries — their slot withdrawn since placement —
    /// pop silently, their fate already decided and metered at the
    /// withdrawal step.
    #[inline]
    fn complete(&mut self, e: InFlight) {
        if self.ledger.is_live(&e) {
            self.rec.add(tel::Counter::Completions, 1);
            // A hedge pop just releases its slot: the invocation's
            // outcome class stays with the attempt it raced, and the
            // race was decided at placement. An abort pop is the fault
            // surfacing, not a successful run — no drain annotation
            // (the scheduled retry carries the invocation onward).
            if e.run_kind() == RUN_NORMAL && self.ledger.is_notified(e.slot) {
                // Completed under notice: the drain window saved it
                // from the announced withdrawal.
                self.rec.add(tel::Counter::Drained, 1);
                self.m
                    .adjustments
                    .push((e.idx, e.attempt(), CLASS_DRAINED, 0.0));
            }
            self.ledger.release(&e);
        } else {
            self.rec.add(tel::Counter::GhostCompletions, 1);
        }
    }

    /// Fires the supply step at `supply_cursor`: withdraws the dropped
    /// slots and resolves every displaced resident *at the step* —
    /// migrate to another zone when one fits (same family, re-billed at
    /// the migration fraction of list), force-demote otherwise.
    fn supply_step(&mut self) {
        let ctx = self.ctx;
        let step = &ctx.schedule.steps[self.supply_cursor];
        for e in self.ledger.withdraw(&step.caps) {
            // A withdrawn hedge drops silently: it was a speculative
            // extra copy, the invocation's outcome stays with the
            // attempt it raced, and its (already recorded) bill stands.
            if e.run_kind() == RUN_HEDGE {
                continue;
            }
            match self.ledger.migrate_target(e.slot, e.milli, e.mib) {
                Some(slot) => {
                    let moved = InFlight {
                        slot,
                        epoch: self.ledger.epoch(slot),
                        ..e
                    };
                    self.ledger.place(&moved);
                    self.queue.push(moved);
                    self.peak_inflight = self.peak_inflight.max(self.queue.len());
                    self.accum.migrated += 1;
                    self.rec.add(tel::Counter::Migrated, 1);
                    self.m.adjustments.push((
                        e.idx,
                        e.attempt(),
                        CLASS_MIGRATED,
                        e.list_cost_usd * ctx.market.zones.migration_rebill,
                    ));
                }
                None => {
                    self.accum.spot_demoted += 1;
                    self.rec.add(tel::Counter::SpotDemoted, 1);
                    self.m
                        .adjustments
                        .push((e.idx, e.attempt(), CLASS_DEMOTED, e.list_cost_usd));
                }
            }
        }
        self.rec.add(tel::Counter::SupplySteps, 1);
        self.rec.span_sim(
            tel::Span::SupplyStep,
            step.at_nanos,
            step.at_nanos,
            self.supply_cursor as u64,
        );
        self.supply_cursor += 1;
    }

    /// Fires the preemption notice at `notice_cursor`: marks every slot
    /// the announced step will withdraw, so they stop admitting and
    /// their residents get a drain window.
    fn fire_notice(&mut self) {
        let ctx = self.ctx;
        let announced = ctx.schedule.notices[self.notice_cursor];
        let hit = self
            .ledger
            .mark_notified(&ctx.schedule.steps[announced.step as usize].caps);
        self.accum.notified += hit;
        self.m.notified += hit;
        self.rec.add(tel::Counter::NoticesFired, 1);
        self.rec.add(tel::Counter::Notified, u64::from(hit));
        self.rec.span_sim(
            tel::Span::Notice,
            announced.at_nanos,
            announced.at_nanos,
            u64::from(hit),
        );
        self.notice_cursor += 1;
    }

    /// Fires controller tick `self.next_tick`: hands the controller the
    /// closed epoch's observation, records the telemetry sample, and
    /// opens the next epoch.
    fn fire_tick(&mut self, at: u64) {
        let utilization = self.ledger.utilization();
        let obs = Observation {
            tick: self.next_tick as u32,
            at_nanos: at,
            utilization,
            accum: &self.accum,
            offsets: &self.ctx.obs_offsets,
        };
        let replanned =
            self.ctx
                .controller
                .tick(&mut self.control, &mut self.scratch, &obs, &self.ctx.views);
        // Brownout is re-evaluated each tick from the closing epoch's
        // retry pressure, after the controller has seen the epoch (the
        // sample records the post-update mode).
        if let Some(b) = &self.ctx.retry.brownout {
            update_brownout(&mut self.control, &self.accum, b);
        }
        self.m.samples.push(ControlSample {
            at_secs: at as f64 / 1e9,
            utilization,
            ceiling: admission_ceiling(&self.control.admission),
            arrivals: self.accum.arrivals,
            spot_admitted: self.accum.spot_admitted,
            spot_demoted: self.accum.spot_demoted,
            migrated: self.accum.migrated,
            rejected: self.accum.policy_rejected + self.accum.capacity_missed,
            replanned,
            retried: self.accum.retried,
            brownout: self.control.brownout,
        });
        if R::ENABLED {
            self.rec.add(tel::Counter::ControllerTicks, 1);
            self.rec.add(tel::Counter::Replans, u64::from(replanned));
            self.rec.observe(
                tel::Hist::UtilizationPpm,
                (utilization.clamp(0.0, 1.0) * 1e6) as u64,
            );
            self.rec.span_sim(
                tel::Span::ControllerTick,
                at.saturating_sub(self.ctx.cadence_nanos),
                at,
                self.next_tick,
            );
        }
        self.accum.reset();
        self.next_tick += 1;
    }

    /// Places one arrival: the admission policy currently in force gates
    /// the market, and the placement order is the controller's revision
    /// when one exists, the planner's order otherwise.
    fn arrival(&mut self, function: usize, idx: u32, at: u64) {
        // Telemetry on the hot path: counter and histogram updates are
        // array writes into preallocated storage; the only clock read
        // is the 1-in-64 sampled wall timing. `R::ENABLED` is a
        // monomorphization constant, so the noop build carries none of
        // this.
        if R::ENABLED {
            self.rec.add(tel::Counter::Arrivals, 1);
            self.rec
                .observe(tel::Hist::InflightDepth, self.queue.len() as u64);
            if self.prev_arrival != u64::MAX {
                self.rec
                    .observe(tel::Hist::ArrivalGapNanos, at - self.prev_arrival);
            }
            self.prev_arrival = at;
        }
        let t0 = if R::ENABLED && self.rec.should_sample() {
            self.rec.now_nanos()
        } else {
            0
        };
        self.accum.arrivals += 1;
        let a0 = self.ctx.alt_offsets[function] as usize;
        let a1 = self.ctx.alt_offsets[function + 1] as usize;
        let alternates = &self.ctx.alts[a0..a1];
        let best_cost_usd = self.ctx.best_costs[function];
        let off = self.ctx.obs_offsets[function] as usize;
        let n_alts = alternates.len();
        let order = self.control.order_for(function);
        // A revised-empty order means the controller retired every
        // alternate: the function runs on-demand, like a plan that never
        // had accepted alternates.
        let no_candidates = n_alts == 0 || order.is_some_and(|o| o.is_empty());
        let (class, cost, inflation) = if no_candidates {
            self.accum.per_function[off + n_alts] += 1;
            (CLASS_ON_DEMAND, best_cost_usd, 1.0)
        } else {
            let utilization = self.ledger.utilization();
            // Brownout tightens fresh-arrival admission: while the mode
            // is active, arrivals are additionally rejected whenever
            // utilization is at or above the brownout ceiling.
            let brownout_block = self.control.brownout
                && self
                    .ctx
                    .retry
                    .brownout
                    .is_some_and(|b| utilization >= b.utilization_ceiling);
            if !self.control.admission.admits(utilization) || brownout_block {
                self.accum.policy_rejected += 1;
                self.accum.per_function[off + n_alts] += 1;
                (CLASS_POLICY_REJECT, best_cost_usd, 1.0)
            } else {
                // Try the active alternates in order, best-fit within
                // each family's available slots.
                let fit = |ai: usize| {
                    let alt = &alternates[ai];
                    self.ledger
                        .best_fit(alt.family, alt.milli_vcpus, alt.memory_mib)
                        .map(|slot| (ai, slot))
                };
                let placed = match order {
                    Some(order) => order.iter().find_map(|&ai| fit(ai as usize)),
                    None => (0..n_alts).find_map(fit),
                };
                match placed {
                    Some((ai, slot)) => {
                        let (cost, rel_inflation, _) =
                            self.place_attempt(function, idx, at, at, 1, ai, slot, utilization);
                        self.accum.spot_admitted += 1;
                        self.accum.per_function[off + ai] += 1;
                        (CLASS_ADMITTED, cost, rel_inflation)
                    }
                    None => {
                        self.accum.capacity_missed += 1;
                        self.accum.per_function[off + n_alts] += 1;
                        (CLASS_CAPACITY_MISS, best_cost_usd, 1.0)
                    }
                }
            }
        };
        if R::ENABLED {
            self.rec.add(
                match class {
                    CLASS_ON_DEMAND => tel::Counter::OnDemand,
                    CLASS_POLICY_REJECT => tel::Counter::PolicyRejected,
                    CLASS_CAPACITY_MISS => tel::Counter::CapacityMissed,
                    _ => tel::Counter::SpotAdmitted,
                },
                1,
            );
            if t0 != 0 {
                let dt = self.rec.now_nanos().saturating_sub(t0);
                self.rec.observe(tel::Hist::AdmissionNanos, dt);
            }
        }
        self.m.costs.push(cost);
        self.m.inflations.push(inflation);
        self.m.classes.push(class);
    }

    /// Executes one placed attempt: draws the attempt's transient fault,
    /// places the (possibly faulted) run on `slot`, and schedules the
    /// follow-up the fault calls for — all at admission time, never at a
    /// completion pop (the reference engine never pops completions after
    /// the last arrival, so completion-time scheduling would diverge the
    /// engines). Returns `(billed cost, relative inflation of the run,
    /// run end instant)`; a crash-on-start bills nothing, occupies no
    /// slot, and "ends" at `at`.
    #[allow(clippy::too_many_arguments)]
    fn place_attempt(
        &mut self,
        function: usize,
        idx: u32,
        at: u64,
        arrival_nanos: u64,
        attempt: u8,
        ai: usize,
        slot: u32,
        utilization: f64,
    ) -> (f64, f64, u64) {
        let ctx = self.ctx;
        let alt = &ctx.alts[ctx.alt_offsets[function] as usize + ai];
        let fault = if ctx.transient_active {
            ctx.faults.fault_for(function as u32, idx, attempt)
        } else {
            None
        };
        if R::ENABLED && fault.is_some() {
            self.rec.add(tel::Counter::TransientFaults, 1);
        }
        let family = alt.family as u8;
        if matches!(fault, Some(TransientFault::CrashOnStart)) {
            // Crashed before starting: no slot consumed, nothing
            // billed; the retry re-enters admission after backoff. The
            // relative inflation is a placeholder — the retry chain's
            // final record overrides it at reduction.
            self.schedule_or_deadletter(
                at,
                idx,
                function as u32,
                arrival_nanos,
                attempt + 1,
                family,
            );
            return (0.0, alt.inflation, at);
        }
        let (kind, duration, rel_inflation) = match fault {
            Some(TransientFault::MidFlightAbort { at_fraction }) => (
                RUN_ABORT,
                (((alt.duration_nanos as f64) * at_fraction) as u64).max(1),
                // Placeholder, overridden by the retry chain.
                alt.inflation,
            ),
            Some(TransientFault::Straggler { factor }) => (
                RUN_NORMAL,
                ((alt.duration_nanos as f64) * factor) as u64,
                alt.inflation * factor,
            ),
            _ => (RUN_NORMAL, alt.duration_nanos, alt.inflation),
        };
        let entry = InFlight {
            completion_nanos: at + duration,
            slot,
            idx,
            epoch: self.ledger.epoch(slot),
            milli: alt.milli_vcpus,
            mib: alt.memory_mib,
            meta: InFlight::meta_of(kind, attempt),
            list_cost_usd: alt.list_cost_usd,
        };
        self.ledger.place(&entry);
        self.queue.push(entry);
        self.peak_inflight = self.peak_inflight.max(self.queue.len());
        if kind == RUN_ABORT {
            // The retry is scheduled now, to fire at the abort's
            // surfacing instant plus backoff. A later migration or
            // demotion of the aborting run does not cancel it: the
            // fault is a property of the attempt, not of the slot it
            // happens to occupy.
            self.schedule_or_deadletter(
                at + duration,
                idx,
                function as u32,
                arrival_nanos,
                attempt + 1,
                family,
            );
        } else if matches!(fault, Some(TransientFault::Straggler { .. })) {
            self.maybe_schedule_hedge(
                idx,
                function as u32,
                arrival_nanos,
                attempt,
                family,
                at,
                at + duration,
            );
        }
        let price = ctx.market.spot.demand_fraction(utilization);
        (alt.list_cost_usd * price, rel_inflation, at + duration)
    }

    /// Schedules attempt `next_attempt` of invocation `idx` to re-enter
    /// admission after backoff — or dead-letters it immediately when
    /// the attempt cap is spent or the backoff lands past the horizon
    /// (the reference engine never advances there, so a past-horizon
    /// retry must resolve *now* to keep the engines identical).
    fn schedule_or_deadletter(
        &mut self,
        base_nanos: u64,
        idx: u32,
        function: u32,
        arrival_nanos: u64,
        next_attempt: u8,
        family: u8,
    ) {
        let policy = &self.ctx.retry;
        let at = base_nanos.saturating_add(policy.backoff_nanos(idx, next_attempt));
        if next_attempt > policy.max_attempts || at > self.ctx.horizon_nanos {
            let best_d = self.ctx.best_duration_nanos[function as usize] as f64;
            let inflation = ((base_nanos.saturating_sub(arrival_nanos)) as f64 / best_d).max(1.0);
            self.push_retry_record(RetryRecord {
                idx,
                attempt: next_attempt,
                class: CLASS_DEAD_LETTERED,
                flags: 0,
                cost_usd: 0.0,
                inflation,
            });
            return;
        }
        if R::ENABLED {
            self.rec
                .observe(tel::Hist::RetryBackoffNanos, at - base_nanos);
        }
        self.retries.push(Reverse(PendingRetry {
            at_nanos: at,
            idx,
            function,
            attempt: next_attempt,
            kind: KIND_RETRY,
            family,
            arrival_nanos,
            orig_completion_nanos: 0,
        }));
        self.next_break = self.next_break.min(at);
    }

    /// Schedules a hedged re-issue of a straggling attempt, if hedging
    /// is on and the hedge can still fire before both the straggler's
    /// completion and the horizon. A hedge that cannot race is dropped
    /// silently — hedges have no accounting presence until placed.
    #[allow(clippy::too_many_arguments)]
    fn maybe_schedule_hedge(
        &mut self,
        idx: u32,
        function: u32,
        arrival_nanos: u64,
        attempt: u8,
        family: u8,
        at: u64,
        straggle_completion: u64,
    ) {
        let delay = self.ctx.hedge_delay_nanos;
        if delay == 0 {
            return;
        }
        let t_h = at.saturating_add(delay);
        if t_h >= straggle_completion || t_h > self.ctx.horizon_nanos {
            return;
        }
        self.retries.push(Reverse(PendingRetry {
            at_nanos: t_h,
            idx,
            function,
            attempt,
            kind: KIND_HEDGE,
            family,
            arrival_nanos,
            orig_completion_nanos: straggle_completion,
        }));
        self.next_break = self.next_break.min(t_h);
    }

    /// Fires one pending retry: the activation re-enters admission as a
    /// first-class event. Brownout sheds it first (retries yield to
    /// fresh arrivals under overload), then the family budget is
    /// charged, then the full admission pass re-runs — policy gate,
    /// controller-ordered best-fit, fresh fault draw — exactly as a
    /// fresh arrival would. The activation's outcome lands in one
    /// [`RetryRecord`]; terminal fallbacks record end-to-end inflation
    /// (queueing included) against the function's best-config time.
    fn fire_retry(&mut self, p: PendingRetry) {
        let now = p.at_nanos;
        let function = p.function as usize;
        let best_dur = self.ctx.best_duration_nanos[function];
        let best_d = best_dur as f64;
        let end_to_end = move |end: u64| (end.saturating_sub(p.arrival_nanos)) as f64 / best_d;
        if self.control.brownout {
            self.push_retry_record(RetryRecord {
                idx: p.idx,
                attempt: p.attempt,
                class: CLASS_DEAD_LETTERED,
                flags: RETRY_FLAG_SHED,
                cost_usd: 0.0,
                inflation: end_to_end(now).max(1.0),
            });
            return;
        }
        if !self
            .budget
            .try_spend(p.family as usize, now, &self.ctx.retry)
        {
            self.push_retry_record(RetryRecord {
                idx: p.idx,
                attempt: p.attempt,
                class: CLASS_DEAD_LETTERED,
                flags: 0,
                cost_usd: 0.0,
                inflation: end_to_end(now).max(1.0),
            });
            return;
        }
        let a0 = self.ctx.alt_offsets[function] as usize;
        let a1 = self.ctx.alt_offsets[function + 1] as usize;
        let alternates = &self.ctx.alts[a0..a1];
        let n_alts = alternates.len();
        let off = self.ctx.obs_offsets[function] as usize;
        let best_cost_usd = self.ctx.best_costs[function];
        let order = self.control.order_for(function);
        let no_candidates = n_alts == 0 || order.is_some_and(|o| o.is_empty());
        let (class, cost, inflation) = if no_candidates {
            self.accum.per_function[off + n_alts] += 1;
            (CLASS_ON_DEMAND, best_cost_usd, end_to_end(now + best_dur))
        } else {
            let utilization = self.ledger.utilization();
            if !self.control.admission.admits(utilization) {
                self.accum.policy_rejected += 1;
                self.accum.per_function[off + n_alts] += 1;
                (
                    CLASS_POLICY_REJECT,
                    best_cost_usd,
                    end_to_end(now + best_dur),
                )
            } else {
                let fit = |ai: usize| {
                    let alt = &alternates[ai];
                    self.ledger
                        .best_fit(alt.family, alt.milli_vcpus, alt.memory_mib)
                        .map(|slot| (ai, slot))
                };
                let placed = match order {
                    Some(order) => order.iter().find_map(|&ai| fit(ai as usize)),
                    None => (0..n_alts).find_map(fit),
                };
                match placed {
                    Some((ai, slot)) => {
                        let (cost, _, end) = self.place_attempt(
                            function,
                            p.idx,
                            now,
                            p.arrival_nanos,
                            p.attempt,
                            ai,
                            slot,
                            utilization,
                        );
                        self.accum.spot_admitted += 1;
                        self.accum.per_function[off + ai] += 1;
                        (CLASS_ADMITTED, cost, end_to_end(end))
                    }
                    None => {
                        self.accum.capacity_missed += 1;
                        self.accum.per_function[off + n_alts] += 1;
                        (
                            CLASS_CAPACITY_MISS,
                            best_cost_usd,
                            end_to_end(now + best_dur),
                        )
                    }
                }
            }
        };
        if R::ENABLED {
            self.rec.add(
                match class {
                    CLASS_ON_DEMAND => tel::Counter::OnDemand,
                    CLASS_POLICY_REJECT => tel::Counter::PolicyRejected,
                    CLASS_CAPACITY_MISS => tel::Counter::CapacityMissed,
                    _ => tel::Counter::SpotAdmitted,
                },
                1,
            );
        }
        self.push_retry_record(RetryRecord {
            idx: p.idx,
            attempt: p.attempt,
            class,
            flags: 0,
            cost_usd: cost,
            inflation,
        });
    }

    /// Fires one pending hedge: re-issues the straggling invocation's
    /// work as an extra racing copy. Hedges spend no retry budget,
    /// never fault, and have no outcome class — a placed hedge records
    /// its bill and whether it beats the straggler (decided at
    /// placement, since both completion instants are fixed there); an
    /// unplaceable hedge (brownout, policy denial, no fit) drops
    /// silently.
    fn fire_hedge(&mut self, p: PendingRetry) {
        if self.control.brownout {
            return;
        }
        let function = p.function as usize;
        let ctx = self.ctx;
        let a0 = ctx.alt_offsets[function] as usize;
        let a1 = ctx.alt_offsets[function + 1] as usize;
        let alternates = &ctx.alts[a0..a1];
        let n_alts = alternates.len();
        let order = self.control.order_for(function);
        if n_alts == 0 || order.is_some_and(|o| o.is_empty()) {
            return;
        }
        let utilization = self.ledger.utilization();
        if !self.control.admission.admits(utilization) {
            return;
        }
        let fit = |ai: usize| {
            let alt = &alternates[ai];
            self.ledger
                .best_fit(alt.family, alt.milli_vcpus, alt.memory_mib)
                .map(|slot| (ai, slot))
        };
        let placed = match order {
            Some(order) => order.iter().find_map(|&ai| fit(ai as usize)),
            None => (0..n_alts).find_map(fit),
        };
        let Some((ai, slot)) = placed else {
            return;
        };
        let alt = &alternates[ai];
        let completion = p.at_nanos + alt.duration_nanos;
        let entry = InFlight {
            completion_nanos: completion,
            slot,
            idx: p.idx,
            epoch: self.ledger.epoch(slot),
            milli: alt.milli_vcpus,
            mib: alt.memory_mib,
            meta: InFlight::meta_of(RUN_HEDGE, p.attempt),
            list_cost_usd: alt.list_cost_usd,
        };
        self.ledger.place(&entry);
        self.queue.push(entry);
        self.peak_inflight = self.peak_inflight.max(self.queue.len());
        let won = completion < p.orig_completion_nanos;
        if R::ENABLED && won {
            self.rec.add(tel::Counter::HedgeWins, 1);
        }
        let best_d = ctx.best_duration_nanos[function] as f64;
        self.m.hedges.push(HedgeRecord {
            idx: p.idx,
            won,
            cost_usd: alt.list_cost_usd * ctx.market.spot.demand_fraction(utilization),
            inflation_if_won: (completion.saturating_sub(p.arrival_nanos)) as f64 / best_d,
        });
    }

    /// Appends one retry record — the single accounting slot of one
    /// retry activation. `accum.retried` (the brownout-pressure
    /// numerator) counts exactly these.
    fn push_retry_record(&mut self, r: RetryRecord) {
        self.accum.retried += 1;
        if R::ENABLED {
            self.rec.add(tel::Counter::Retried, 1);
            if r.class == CLASS_DEAD_LETTERED {
                self.rec.add(tel::Counter::DeadLettered, 1);
            }
            if r.flags & RETRY_FLAG_SHED != 0 {
                self.rec.add(tel::Counter::ShedRetries, 1);
            }
        }
        self.m.retries.push(r);
    }
}

/// Shared windowed-replay argument validation; returns the window size
/// in integer nanoseconds.
fn validate_window(horizon_nanos: u64, window_secs: f64) -> Result<u64> {
    if !window_secs.is_finite() || window_secs <= 0.0 {
        return Err(FreedomError::InvalidArgument(format!(
            "window must be positive, got {window_secs}s"
        )));
    }
    let window_nanos = ((window_secs * 1e9) as u64).max(1);
    if horizon_nanos / window_nanos >= MAX_WINDOWS {
        return Err(FreedomError::InvalidArgument(format!(
            "{window_secs}s windows split this trace into {} windows (max {MAX_WINDOWS})",
            horizon_nanos / window_nanos + 1
        )));
    }
    Ok(window_nanos)
}

/// The simulated-time span `[k·w, (k+1)·w)` of window `k`.
fn window_span(k: usize, window_nanos: u64) -> (u64, u64) {
    (
        k as u64 * window_nanos,
        (k as u64 + 1).saturating_mul(window_nanos),
    )
}

/// Structural fingerprint of a carried state: hashes exactly the fields
/// [`carry_state_eq`] compares. Equal states always produce equal
/// fingerprints, so a fingerprint mismatch proves the states differ in
/// O(1); on a match the reconciliation walk accepts the window as clean
/// without the O(|carry|) field walk. Computed once per window run,
/// inside the parallel section.
fn carry_fingerprint(c: &Carry) -> u64 {
    let mut h = Fnv64::new();
    hash_inflight(&mut h, &c.inflight);
    h.write(c.retries.len() as u64);
    for p in &c.retries {
        h.write(p.at_nanos);
        h.write(u64::from(p.idx) | (u64::from(p.function) << 32));
        h.write(u64::from(p.attempt) | (u64::from(p.kind) << 8) | (u64::from(p.family) << 16));
        h.write(p.arrival_nanos);
        h.write(p.orig_completion_nanos);
    }
    for (&t, &r) in c.budget.tokens.iter().zip(&c.budget.last_refill) {
        h.write(t);
        h.write(r);
    }
    hash_control_state(&mut h, &c.control);
    hash_obs_accum(&mut h, &c.accum);
    h.finish()
}

/// Fingerprint of a resumable replay's identity: strategy and config
/// (via their `Debug` forms — both are plain data), the resolved fleet
/// shape, the trace shape, and the snapshot cadence. A
/// [`ReplaySnapshot`] carries it so a resume under any different setup
/// is rejected instead of silently producing a frankenstein report.
fn replay_fingerprint(
    ctx: &ReplayCtx,
    strategy: PlacementStrategy,
    config: &FleetConfig,
    trace_len: usize,
    window_nanos: u64,
) -> u64 {
    let mut h = Fnv64::new();
    for b in format!("{strategy:?}|{config:?}").bytes() {
        h.write(u64::from(b));
    }
    h.write(ctx.best_costs.len() as u64);
    for (f, cost) in ctx.best_costs.iter().enumerate() {
        h.write(cost.to_bits());
        h.write(u64::from(ctx.alt_offsets[f + 1] - ctx.alt_offsets[f]));
    }
    h.write(trace_len as u64);
    h.write(ctx.horizon_nanos);
    h.write(window_nanos);
    h.finish()
}

/// What [`reconcile_windows`] measured while converging, surfaced
/// through [`ReplayStats`].
struct ReconcileTelemetry {
    peak_inflight: usize,
    fallback_windows: usize,
}

/// The speculate/verify/re-run loop shared by both windowed engines.
/// The engine supplies how windows actually simulate:
///
/// - `run_round(pending)` simulates one speculative round — the stale
///   `(window, carry guess, carry fingerprint)` set in ascending window
///   order — and returns each window's outcome plus its carry-out
///   fingerprint. The engine owns the fan-out, so it can schedule the
///   round to fit its event source: the materialized engine fans the
///   windows straight through [`freedom_parallel::par_run`] (whose
///   shared atomic index counter is the work queue — an idle worker
///   claims the next stale window the moment it finishes one,
///   work-stealing style), while the streaming engine first groups the
///   set by checkpoint-ladder segment so each group walks its cursor
///   stream once.
/// - `run_suffix(k, carry)` drives the sequential exact-carry fallback:
///   it is called for every window from the first unverified one in
///   ascending order, with `Some(carry)` to simulate a stale window or
///   `None` to pass over a clean one — the streaming engine uses the
///   `None` calls to drain the passed-over events and keep its walker
///   positioned, so the whole fallback chain is one forward pass.
///
/// The reconciliation chain re-runs exactly the windows whose
/// speculative carry-in proved wrong, falling back to the sequential
/// chain when speculation stops paying. Verification is O(1) per clean
/// window: carry fingerprints ([`carry_fingerprint`]) are compared
/// first, and the bit-exact [`carry_state_eq`] walk runs only on
/// fingerprint mismatch, while an already-verified prefix is never
/// re-walked.
fn reconcile_windows<B, S, R>(
    ctx: &ReplayCtx,
    n: usize,
    replay: &ReplayConfig,
    rec: &mut R,
    run_round: B,
    mut run_suffix: S,
) -> (Vec<WindowMetering>, ReconcileTelemetry)
where
    R: Recorder,
    B: Fn(&[(usize, Carry, u64)]) -> Vec<(WindowOutcome, u64, R)>,
    S: FnMut(usize, Option<&Carry>) -> Option<(WindowOutcome, R)>,
{
    let init = Carry::initial(ctx);
    let init_fp = carry_fingerprint(&init);
    let mut outs: Vec<Option<WindowOutcome>> = (0..n).map(|_| None).collect();
    // Each window's recorder fork from its latest (= final accepted)
    // run; absorbed into `rec` in window order at the end, which is
    // what makes merged sim-side telemetry thread-count independent.
    let mut recs: Vec<Option<R>> = (0..n).map(|_| None).collect();
    // Fingerprints of each window's carry-out (`out_fp`) and of the
    // carry it actually ran with (`used_fp`); `used` keeps the full
    // carry for the bit-exact fallback compare.
    let mut out_fp = vec![0u64; n];
    let mut used: Vec<Carry> = (0..n).map(|_| init.clone()).collect();
    let mut used_fp = vec![init_fp; n];
    // Round 0 speculates every window from an empty market and the
    // controller's initial state.
    let mut pending: Vec<(usize, Carry, u64)> =
        (0..n).map(|k| (k, init.clone(), init_fp)).collect();
    let mut telemetry = ReconcileTelemetry {
        peak_inflight: 0,
        fallback_windows: 0,
    };
    let mut rounds = 0usize;
    let mut prev_stale = usize::MAX;
    let mut verified = 0usize;
    loop {
        let round_wall = rec.now_nanos();
        let results = run_round(&pending);
        rec.add(tel::Counter::SpeculativeRounds, 1);
        rec.add(tel::Counter::WindowsSimulated, results.len() as u64);
        rec.span_wall(tel::Span::Round, round_wall, rounds as u64);
        for ((k, carry, carry_fp), (out, fp, wrec)) in pending.drain(..).zip(results) {
            telemetry.peak_inflight = telemetry.peak_inflight.max(out.peak_inflight);
            used[k] = carry;
            used_fp[k] = carry_fp;
            outs[k] = Some(out);
            out_fp[k] = fp;
            recs[k] = Some(wrec);
        }
        // Verification walk from the verified prefix: chain the carried
        // states in window order; any window that ran with a different
        // carry-in than the chain now implies is stale and re-runs next
        // round with the chain's current guess.
        let mut next: Vec<(usize, Carry, u64)> = Vec::new();
        // `verified` grows for the *next* round's walk; this round's
        // range is fixed at the prefix it started from.
        let prefix = verified;
        for k in prefix..n {
            let (chain_ref, chain_fp) = if k == 0 {
                (&init, init_fp)
            } else {
                let prev = outs[k - 1].as_ref().expect("window simulated");
                (&prev.carry_out, out_fp[k - 1])
            };
            let clean = used_fp[k] == chain_fp || carry_state_eq(&used[k], chain_ref);
            if clean {
                if next.is_empty() {
                    verified = k + 1;
                }
            } else {
                next.push((k, chain_ref.clone(), chain_fp));
            }
        }
        if next.is_empty() {
            break;
        }
        rounds += 1;
        // Speculation pays only while rounds resolve windows in bulk
        // (markets that drain — idle gaps, tight supply — reach the
        // same carried state from many guesses). When a round barely
        // shrinks the stale set, every remaining guess is churning
        // and re-running it is waste: chain the stale suffix
        // sequentially with exact carry-ins instead. The round cap
        // backstops pathological oscillation.
        let stalled = replay.stall_margin > 0 && next.len() + replay.stall_margin >= prev_stale;
        prev_stale = next.len();
        if stalled || rounds > replay.max_speculative_rounds {
            let fallback_wall = rec.now_nanos();
            let first = next[0].0;
            let mut chain = next[0].1.clone();
            let mut chain_fp = next[0].2;
            for k in first..n {
                let clean = used_fp[k] == chain_fp || carry_state_eq(&used[k], &chain);
                if clean {
                    run_suffix(k, None);
                } else {
                    let (out, wrec) = run_suffix(k, Some(&chain))
                        .expect("the suffix walker simulates stale windows");
                    telemetry.peak_inflight = telemetry.peak_inflight.max(out.peak_inflight);
                    telemetry.fallback_windows += 1;
                    rec.add(tel::Counter::WindowsSimulated, 1);
                    out_fp[k] = carry_fingerprint(&out.carry_out);
                    outs[k] = Some(out);
                    recs[k] = Some(wrec);
                    used[k].clone_from(&chain);
                    used_fp[k] = chain_fp;
                }
                chain.clone_from(&outs[k].as_ref().expect("window simulated").carry_out);
                chain_fp = out_fp[k];
            }
            rec.span_wall(
                tel::Span::FallbackWalk,
                fallback_wall,
                telemetry.fallback_windows as u64,
            );
            break;
        }
        pending = next;
    }
    rec.add(
        tel::Counter::FallbackWindows,
        telemetry.fallback_windows as u64,
    );
    for wrec in recs.into_iter().flatten() {
        rec.absorb(wrec);
    }
    let meterings = outs
        .into_iter()
        .map(|o| o.expect("every window simulated").metering)
        .collect();
    (meterings, telemetry)
}

thread_local! {
    /// Per-thread window-close drain buffer. Every window drains its
    /// completion queue once at close; the buffer keeps its high-water
    /// capacity across windows (like the wheel pool in
    /// [`crate::wheel`]), so a steady-state window close is
    /// allocation-free apart from the owned carry vector
    /// (`tests/alloc_steady_state.rs` pins this).
    static DRAIN_POOL: std::cell::RefCell<Vec<InFlight>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Simulates one time window `[start_nanos, end_nanos)` of the merged
/// event stream against the shared market, starting from the carried
/// state (in-flight ledger, controller, partial epoch). Events arrive
/// through an iterator and are consumed exactly once — a materialized
/// slice and a lazy cursor merge replay identically. `n_events` is the
/// metering pre-size hint. The sequential reference engine is the
/// degenerate call: all events, the initial carry, an unbounded window.
#[allow(clippy::too_many_arguments)]
fn simulate_window<R: Recorder>(
    ctx: &ReplayCtx,
    events: impl Iterator<Item = TraceEvent>,
    n_events: usize,
    base_idx: u32,
    carry_in: &Carry,
    start_nanos: u64,
    end_nanos: u64,
    rec: &mut R,
) -> WindowOutcome {
    let window_wall = rec.now_nanos();
    let start = ctx.schedule.start_state(start_nanos);
    let mut ledger = SpotLedger::new(&ctx.market, start.caps);
    // A notice that fired before this window for a step still ahead:
    // re-mark its slots so the window starts under the same pending
    // notice the sequential engine would be carrying (the notified
    // placements were already counted when the notice fired).
    if let Some(next_caps) = start.notified_next {
        ledger.mark_notified(next_caps);
    }
    let mut queue = CompletionQueue::new(
        ctx.queue,
        carry_in.inflight.len() + 64,
        start_nanos,
        end_nanos,
    );
    for entry in &carry_in.inflight {
        let mut e = *entry;
        e.epoch = ledger.epoch(e.slot);
        ledger.restore(&e);
        queue.push(e);
    }
    let mut sim = WindowSim {
        ctx,
        rec,
        prev_arrival: u64::MAX,
        peak_inflight: queue.len(),
        ledger,
        queue,
        supply_cursor: start.cursor,
        notice_cursor: start.notice_cursor,
        // Ticks strictly before the window start already fired in a
        // predecessor; a tick exactly at the start belongs to this
        // window (its predecessor only advanced to `start − 1`).
        next_tick: start_nanos.div_ceil(ctx.cadence_nanos).max(1),
        next_break: 0,
        retries: carry_in.retries.iter().map(|&p| Reverse(p)).collect(),
        budget: carry_in.budget.clone(),
        control: carry_in.control.clone(),
        accum: carry_in.accum.clone(),
        scratch: ControlScratch::default(),
        m: WindowMetering {
            costs: Vec::with_capacity(n_events),
            inflations: Vec::with_capacity(n_events),
            classes: Vec::with_capacity(n_events),
            adjustments: Vec::new(),
            retries: Vec::new(),
            hedges: Vec::new(),
            samples: Vec::new(),
            notified: 0,
        },
    };
    sim.next_break = sim.compute_next_break();

    for (i, event) in events.enumerate() {
        let at = event_nanos(event.at_secs);
        sim.advance(at);
        sim.arrival(event.function, base_idx + i as u32, at);
    }

    // Close the window: completions, supply steps, and ticks strictly
    // before the boundary still belong to it (the reference engine's
    // unbounded window skips this — no steps or ticks outlive the last
    // arrival).
    if end_nanos != u64::MAX {
        sim.advance(end_nanos - 1);
    }

    // Drain: live entries become the canonical carry-over (ascending
    // key order — identical for both queue kinds). Ghost entries —
    // their slot withdrawn since placement — drop silently: their fate
    // was resolved and metered at the withdrawal step. The drain lands
    // in a thread-pooled buffer that keeps its capacity across windows
    // (the carry vector itself must be owned — it travels in the
    // outcome — but the typically much larger ghost-laden drain does
    // not).
    let inflight = DRAIN_POOL.with(|pool| {
        let mut remaining = pool.borrow_mut();
        remaining.clear();
        std::mem::take(&mut sim.queue).drain_into(&mut remaining);
        let mut inflight = Vec::with_capacity(remaining.len());
        for &e in remaining.iter() {
            if sim.ledger.is_live(&e) {
                let mut carried = e;
                carried.epoch = 0;
                inflight.push(carried);
            }
        }
        inflight
    });
    let sim_end = if end_nanos == u64::MAX {
        ctx.horizon_nanos
    } else {
        end_nanos.min(ctx.horizon_nanos.max(start_nanos))
    };
    sim.rec
        .span_sim(tel::Span::Window, start_nanos, sim_end, u64::from(base_idx));
    sim.rec
        .span_wall(tel::Span::WindowSim, window_wall, u64::from(base_idx));
    // Pending retries outliving the window carry over in key order
    // (every entry fires at or after `end_nanos` — the close advanced
    // through `end_nanos − 1`).
    let mut pending: Vec<PendingRetry> = sim.retries.into_iter().map(|Reverse(p)| p).collect();
    pending.sort();
    WindowOutcome {
        metering: sim.m,
        carry_out: Carry {
            inflight,
            retries: pending,
            budget: sim.budget,
            control: sim.control,
            accum: sim.accum,
        },
        peak_inflight: sim.peak_inflight,
    }
}

/// Reduces per-window metering into the fleet report. Per-invocation
/// records are concatenated in window (= global arrival) order, demotion
/// adjustments are applied by global index, and every float accumulation
/// then runs in arrival order — the same sequence regardless of how many
/// windows (or threads) produced the records, which is what makes the
/// windowed engine bit-identical to the reference.
fn reduce(
    strategy: PlacementStrategy,
    slo_theta: f64,
    invocations: usize,
    meterings: Vec<WindowMetering>,
    controller: &'static str,
) -> FleetReport {
    // A single metering (the whole-trace replay, or a resumable run's
    // absorbed prefix) hands its arrays over wholesale: at week scale
    // they hold tens of millions of records, and copying them would
    // dominate the reduction.
    let mut meterings = meterings;
    let adjustments: Vec<(u32, u8, u8, f64)>;
    let (mut costs, mut inflations, mut classes, control, notified, mut retries, hedges) =
        if meterings.len() == 1 {
            let m = meterings.pop().expect("one metering");
            adjustments = m.adjustments;
            (
                m.costs,
                m.inflations,
                m.classes,
                m.samples,
                m.notified as usize,
                m.retries,
                m.hedges,
            )
        } else {
            let mut costs = Vec::with_capacity(invocations);
            let mut inflations = Vec::with_capacity(invocations);
            let mut classes = Vec::with_capacity(invocations);
            let mut control = Vec::new();
            let mut adj = Vec::new();
            let mut retries = Vec::new();
            let mut hedges = Vec::new();
            let mut notified = 0usize;
            for m in &meterings {
                costs.extend_from_slice(&m.costs);
                inflations.extend_from_slice(&m.inflations);
                classes.extend_from_slice(&m.classes);
                // Samples concatenate in window order = tick (time) order.
                control.extend_from_slice(&m.samples);
                adj.extend_from_slice(&m.adjustments);
                // Retry and hedge records concatenate in window order =
                // resolution (time) order, which the inflation-override
                // pass below relies on (last record wins).
                retries.extend_from_slice(&m.retries);
                hedges.extend_from_slice(&m.hedges);
                notified += m.notified as usize;
            }
            adjustments = adj;
            (
                costs, inflations, classes, control, notified, retries, hedges,
            )
        };
    debug_assert_eq!(costs.len(), invocations);
    // Adjustments on attempt 1 target the per-invocation arrays;
    // attempts >= 2 target the matching retry record (a later window
    // may re-bill a retry placed in an earlier one).
    let retry_pos: HashMap<(u32, u8), usize> = retries
        .iter()
        .enumerate()
        .map(|(i, r)| ((r.idx, r.attempt), i))
        .collect();
    for &(idx, attempt, class, cost) in &adjustments {
        if attempt <= 1 {
            if class == CLASS_DRAINED {
                // A drain annotates an undisturbed admission; a
                // migrated placement that later drains keeps its
                // migration record and bill.
                if classes[idx as usize] == CLASS_ADMITTED {
                    classes[idx as usize] = CLASS_DRAINED;
                }
            } else {
                costs[idx as usize] = cost;
                classes[idx as usize] = class;
            }
        } else if let Some(&at) = retry_pos.get(&(idx, attempt)) {
            let r = &mut retries[at];
            if class == CLASS_DRAINED {
                if r.class == CLASS_ADMITTED {
                    r.class = CLASS_DRAINED;
                }
            } else {
                r.cost_usd = cost;
                r.class = class;
            }
        }
    }
    // A retry chain's records override the invocation's inflation in
    // resolution order (the last activation is the one that defines the
    // end-to-end latency); a winning hedge overrides last of all (the
    // race resolves after the straggling chain terminated).
    for r in &retries {
        inflations[r.idx as usize] = r.inflation;
    }
    for h in &hedges {
        if h.won {
            inflations[h.idx as usize] = h.inflation_if_won;
        }
    }
    let mut total_cost = 0.0;
    for &c in &costs {
        total_cost += c;
    }
    for r in &retries {
        total_cost += r.cost_usd;
    }
    for h in &hedges {
        total_cost += h.cost_usd;
    }
    // One pass over the class arrays instead of one filter pass per
    // outcome class. Retry records extend the partition: every
    // activation contributes exactly one class, so the by-class sum is
    // `invocations + retried`.
    let mut by_class = [0usize; 256];
    for &c in &classes {
        by_class[c as usize] += 1;
    }
    for r in &retries {
        by_class[r.class as usize] += 1;
    }
    let threshold = 1.0 + slo_theta;
    let slo_violations = inflations.iter().filter(|&&x| x > threshold).count();
    let mean_latency_inflation = stats::mean(&inflations).unwrap_or(1.0);
    // Selection, not a sort: `inflations`' order is disposable here, and
    // the full sort is the week-scale replay's single largest cost.
    let p95_latency_inflation = stats::quantile_in_place(&mut inflations, 0.95).unwrap_or(1.0);
    FleetReport {
        strategy,
        invocations,
        total_cost_usd: total_cost,
        mean_latency_inflation,
        p95_latency_inflation,
        spot_admitted: by_class[CLASS_ADMITTED as usize],
        drained: by_class[CLASS_DRAINED as usize],
        migrated: by_class[CLASS_MIGRATED as usize],
        spot_demoted: by_class[CLASS_DEMOTED as usize],
        notified,
        rejected: by_class[CLASS_ON_DEMAND as usize]
            + by_class[CLASS_CAPACITY_MISS as usize]
            + by_class[CLASS_POLICY_REJECT as usize],
        retried: retries.len(),
        hedge_wins: hedges.iter().filter(|h| h.won).count(),
        dead_lettered: by_class[CLASS_DEAD_LETTERED as usize],
        shed_retries: retries
            .iter()
            .filter(|r| r.flags & RETRY_FLAG_SHED != 0)
            .count(),
        policy_rejections: by_class[CLASS_POLICY_REJECT as usize],
        capacity_misses: by_class[CLASS_CAPACITY_MISS as usize],
        slo_violations,
        controller,
        control,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::IdleCapacityPlanner;
    use crate::Autotuner;
    use freedom_faas::collect_ground_truth;
    use freedom_optimizer::{Objective, SearchSpace};
    use freedom_surrogates::SurrogateKind;

    fn make_plans(seed: u64) -> Vec<FunctionPlan> {
        let planner = IdleCapacityPlanner::default();
        let space = SearchSpace::table1();
        FunctionKind::ALL
            .into_iter()
            .map(|function| {
                let input = function.default_input();
                let table =
                    collect_ground_truth(function, &input, space.configs(), 2, seed).unwrap();
                let outcome = Autotuner::new(SurrogateKind::Gp)
                    .tune_offline(function, &input, Objective::ExecutionTime, seed)
                    .unwrap();
                let plan = planner.plan(&outcome, &table, &space).unwrap();
                FunctionPlan {
                    function,
                    best_config: outcome.recommended().unwrap(),
                    alternates: plan.placements,
                    table,
                }
            })
            .collect()
    }

    fn accounting_is_total(report: &FleetReport) {
        // Every execution — first attempts plus retry activations —
        // lands in exactly one terminal class; hedges are excluded as
        // pure duplicates of an attempt already accounted for.
        assert_eq!(
            report.spot_admitted
                + report.drained
                + report.migrated
                + report.spot_demoted
                + report.rejected
                + report.dead_lettered,
            report.invocations + report.retried
        );
        assert!(report.policy_rejections + report.capacity_misses <= report.rejected);
        // Shed activations are retry records, so the shed count can
        // never exceed the retry count.
        assert!(report.shed_retries <= report.retried);
    }

    #[test]
    fn poisson_trace_shape() {
        let trace = Trace::poisson(100.0, 0.5, 7).unwrap();
        // ~0.5 rps × 6 functions × 100 s = ~300 arrivals.
        assert!((150..=450).contains(&trace.len()), "{}", trace.len());
        assert!(!trace.is_empty());
        assert_eq!(trace.n_functions(), FunctionKind::ALL.len());
        // Sorted by time, all within the window.
        for w in trace.events().windows(2) {
            assert!(w[0].at_secs <= w[1].at_secs);
        }
        assert!(trace.events().iter().all(|e| e.at_secs < 100.0));
        // Deterministic per seed.
        let again = Trace::poisson(100.0, 0.5, 7).unwrap();
        assert_eq!(trace.events(), again.events());
        assert!(Trace::poisson(-1.0, 0.5, 7).is_err());
        assert!(Trace::poisson(10.0, 0.0, 7).is_err());
    }

    #[test]
    fn idle_aware_strategy_cuts_cost_within_latency_budget() {
        let plans = make_plans(5);
        let sim = FleetSimulator::new(plans).unwrap();
        let config = FleetConfig::default();
        let trace = Trace::poisson(120.0, 0.3, 5).unwrap();

        let baseline = sim
            .run(&trace, PlacementStrategy::BestConfigOnly, &config)
            .unwrap();
        let idle_aware = sim
            .run(&trace, PlacementStrategy::IdleAware, &config)
            .unwrap();

        assert_eq!(baseline.invocations, idle_aware.invocations);
        assert_eq!(baseline.spot_admitted, 0);
        assert_eq!(baseline.rejected, baseline.invocations);
        assert!((baseline.mean_latency_inflation - 1.0).abs() < 1e-12);
        accounting_is_total(&baseline);
        accounting_is_total(&idle_aware);

        // The idle-aware fleet serves a meaningful share from spot and
        // pays less overall: the default market is loose, so demand
        // pricing stays near the full discount.
        assert!(idle_aware.spot_share() > 0.2, "{}", idle_aware.spot_share());
        assert!(
            idle_aware.total_cost_usd < baseline.total_cost_usd,
            "{} vs {}",
            idle_aware.total_cost_usd,
            baseline.total_cost_usd
        );
        // Latency inflation stays near the θ=10% guardrail on average.
        assert!(
            idle_aware.mean_latency_inflation < 1.25,
            "{}",
            idle_aware.mean_latency_inflation
        );
    }

    #[test]
    fn contended_market_forces_on_demand_fallbacks() {
        let plans = make_plans(5);
        // A starved shared market under a hot trace must miss sometimes:
        // one VM per family for the whole fleet.
        let sim = FleetSimulator::new(plans).unwrap();
        let config = FleetConfig {
            market: MarketConfig {
                vms_per_family: 1,
                ..MarketConfig::default()
            },
            ..FleetConfig::default()
        };
        let trace = TraceSource::Poisson {
            rps_per_function: 8.0,
        }
        .generate(FunctionKind::ALL.len(), 60.0, 5)
        .unwrap();
        let report = sim
            .run(&trace, PlacementStrategy::IdleAware, &config)
            .unwrap();
        accounting_is_total(&report);
        assert!(report.spot_admitted > 0);
        assert!(report.capacity_misses > 0, "expected misses under pressure");
    }

    #[test]
    fn supply_drops_demote_and_rebill() {
        let plans = make_plans(5);
        let sim = FleetSimulator::new(plans).unwrap();
        let volatile = FleetConfig {
            market: MarketConfig {
                vms_per_family: 2,
                supply: SupplyProcess {
                    step_secs: 2.0,
                    min_fraction: 0.0,
                    seed: 3,
                },
                ..MarketConfig::default()
            },
            ..FleetConfig::default()
        };
        let steady = FleetConfig::default();
        let trace = TraceSource::Poisson {
            rps_per_function: 4.0,
        }
        .generate(FunctionKind::ALL.len(), 60.0, 5)
        .unwrap();
        let volatile_report = sim
            .run(&trace, PlacementStrategy::IdleAware, &volatile)
            .unwrap();
        let steady_report = sim
            .run(&trace, PlacementStrategy::IdleAware, &steady)
            .unwrap();
        accounting_is_total(&volatile_report);
        assert!(
            volatile_report.spot_demoted > 0,
            "an all-or-nothing supply must reclaim in-flight work"
        );
        assert_eq!(steady_report.spot_demoted, 0, "steady supply never demotes");
        // Demotions re-bill at list price, so the volatile market saves
        // less per spot placement than the steady one.
        assert!(volatile_report.total_cost_usd > 0.0);
    }

    fn zoned_config(n_zones: usize, notice_secs: f64) -> FleetConfig {
        FleetConfig {
            market: MarketConfig {
                vms_per_family: 2,
                supply: SupplyProcess {
                    step_secs: 5.0,
                    min_fraction: 0.0,
                    seed: 3,
                },
                zones: ZoneConfig {
                    n_zones,
                    notice_secs,
                    shock: 0.5,
                    migration_rebill: 0.5,
                },
                ..MarketConfig::default()
            },
            ..FleetConfig::default()
        }
    }

    #[test]
    fn preemption_notices_migrate_and_drain_across_zones() {
        let plans = make_plans(5);
        let sim = FleetSimulator::new(plans).unwrap();
        let trace = TraceSource::Poisson {
            rps_per_function: 4.0,
        }
        .generate(FunctionKind::ALL.len(), 60.0, 5)
        .unwrap();
        let noticed = sim
            .run(&trace, PlacementStrategy::IdleAware, &zoned_config(3, 3.0))
            .unwrap();
        let abrupt = sim
            .run(&trace, PlacementStrategy::IdleAware, &zoned_config(3, 0.0))
            .unwrap();
        accounting_is_total(&noticed);
        accounting_is_total(&abrupt);
        // Volatile zones must announce their drops and save in-flight
        // work: drains complete under notice, migrations re-place the
        // rest in a surviving zone instead of force-demoting it.
        assert!(noticed.notified > 0, "{noticed:?}");
        assert!(noticed.drained > 0, "{noticed:?}");
        assert!(noticed.migrated > 0, "{noticed:?}");
        // Without a notice lead nothing ever drains, but cross-zone
        // failover still absorbs displacements at the step itself.
        assert_eq!(abrupt.notified, 0);
        assert_eq!(abrupt.drained, 0);
        assert!(abrupt.migrated > 0, "{abrupt:?}");
        // Single-zone markets have nowhere to fail over: the legacy
        // counters stay dark no matter how violent the supply is.
        let single = sim
            .run(&trace, PlacementStrategy::IdleAware, &zoned_config(1, 0.0))
            .unwrap();
        accounting_is_total(&single);
        assert_eq!(single.notified + single.drained + single.migrated, 0);
        // Migrations re-bill at a fraction of list while demotions pay
        // full list, so failover is never more expensive than the
        // single-zone market at equal scale — and the drain window can
        // only shrink the demoted count further.
        assert!(
            noticed.spot_demoted <= abrupt.spot_demoted,
            "{noticed:?} vs {abrupt:?}"
        );
    }

    #[test]
    fn fault_plans_perturb_the_market_reproducibly() {
        let plans = make_plans(5);
        let sim = FleetSimulator::new(plans).unwrap();
        let trace = TraceSource::Poisson {
            rps_per_function: 4.0,
        }
        .generate(FunctionKind::ALL.len(), 60.0, 5)
        .unwrap();
        let calm = zoned_config(3, 3.0);
        let faulted = FleetConfig {
            faults: FaultPlan {
                seed: 17,
                outage_rate_per_hour: 120.0,
                mean_outage_secs: 15.0,
                notice_drop_fraction: 0.25,
                burst_rate_per_hour: 90.0,
                mean_burst_secs: 10.0,
                burst_severity: 0.6,
                ..FaultPlan::NONE
            },
            ..calm
        };
        let base = sim
            .run(&trace, PlacementStrategy::IdleAware, &calm)
            .unwrap();
        let hit = sim
            .run(&trace, PlacementStrategy::IdleAware, &faulted)
            .unwrap();
        accounting_is_total(&hit);
        // Outages and shock bursts must actually bite: the faulted
        // market reclaims or displaces more work than the calm one.
        assert!(
            hit.spot_demoted + hit.migrated + hit.drained
                > base.spot_demoted + base.migrated + base.drained,
            "{hit:?} vs {base:?}"
        );
        // The plan is a pure function of its seed: an identical rerun
        // reproduces the report bit for bit, a different seed does not.
        let again = sim
            .run(&trace, PlacementStrategy::IdleAware, &faulted)
            .unwrap();
        assert_eq!(format!("{hit:?}"), format!("{again:?}"));
        let reseeded = FleetConfig {
            faults: FaultPlan {
                seed: 18,
                ..faulted.faults
            },
            ..faulted
        };
        let other = sim
            .run(&trace, PlacementStrategy::IdleAware, &reseeded)
            .unwrap();
        assert_ne!(format!("{hit:?}"), format!("{other:?}"));
        // The determinism lattice holds with faults enabled: windowed
        // replay of the faulted market stays bit-identical.
        for (threads, window_secs) in [(1, 3.0), (8, 17.0)] {
            let windowed = sim
                .run_windowed(
                    &trace,
                    PlacementStrategy::IdleAware,
                    &faulted,
                    threads,
                    window_secs,
                )
                .unwrap();
            assert_eq!(format!("{hit:?}"), format!("{windowed:?}"));
        }
    }

    #[test]
    fn window_boundary_tie_breaks_are_pinned() {
        // Pin the event order at one instant — completion < step <
        // notice < tick — by aligning every recurring instant on the
        // same lattice: supply steps every 5 s, notices 5 s ahead (so
        // each notice clamps onto the previous step), controller ticks
        // every 5 s, and window boundaries at 5 s and 2.5 s. Every step,
        // notice, and tick lands exactly ON a window boundary, so each
        // must be owned by exactly one window; any double-count or
        // ordering drift breaks bit-identity with the sequential
        // reference.
        let plans = make_plans(5);
        let sim = FleetSimulator::new(plans).unwrap();
        let config = FleetConfig {
            market: MarketConfig {
                vms_per_family: 2,
                supply: SupplyProcess {
                    step_secs: 5.0,
                    min_fraction: 0.0,
                    seed: 3,
                },
                zones: ZoneConfig {
                    n_zones: 2,
                    notice_secs: 5.0,
                    shock: 0.5,
                    migration_rebill: 0.5,
                },
                ..MarketConfig::default()
            },
            control: ControlConfig {
                cadence_secs: 5.0,
                controller: ControllerConfig::HeadroomPid(PidConfig::default()),
            },
            ..FleetConfig::default()
        };
        let trace = TraceSource::Poisson {
            rps_per_function: 4.0,
        }
        .generate(FunctionKind::ALL.len(), 60.0, 5)
        .unwrap();
        let reference = sim
            .run(&trace, PlacementStrategy::IdleAware, &config)
            .unwrap();
        accounting_is_total(&reference);
        assert!(reference.notified > 0, "{reference:?}");
        for threads in [1, 4] {
            for window_secs in [2.5, 5.0] {
                let windowed = sim
                    .run_windowed(
                        &trace,
                        PlacementStrategy::IdleAware,
                        &config,
                        threads,
                        window_secs,
                    )
                    .unwrap();
                assert_eq!(
                    format!("{reference:?}"),
                    format!("{windowed:?}"),
                    "threads={threads} window={window_secs}"
                );
            }
        }
    }

    #[test]
    fn crash_resume_restores_the_replay_bit_identically() {
        use crate::snapshot::ReplaySnapshot;
        let plans = make_plans(5);
        let sim = FleetSimulator::new(plans).unwrap();
        let config = FleetConfig {
            faults: FaultPlan {
                seed: 17,
                outage_rate_per_hour: 60.0,
                mean_outage_secs: 20.0,
                notice_drop_fraction: 0.25,
                burst_rate_per_hour: 45.0,
                mean_burst_secs: 10.0,
                burst_severity: 0.6,
                ..FaultPlan::NONE
            },
            control: ControlConfig {
                cadence_secs: 10.0,
                controller: ControllerConfig::HeadroomPid(PidConfig::default()),
            },
            ..zoned_config(3, 3.0)
        };
        let lazy = StreamTrace::generate(
            TraceSource::Bursty {
                calm_rps: 1.0,
                burst_rps: 8.0,
                mean_calm_secs: 20.0,
                mean_burst_secs: 10.0,
            },
            FunctionKind::ALL.len(),
            120.0,
            11,
        )
        .unwrap();
        let reference = sim
            .run_stream(&lazy, PlacementStrategy::IdleAware, &config)
            .unwrap();
        // A full pass with snapshots enabled is the plain sequential
        // chain: same report, and one snapshot per interior boundary.
        let mut snaps: Vec<ReplaySnapshot> = Vec::new();
        let full = sim
            .run_stream_resumable(
                &lazy,
                PlacementStrategy::IdleAware,
                &config,
                15.0,
                None,
                |s| {
                    snaps.push(s.clone());
                    Ok(true)
                },
            )
            .unwrap()
            .expect("an uninterrupted run returns a report");
        assert_eq!(format!("{reference:?}"), format!("{full:?}"));
        assert!(
            snaps.len() >= 4,
            "expected several epochs, got {}",
            snaps.len()
        );
        // Kill at every epoch: resuming from the serialized snapshot —
        // round-tripped through the wire format like a real restart —
        // reproduces the uninterrupted report bit for bit.
        for snap in &snaps {
            let kill_at = snap.epoch();
            let resumed_from = ReplaySnapshot::from_bytes(&snap.to_bytes()).unwrap();
            let crashed = sim
                .run_stream_resumable(
                    &lazy,
                    PlacementStrategy::IdleAware,
                    &config,
                    15.0,
                    None,
                    |s| Ok(s.epoch() < kill_at),
                )
                .unwrap();
            assert!(
                crashed.is_none(),
                "epoch {kill_at}: the kill must abort the run"
            );
            let resumed = sim
                .run_stream_resumable(
                    &lazy,
                    PlacementStrategy::IdleAware,
                    &config,
                    15.0,
                    Some(&resumed_from),
                    |_| Ok(true),
                )
                .unwrap()
                .expect("a resumed run finishes");
            assert_eq!(
                format!("{reference:?}"),
                format!("{resumed:?}"),
                "resume from epoch {kill_at} diverged"
            );
        }
        // A snapshot from a different replay is rejected, not replayed:
        // the fingerprint covers strategy, config, trace, and cadence.
        let other = FleetConfig {
            slo_theta: config.slo_theta + 0.01,
            ..config
        };
        let err = sim.run_stream_resumable(
            &lazy,
            PlacementStrategy::IdleAware,
            &other,
            15.0,
            Some(&snaps[0]),
            |_| Ok(true),
        );
        assert!(
            err.is_err(),
            "a reconfigured replay must reject the snapshot"
        );
        // And so is a snapshot taken at a different cadence.
        let err = sim.run_stream_resumable(
            &lazy,
            PlacementStrategy::IdleAware,
            &config,
            30.0,
            Some(&snaps[0]),
            |_| Ok(true),
        );
        assert!(
            err.is_err(),
            "a re-windowed replay must reject the snapshot"
        );
    }

    #[test]
    fn admission_policy_gates_the_market() {
        let plans = make_plans(5);
        let sim = FleetSimulator::new(plans).unwrap();
        let trace = Trace::poisson(60.0, 1.0, 9).unwrap();
        // A zero-headroom policy rejects every request before it touches
        // the ledger.
        let closed = FleetConfig {
            market: MarketConfig {
                admission: AdmissionPolicy::Headroom {
                    max_utilization: 0.0,
                },
                ..MarketConfig::default()
            },
            ..FleetConfig::default()
        };
        let report = sim
            .run(&trace, PlacementStrategy::IdleAware, &closed)
            .unwrap();
        accounting_is_total(&report);
        assert_eq!(report.spot_admitted + report.spot_demoted, 0);
        assert_eq!(report.policy_rejections, report.invocations);
        // Greedy on the same trace admits plenty.
        let open = sim
            .run(
                &trace,
                PlacementStrategy::IdleAware,
                &FleetConfig::default(),
            )
            .unwrap();
        assert!(open.spot_admitted > 0);
        assert_eq!(open.policy_rejections, 0);
    }

    #[test]
    fn windowed_replay_is_bit_identical_to_sequential() {
        let plans = make_plans(5);
        let sim = FleetSimulator::new(plans).unwrap();
        // A fluctuating, tightish market exercises demotion and
        // reconciliation, not just happy-path speculation.
        let config = FleetConfig {
            market: MarketConfig {
                vms_per_family: 2,
                supply: SupplyProcess {
                    step_secs: 7.0,
                    min_fraction: 0.3,
                    seed: 11,
                },
                admission: AdmissionPolicy::Headroom {
                    max_utilization: 0.9,
                },
                ..MarketConfig::default()
            },
            ..FleetConfig::default()
        };
        let trace = TraceSource::Bursty {
            calm_rps: 0.2,
            burst_rps: 3.0,
            mean_calm_secs: 30.0,
            mean_burst_secs: 6.0,
        }
        .generate(FunctionKind::ALL.len(), 120.0, 5)
        .unwrap();
        for strategy in PlacementStrategy::ALL {
            let seq = sim.run(&trace, strategy, &config).unwrap();
            for threads in [1, 2, 8] {
                for window_secs in [3.0, 17.0, 120.0] {
                    let windowed = sim
                        .run_windowed(&trace, strategy, &config, threads, window_secs)
                        .unwrap();
                    assert_eq!(
                        format!("{seq:?}"),
                        format!("{windowed:?}"),
                        "{strategy:?} diverged at {threads} threads, {window_secs}s windows"
                    );
                }
            }
        }
    }

    /// A scarce, volatile market under sustained traffic: the regime
    /// where demotions happen and feedback has something to do.
    fn volatile_config(controller: ControllerConfig) -> FleetConfig {
        FleetConfig {
            market: MarketConfig {
                vms_per_family: 2,
                supply: SupplyProcess {
                    step_secs: 20.0,
                    min_fraction: 0.0,
                    seed: 3,
                },
                ..MarketConfig::default()
            },
            control: ControlConfig {
                cadence_secs: 10.0,
                controller,
            },
            ..FleetConfig::default()
        }
    }

    #[test]
    fn static_controller_reproduces_the_open_loop_engine() {
        // The Static controller ticking at any cadence must not perturb
        // the metering: same costs, classes, and violations as the
        // pre-controller engine (cadence so long it never ticks).
        let plans = make_plans(5);
        let sim = FleetSimulator::new(plans).unwrap();
        let trace = Trace::poisson(120.0, 0.8, 7).unwrap();
        let never = FleetConfig {
            control: ControlConfig {
                cadence_secs: 1e6,
                controller: ControllerConfig::Static,
            },
            ..volatile_config(ControllerConfig::Static)
        };
        let ticking = volatile_config(ControllerConfig::Static);
        let a = sim
            .run(&trace, PlacementStrategy::IdleAware, &never)
            .unwrap();
        let b = sim
            .run(&trace, PlacementStrategy::IdleAware, &ticking)
            .unwrap();
        assert!(a.control.is_empty(), "1e6s cadence must never tick");
        assert!(!b.control.is_empty(), "10s cadence must tick");
        assert_eq!(a.total_cost_usd.to_bits(), b.total_cost_usd.to_bits());
        assert_eq!(a.spot_admitted, b.spot_admitted);
        assert_eq!(a.spot_demoted, b.spot_demoted);
        assert_eq!(a.slo_violations, b.slo_violations);
        assert_eq!(b.controller, "static");
        // Static telemetry still observes the market.
        assert!(b.control.iter().map(|s| s.arrivals as usize).sum::<usize>() <= b.invocations);
        assert!(b.control.iter().all(|s| s.ceiling == f64::INFINITY));
    }

    #[test]
    fn pid_controller_trades_spot_share_for_fewer_demotions() {
        let plans = make_plans(5);
        let sim = FleetSimulator::new(plans).unwrap();
        let trace = TraceSource::HeavyTail {
            mean_rps: 2.0,
            alpha: 1.5,
        }
        .generate(FunctionKind::ALL.len(), 300.0, 5)
        .unwrap();
        let open = sim
            .run(
                &trace,
                PlacementStrategy::IdleAware,
                &volatile_config(ControllerConfig::Static),
            )
            .unwrap();
        let closed = sim
            .run(
                &trace,
                PlacementStrategy::IdleAware,
                &volatile_config(ControllerConfig::HeadroomPid(PidConfig::default())),
            )
            .unwrap();
        assert_eq!(open.invocations, closed.invocations);
        accounting_is_total(&closed);
        assert!(open.spot_demoted > 0, "volatile market must demote");
        assert!(
            closed.spot_demoted < open.spot_demoted,
            "feedback must reduce demotions: {} vs {}",
            closed.spot_demoted,
            open.spot_demoted
        );
        assert!(
            closed.slo_violations <= open.slo_violations,
            "tightening must not add violations: {} vs {}",
            closed.slo_violations,
            open.slo_violations
        );
        // The loop actually moved the ceiling below the greedy cap.
        assert_eq!(closed.controller, "pid");
        assert!(closed.control.iter().any(|s| s.ceiling < 1.0));
        assert!(closed
            .control
            .iter()
            .all(|s| (PidConfig::default().min_ceiling..=1.0).contains(&s.ceiling)));
    }

    #[test]
    fn right_sizer_retires_guardrail_breaking_alternates() {
        // Force plans whose *first-tried* alternates actually break the
        // θ = 10% guardrail: every family stays accepted and the order
        // puts the slowest first — the worst case of an offline model
        // that mispredicted. The right-sizer must learn the actual
        // latencies and stop using the breakers, cutting violations.
        let mut plans = make_plans(5);
        for plan in &mut plans {
            for a in &mut plan.alternates {
                a.accepted = true;
            }
            plan.alternates
                .sort_by(|a, b| b.norm_exec_time.total_cmp(&a.norm_exec_time));
        }
        let sim = FleetSimulator::new(plans).unwrap();
        let trace = Trace::poisson(240.0, 0.8, 11).unwrap();
        let steady = |controller| FleetConfig {
            control: ControlConfig {
                cadence_secs: 15.0,
                controller,
            },
            ..FleetConfig::default()
        };
        let open = sim
            .run(
                &trace,
                PlacementStrategy::IdleAware,
                &steady(ControllerConfig::Static),
            )
            .unwrap();
        let sized = sim
            .run(
                &trace,
                PlacementStrategy::IdleAware,
                &steady(ControllerConfig::SurrogateRightSizer(
                    RightSizerConfig::default(),
                )),
            )
            .unwrap();
        accounting_is_total(&sized);
        assert_eq!(sized.controller, "right_sizer");
        assert!(
            sized.control.iter().map(|s| s.replanned).sum::<u32>() > 0,
            "observations must trigger at least one replan"
        );
        assert!(
            open.slo_violations > 0,
            "forced-in breakers must violate under the open loop"
        );
        assert!(
            sized.slo_violations < open.slo_violations,
            "retiring observed breakers must cut violations: {} vs {}",
            sized.slo_violations,
            open.slo_violations
        );
    }

    #[test]
    fn every_controller_is_windowed_bit_identical() {
        let plans = make_plans(5);
        let sim = FleetSimulator::new(plans).unwrap();
        let trace = TraceSource::Bursty {
            calm_rps: 0.3,
            burst_rps: 3.0,
            mean_calm_secs: 25.0,
            mean_burst_secs: 6.0,
        }
        .generate(FunctionKind::ALL.len(), 180.0, 9)
        .unwrap();
        for controller in [
            ControllerConfig::Static,
            ControllerConfig::HeadroomPid(PidConfig::default()),
            ControllerConfig::SurrogateRightSizer(RightSizerConfig::default()),
        ] {
            let config = volatile_config(controller);
            let seq = sim
                .run(&trace, PlacementStrategy::IdleAware, &config)
                .unwrap();
            for threads in [1, 4] {
                // 7 s windows split every 10 s control epoch across
                // boundaries, so carried accumulators and controller
                // state really get exercised.
                for window_secs in [7.0, 45.0] {
                    let windowed = sim
                        .run_windowed(
                            &trace,
                            PlacementStrategy::IdleAware,
                            &config,
                            threads,
                            window_secs,
                        )
                        .unwrap();
                    assert_eq!(
                        format!("{seq:?}"),
                        format!("{windowed:?}"),
                        "{controller:?} diverged at {threads} threads, {window_secs}s windows"
                    );
                }
            }
        }
    }

    #[test]
    fn streaming_replay_matches_materialized_with_bounded_residency() {
        let plans = make_plans(5);
        let sim = FleetSimulator::new(plans).unwrap();
        let config = FleetConfig {
            market: MarketConfig {
                vms_per_family: 2,
                supply: SupplyProcess {
                    step_secs: 7.0,
                    min_fraction: 0.3,
                    seed: 11,
                },
                ..MarketConfig::default()
            },
            ..FleetConfig::default()
        };
        let source = TraceSource::HeavyTail {
            mean_rps: 1.2,
            alpha: 1.5,
        };
        let lazy = StreamTrace::generate(source, FunctionKind::ALL.len(), 180.0, 5).unwrap();
        let full = lazy.materialize().unwrap();
        for strategy in PlacementStrategy::ALL {
            let reference = sim.run(&full, strategy, &config).unwrap();
            let (streamed, stats) = sim.run_stream_with_stats(&lazy, strategy, &config).unwrap();
            assert_eq!(
                format!("{reference:?}"),
                format!("{streamed:?}"),
                "{strategy:?} diverged between materialized and streaming"
            );
            // Peak resident state is in-flight + cursor lookahead, far
            // below total arrivals.
            assert_eq!(stats.events, full.len());
            assert_eq!(stats.peak_cursor_resident, FunctionKind::ALL.len());
            assert!(
                stats.peak_resident_events() < full.len() / 2,
                "peak {} should be far below {} arrivals",
                stats.peak_resident_events(),
                full.len()
            );
            for threads in [1, 4] {
                for window_secs in [3.0, 45.0] {
                    let windowed = sim
                        .run_stream_windowed(&lazy, strategy, &config, threads, window_secs)
                        .unwrap();
                    assert_eq!(
                        format!("{reference:?}"),
                        format!("{windowed:?}"),
                        "{strategy:?} diverged at {threads} threads, {window_secs}s windows"
                    );
                }
            }
        }
        // The streaming engines reject the same degenerate windows.
        assert!(sim
            .run_stream_windowed(&lazy, PlacementStrategy::IdleAware, &config, 2, 0.0)
            .is_err());
        assert!(sim
            .run_stream_windowed(&lazy, PlacementStrategy::IdleAware, &config, 2, 1e-9)
            .is_err());
        // A mis-sized fleet is rejected identically.
        let small = StreamTrace::generate(source, 3, 30.0, 1).unwrap();
        assert!(sim
            .run_stream(&small, PlacementStrategy::IdleAware, &config)
            .is_err());
    }

    #[test]
    fn replay_config_knobs_stay_bit_identical_and_force_the_fallback() {
        let plans = make_plans(5);
        let sim = FleetSimulator::new(plans).unwrap();
        // A volatile market under feedback control: carried state is
        // never trivially empty, so speculation genuinely has to work.
        let config = volatile_config(ControllerConfig::HeadroomPid(PidConfig::default()));
        let lazy = StreamTrace::generate(
            TraceSource::HeavyTail {
                mean_rps: 2.0,
                alpha: 1.5,
            },
            FunctionKind::ALL.len(),
            300.0,
            5,
        )
        .unwrap();
        let reference = sim
            .run(
                &lazy.materialize().unwrap(),
                PlacementStrategy::IdleAware,
                &config,
            )
            .unwrap();
        // The sorted-drain queue is the wheel's reference order: same
        // report, bit for bit.
        let sorted = sim
            .run_stream_windowed_with(
                &lazy,
                PlacementStrategy::IdleAware,
                &config,
                &ReplayConfig {
                    completion_queue: CompletionQueueKind::SortedDrain,
                    ..ReplayConfig::default()
                },
                4,
                7.0,
            )
            .unwrap();
        assert_eq!(format!("{reference:?}"), format!("{sorted:?}"));
        // A zero round budget bails out after the first speculative
        // round, forcing the sequential exact-carry fallback — still
        // bit-identical, and the stats prove the fallback actually ran.
        let (report, stats) = sim
            .run_stream_windowed_with_stats(
                &lazy,
                PlacementStrategy::IdleAware,
                &config,
                &ReplayConfig {
                    max_speculative_rounds: 0,
                    stall_margin: 0,
                    ..ReplayConfig::default()
                },
                4,
                7.0,
            )
            .unwrap();
        assert_eq!(format!("{reference:?}"), format!("{report:?}"));
        assert!(
            stats.fallback_windows > 0,
            "a zero round budget must re-run stale windows sequentially"
        );
    }

    #[test]
    fn ladder_memory_stays_sqrt_of_windows() {
        let plans = make_plans(5);
        let sim = FleetSimulator::new(plans).unwrap();
        let config = FleetConfig::default();
        // 1 s windows over a 10-minute trace: enough boundaries that
        // O(W) and O(√W) pre-pass memory are an order of magnitude
        // apart.
        let lazy = StreamTrace::generate(
            TraceSource::Poisson {
                rps_per_function: 1.0,
            },
            FunctionKind::ALL.len(),
            600.0,
            7,
        )
        .unwrap();
        let (report, stats) = sim
            .run_stream_windowed_with_stats(
                &lazy,
                PlacementStrategy::IdleAware,
                &config,
                &ReplayConfig::default(),
                4,
                1.0,
            )
            .unwrap();
        let reference = sim
            .run_stream(&lazy, PlacementStrategy::IdleAware, &config)
            .unwrap();
        assert_eq!(format!("{reference:?}"), format!("{report:?}"));
        let n = (lazy.horizon_nanos() / 1_000_000_000) as usize + 1;
        assert!(n > 500, "the trace must split into many windows, got {n}");
        let stride = isqrt_ceil(n);
        // The pre-pass held O(√W) anchors — far below one checkpoint
        // per boundary — each O(functions) in size.
        assert_eq!(stats.ladder_anchors, n.div_ceil(stride));
        assert!(
            stats.ladder_anchors <= stride,
            "{} anchors exceed √{n}",
            stats.ladder_anchors
        );
        assert!(stats.ladder_anchors < n / 4);
        assert_eq!(stats.peak_cursor_resident, FunctionKind::ALL.len());
        // Re-derived boundaries cost bounded forward drains: each
        // derivation skips fewer than one stride's worth of the trace,
        // so a full pass over the windows re-drains at most
        // (stride − 1) × events, and a window runs at most once per
        // speculative round plus the fallback pass.
        let max_passes = ReplayConfig::default().max_speculative_rounds + 2;
        assert!(stats.ladder_redrain_events > 0);
        assert!(stats.ladder_redrain_events <= max_passes * (stride - 1) * stats.events);
    }

    #[test]
    fn empty_fleet_and_invalid_inputs_are_rejected() {
        assert!(matches!(
            FleetSimulator::new(Vec::new()),
            Err(FreedomError::InvalidArgument(_))
        ));
        let plans = make_plans(1);
        let sim = FleetSimulator::new(plans).unwrap();
        // A 4-function trace cannot drive a 6-function fleet.
        let trace = TraceSource::Poisson {
            rps_per_function: 0.5,
        }
        .generate(4, 30.0, 1)
        .unwrap();
        assert!(matches!(
            sim.run(
                &trace,
                PlacementStrategy::IdleAware,
                &FleetConfig::default()
            ),
            Err(FreedomError::InvalidArgument(_))
        ));
        let ok = Trace::poisson(10.0, 0.5, 1).unwrap();
        // Bad window, SLO theta, and market parameters.
        assert!(sim
            .run_windowed(
                &ok,
                PlacementStrategy::IdleAware,
                &FleetConfig::default(),
                2,
                0.0
            )
            .is_err());
        // A window absurdly small for the trace span is rejected before
        // any per-window bookkeeping is allocated.
        assert!(sim
            .run_windowed(
                &ok,
                PlacementStrategy::IdleAware,
                &FleetConfig::default(),
                2,
                1e-9
            )
            .is_err());
        assert!(sim
            .run(
                &ok,
                PlacementStrategy::IdleAware,
                &FleetConfig {
                    slo_theta: f64::NAN,
                    ..FleetConfig::default()
                }
            )
            .is_err());
        assert!(sim
            .run(
                &ok,
                PlacementStrategy::IdleAware,
                &FleetConfig {
                    market: MarketConfig {
                        vms_per_family: 0,
                        ..MarketConfig::default()
                    },
                    ..FleetConfig::default()
                }
            )
            .is_err());
        // Degenerate control cadences are rejected up front: zero/NaN,
        // and one so short the trace would tick millions of times.
        for cadence_secs in [0.0, f64::NAN, 1e-9] {
            assert!(sim
                .run(
                    &ok,
                    PlacementStrategy::IdleAware,
                    &FleetConfig {
                        control: ControlConfig {
                            cadence_secs,
                            ..ControlConfig::default()
                        },
                        ..FleetConfig::default()
                    }
                )
                .is_err());
        }
    }

    /// A volatile market plus per-invocation transients and a plain
    /// backoff policy (no hedging, no brownout).
    fn flaky_config() -> FleetConfig {
        FleetConfig {
            faults: FaultPlan {
                seed: 17,
                crash_prob: 0.10,
                abort_prob: 0.08,
                straggler_prob: 0.12,
                straggler_factor: 4.0,
                ..FaultPlan::NONE
            },
            retry: RetryPolicy {
                max_attempts: 3,
                backoff_base_secs: 0.5,
                backoff_cap_secs: 8.0,
                budget_per_sec: 2.0,
                budget_burst: 8.0,
                ..RetryPolicy::DEFAULT
            },
            ..volatile_config(ControllerConfig::Static)
        }
    }

    #[test]
    fn transient_faults_drive_retries_into_the_ledger() {
        let plans = make_plans(5);
        let sim = FleetSimulator::new(plans).unwrap();
        let trace = Trace::poisson(180.0, 0.8, 7).unwrap();
        let config = flaky_config();
        let report = sim
            .run(&trace, PlacementStrategy::IdleAware, &config)
            .unwrap();
        accounting_is_total(&report);
        assert!(report.retried > 0, "transients must retry: {report:?}");
        assert!(
            report.hedge_wins == 0 && report.shed_retries == 0,
            "no hedging or brownout configured: {report:?}"
        );
        // The same seeds replay bit-identically; a different retry seed
        // moves the jittered backoffs and diverges.
        let again = sim
            .run(&trace, PlacementStrategy::IdleAware, &config)
            .unwrap();
        assert_eq!(format!("{report:?}"), format!("{again:?}"));
        let reseeded = FleetConfig {
            retry: RetryPolicy {
                seed: config.retry.seed + 1,
                ..config.retry
            },
            ..config
        };
        let moved = sim
            .run(&trace, PlacementStrategy::IdleAware, &reseeded)
            .unwrap();
        assert_ne!(
            format!("{report:?}"),
            format!("{moved:?}"),
            "the retry seed must matter"
        );
        // Without transients the whole retry layer is inert: no retry
        // records, no dead letters, and the report matches a run under
        // the default policy bit for bit.
        let calm = FleetConfig {
            faults: FaultPlan::NONE,
            ..config
        };
        let quiet = sim
            .run(&trace, PlacementStrategy::IdleAware, &calm)
            .unwrap();
        assert_eq!(quiet.retried, 0);
        assert_eq!(quiet.dead_lettered, 0);
        let default_policy = sim
            .run(
                &trace,
                PlacementStrategy::IdleAware,
                &FleetConfig {
                    retry: RetryPolicy::DEFAULT,
                    ..calm
                },
            )
            .unwrap();
        assert_eq!(format!("{quiet:?}"), format!("{default_policy:?}"));
    }

    #[test]
    fn attempt_cap_dead_letters_what_it_cannot_retry() {
        let plans = make_plans(5);
        let sim = FleetSimulator::new(plans).unwrap();
        let trace = Trace::poisson(180.0, 0.8, 7).unwrap();
        // max_attempts = 1 means a transient failure has no second
        // chance: every crash or abort dead-letters immediately.
        let config = FleetConfig {
            retry: RetryPolicy {
                max_attempts: 1,
                ..flaky_config().retry
            },
            ..flaky_config()
        };
        let report = sim
            .run(&trace, PlacementStrategy::IdleAware, &config)
            .unwrap();
        accounting_is_total(&report);
        assert!(report.dead_lettered > 0, "cap must bite: {report:?}");
        assert_eq!(
            report.retried, report.dead_lettered,
            "with a cap of one every retry record is a dead letter"
        );
        // A generous cap re-executes instead: strictly fewer dead
        // letters under the same fault plan.
        let generous = sim
            .run(&trace, PlacementStrategy::IdleAware, &flaky_config())
            .unwrap();
        assert!(
            generous.dead_lettered < report.dead_lettered,
            "{} vs {}",
            generous.dead_lettered,
            report.dead_lettered
        );
    }

    #[test]
    fn hedges_race_stragglers_and_win_some() {
        let plans = make_plans(5);
        let sim = FleetSimulator::new(plans).unwrap();
        let trace = Trace::poisson(180.0, 0.8, 7).unwrap();
        // Stragglers only — a hedge fired shortly after the slowdown is
        // detected beats a 6x-inflated original often.
        let config = FleetConfig {
            faults: FaultPlan {
                seed: 17,
                straggler_prob: 0.25,
                straggler_factor: 6.0,
                ..FaultPlan::NONE
            },
            retry: RetryPolicy {
                hedge_delay_secs: 0.5,
                ..RetryPolicy::DEFAULT
            },
            ..volatile_config(ControllerConfig::Static)
        };
        let hedged = sim
            .run(&trace, PlacementStrategy::IdleAware, &config)
            .unwrap();
        accounting_is_total(&hedged);
        assert!(hedged.hedge_wins > 0, "hedges must win races: {hedged:?}");
        // Hedging is pure duplication: it changes no terminal class, so
        // the admission ledger matches the unhedged run exactly, and the
        // won races can only shorten observed latency.
        let unhedged = sim
            .run(
                &trace,
                PlacementStrategy::IdleAware,
                &FleetConfig {
                    retry: RetryPolicy {
                        hedge_delay_secs: 0.0,
                        ..config.retry
                    },
                    ..config
                },
            )
            .unwrap();
        assert_eq!(unhedged.hedge_wins, 0);
        assert!(
            hedged.mean_latency_inflation <= unhedged.mean_latency_inflation,
            "{} vs {}",
            hedged.mean_latency_inflation,
            unhedged.mean_latency_inflation
        );
    }

    #[test]
    fn brownout_sheds_retries_under_pressure() {
        let plans = make_plans(5);
        let sim = FleetSimulator::new(plans).unwrap();
        let trace = Trace::poisson(180.0, 1.2, 7).unwrap();
        // Aggressive transients against a sensitive brownout: retry
        // pressure crosses the enter threshold and activations get shed.
        let base = flaky_config();
        let config = FleetConfig {
            faults: FaultPlan {
                crash_prob: 0.25,
                abort_prob: 0.20,
                ..base.faults
            },
            retry: RetryPolicy {
                brownout: Some(BrownoutConfig {
                    enter_pressure: 0.05,
                    exit_pressure: 0.01,
                    utilization_ceiling: 0.6,
                }),
                ..base.retry
            },
            ..base
        };
        let report = sim
            .run(&trace, PlacementStrategy::IdleAware, &config)
            .unwrap();
        accounting_is_total(&report);
        assert!(report.shed_retries > 0, "brownout must shed: {report:?}");
        assert!(
            report.shed_retries <= report.dead_lettered,
            "shed activations are dead letters: {report:?}"
        );
        // The control telemetry records the mode flipping on.
        assert!(
            report.control.iter().any(|s| s.brownout),
            "no control sample saw brownout: {report:?}"
        );
    }
}

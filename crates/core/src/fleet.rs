//! Trace-driven fleet simulation (extension of §6.2).
//!
//! Figure 15 scores the planner's per-family decisions one function at a
//! time. A provider, though, operates a *fleet*: idle capacity of each
//! family is finite, invocations arrive concurrently, and a placement
//! decision that looks free in isolation competes with every other
//! function for the same idle VMs. This module closes that loop with a
//! discrete-event simulation:
//!
//! - a Poisson arrival [`Trace`] over the six benchmark functions;
//! - a fixed idle fleet (spot-priced) per family plus an elastic
//!   on-demand pool that always has room for the tuned best
//!   configuration at list price;
//! - two [`PlacementStrategy`]s: always-best-config (baseline) and
//!   idle-aware (prefer θ-guardrailed alternate families on spot
//!   capacity, fall back to on-demand);
//! - a [`FleetReport`] with cost, latency inflation, spot utilization.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use freedom_cluster::{Cluster, InstanceFamily, InstanceSize, PlacementPolicy, SandboxId};
use freedom_faas::{PerfTable, ResourceConfig};
use freedom_linalg::stats;
use freedom_pricing::SpotPricing;
use freedom_workloads::FunctionKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::provider::PlannedPlacement;
use crate::{FreedomError, Result};

/// One invocation arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Arrival time in seconds since trace start.
    pub at_secs: f64,
    /// Which function is invoked.
    pub function: FunctionKind,
}

/// A generated arrival trace.
#[derive(Debug, Clone)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Generates a Poisson arrival trace: each function gets independent
    /// exponential inter-arrival times with rate `rps_per_function`, over
    /// `duration_secs`, merged and sorted.
    ///
    /// Returns [`FreedomError::InvalidArgument`] for non-positive rates or
    /// durations.
    pub fn poisson(duration_secs: f64, rps_per_function: f64, seed: u64) -> Result<Self> {
        if duration_secs.is_nan()
            || duration_secs <= 0.0
            || rps_per_function.is_nan()
            || rps_per_function <= 0.0
        {
            return Err(FreedomError::InvalidArgument(format!(
                "duration and rate must be positive, got {duration_secs}s at {rps_per_function}rps"
            )));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        for function in FunctionKind::ALL {
            let mut t = 0.0;
            loop {
                // Exponential inter-arrival via inverse transform.
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                t += -u.ln() / rps_per_function;
                if t >= duration_secs {
                    break;
                }
                events.push(TraceEvent {
                    at_secs: t,
                    function,
                });
            }
        }
        events.sort_by(|a, b| a.at_secs.total_cmp(&b.at_secs));
        Ok(Self { events })
    }

    /// The events, in arrival order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// How the provider places each invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// Always run the tuned best configuration on the on-demand pool.
    BestConfigOnly,
    /// Prefer θ-accepted alternate families while their idle (spot)
    /// capacity lasts; fall back to the on-demand best configuration.
    IdleAware,
}

/// Everything the simulator needs to place one function.
#[derive(Debug, Clone)]
pub struct FunctionPlan {
    /// The function this plan serves.
    pub function: FunctionKind,
    /// The tuned best configuration (on-demand fallback).
    pub best_config: ResourceConfig,
    /// Planner output: per-family predicted-best placements; only
    /// `accepted` ones are used, in the given order.
    pub alternates: Vec<PlannedPlacement>,
    /// Ground truth used to look up execution outcomes.
    pub table: PerfTable,
}

/// Fleet-simulation knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Idle `.4xlarge` VMs provisioned per family (the spot pool).
    pub idle_vms_per_family: usize,
    /// Spot pricing on the idle pool.
    pub spot: SpotPricing,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            idle_vms_per_family: 2,
            spot: SpotPricing::PAPER_DEFAULT,
        }
    }
}

/// Aggregate outcome of one simulated trace.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Strategy simulated.
    pub strategy: PlacementStrategy,
    /// Invocations served.
    pub invocations: usize,
    /// Total provider cost in USD.
    pub total_cost_usd: f64,
    /// Mean latency inflation vs. each function's best configuration
    /// (1.0 = every invocation ran at best-config speed).
    pub mean_latency_inflation: f64,
    /// 95th-percentile latency inflation.
    pub p95_latency_inflation: f64,
    /// Invocations served from the spot (idle) pool.
    pub spot_placements: usize,
    /// Spot placements that failed for lack of idle capacity and fell
    /// back to on-demand.
    pub spot_capacity_misses: usize,
}

impl FleetReport {
    /// Fraction of invocations served from idle capacity.
    pub fn spot_share(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.spot_placements as f64 / self.invocations as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    Arrival(usize),
    Completion(SandboxId),
}

/// Min-heap entry ordered by time in nanoseconds (then sequence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct QueuedEvent {
    at_nanos: u128,
    seq: u64,
    kind_order: u8, // completions before arrivals at the same instant
}

/// The fleet simulator: a fixed spot pool plus elastic on-demand.
pub struct FleetSimulator {
    plans: BTreeMap<FunctionKind, FunctionPlan>,
    config: FleetConfig,
}

impl FleetSimulator {
    /// Creates a simulator from per-function plans.
    ///
    /// Returns [`FreedomError::InvalidArgument`] when a plan is missing
    /// for any benchmark function.
    pub fn new(plans: Vec<FunctionPlan>, config: FleetConfig) -> Result<Self> {
        let plans: BTreeMap<FunctionKind, FunctionPlan> =
            plans.into_iter().map(|p| (p.function, p)).collect();
        for function in FunctionKind::ALL {
            if !plans.contains_key(&function) {
                return Err(FreedomError::InvalidArgument(format!(
                    "missing plan for {function}"
                )));
            }
        }
        Ok(Self { plans, config })
    }

    /// Runs the trace under a strategy and reports aggregates.
    pub fn run(&self, trace: &Trace, strategy: PlacementStrategy) -> Result<FleetReport> {
        // The spot pool: a fixed fleet, `idle_vms_per_family` 4xlarge VMs
        // per search-space family.
        let mut spot_pool = Cluster::new(PlacementPolicy::BestFit);
        for family in InstanceFamily::SEARCH_SPACE {
            for _ in 0..self.config.idle_vms_per_family {
                spot_pool.provision(family, InstanceSize::X4Large);
            }
        }

        let mut heap: BinaryHeap<Reverse<QueuedEvent>> = BinaryHeap::new();
        let mut payloads: BTreeMap<(u128, u64), EventKind> = BTreeMap::new();
        let mut seq = 0u64;
        let push = |heap: &mut BinaryHeap<Reverse<QueuedEvent>>,
                    payloads: &mut BTreeMap<(u128, u64), EventKind>,
                    seq: &mut u64,
                    at_secs: f64,
                    kind: EventKind| {
            let at_nanos = (at_secs * 1e9) as u128;
            let kind_order = match kind {
                EventKind::Completion(_) => 0,
                EventKind::Arrival(_) => 1,
            };
            heap.push(Reverse(QueuedEvent {
                at_nanos,
                seq: *seq,
                kind_order,
            }));
            payloads.insert((at_nanos, *seq), kind);
            *seq += 1;
        };

        for (i, event) in trace.events().iter().enumerate() {
            push(
                &mut heap,
                &mut payloads,
                &mut seq,
                event.at_secs,
                EventKind::Arrival(i),
            );
        }

        let mut total_cost = 0.0;
        let mut inflations = Vec::with_capacity(trace.len());
        let mut spot_placements = 0usize;
        let mut spot_capacity_misses = 0usize;

        while let Some(Reverse(entry)) = heap.pop() {
            let kind = payloads
                .remove(&(entry.at_nanos, entry.seq))
                .expect("payload for queued event");
            match kind {
                EventKind::Completion(sandbox) => {
                    spot_pool
                        .release(sandbox)
                        .map_err(|e| FreedomError::Faas(e.into()))?;
                }
                EventKind::Arrival(idx) => {
                    let event = trace.events()[idx];
                    let plan = self
                        .plans
                        .get(&event.function)
                        .expect("validated at construction");
                    let best_point = plan.table.lookup(&plan.best_config).ok_or_else(|| {
                        FreedomError::InsufficientData("best config missing in table".into())
                    })?;

                    // Try spot placement first under the idle-aware policy.
                    let mut placed_spot = false;
                    if strategy == PlacementStrategy::IdleAware {
                        let mut wanted_spot = false;
                        for alt in plan.alternates.iter().filter(|a| a.accepted) {
                            wanted_spot = true;
                            let cfg = alt.config;
                            match spot_pool.place(cfg.family(), cfg.cpu_share(), cfg.memory_mib()) {
                                Ok(sandbox) => {
                                    let point = plan.table.lookup(&cfg).ok_or_else(|| {
                                        FreedomError::InsufficientData(
                                            "alternate config missing in table".into(),
                                        )
                                    })?;
                                    let duration = point.exec_time_secs;
                                    total_cost += point.exec_cost_usd * self.config.spot.fraction;
                                    inflations.push(duration / best_point.exec_time_secs);
                                    push(
                                        &mut heap,
                                        &mut payloads,
                                        &mut seq,
                                        event.at_secs + duration,
                                        EventKind::Completion(sandbox),
                                    );
                                    spot_placements += 1;
                                    placed_spot = true;
                                    break;
                                }
                                Err(_) => continue, // that family is full
                            }
                        }
                        if wanted_spot && !placed_spot {
                            spot_capacity_misses += 1;
                        }
                    }

                    if !placed_spot {
                        // On-demand pool: elastic, always fits, list price.
                        total_cost += best_point.exec_cost_usd;
                        inflations.push(1.0);
                        // No completion event needed: elastic capacity.
                    }
                }
            }
        }

        Ok(FleetReport {
            strategy,
            invocations: trace.len(),
            total_cost_usd: total_cost,
            mean_latency_inflation: stats::mean(&inflations).unwrap_or(1.0),
            p95_latency_inflation: stats::quantile(&inflations, 0.95).unwrap_or(1.0),
            spot_placements,
            spot_capacity_misses,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::IdleCapacityPlanner;
    use crate::Autotuner;
    use freedom_faas::collect_ground_truth;
    use freedom_optimizer::{Objective, SearchSpace};
    use freedom_surrogates::SurrogateKind;

    fn make_plans(seed: u64) -> Vec<FunctionPlan> {
        let planner = IdleCapacityPlanner::default();
        let space = SearchSpace::table1();
        FunctionKind::ALL
            .into_iter()
            .map(|function| {
                let input = function.default_input();
                let table =
                    collect_ground_truth(function, &input, space.configs(), 2, seed).unwrap();
                let outcome = Autotuner::new(SurrogateKind::Gp)
                    .tune_offline(function, &input, Objective::ExecutionTime, seed)
                    .unwrap();
                let alternates = planner.plan(&outcome, &table, &space).unwrap();
                FunctionPlan {
                    function,
                    best_config: outcome.recommended().unwrap(),
                    alternates,
                    table,
                }
            })
            .collect()
    }

    #[test]
    fn poisson_trace_shape() {
        let trace = Trace::poisson(100.0, 0.5, 7).unwrap();
        // ~0.5 rps × 6 functions × 100 s = ~300 arrivals.
        assert!((150..=450).contains(&trace.len()), "{}", trace.len());
        assert!(!trace.is_empty());
        // Sorted by time, all within the window.
        for w in trace.events().windows(2) {
            assert!(w[0].at_secs <= w[1].at_secs);
        }
        assert!(trace.events().iter().all(|e| e.at_secs < 100.0));
        // Deterministic per seed.
        let again = Trace::poisson(100.0, 0.5, 7).unwrap();
        assert_eq!(trace.events(), again.events());
        assert!(Trace::poisson(-1.0, 0.5, 7).is_err());
        assert!(Trace::poisson(10.0, 0.0, 7).is_err());
    }

    #[test]
    fn idle_aware_strategy_cuts_cost_within_latency_budget() {
        let plans = make_plans(5);
        let sim = FleetSimulator::new(plans, FleetConfig::default()).unwrap();
        let trace = Trace::poisson(120.0, 0.3, 5).unwrap();

        let baseline = sim.run(&trace, PlacementStrategy::BestConfigOnly).unwrap();
        let idle_aware = sim.run(&trace, PlacementStrategy::IdleAware).unwrap();

        assert_eq!(baseline.invocations, idle_aware.invocations);
        assert_eq!(baseline.spot_placements, 0);
        assert!((baseline.mean_latency_inflation - 1.0).abs() < 1e-12);

        // The idle-aware fleet serves a meaningful share from spot and
        // pays less overall.
        assert!(idle_aware.spot_share() > 0.2, "{}", idle_aware.spot_share());
        assert!(
            idle_aware.total_cost_usd < baseline.total_cost_usd,
            "{} vs {}",
            idle_aware.total_cost_usd,
            baseline.total_cost_usd
        );
        // Latency inflation stays near the θ=10% guardrail on average.
        assert!(
            idle_aware.mean_latency_inflation < 1.25,
            "{}",
            idle_aware.mean_latency_inflation
        );
    }

    #[test]
    fn capacity_pressure_forces_on_demand_fallbacks() {
        let plans = make_plans(5);
        // A starved spot pool under a hot trace must miss sometimes.
        let sim = FleetSimulator::new(
            plans,
            FleetConfig {
                idle_vms_per_family: 1,
                ..FleetConfig::default()
            },
        )
        .unwrap();
        let trace = Trace::poisson(60.0, 2.0, 5).unwrap();
        let report = sim.run(&trace, PlacementStrategy::IdleAware).unwrap();
        assert!(report.spot_placements > 0);
        assert!(
            report.spot_capacity_misses > 0,
            "expected misses under pressure"
        );
        assert_eq!(
            report.spot_placements
                + report.spot_capacity_misses
                + (report.invocations - report.spot_placements - report.spot_capacity_misses),
            report.invocations
        );
    }

    #[test]
    fn missing_plan_is_rejected() {
        let mut plans = make_plans(1);
        plans.pop();
        assert!(matches!(
            FleetSimulator::new(plans, FleetConfig::default()),
            Err(FreedomError::InvalidArgument(_))
        ));
    }
}

//! Trace-driven fleet simulation over a shared spot market (extension of
//! §6.2).
//!
//! Figure 15 scores the planner's per-family decisions one function at a
//! time. A provider, though, operates a *fleet*: invocations arrive
//! concurrently, warm capacity is finite, **shared across every
//! function**, and fluctuates as the provider's own load moves. This
//! module closes that loop with a discrete-event simulation:
//!
//! - an arrival [`Trace`] over `N` functions (see [`TraceSource`] for the
//!   Poisson / bursty / diurnal / heavy-tail generators and the Azure CSV
//!   ingestion);
//! - a provider-wide [spot market](crate::market): per-family warm VM
//!   slots whose supply follows a seeded
//!   [`SupplyProcess`](crate::market::SupplyProcess), an
//!   [`AdmissionPolicy`] gating spot requests on market utilization, and
//!   demand-dependent pricing
//!   ([`SpotPricing::demand_fraction`](freedom_pricing::SpotPricing::demand_fraction));
//! - two [`PlacementStrategy`]s: always-best-config (baseline, pure
//!   on-demand) and idle-aware (try θ-guardrailed alternate families on
//!   the shared market, fall back to on-demand);
//! - a [`FleetReport`] with provider cost, latency inflation, SLO
//!   violations, and the admission ledger (admitted / demoted /
//!   rejected).
//!
//! # Windowed replay and determinism
//!
//! The shared ledger couples every function, so the old per-function
//! sharding no longer decomposes the fleet. Instead the replay is
//! **time-windowed with boundary reconciliation**: the merged event
//! stream splits into fixed epochs ([`Trace::window_bounds`]), windows
//! simulate speculatively in parallel, and the in-flight ledger state
//! crossing each boundary is reconciled — a window whose speculative
//! starting state turns out wrong is re-run with the true carry-over
//! until the chain reaches a fixed point. [`run`](FleetSimulator::run)
//! is the sequential reference engine (one window spanning the whole
//! trace); [`run_windowed`](FleetSimulator::run_windowed) is
//! bit-identical to it for every thread count and window size (guarded
//! by `tests/determinism.rs`). See `crates/core/README.md` for the full
//! contract.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use freedom_faas::PerfTable;
use freedom_linalg::stats;
use freedom_workloads::FunctionKind;

use crate::market::{carry_eq, family_index, InFlight, MarketConfig, SpotLedger, SupplySchedule};
use crate::provider::PlannedPlacement;
use crate::trace::{event_nanos, MAX_WINDOWS};
use crate::{FreedomError, Result};

pub use crate::market::{AdmissionPolicy, SupplyProcess};
pub use crate::trace::{Trace, TraceEvent, TraceSource};

/// How the provider places each invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// Always run the tuned best configuration on the on-demand pool.
    BestConfigOnly,
    /// Request a spot placement on a θ-accepted alternate family from the
    /// shared market; fall back to the on-demand best configuration when
    /// admission is denied or nothing fits.
    IdleAware,
}

impl PlacementStrategy {
    /// Both strategies, baseline first.
    pub const ALL: [PlacementStrategy; 2] = [
        PlacementStrategy::BestConfigOnly,
        PlacementStrategy::IdleAware,
    ];
}

/// Everything the simulator needs to place one function.
#[derive(Debug, Clone)]
pub struct FunctionPlan {
    /// The function this plan serves.
    pub function: FunctionKind,
    /// The tuned best configuration (on-demand fallback).
    pub best_config: freedom_faas::ResourceConfig,
    /// Planner output: per-family predicted-best placements; only
    /// `accepted` ones are used, in the given order.
    pub alternates: Vec<PlannedPlacement>,
    /// Ground truth used to look up execution outcomes.
    pub table: PerfTable,
}

/// Fleet-simulation knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// The shared spot market every function contends for.
    pub market: MarketConfig,
    /// SLO guardrail: an invocation whose latency inflation exceeds
    /// `1 + slo_theta` counts as a violation (paper: θ = 0.10).
    pub slo_theta: f64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            market: MarketConfig::default(),
            slo_theta: 0.10,
        }
    }
}

/// Aggregate outcome of one simulated trace.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Strategy simulated.
    pub strategy: PlacementStrategy,
    /// Invocations served.
    pub invocations: usize,
    /// Total provider cost in USD (spot admissions at the
    /// demand-dependent discount, demotions re-billed at list price,
    /// everything else on-demand).
    pub total_cost_usd: f64,
    /// Mean latency inflation vs. each function's best configuration
    /// (1.0 = every invocation ran at best-config speed).
    pub mean_latency_inflation: f64,
    /// 95th-percentile latency inflation.
    pub p95_latency_inflation: f64,
    /// Invocations admitted to the spot market that ran there to
    /// completion.
    pub spot_admitted: usize,
    /// Spot placements demoted mid-flight when a supply drop withdrew
    /// their VM (live-migrated to on-demand, re-billed at list price).
    pub spot_demoted: usize,
    /// Invocations served on-demand: the baseline strategy, plans with
    /// no accepted alternates, admission-policy denials, and capacity
    /// misses. Every invocation is exactly one of admitted / demoted /
    /// rejected.
    pub rejected: usize,
    /// Rejections where the admission controller denied the request
    /// outright (utilization above the policy ceiling).
    pub policy_rejections: usize,
    /// Rejections where the policy admitted but no warm slot fit the
    /// request.
    pub capacity_misses: usize,
    /// Invocations whose latency inflation exceeded `1 + slo_theta`.
    pub slo_violations: usize,
}

impl FleetReport {
    /// Fraction of invocations that started on the spot market
    /// (admitted + demoted).
    pub fn spot_share(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            (self.spot_admitted + self.spot_demoted) as f64 / self.invocations as f64
        }
    }
}

/// Outcome class of one invocation, recorded per arrival and finalized at
/// reduction (demotions overwrite the admission record).
const CLASS_ON_DEMAND: u8 = 0;
const CLASS_CAPACITY_MISS: u8 = 1;
const CLASS_ADMITTED: u8 = 2;
const CLASS_DEMOTED: u8 = 3;
const CLASS_POLICY_REJECT: u8 = 4;

/// After this many speculative rounds the reconciliation loop falls back
/// to chaining the remaining stale windows sequentially, bounding total
/// work at `O(rounds + windows)` window simulations even when the market
/// is so contended that speculation never converges.
const MAX_SPECULATIVE_ROUNDS: usize = 8;

/// An accepted alternate placement resolved to plain numbers, so the hot
/// loop does no table lookups or config math.
#[derive(Debug, Clone, Copy)]
struct ResolvedAlternate {
    /// Index of the alternate's family in the market.
    family: usize,
    milli_vcpus: u32,
    memory_mib: u32,
    duration_nanos: u64,
    /// Undiscounted list-price execution cost (demand pricing and
    /// demotion re-billing both start from this).
    list_cost_usd: f64,
    inflation: f64,
}

/// One function's plan resolved against its ground-truth table.
#[derive(Debug, Clone)]
struct ResolvedPlan {
    best_cost_usd: f64,
    alternates: Vec<ResolvedAlternate>,
}

/// Everything a window simulation reads: immutable and shared across
/// worker threads.
struct ReplayCtx {
    plans: Vec<ResolvedPlan>,
    schedule: SupplySchedule,
    market: MarketConfig,
}

/// Per-arrival metering of one window, in arrival order, plus demotion
/// adjustments keyed by global arrival index (a demotion may re-bill an
/// invocation admitted in an earlier window). Per-invocation records —
/// rather than window-local accumulators — are what make the final
/// reduction's float-accumulation order independent of the window
/// partition, and therefore bit-identical between the reference and
/// windowed engines.
#[derive(Debug, Clone, Default)]
struct WindowMetering {
    costs: Vec<f64>,
    inflations: Vec<f64>,
    classes: Vec<u8>,
    adjustments: Vec<(u32, f64)>,
}

/// A window's result: metering plus the canonical (heap-drain-ordered)
/// in-flight state crossing into the next window.
struct WindowOutcome {
    metering: WindowMetering,
    carry_out: Vec<InFlight>,
}

/// The fleet simulator: a shared spot market plus elastic on-demand.
pub struct FleetSimulator {
    plans: Vec<FunctionPlan>,
}

impl FleetSimulator {
    /// Creates a simulator serving `plans[i]` for trace function index
    /// `i`.
    ///
    /// The pairing is **positional**: the simulator never inspects
    /// `FunctionPlan::function`, it drives `plans[i]` with the trace's
    /// stream `i`. Each invocation is metered against the plan that
    /// served it, so any ordering is self-consistent — but callers
    /// pairing a fleet with [`Trace::poisson`] (whose six streams are
    /// documented as `FunctionKind::ALL` order) should push plans in
    /// that same order, as the tests and experiments do.
    ///
    /// Returns [`FreedomError::InvalidArgument`] when `plans` is empty.
    pub fn new(plans: Vec<FunctionPlan>) -> Result<Self> {
        if plans.is_empty() {
            return Err(FreedomError::InvalidArgument(
                "fleet needs at least one function plan".into(),
            ));
        }
        Ok(Self { plans })
    }

    /// Replays the trace under a strategy with the **sequential reference
    /// engine**: one simulation window spanning the whole trace, no
    /// speculation, no carry-over.
    pub fn run(
        &self,
        trace: &Trace,
        strategy: PlacementStrategy,
        config: &FleetConfig,
    ) -> Result<FleetReport> {
        let ctx = self.prepare(trace, strategy, config)?;
        let events = trace.events();
        let outcome = simulate_window(&ctx, events, 0, &[], 0, u64::MAX);
        Ok(reduce(
            strategy,
            config.slo_theta,
            events.len(),
            vec![outcome.metering],
        ))
    }

    /// Replays the trace as time windows of `window_secs`, simulated
    /// speculatively in parallel over `threads` workers and reconciled at
    /// the boundaries until the carried ledger state reaches a fixed
    /// point. Bit-identical to [`FleetSimulator::run`] for every thread
    /// count and window size; the windowed machinery runs even at
    /// `threads = 1`, so the determinism guard exercises reconciliation
    /// itself, not a sequential dispatch.
    ///
    /// Speculation starts every window from an empty market; each round
    /// re-runs exactly the windows whose carry-in guess changed, and each
    /// round extends the verified prefix by at least one window, so the
    /// loop terminates. After [`MAX_SPECULATIVE_ROUNDS`] the remaining
    /// stale suffix is chained sequentially instead.
    pub fn run_windowed(
        &self,
        trace: &Trace,
        strategy: PlacementStrategy,
        config: &FleetConfig,
        threads: usize,
        window_secs: f64,
    ) -> Result<FleetReport> {
        if !window_secs.is_finite() || window_secs <= 0.0 {
            return Err(FreedomError::InvalidArgument(format!(
                "window must be positive, got {window_secs}s"
            )));
        }
        let ctx = self.prepare(trace, strategy, config)?;
        let events = trace.events();
        if events.is_empty() {
            return Ok(reduce(strategy, config.slo_theta, 0, Vec::new()));
        }
        let window_nanos = ((window_secs * 1e9) as u64).max(1);
        let horizon = event_nanos(events.last().expect("non-empty").at_secs);
        if horizon / window_nanos >= MAX_WINDOWS {
            return Err(FreedomError::InvalidArgument(format!(
                "{window_secs}s windows split this trace into {} windows (max {MAX_WINDOWS})",
                horizon / window_nanos + 1
            )));
        }
        let bounds = trace.window_bounds(window_nanos);
        let n = bounds.len();
        let span = |k: usize| {
            (
                k as u64 * window_nanos,
                (k as u64 + 1).saturating_mul(window_nanos),
            )
        };
        let run_one = |k: usize, carry: &[InFlight]| {
            let (start, end) = span(k);
            simulate_window(
                &ctx,
                &events[bounds[k].clone()],
                bounds[k].start as u32,
                carry,
                start,
                end,
            )
        };

        let mut outs: Vec<Option<WindowOutcome>> = (0..n).map(|_| None).collect();
        let mut used: Vec<Vec<InFlight>> = vec![Vec::new(); n];
        // Round 0 speculates every window from an empty market.
        let mut pending: Vec<(usize, Vec<InFlight>)> = (0..n).map(|k| (k, Vec::new())).collect();
        let mut rounds = 0usize;
        let mut prev_stale = usize::MAX;
        loop {
            let results = freedom_parallel::par_run(pending.len(), threads, |i| {
                run_one(pending[i].0, &pending[i].1)
            });
            for ((k, carry), out) in pending.drain(..).zip(results) {
                used[k] = carry;
                outs[k] = Some(out);
            }
            // Verification walk: chain the carried states in window
            // order; any window that ran with a different carry-in than
            // the chain now implies is stale and re-runs next round with
            // the chain's current guess.
            let mut next: Vec<(usize, Vec<InFlight>)> = Vec::new();
            let mut chain: Vec<InFlight> = Vec::new();
            for (k, out) in outs.iter().enumerate() {
                if !carry_eq(&used[k], &chain) {
                    next.push((k, chain.clone()));
                }
                chain.clone_from(&out.as_ref().expect("window simulated").carry_out);
            }
            if next.is_empty() {
                break;
            }
            rounds += 1;
            // Speculation pays only while rounds resolve windows in bulk
            // (markets that drain — idle gaps, tight supply — reach the
            // same carried state from many guesses). When a round barely
            // shrinks the stale set, every remaining guess is churning
            // and re-running it is waste: chain the stale suffix
            // sequentially with exact carry-ins instead. The round cap
            // backstops pathological oscillation.
            let stalled = next.len() + 2 >= prev_stale;
            prev_stale = next.len();
            if stalled || rounds > MAX_SPECULATIVE_ROUNDS {
                let first = next[0].0;
                let mut chain = next[0].1.clone();
                for k in first..n {
                    if !carry_eq(&used[k], &chain) {
                        outs[k] = Some(run_one(k, &chain));
                        used[k].clone_from(&chain);
                    }
                    chain.clone_from(&outs[k].as_ref().expect("window simulated").carry_out);
                }
                break;
            }
            pending = next;
        }
        let meterings = outs
            .into_iter()
            .map(|o| o.expect("every window simulated").metering)
            .collect();
        Ok(reduce(strategy, config.slo_theta, events.len(), meterings))
    }

    /// Validates inputs and resolves plans, supply schedule, and market
    /// settings into the immutable replay context.
    fn prepare(
        &self,
        trace: &Trace,
        strategy: PlacementStrategy,
        config: &FleetConfig,
    ) -> Result<ReplayCtx> {
        if trace.n_functions() != self.plans.len() {
            return Err(FreedomError::InvalidArgument(format!(
                "trace has {} function streams but the fleet has {} plans",
                trace.n_functions(),
                self.plans.len()
            )));
        }
        if !config.slo_theta.is_finite() || config.slo_theta < 0.0 {
            return Err(FreedomError::InvalidArgument(format!(
                "SLO theta must be non-negative, got {}",
                config.slo_theta
            )));
        }
        let horizon = trace
            .events()
            .last()
            .map(|e| event_nanos(e.at_secs))
            .unwrap_or(0);
        let schedule = SupplySchedule::generate(&config.market, horizon)?;
        let mut plans = Vec::with_capacity(self.plans.len());
        for plan in &self.plans {
            let best = plan.table.lookup(&plan.best_config).ok_or_else(|| {
                FreedomError::InsufficientData("best config missing in table".into())
            })?;
            let mut alternates = Vec::new();
            if strategy == PlacementStrategy::IdleAware {
                for alt in plan.alternates.iter().filter(|a| a.accepted) {
                    let cfg = alt.config;
                    let point = plan.table.lookup(&cfg).ok_or_else(|| {
                        FreedomError::InsufficientData("alternate config missing in table".into())
                    })?;
                    let family = family_index(cfg.family()).ok_or_else(|| {
                        FreedomError::InvalidArgument(format!(
                            "family {} is not backed by market capacity",
                            cfg.family()
                        ))
                    })?;
                    alternates.push(ResolvedAlternate {
                        family,
                        milli_vcpus: (cfg.cpu_share() * 1000.0).round() as u32,
                        memory_mib: cfg.memory_mib(),
                        duration_nanos: (point.exec_time_secs * 1e9) as u64,
                        list_cost_usd: point.exec_cost_usd,
                        inflation: point.exec_time_secs / best.exec_time_secs,
                    });
                }
            }
            plans.push(ResolvedPlan {
                best_cost_usd: best.exec_cost_usd,
                alternates,
            });
        }
        Ok(ReplayCtx {
            plans,
            schedule,
            market: config.market,
        })
    }
}

/// Simulates one time window `[start_nanos, end_nanos)` of the merged
/// event stream against the shared market, starting from the carried
/// in-flight state. The sequential reference engine is the degenerate
/// call: all events, empty carry, an unbounded window.
fn simulate_window(
    ctx: &ReplayCtx,
    events: &[TraceEvent],
    base_idx: u32,
    carry_in: &[InFlight],
    start_nanos: u64,
    end_nanos: u64,
) -> WindowOutcome {
    let (mut cursor, caps) = ctx.schedule.start_state(start_nanos);
    let mut ledger = SpotLedger::new(&ctx.market, caps);
    let mut heap: BinaryHeap<Reverse<InFlight>> = BinaryHeap::with_capacity(carry_in.len() + 64);
    for entry in carry_in {
        let mut e = *entry;
        e.epoch = ledger.epoch(e.slot);
        ledger.restore(&e);
        heap.push(Reverse(e));
    }
    let mut m = WindowMetering {
        costs: Vec::with_capacity(events.len()),
        inflations: Vec::with_capacity(events.len()),
        classes: Vec::with_capacity(events.len()),
        adjustments: Vec::new(),
    };

    for (i, event) in events.iter().enumerate() {
        let at = event_nanos(event.at_secs);
        advance(
            &mut ledger,
            &mut heap,
            &ctx.schedule,
            &mut cursor,
            &mut m,
            at,
        );

        let plan = &ctx.plans[event.function];
        let (class, cost, inflation) = if plan.alternates.is_empty() {
            (CLASS_ON_DEMAND, plan.best_cost_usd, 1.0)
        } else {
            let utilization = ledger.utilization();
            if !ctx.market.admission.admits(utilization) {
                (CLASS_POLICY_REJECT, plan.best_cost_usd, 1.0)
            } else {
                // Try the θ-accepted alternates in planner order,
                // best-fit within each family's available slots.
                let placed = plan.alternates.iter().find_map(|alt| {
                    ledger
                        .best_fit(alt.family, alt.milli_vcpus, alt.memory_mib)
                        .map(|slot| (alt, slot))
                });
                match placed {
                    Some((alt, slot)) => {
                        ledger.place(slot, alt.milli_vcpus, alt.memory_mib);
                        heap.push(Reverse(InFlight {
                            completion_nanos: at + alt.duration_nanos,
                            slot,
                            idx: base_idx + i as u32,
                            epoch: ledger.epoch(slot),
                            milli: alt.milli_vcpus,
                            mib: alt.memory_mib,
                            list_cost_usd: alt.list_cost_usd,
                        }));
                        let price = ctx.market.spot.demand_fraction(utilization);
                        (CLASS_ADMITTED, alt.list_cost_usd * price, alt.inflation)
                    }
                    None => (CLASS_CAPACITY_MISS, plan.best_cost_usd, 1.0),
                }
            }
        };
        m.costs.push(cost);
        m.inflations.push(inflation);
        m.classes.push(class);
    }

    // Close the window: completions and supply steps strictly before the
    // boundary still belong to it (the reference engine's unbounded
    // window skips this — no steps outlive the last arrival).
    if end_nanos != u64::MAX {
        advance(
            &mut ledger,
            &mut heap,
            &ctx.schedule,
            &mut cursor,
            &mut m,
            end_nanos - 1,
        );
    }

    // Drain: live entries become the canonical carry-over (heap order is
    // the carry ordering), stale entries are demotions discovered late.
    let mut carry_out = Vec::with_capacity(heap.len());
    while let Some(Reverse(e)) = heap.pop() {
        if ledger.is_live(&e) {
            let mut carried = e;
            carried.epoch = 0;
            carry_out.push(carried);
        } else {
            m.adjustments.push((e.idx, e.list_cost_usd));
        }
    }
    WindowOutcome {
        metering: m,
        carry_out,
    }
}

/// Advances the market through every completion and supply step due at or
/// before `to_nanos`, in time order; a completion and a step at the same
/// instant release capacity first (so a finishing invocation is never
/// spuriously demoted by a simultaneous supply drop). Stale completions —
/// entries whose slot was withdrawn since placement — record their
/// demotion instead of releasing capacity.
fn advance(
    ledger: &mut SpotLedger,
    heap: &mut BinaryHeap<Reverse<InFlight>>,
    schedule: &SupplySchedule,
    cursor: &mut usize,
    m: &mut WindowMetering,
    to_nanos: u64,
) {
    loop {
        let next_completion = heap.peek().map(|Reverse(e)| e.completion_nanos);
        let next_step = schedule.steps.get(*cursor).map(|s| s.at_nanos);
        match (next_completion, next_step) {
            (Some(c), s) if c <= to_nanos && s.is_none_or(|s| c <= s) => {
                let Reverse(e) = heap.pop().expect("peeked");
                if ledger.is_live(&e) {
                    ledger.release(&e);
                } else {
                    m.adjustments.push((e.idx, e.list_cost_usd));
                }
            }
            (_, Some(s)) if s <= to_nanos => {
                ledger.apply_step(&schedule.steps[*cursor].caps);
                *cursor += 1;
            }
            _ => break,
        }
    }
}

/// Reduces per-window metering into the fleet report. Per-invocation
/// records are concatenated in window (= global arrival) order, demotion
/// adjustments are applied by global index, and every float accumulation
/// then runs in arrival order — the same sequence regardless of how many
/// windows (or threads) produced the records, which is what makes the
/// windowed engine bit-identical to the reference.
fn reduce(
    strategy: PlacementStrategy,
    slo_theta: f64,
    invocations: usize,
    meterings: Vec<WindowMetering>,
) -> FleetReport {
    let mut costs = Vec::with_capacity(invocations);
    let mut inflations = Vec::with_capacity(invocations);
    let mut classes = Vec::with_capacity(invocations);
    for m in &meterings {
        costs.extend_from_slice(&m.costs);
        inflations.extend_from_slice(&m.inflations);
        classes.extend_from_slice(&m.classes);
    }
    debug_assert_eq!(costs.len(), invocations);
    for m in &meterings {
        for &(idx, list_cost) in &m.adjustments {
            costs[idx as usize] = list_cost;
            classes[idx as usize] = CLASS_DEMOTED;
        }
    }
    let mut total_cost = 0.0;
    for &c in &costs {
        total_cost += c;
    }
    let count = |class: u8| classes.iter().filter(|&&c| c == class).count();
    let threshold = 1.0 + slo_theta;
    FleetReport {
        strategy,
        invocations,
        total_cost_usd: total_cost,
        mean_latency_inflation: stats::mean(&inflations).unwrap_or(1.0),
        p95_latency_inflation: stats::quantile(&inflations, 0.95).unwrap_or(1.0),
        spot_admitted: count(CLASS_ADMITTED),
        spot_demoted: count(CLASS_DEMOTED),
        rejected: count(CLASS_ON_DEMAND) + count(CLASS_CAPACITY_MISS) + count(CLASS_POLICY_REJECT),
        policy_rejections: count(CLASS_POLICY_REJECT),
        capacity_misses: count(CLASS_CAPACITY_MISS),
        slo_violations: inflations.iter().filter(|&&x| x > threshold).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::IdleCapacityPlanner;
    use crate::Autotuner;
    use freedom_faas::collect_ground_truth;
    use freedom_optimizer::{Objective, SearchSpace};
    use freedom_surrogates::SurrogateKind;

    fn make_plans(seed: u64) -> Vec<FunctionPlan> {
        let planner = IdleCapacityPlanner::default();
        let space = SearchSpace::table1();
        FunctionKind::ALL
            .into_iter()
            .map(|function| {
                let input = function.default_input();
                let table =
                    collect_ground_truth(function, &input, space.configs(), 2, seed).unwrap();
                let outcome = Autotuner::new(SurrogateKind::Gp)
                    .tune_offline(function, &input, Objective::ExecutionTime, seed)
                    .unwrap();
                let plan = planner.plan(&outcome, &table, &space).unwrap();
                FunctionPlan {
                    function,
                    best_config: outcome.recommended().unwrap(),
                    alternates: plan.placements,
                    table,
                }
            })
            .collect()
    }

    fn accounting_is_total(report: &FleetReport) {
        assert_eq!(
            report.spot_admitted + report.spot_demoted + report.rejected,
            report.invocations
        );
        assert!(report.policy_rejections + report.capacity_misses <= report.rejected);
    }

    #[test]
    fn poisson_trace_shape() {
        let trace = Trace::poisson(100.0, 0.5, 7).unwrap();
        // ~0.5 rps × 6 functions × 100 s = ~300 arrivals.
        assert!((150..=450).contains(&trace.len()), "{}", trace.len());
        assert!(!trace.is_empty());
        assert_eq!(trace.n_functions(), FunctionKind::ALL.len());
        // Sorted by time, all within the window.
        for w in trace.events().windows(2) {
            assert!(w[0].at_secs <= w[1].at_secs);
        }
        assert!(trace.events().iter().all(|e| e.at_secs < 100.0));
        // Deterministic per seed.
        let again = Trace::poisson(100.0, 0.5, 7).unwrap();
        assert_eq!(trace.events(), again.events());
        assert!(Trace::poisson(-1.0, 0.5, 7).is_err());
        assert!(Trace::poisson(10.0, 0.0, 7).is_err());
    }

    #[test]
    fn idle_aware_strategy_cuts_cost_within_latency_budget() {
        let plans = make_plans(5);
        let sim = FleetSimulator::new(plans).unwrap();
        let config = FleetConfig::default();
        let trace = Trace::poisson(120.0, 0.3, 5).unwrap();

        let baseline = sim
            .run(&trace, PlacementStrategy::BestConfigOnly, &config)
            .unwrap();
        let idle_aware = sim
            .run(&trace, PlacementStrategy::IdleAware, &config)
            .unwrap();

        assert_eq!(baseline.invocations, idle_aware.invocations);
        assert_eq!(baseline.spot_admitted, 0);
        assert_eq!(baseline.rejected, baseline.invocations);
        assert!((baseline.mean_latency_inflation - 1.0).abs() < 1e-12);
        accounting_is_total(&baseline);
        accounting_is_total(&idle_aware);

        // The idle-aware fleet serves a meaningful share from spot and
        // pays less overall: the default market is loose, so demand
        // pricing stays near the full discount.
        assert!(idle_aware.spot_share() > 0.2, "{}", idle_aware.spot_share());
        assert!(
            idle_aware.total_cost_usd < baseline.total_cost_usd,
            "{} vs {}",
            idle_aware.total_cost_usd,
            baseline.total_cost_usd
        );
        // Latency inflation stays near the θ=10% guardrail on average.
        assert!(
            idle_aware.mean_latency_inflation < 1.25,
            "{}",
            idle_aware.mean_latency_inflation
        );
    }

    #[test]
    fn contended_market_forces_on_demand_fallbacks() {
        let plans = make_plans(5);
        // A starved shared market under a hot trace must miss sometimes:
        // one VM per family for the whole fleet.
        let sim = FleetSimulator::new(plans).unwrap();
        let config = FleetConfig {
            market: MarketConfig {
                vms_per_family: 1,
                ..MarketConfig::default()
            },
            ..FleetConfig::default()
        };
        let trace = TraceSource::Poisson {
            rps_per_function: 8.0,
        }
        .generate(FunctionKind::ALL.len(), 60.0, 5)
        .unwrap();
        let report = sim
            .run(&trace, PlacementStrategy::IdleAware, &config)
            .unwrap();
        accounting_is_total(&report);
        assert!(report.spot_admitted > 0);
        assert!(report.capacity_misses > 0, "expected misses under pressure");
    }

    #[test]
    fn supply_drops_demote_and_rebill() {
        let plans = make_plans(5);
        let sim = FleetSimulator::new(plans).unwrap();
        let volatile = FleetConfig {
            market: MarketConfig {
                vms_per_family: 2,
                supply: SupplyProcess {
                    step_secs: 2.0,
                    min_fraction: 0.0,
                    seed: 3,
                },
                ..MarketConfig::default()
            },
            ..FleetConfig::default()
        };
        let steady = FleetConfig::default();
        let trace = TraceSource::Poisson {
            rps_per_function: 4.0,
        }
        .generate(FunctionKind::ALL.len(), 60.0, 5)
        .unwrap();
        let volatile_report = sim
            .run(&trace, PlacementStrategy::IdleAware, &volatile)
            .unwrap();
        let steady_report = sim
            .run(&trace, PlacementStrategy::IdleAware, &steady)
            .unwrap();
        accounting_is_total(&volatile_report);
        assert!(
            volatile_report.spot_demoted > 0,
            "an all-or-nothing supply must reclaim in-flight work"
        );
        assert_eq!(steady_report.spot_demoted, 0, "steady supply never demotes");
        // Demotions re-bill at list price, so the volatile market saves
        // less per spot placement than the steady one.
        assert!(volatile_report.total_cost_usd > 0.0);
    }

    #[test]
    fn admission_policy_gates_the_market() {
        let plans = make_plans(5);
        let sim = FleetSimulator::new(plans).unwrap();
        let trace = Trace::poisson(60.0, 1.0, 9).unwrap();
        // A zero-headroom policy rejects every request before it touches
        // the ledger.
        let closed = FleetConfig {
            market: MarketConfig {
                admission: AdmissionPolicy::Headroom {
                    max_utilization: 0.0,
                },
                ..MarketConfig::default()
            },
            ..FleetConfig::default()
        };
        let report = sim
            .run(&trace, PlacementStrategy::IdleAware, &closed)
            .unwrap();
        accounting_is_total(&report);
        assert_eq!(report.spot_admitted + report.spot_demoted, 0);
        assert_eq!(report.policy_rejections, report.invocations);
        // Greedy on the same trace admits plenty.
        let open = sim
            .run(
                &trace,
                PlacementStrategy::IdleAware,
                &FleetConfig::default(),
            )
            .unwrap();
        assert!(open.spot_admitted > 0);
        assert_eq!(open.policy_rejections, 0);
    }

    #[test]
    fn windowed_replay_is_bit_identical_to_sequential() {
        let plans = make_plans(5);
        let sim = FleetSimulator::new(plans).unwrap();
        // A fluctuating, tightish market exercises demotion and
        // reconciliation, not just happy-path speculation.
        let config = FleetConfig {
            market: MarketConfig {
                vms_per_family: 2,
                supply: SupplyProcess {
                    step_secs: 7.0,
                    min_fraction: 0.3,
                    seed: 11,
                },
                admission: AdmissionPolicy::Headroom {
                    max_utilization: 0.9,
                },
                ..MarketConfig::default()
            },
            ..FleetConfig::default()
        };
        let trace = TraceSource::Bursty {
            calm_rps: 0.2,
            burst_rps: 3.0,
            mean_calm_secs: 30.0,
            mean_burst_secs: 6.0,
        }
        .generate(FunctionKind::ALL.len(), 120.0, 5)
        .unwrap();
        for strategy in PlacementStrategy::ALL {
            let seq = sim.run(&trace, strategy, &config).unwrap();
            for threads in [1, 2, 8] {
                for window_secs in [3.0, 17.0, 120.0] {
                    let windowed = sim
                        .run_windowed(&trace, strategy, &config, threads, window_secs)
                        .unwrap();
                    assert_eq!(
                        format!("{seq:?}"),
                        format!("{windowed:?}"),
                        "{strategy:?} diverged at {threads} threads, {window_secs}s windows"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_fleet_and_invalid_inputs_are_rejected() {
        assert!(matches!(
            FleetSimulator::new(Vec::new()),
            Err(FreedomError::InvalidArgument(_))
        ));
        let plans = make_plans(1);
        let sim = FleetSimulator::new(plans).unwrap();
        // A 4-function trace cannot drive a 6-function fleet.
        let trace = TraceSource::Poisson {
            rps_per_function: 0.5,
        }
        .generate(4, 30.0, 1)
        .unwrap();
        assert!(matches!(
            sim.run(
                &trace,
                PlacementStrategy::IdleAware,
                &FleetConfig::default()
            ),
            Err(FreedomError::InvalidArgument(_))
        ));
        let ok = Trace::poisson(10.0, 0.5, 1).unwrap();
        // Bad window, SLO theta, and market parameters.
        assert!(sim
            .run_windowed(
                &ok,
                PlacementStrategy::IdleAware,
                &FleetConfig::default(),
                2,
                0.0
            )
            .is_err());
        // A window absurdly small for the trace span is rejected before
        // any per-window bookkeeping is allocated.
        assert!(sim
            .run_windowed(
                &ok,
                PlacementStrategy::IdleAware,
                &FleetConfig::default(),
                2,
                1e-9
            )
            .is_err());
        assert!(sim
            .run(
                &ok,
                PlacementStrategy::IdleAware,
                &FleetConfig {
                    slo_theta: f64::NAN,
                    ..FleetConfig::default()
                }
            )
            .is_err());
        assert!(sim
            .run(
                &ok,
                PlacementStrategy::IdleAware,
                &FleetConfig {
                    market: MarketConfig {
                        vms_per_family: 0,
                        ..MarketConfig::default()
                    },
                    ..FleetConfig::default()
                }
            )
            .is_err());
    }
}

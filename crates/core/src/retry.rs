//! Invocation-level retry semantics for the fleet replay.
//!
//! When a spot attempt hits a transient fault
//! ([`crate::faults::TransientFault`]), the platform does not surface the
//! failure — it re-executes the invocation. This module is the *policy*
//! half of that machinery: [`RetryPolicy`] names the backoff curve,
//! attempt cap, per-family retry budget, hedging delay, and brownout
//! thresholds as plain data, and [`RetryBudget`] / [`PendingRetry`] are
//! the carried state the replay engines thread through the windowed
//! carry. Everything here is a pure function of `(policy, invocation
//! identity, simulated time)`:
//!
//! - **Backoff** is exponential with *seeded* jitter: the delay before
//!   attempt `k` is `base * 2^(k-2)` capped at `backoff_cap_secs`, then
//!   scaled by a deterministic per-`(seed, idx, attempt)` hash draw —
//!   never a wall-clock or shared-RNG quantity, so the windowed engines
//!   schedule the identical retry instant.
//! - **Budgets** are token buckets *in simulated time*: each instance
//!   family refills at `budget_per_sec` up to `budget_burst`, and every
//!   retry admission spends one token. Refill is lazy fixed-point
//!   integer math on the bucket's own last-refill timestamp, so the
//!   token sequence depends only on the (deterministic) sequence of
//!   spend instants — not on window boundaries.
//! - **Hedging** re-issues a straggler's work after `hedge_delay_secs`
//!   and lets the copies race; the winner defines the invocation's
//!   latency. Hedges spend no retry budget and never fault.
//! - **Brownout** is the graceful-degradation mode: when the per-epoch
//!   retry pressure (retried / admitted) crosses
//!   [`BrownoutConfig::enter_pressure`], the control plane sheds retries
//!   before fresh arrivals and tightens the admission ceiling, exiting
//!   only when pressure falls below the (lower) `exit_pressure` —
//!   hysteresis, so the mode cannot flap every epoch.
//!
//! The engine half — how retries re-enter admission as first-class
//! simulated-time events ordered `completion < step < notice < retry <
//! tick` — lives in [`crate::fleet`]; the contract is documented in
//! `crates/core/README.md` ("The retry contract").

use crate::faults::{mix, unit};
use crate::{FreedomError, Result};

/// Seed salt for the backoff-jitter stream, distinct from the
/// transient-fault salt so jitter never correlates with fault draws.
pub(crate) const JITTER_SALT: u64 = 0xd6e8_feb8_6659_fd93;

/// Fixed-point scale for budget tokens: one retry costs `MICRO_TOKEN`.
pub(crate) const MICRO_TOKEN: u64 = 1_000_000;

/// A retry event re-entering admission (kind 0).
pub(crate) const KIND_RETRY: u8 = 0;
/// A hedged re-issue racing a straggler (kind 1).
pub(crate) const KIND_HEDGE: u8 = 1;

/// Brownout thresholds: the hysteresis band on retry pressure plus the
/// tightened utilization ceiling applied to fresh arrivals while the
/// mode is active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrownoutConfig {
    /// Enter brownout when `retried / max(spot_admitted, 1)` over the
    /// last control epoch reaches this value.
    pub enter_pressure: f64,
    /// Exit brownout when the pressure falls strictly below this value.
    /// Must be `< enter_pressure` — the gap is the hysteresis band.
    pub exit_pressure: f64,
    /// While browned out, fresh arrivals are policy-rejected whenever
    /// market utilization is at or above this ceiling (in `[0, 1]`),
    /// on top of whatever the active admission policy decides.
    pub utilization_ceiling: f64,
}

impl BrownoutConfig {
    fn validate(&self) -> Result<()> {
        for (name, v) in [
            ("enter_pressure", self.enter_pressure),
            ("exit_pressure", self.exit_pressure),
            ("utilization_ceiling", self.utilization_ceiling),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(FreedomError::InvalidArgument(format!(
                    "BrownoutConfig.{name} must be finite and >= 0, got {v}"
                )));
            }
        }
        if self.exit_pressure >= self.enter_pressure {
            return Err(FreedomError::InvalidArgument(format!(
                "BrownoutConfig.exit_pressure ({}) must be < enter_pressure ({}) for hysteresis",
                self.exit_pressure, self.enter_pressure
            )));
        }
        if self.utilization_ceiling > 1.0 {
            return Err(FreedomError::InvalidArgument(
                "BrownoutConfig.utilization_ceiling must be in [0, 1]".into(),
            ));
        }
        Ok(())
    }
}

/// The retry policy: pure configuration naming how the platform absorbs
/// transient faults. Attempts are 1-based and capped at `max_attempts`
/// *total executions* (the first attempt included); when the cap or the
/// family budget is exhausted the invocation is dead-lettered instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total execution attempts allowed per invocation (>= 1; 1 means
    /// transient failures dead-letter immediately). At most 16.
    pub max_attempts: u8,
    /// Base backoff before the first retry, seconds.
    pub backoff_base_secs: f64,
    /// Ceiling on the exponential backoff, seconds.
    pub backoff_cap_secs: f64,
    /// Jitter width in `[0, 1]`: the delay is scaled by a seeded draw
    /// from `[1 - jitter_frac, 1]`, so 0 disables jitter.
    pub jitter_frac: f64,
    /// Seed for the jitter stream.
    pub seed: u64,
    /// Token-bucket refill rate per instance family, retries per
    /// simulated second.
    pub budget_per_sec: f64,
    /// Token-bucket capacity per family (burst), in retries.
    pub budget_burst: f64,
    /// Delay before hedging a straggler, seconds; 0 disables hedging.
    pub hedge_delay_secs: f64,
    /// Brownout thresholds; `None` disables the mode.
    pub brownout: Option<BrownoutConfig>,
}

impl RetryPolicy {
    /// A conservative default: 3 attempts, 1 s base backoff capped at
    /// 30 s with 50% jitter, 5 retries/s/family refill with a burst of
    /// 20, hedging and brownout off.
    pub const DEFAULT: RetryPolicy = RetryPolicy {
        max_attempts: 3,
        backoff_base_secs: 1.0,
        backoff_cap_secs: 30.0,
        jitter_frac: 0.5,
        seed: 0x5e7_21e5,
        budget_per_sec: 5.0,
        budget_burst: 20.0,
        hedge_delay_secs: 0.0,
        brownout: None,
    };

    /// Validates every field.
    pub fn validate(&self) -> Result<()> {
        if self.max_attempts == 0 || self.max_attempts > 16 {
            return Err(FreedomError::InvalidArgument(format!(
                "RetryPolicy.max_attempts must be in [1, 16], got {}",
                self.max_attempts
            )));
        }
        let nonneg = [
            ("backoff_base_secs", self.backoff_base_secs),
            ("backoff_cap_secs", self.backoff_cap_secs),
            ("budget_per_sec", self.budget_per_sec),
            ("budget_burst", self.budget_burst),
            ("hedge_delay_secs", self.hedge_delay_secs),
        ];
        for (name, v) in nonneg {
            if !v.is_finite() || v < 0.0 {
                return Err(FreedomError::InvalidArgument(format!(
                    "RetryPolicy.{name} must be finite and >= 0, got {v}"
                )));
            }
        }
        if !self.jitter_frac.is_finite() || !(0.0..=1.0).contains(&self.jitter_frac) {
            return Err(FreedomError::InvalidArgument(format!(
                "RetryPolicy.jitter_frac must be in [0, 1], got {}",
                self.jitter_frac
            )));
        }
        if let Some(b) = &self.brownout {
            b.validate()?;
        }
        Ok(())
    }

    /// Backoff delay (nanoseconds, >= 1) before `attempt` executes.
    ///
    /// `attempt` is the attempt about to be scheduled (so >= 2); the
    /// exponential ordinal is `attempt - 2`. Jitter is a stateless hash
    /// of `(seed, idx, attempt)` scaling the delay into
    /// `[delay * (1 - jitter_frac), delay]`.
    pub fn backoff_nanos(&self, idx: u32, attempt: u8) -> u64 {
        let ordinal = u32::from(attempt.saturating_sub(2));
        let exp = if ordinal >= 63 {
            f64::MAX
        } else {
            (1u64 << ordinal) as f64
        };
        let raw = (self.backoff_base_secs * exp).min(self.backoff_cap_secs);
        let mut h = mix(self.seed ^ JITTER_SALT);
        h = mix(h ^ u64::from(idx));
        h = mix(h ^ u64::from(attempt));
        let scale = 1.0 - self.jitter_frac * unit(h);
        ((raw * scale * 1e9) as u64).max(1)
    }

    /// Refill rate in micro-tokens per simulated second.
    pub(crate) fn rate_micro(&self) -> u64 {
        (self.budget_per_sec * MICRO_TOKEN as f64) as u64
    }

    /// Bucket capacity in micro-tokens.
    pub(crate) fn burst_micro(&self) -> u64 {
        (self.budget_burst * MICRO_TOKEN as f64) as u64
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::DEFAULT
    }
}

/// One pending retry (or hedge) event, scheduled in simulated time.
///
/// These are first-class events in the replay: within one instant the
/// engines order event classes `completion < step < notice < retry <
/// tick`, and pending entries that outlive a window are carried — sorted
/// by [`PendingRetry::key`] — into the next one, so windowed replay
/// fires them bit-identically to the sequential walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PendingRetry {
    /// Fire instant, simulated nanoseconds.
    pub at_nanos: u64,
    /// Global arrival index of the invocation being re-issued.
    pub idx: u32,
    /// Function index (admission needs the plan row).
    pub function: u32,
    /// Attempt number this event will start (1-based; >= 2 for retries).
    pub attempt: u8,
    /// [`KIND_RETRY`] or [`KIND_HEDGE`].
    pub kind: u8,
    /// Instance family whose budget the retry spends (the family the
    /// faulted attempt was placed on).
    pub family: u8,
    /// Original arrival instant, for end-to-end inflation accounting.
    pub arrival_nanos: u64,
    /// For hedges: the straggler's completion instant the hedge races.
    pub orig_completion_nanos: u64,
}

impl PendingRetry {
    /// Total order used by the event heap and the carried-state sort.
    pub fn key(&self) -> (u64, u32, u8, u8) {
        (self.at_nanos, self.idx, self.attempt, self.kind)
    }
}

impl Ord for PendingRetry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

impl PartialOrd for PendingRetry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-family retry token buckets in simulated time.
///
/// Mutable state carried across windows: tokens refill lazily on access
/// from each bucket's own `last_refill` timestamp using integer
/// micro-token arithmetic, so the balance sequence is a pure function of
/// the spend instants regardless of window partitioning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct RetryBudget {
    /// Current balance per family, micro-tokens.
    pub tokens: Vec<u64>,
    /// Simulated instant each bucket last refilled.
    pub last_refill: Vec<u64>,
}

impl RetryBudget {
    /// Full buckets at t=0.
    pub fn new(policy: &RetryPolicy, n_families: usize) -> RetryBudget {
        RetryBudget {
            tokens: vec![policy.burst_micro(); n_families],
            last_refill: vec![0; n_families],
        }
    }

    /// Refills `family` up to `now_nanos` and spends one token if the
    /// balance covers it. Returns whether the retry may proceed.
    pub fn try_spend(&mut self, family: usize, now_nanos: u64, policy: &RetryPolicy) -> bool {
        let burst = policy.burst_micro();
        let elapsed = now_nanos.saturating_sub(self.last_refill[family]);
        let refill = (u128::from(policy.rate_micro()) * u128::from(elapsed) / 1_000_000_000) as u64;
        self.tokens[family] = self.tokens[family].saturating_add(refill).min(burst);
        self.last_refill[family] = now_nanos;
        if self.tokens[family] >= MICRO_TOKEN {
            self.tokens[family] -= MICRO_TOKEN;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_caps_and_jitters_deterministically() {
        let p = RetryPolicy {
            jitter_frac: 0.0,
            ..RetryPolicy::DEFAULT
        };
        assert_eq!(p.backoff_nanos(0, 2), 1_000_000_000);
        assert_eq!(p.backoff_nanos(0, 3), 2_000_000_000);
        assert_eq!(p.backoff_nanos(0, 4), 4_000_000_000);
        assert_eq!(p.backoff_nanos(0, 9), 30_000_000_000, "capped at 30s");

        let j = RetryPolicy {
            jitter_frac: 0.5,
            ..RetryPolicy::DEFAULT
        };
        for idx in 0..200u32 {
            let d = j.backoff_nanos(idx, 2);
            assert_eq!(d, j.backoff_nanos(idx, 2), "jitter must be seeded");
            assert!((500_000_000..=1_000_000_000).contains(&d), "got {d}");
        }
        let spread = (0..200u32).any(|i| j.backoff_nanos(i, 2) != j.backoff_nanos(i + 200, 2));
        assert!(spread, "jitter should vary across invocations");
    }

    #[test]
    fn budget_refills_in_simulated_time_and_rejects_when_dry() {
        let p = RetryPolicy {
            budget_per_sec: 2.0,
            budget_burst: 2.0,
            ..RetryPolicy::DEFAULT
        };
        let mut b = RetryBudget::new(&p, 2);
        // Burst of 2 at t=0, then dry.
        assert!(b.try_spend(0, 0, &p));
        assert!(b.try_spend(0, 0, &p));
        assert!(!b.try_spend(0, 0, &p));
        // Families are independent.
        assert!(b.try_spend(1, 0, &p));
        // Half a second refills one token at 2/s.
        assert!(b.try_spend(0, 500_000_000, &p));
        assert!(!b.try_spend(0, 500_000_000, &p));
        // A long idle stretch caps at the burst, not the elapsed time.
        assert!(b.try_spend(0, 3_600_000_000_000, &p));
        assert!(b.try_spend(0, 3_600_000_000_000, &p));
        assert!(!b.try_spend(0, 3_600_000_000_000, &p));
        // The whole walk is reproducible.
        let mut c = RetryBudget::new(&p, 2);
        let plays: Vec<bool> = [0u64, 0, 0, 500_000_000, 3_600_000_000_000]
            .iter()
            .map(|&t| c.try_spend(0, t, &p))
            .collect();
        assert_eq!(plays, vec![true, true, false, true, true]);
    }

    #[test]
    fn pending_retries_order_by_time_then_identity() {
        let base = PendingRetry {
            at_nanos: 10,
            idx: 5,
            function: 1,
            attempt: 2,
            kind: KIND_RETRY,
            family: 0,
            arrival_nanos: 0,
            orig_completion_nanos: 0,
        };
        let later = PendingRetry {
            at_nanos: 11,
            ..base
        };
        let hedge = PendingRetry {
            kind: KIND_HEDGE,
            ..base
        };
        assert!(base < later);
        assert!(base < hedge, "retry fires before hedge at one instant");
        let mut v = vec![later, hedge, base];
        v.sort();
        assert_eq!(v, vec![base, hedge, later]);
    }

    #[test]
    fn invalid_policies_are_rejected() {
        assert!(RetryPolicy::DEFAULT.validate().is_ok());
        let mut p = RetryPolicy::DEFAULT;
        p.max_attempts = 0;
        assert!(p.validate().is_err());
        let mut p = RetryPolicy::DEFAULT;
        p.max_attempts = 17;
        assert!(p.validate().is_err());
        let mut p = RetryPolicy::DEFAULT;
        p.jitter_frac = 1.5;
        assert!(p.validate().is_err());
        let mut p = RetryPolicy::DEFAULT;
        p.backoff_base_secs = -1.0;
        assert!(p.validate().is_err());
        let mut p = RetryPolicy::DEFAULT;
        p.brownout = Some(BrownoutConfig {
            enter_pressure: 0.3,
            exit_pressure: 0.3,
            utilization_ceiling: 0.5,
        });
        assert!(p.validate().is_err(), "no hysteresis band");
        p.brownout = Some(BrownoutConfig {
            enter_pressure: 0.5,
            exit_pressure: 0.2,
            utilization_ceiling: 0.6,
        });
        assert!(p.validate().is_ok());
    }
}

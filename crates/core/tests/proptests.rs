//! Property-based tests for the framework-level invariants.

use freedom::fleet::{
    AdmissionPolicy, BrownoutConfig, FaultPlan, FleetConfig, FleetSimulator, FunctionPlan,
    PlacementStrategy, RetryPolicy, SupplyProcess, Trace, TraceSource, ZoneConfig,
};
use freedom::interfaces::hierarchical_ideal;
use freedom::market::MarketConfig;
use freedom::provider::{alternative_families_within, PlannedPlacement};
use freedom::strategies::AllocationStrategy;
use freedom::stream::StreamTrace;
use freedom_faas::{collect_ground_truth, PerfTable};
use freedom_optimizer::{Objective, SearchSpace};
use freedom_workloads::FunctionKind;
use proptest::prelude::*;

fn any_kind() -> impl Strategy<Value = FunctionKind> {
    prop::sample::select(FunctionKind::ALL.to_vec())
}

fn table_for(kind: FunctionKind, seed: u64) -> PerfTable {
    collect_ground_truth(
        kind,
        &kind.default_input(),
        SearchSpace::table1().configs(),
        1,
        seed,
    )
    .expect("sweep succeeds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn strategy_spaces_nest_inside_decoupled(_x in 0u8..1) {
        let decoupled = AllocationStrategy::Decoupled.search_space();
        for strategy in [
            AllocationStrategy::FixedCpu,
            AllocationStrategy::PropCpu,
            AllocationStrategy::DecoupledM5,
        ] {
            for config in strategy.search_space().configs() {
                prop_assert!(decoupled.contains(config), "{strategy}: {config}");
            }
        }
    }

    #[test]
    fn alternative_counts_are_monotone_in_theta(
        kind in any_kind(),
        seed in 0u64..50,
        lo_pct in 1u32..15,
        delta_pct in 1u32..20,
    ) {
        let table = table_for(kind, seed);
        let lo = lo_pct as f64 / 100.0;
        let hi = lo + delta_pct as f64 / 100.0;
        for objective in [Objective::ExecutionTime, Objective::ExecutionCost] {
            let at_lo = alternative_families_within(&table, objective, lo).unwrap();
            let at_hi = alternative_families_within(&table, objective, hi).unwrap();
            prop_assert!(at_lo <= at_hi, "{kind}/{objective}: {at_lo} > {at_hi}");
            prop_assert!(at_hi <= 5);
        }
    }

    #[test]
    fn hierarchical_ideal_respects_any_budget(
        kind in any_kind(),
        seed in 0u64..50,
        theta_pct in 0u32..100,
    ) {
        let table = table_for(kind, seed);
        let theta = theta_pct as f64 / 100.0;
        for primary in [Objective::ExecutionTime, Objective::ExecutionCost] {
            let Some(ideal) = hierarchical_ideal(&table, primary, theta) else {
                // Only possible when nothing is feasible; our tables always
                // have feasible points.
                prop_assert!(false, "no ideal for {kind}");
                return Ok(());
            };
            let (best_primary, ideal_primary, best_secondary, ideal_secondary) = match primary {
                Objective::ExecutionTime => (
                    table.best_by_time().unwrap().exec_time_secs,
                    ideal.predicted_time_secs,
                    table.best_by_time().unwrap().exec_cost_usd,
                    ideal.predicted_cost_usd,
                ),
                _ => (
                    table.best_by_cost().unwrap().exec_cost_usd,
                    ideal.predicted_cost_usd,
                    table.best_by_cost().unwrap().exec_time_secs,
                    ideal.predicted_time_secs,
                ),
            };
            // Budget respected...
            prop_assert!(ideal_primary <= best_primary * (1.0 + theta) + 1e-12);
            // ...and the trade never worsens the secondary vs the
            // primary-optimal configuration.
            prop_assert!(ideal_secondary <= best_secondary + 1e-12);
        }
    }

    #[test]
    fn bigger_budgets_never_hurt_the_ideal_secondary(
        kind in any_kind(),
        seed in 0u64..50,
        theta_pct in 0u32..50,
    ) {
        let table = table_for(kind, seed);
        let lo = theta_pct as f64 / 100.0;
        let hi = lo + 0.25;
        let a = hierarchical_ideal(&table, Objective::ExecutionTime, lo).unwrap();
        let b = hierarchical_ideal(&table, Objective::ExecutionTime, hi).unwrap();
        prop_assert!(b.predicted_cost_usd <= a.predicted_cost_usd + 1e-15);
    }
}

/// Checks one generated trace: sorted events, all inside the window,
/// thread-count-independent, and the merged view exactly equal to a
/// stable sort of the flattened per-function streams.
fn check_trace_source(
    source: TraceSource,
    n: usize,
    duration: f64,
    seed: u64,
) -> Result<(), proptest::TestCaseError> {
    let a = source
        .generate(n, duration, seed)
        .expect("valid parameters");
    let b = source
        .generate_sharded(n, duration, seed, 8)
        .expect("valid parameters");
    prop_assert_eq!(a.events(), b.events(), "threads=1 vs threads=8 diverged");
    prop_assert_eq!(a.n_functions(), n);
    for w in a.events().windows(2) {
        prop_assert!(
            w[0].at_secs < w[1].at_secs
                || (w[0].at_secs == w[1].at_secs && w[0].function <= w[1].function),
            "merge is unsorted or unstable"
        );
    }
    prop_assert!(a
        .events()
        .iter()
        .all(|e| e.at_secs > 0.0 && e.at_secs < duration));
    // The merged view must be exactly the stable sort of the streams.
    let mut naive: Vec<(f64, usize)> = (0..n)
        .flat_map(|f| a.stream(f).iter().map(move |&t| (t, f)))
        .collect();
    naive.sort_by(|p, q| p.0.total_cmp(&q.0).then(p.1.cmp(&q.1)));
    prop_assert_eq!(naive.len(), a.len());
    for (e, (t, f)) in a.events().iter().zip(&naive) {
        prop_assert_eq!(e.at_secs.to_bits(), t.to_bits());
        prop_assert_eq!(e.function, *f);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn poisson_merge_is_sorted_stable_and_thread_independent(
        rate in 0.1f64..3.0,
        duration in 10.0f64..120.0,
        seed in 0u64..1_000_000,
    ) {
        check_trace_source(
            TraceSource::Poisson { rps_per_function: rate },
            6,
            duration,
            seed,
        )?;
        // The compat constructor goes through the same streaming merge.
        let compat = Trace::poisson(duration, rate, seed).expect("valid parameters");
        let direct = TraceSource::Poisson { rps_per_function: rate }
            .generate(6, duration, seed)
            .expect("valid parameters");
        prop_assert_eq!(compat.events(), direct.events());
    }

    #[test]
    fn bursty_merge_is_sorted_stable_and_thread_independent(
        calm in 0.0f64..0.5,
        burst in 1.0f64..6.0,
        seed in 0u64..1_000_000,
    ) {
        check_trace_source(
            TraceSource::Bursty {
                calm_rps: calm,
                burst_rps: burst,
                mean_calm_secs: 30.0,
                mean_burst_secs: 6.0,
            },
            5,
            90.0,
            seed,
        )?;
    }

    #[test]
    fn diurnal_merge_is_sorted_stable_and_thread_independent(
        mean in 0.2f64..2.0,
        ratio in 1.0f64..8.0,
        seed in 0u64..1_000_000,
    ) {
        check_trace_source(
            TraceSource::Diurnal {
                mean_rps: mean,
                peak_to_trough: ratio,
                period_secs: 120.0,
            },
            5,
            120.0,
            seed,
        )?;
    }

    #[test]
    fn heavy_tail_merge_is_sorted_stable_and_thread_independent(
        mean in 0.2f64..2.0,
        alpha in 1.1f64..3.0,
        seed in 0u64..1_000_000,
    ) {
        check_trace_source(
            TraceSource::HeavyTail { mean_rps: mean, alpha },
            8,
            90.0,
            seed,
        )?;
    }
}

/// Integer nanoseconds of an arrival, mirroring the fleet engine's
/// ordering key.
fn nanos(at_secs: f64) -> u64 {
    (at_secs * 1e9) as u64
}

/// The streaming pipeline's ground truth: a lazily-opened stream must
/// yield exactly the materialized trace's events (same bits, same
/// order), and the checkpoint-per-epoch re-seek the windowed replay
/// performs must partition the stream exactly like
/// `Trace::window_bounds` partitions the merged view.
fn check_stream_matches_materialized(
    lazy: &StreamTrace,
    window_nanos: u64,
) -> Result<(), proptest::TestCaseError> {
    let full = lazy.materialize().expect("materialize");
    prop_assert_eq!(lazy.n_functions(), full.n_functions());
    prop_assert_eq!(lazy.len(), full.len());
    let mut stream = lazy.open().expect("open");
    for (i, expect) in full.events().iter().enumerate() {
        let got = stream.next().expect("stream ended early");
        prop_assert_eq!(
            got.at_secs.to_bits(),
            expect.at_secs.to_bits(),
            "event {}",
            i
        );
        prop_assert_eq!(got.function, expect.function, "event {}", i);
    }
    prop_assert!(stream.next().is_none(), "stream yielded extra events");
    if full.is_empty() {
        return Ok(());
    }
    prop_assert_eq!(
        lazy.horizon_nanos(),
        nanos(full.events().last().unwrap().at_secs)
    );
    // Epoch partition: walk the stream once, checkpointing at each
    // window boundary (the engine's pre-pass); re-opening checkpoint k
    // must replay exactly the `window_bounds` slice of window k.
    let bounds = full.window_bounds(window_nanos);
    let mut walk = lazy.open().expect("open");
    for (k, range) in bounds.iter().enumerate() {
        let cp = walk.checkpoint();
        let end = (k as u64 + 1).saturating_mul(window_nanos);
        let mut count = 0usize;
        while walk.peek().is_some_and(|e| nanos(e.at_secs) < end) {
            walk.next();
            count += 1;
        }
        prop_assert_eq!(count, range.len(), "window {} miscounted", k);
        let mut window = lazy.open_at(&cp).expect("re-seek");
        for expect in &full.events()[range.clone()] {
            let got = window.next().expect("window ended early");
            prop_assert_eq!(got.at_secs.to_bits(), expect.at_secs.to_bits());
            prop_assert_eq!(got.function, expect.function);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Streaming ≡ materialize-then-sort for every generator family
    /// under random parameters, fleet sizes, seeds, and window sizes.
    #[test]
    fn streaming_generators_match_materialized(
        rate in 0.1f64..2.0,
        calm in 0.0f64..0.4,
        burst in 1.0f64..5.0,
        ratio in 1.0f64..6.0,
        alpha in 1.1f64..3.0,
        n in 1usize..12,
        seed in 0u64..1_000_000,
        window_secs in 1u64..40,
    ) {
        let duration = 90.0;
        let sources = [
            TraceSource::Poisson { rps_per_function: rate },
            TraceSource::Bursty {
                calm_rps: calm,
                burst_rps: burst,
                mean_calm_secs: 30.0,
                mean_burst_secs: 6.0,
            },
            TraceSource::Diurnal {
                mean_rps: rate,
                peak_to_trough: ratio,
                period_secs: 120.0,
            },
            TraceSource::HeavyTail { mean_rps: rate, alpha },
        ];
        for source in sources {
            let lazy = StreamTrace::generate(source, n, duration, seed).expect("valid parameters");
            check_stream_matches_materialized(&lazy, window_secs * 1_000_000_000)?;
            // The scan fans out bit-identically.
            let sharded = StreamTrace::generate_sharded(source, n, duration, seed, 8)
                .expect("valid parameters");
            prop_assert_eq!(sharded.len(), lazy.len());
            prop_assert_eq!(sharded.horizon_nanos(), lazy.horizon_nanos());
        }
    }

    /// Streaming CSV ingestion ≡ the materialized reader for random row
    /// soups — duplicate `(app, func, minute)` keys, zero counts,
    /// bounded minute disorder — at any reader chunk size, including
    /// chunks small enough that every record straddles a boundary.
    #[test]
    fn streaming_csv_matches_materialized(
        rows in prop::collection::vec(
            (0u8..3, 0u8..3, 0u64..3, 0u64..5, 0u64..40),
            1..25,
        ),
        chunk in 1usize..64,
        window_secs in 1u64..10,
    ) {
        // Minutes follow a non-decreasing base walk with backward jitter
        // capped below the streaming reader's lookahead bound.
        let mut csv = String::new();
        let mut base = 0u64;
        for &(app, func, advance, back, count) in &rows {
            base += advance;
            let minute = base.saturating_sub(back);
            csv.push_str(&format!("app{app},f{func},{minute},{count}\n"));
        }
        let lazy = StreamTrace::from_csv_chunked(&csv, chunk).expect("within lookahead bound");
        check_stream_matches_materialized(&lazy, window_secs * 1_000_000_000)?;
    }

    /// Multi-file ingestion ≡ the concatenated single file: a random row
    /// soup cut at arbitrary line boundaries into 2–5 files — cuts land
    /// mid-minute, backward jitter straddles the seams, a random subset
    /// of the files is gzip'd, and empty files are legal — must replay
    /// the exact event bits of the uncut CSV, partition identically
    /// under `window_bounds`, and `checkpoint()`/`open_at()` re-seeks
    /// must land correctly in whichever file a window starts in.
    #[test]
    fn multi_file_csv_ingestion_matches_single_file(
        rows in prop::collection::vec(
            (0u8..3, 0u8..4, 0u64..3, 0u64..5, 0u64..40),
            2..40,
        ),
        raw_cuts in prop::collection::vec(0usize..1000, 1..5),
        gz_mask in 0u8..64,
        chunk in 1usize..64,
        window_secs in 1u64..10,
    ) {
        let mut lines: Vec<String> = Vec::new();
        let mut base = 0u64;
        for &(app, func, advance, back, count) in &rows {
            base += advance;
            let minute = base.saturating_sub(back);
            lines.push(format!("app{app},f{func},{minute},{count}\n"));
        }
        let single = lines.concat();
        let reference = StreamTrace::from_csv_chunked(&single, chunk)
            .expect("within lookahead bound");
        let full = reference.materialize().expect("materialize");

        // Cut positions over the line count: duplicates collapse, so a
        // cut pair may produce an empty middle file.
        let mut cuts: Vec<usize> = raw_cuts.iter().map(|c| c % (lines.len() + 1)).collect();
        cuts.sort_unstable();
        cuts.dedup();
        let mut parts: Vec<Vec<u8>> = Vec::new();
        let mut start = 0usize;
        for &cut in cuts.iter().chain(std::iter::once(&lines.len())) {
            let text = lines[start..cut].concat();
            parts.push(if gz_mask & (1 << parts.len()) != 0 {
                flate::gzip_compress(text.as_bytes(), flate::CompressMode::FixedHuffman)
            } else {
                text.into_bytes()
            });
            start = cut;
        }
        let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
        let lazy = StreamTrace::from_csv_parts_chunked(&refs, chunk)
            .expect("seam disorder stays within the lookahead bound");

        // Same keys in the same first-seen order, same length, and the
        // event stream matches the uncut reference bit for bit.
        prop_assert_eq!(lazy.n_functions(), reference.n_functions());
        prop_assert_eq!(lazy.len(), reference.len());
        let mut stream = lazy.open().expect("open");
        for (i, expect) in full.events().iter().enumerate() {
            let got = stream.next().expect("multi-file stream ended early");
            prop_assert_eq!(got.at_secs.to_bits(), expect.at_secs.to_bits(), "event {}", i);
            prop_assert_eq!(got.function, expect.function, "event {}", i);
        }
        prop_assert!(stream.next().is_none(), "multi-file stream yielded extra events");

        // window_bounds partitions and checkpoint re-seeks across files.
        check_stream_matches_materialized(&lazy, window_secs * 1_000_000_000)?;
    }
}

/// Emulates the engine's sqrt-spaced checkpoint ladder over a stream
/// and checks that every window replayed from a ladder anchor (anchor
/// checkpoint + bounded forward drain to the boundary) is bit-identical
/// to a direct `checkpoint()`-per-boundary walk and to the materialized
/// `window_bounds` slice — including zero-length windows (no arrivals
/// between boundaries) and the final partial window.
fn check_ladder_matches_direct(
    lazy: &StreamTrace,
    window_nanos: u64,
    threads: usize,
) -> Result<(), proptest::TestCaseError> {
    let full = lazy.materialize().expect("materialize");
    if full.is_empty() {
        return Ok(());
    }
    let bounds = full.window_bounds(window_nanos);
    let n = bounds.len();
    // Direct reference: one sequential walk, checkpointing at every
    // boundary — the engine's pre-PR-6 pre-pass.
    let mut walk = lazy.open().expect("open");
    let mut direct = Vec::with_capacity(n);
    for k in 0..n {
        direct.push(walk.checkpoint());
        let end = (k as u64 + 1).saturating_mul(window_nanos);
        while walk.peek().is_some_and(|e| nanos(e.at_secs) < end) {
            walk.next();
        }
    }
    // The ladder: O(sqrt(windows)) anchors derived in one sharded pass,
    // intermediate boundaries re-derived by bounded forward drains.
    let stride = (1usize..).find(|s| s * s >= n).expect("sqrt exists");
    let anchor_bounds: Vec<u64> = (0..n)
        .step_by(stride)
        .map(|k| (k as u64).saturating_mul(window_nanos))
        .collect();
    let anchors = lazy
        .checkpoints_at(&anchor_bounds, threads)
        .expect("ladder pre-pass");
    prop_assert_eq!(anchors.len(), anchor_bounds.len());
    for (k, range) in bounds.iter().enumerate() {
        let start = (k as u64).saturating_mul(window_nanos);
        let end = (k as u64 + 1).saturating_mul(window_nanos);
        let mut derived = lazy.open_at(&anchors[k / stride]).expect("re-seek anchor");
        while derived.peek().is_some_and(|e| nanos(e.at_secs) < start) {
            derived.next();
        }
        let mut reference = lazy.open_at(&direct[k]).expect("re-seek direct");
        for expect in &full.events()[range.clone()] {
            let via_ladder = derived.next().expect("ladder window ended early");
            let via_direct = reference.next().expect("direct window ended early");
            prop_assert_eq!(
                via_ladder.at_secs.to_bits(),
                expect.at_secs.to_bits(),
                "window {} diverged via the ladder",
                k
            );
            prop_assert_eq!(via_ladder.function, expect.function, "window {}", k);
            prop_assert_eq!(
                via_direct.at_secs.to_bits(),
                expect.at_secs.to_bits(),
                "window {} diverged via direct checkpoints",
                k
            );
            prop_assert_eq!(via_direct.function, expect.function, "window {}", k);
        }
        // Both cursors must now sit exactly on boundary k+1 (or the
        // stream's end), so the partition has no leaks between windows.
        match (derived.peek(), reference.peek()) {
            (Some(a), Some(b)) => {
                prop_assert_eq!(a.at_secs.to_bits(), b.at_secs.to_bits());
                prop_assert_eq!(a.function, b.function);
                prop_assert!(nanos(a.at_secs) >= end, "window {} leaked an event", k);
            }
            (None, None) => {}
            _ => prop_assert!(false, "cursors disagree past window {}", k),
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Ladder-derived boundary checkpoints replay every window suffix
    /// bit-identically to direct checkpoint-per-boundary walks for all
    /// four synthetic generators under random parameters, fleet sizes,
    /// seeds, window sizes (including windows larger than the whole
    /// trace), and shard counts.
    #[test]
    fn ladder_checkpoints_match_direct_for_every_generator(
        rate in 0.1f64..2.0,
        alpha in 1.1f64..3.0,
        ratio in 1.0f64..6.0,
        n in 1usize..12,
        seed in 0u64..1_000_000,
        window_secs in 1u64..120,
        threads in 1usize..5,
    ) {
        let duration = 90.0;
        let sources = [
            TraceSource::Poisson { rps_per_function: rate },
            TraceSource::Bursty {
                calm_rps: 0.05,
                burst_rps: 2.0,
                mean_calm_secs: 30.0,
                mean_burst_secs: 6.0,
            },
            TraceSource::Diurnal {
                mean_rps: rate,
                peak_to_trough: ratio,
                period_secs: 120.0,
            },
            TraceSource::HeavyTail { mean_rps: rate, alpha },
        ];
        for source in sources {
            let lazy = StreamTrace::generate(source, n, duration, seed).expect("valid parameters");
            check_ladder_matches_direct(&lazy, window_secs * 1_000_000_000, threads)?;
        }
    }

    /// The same ladder-vs-direct equivalence for streamed CSV ingestion,
    /// where checkpoint derivation has to respect the chunked reader's
    /// lookahead window instead of a per-function generator cursor.
    #[test]
    fn ladder_checkpoints_match_direct_for_csv_streams(
        rows in prop::collection::vec(
            (0u8..3, 0u8..3, 0u64..3, 0u64..5, 0u64..40),
            1..25,
        ),
        chunk in 1usize..64,
        window_secs in 1u64..10,
        threads in 1usize..5,
    ) {
        let mut csv = String::new();
        let mut base = 0u64;
        for &(app, func, advance, back, count) in &rows {
            base += advance;
            let minute = base.saturating_sub(back);
            csv.push_str(&format!("app{app},f{func},{minute},{count}\n"));
        }
        let lazy = StreamTrace::from_csv_chunked(&csv, chunk).expect("within lookahead bound");
        check_ladder_matches_direct(&lazy, window_secs * 1_000_000_000, threads)?;
    }
}

/// A cheap ten-function fleet for market proptests (the six benchmark
/// functions, cycled): best configuration and alternates read straight
/// off ground-truth tables, built once and shared across cases.
fn market_fixture() -> &'static Vec<FunctionPlan> {
    use freedom_cluster::InstanceFamily;
    use freedom_pricing::SpotPricing;
    static PLANS: std::sync::OnceLock<Vec<FunctionPlan>> = std::sync::OnceLock::new();
    PLANS.get_or_init(|| {
        let spot = SpotPricing::PAPER_DEFAULT;
        let plans: Vec<FunctionPlan> = FunctionKind::ALL
            .into_iter()
            .map(|function| {
                let table = table_for(function, 3);
                let best = table.best_by_time().expect("feasible points").clone();
                let alternates = InstanceFamily::SEARCH_SPACE
                    .iter()
                    .filter(|&&family| family != best.config.family())
                    .filter_map(|&family| {
                        table
                            .feasible()
                            .filter(|p| p.config.family() == family)
                            .min_by(|a, b| a.exec_time_secs.total_cmp(&b.exec_time_secs))
                            .map(|p| PlannedPlacement {
                                family,
                                config: p.config,
                                accepted: p.exec_time_secs <= best.exec_time_secs * 1.15,
                                norm_exec_time: p.exec_time_secs / best.exec_time_secs,
                                norm_spot_cost: p.exec_cost_usd * spot.fraction
                                    / best.exec_cost_usd,
                            })
                    })
                    .collect();
                FunctionPlan {
                    function,
                    best_config: best.config,
                    alternates,
                    table,
                }
            })
            .collect();
        (0..10).map(|i| plans[i % plans.len()].clone()).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The admission ledger is total for any supply process, market
    /// size, admission policy, and window partition: every request ends
    /// as exactly one of admitted / demoted / rejected, and the windowed
    /// engine agrees with the sequential reference bit for bit.
    #[test]
    fn market_accounting_is_total_for_random_supplies(
        trace_seed in 0u64..10_000,
        supply_seed in 0u64..10_000,
        step_secs in 2.0f64..40.0,
        min_fraction in 0.0f64..1.0,
        vms_per_family in 1usize..5,
        max_utilization in 0.0f64..1.0,
        greedy in 0u32..2,
        window_secs in 1.0f64..90.0,
    ) {
        let plans = market_fixture();
        let sim = FleetSimulator::new(plans.clone()).expect("non-empty fleet");
        let trace = TraceSource::HeavyTail { mean_rps: 1.0, alpha: 1.4 }
            .generate(10, 60.0, trace_seed)
            .expect("valid parameters");
        let config = FleetConfig {
            market: MarketConfig {
                vms_per_family,
                supply: SupplyProcess { step_secs, min_fraction, seed: supply_seed },
                admission: if greedy == 1 {
                    AdmissionPolicy::Greedy
                } else {
                    AdmissionPolicy::Headroom { max_utilization }
                },
                ..MarketConfig::default()
            },
            ..FleetConfig::default()
        };
        for strategy in PlacementStrategy::ALL {
            let report = sim.run(&trace, strategy, &config).expect("replay");
            prop_assert_eq!(
                report.spot_admitted + report.spot_demoted + report.rejected,
                trace.len(),
                "accounting leaked under {:?}",
                strategy
            );
            prop_assert!(report.policy_rejections + report.capacity_misses <= report.rejected);
            prop_assert!(report.total_cost_usd > 0.0 || trace.is_empty());
            prop_assert!(report.spot_share() <= 1.0);
            let windowed = sim
                .run_windowed(&trace, strategy, &config, 4, window_secs)
                .expect("replay");
            prop_assert_eq!(
                format!("{:?}", report),
                format!("{:?}", windowed),
                "windowed engine diverged"
            );
        }
    }

    /// The failure-domain ledger is total for any fault plan: under
    /// random zone layouts, notice leads, outages, shock bursts, and
    /// dropped notice deliveries, every request still ends in exactly
    /// one of the five terminal classes — admitted, drained, migrated,
    /// demoted, rejected — notices only ever hit outstanding spot
    /// placements, and the windowed engine stays bit-identical.
    #[test]
    fn fault_injected_markets_keep_total_accounting(
        trace_seed in 0u64..10_000,
        fault_seed in 0u64..10_000,
        n_zones in 1usize..4,
        notice_secs in 0.0f64..10.0,
        shock in 0.0f64..1.0,
        migration_rebill in 0.0f64..1.0,
        outage_rate in 0.0f64..120.0,
        mean_outage_secs in 1.0f64..60.0,
        notice_drop_fraction in 0.0f64..1.0,
        burst_rate in 0.0f64..120.0,
        burst_severity in 0.0f64..1.0,
        window_secs in 1.0f64..90.0,
    ) {
        let plans = market_fixture();
        let sim = FleetSimulator::new(plans.clone()).expect("non-empty fleet");
        let trace = TraceSource::HeavyTail { mean_rps: 1.0, alpha: 1.4 }
            .generate(10, 60.0, trace_seed)
            .expect("valid parameters");
        let config = FleetConfig {
            market: MarketConfig {
                vms_per_family: 2,
                supply: SupplyProcess { step_secs: 5.0, min_fraction: 0.1, seed: 7 },
                zones: ZoneConfig { n_zones, notice_secs, shock, migration_rebill },
                ..MarketConfig::default()
            },
            faults: FaultPlan {
                seed: fault_seed,
                outage_rate_per_hour: outage_rate,
                mean_outage_secs,
                notice_drop_fraction,
                burst_rate_per_hour: burst_rate,
                mean_burst_secs: 10.0,
                burst_severity,
                ..FaultPlan::NONE
            },
            ..FleetConfig::default()
        };
        for strategy in PlacementStrategy::ALL {
            let report = sim.run(&trace, strategy, &config).expect("replay");
            prop_assert_eq!(
                report.spot_admitted
                    + report.drained
                    + report.migrated
                    + report.spot_demoted
                    + report.rejected,
                trace.len(),
                "accounting leaked under {:?}: {:?}",
                strategy,
                report
            );
            // Notices only ever land on outstanding spot placements —
            // entries created by an admission or a migration. (One
            // placement may be re-notified after surviving a step whose
            // drop shrank under it, so the count is not bounded by the
            // entries themselves; a market with no entries at all must
            // stay silent.)
            if report.spot_admitted + report.migrated == 0 {
                prop_assert_eq!(
                    report.notified,
                    0,
                    "notices without outstanding placements: {:?}",
                    report
                );
            }
            // Every drain was announced: a completion only counts as
            // drained when its slot sat under a delivered notice.
            prop_assert!(
                report.drained <= report.notified,
                "{} drains exceed {} notices",
                report.drained,
                report.notified
            );
            // Drains and migrations need the machinery that produces
            // them: a notice lead for drains, a second zone for
            // migrations.
            if notice_secs == 0.0 {
                prop_assert_eq!(report.drained, 0);
            }
            if n_zones == 1 {
                prop_assert_eq!(report.migrated, 0);
            }
            let windowed = sim
                .run_windowed(&trace, strategy, &config, 4, window_secs)
                .expect("replay");
            prop_assert_eq!(
                format!("{:?}", report),
                format!("{:?}", windowed),
                "windowed engine diverged under faults"
            );
        }
    }

    /// The retry ledger is total for any transient-fault mix and retry
    /// policy: every execution — first attempts plus retries, hedges
    /// excluded as pure duplicates — ends in exactly one of the six
    /// terminal classes (admitted, drained, migrated, demoted, rejected,
    /// dead-lettered), retries never appear without transients to cause
    /// them, and the windowed engine stays bit-identical for every seed.
    #[test]
    fn transient_faults_keep_retry_accounting_total(
        trace_seed in 0u64..10_000,
        fault_seed in 0u64..10_000,
        retry_seed in 0u64..10_000,
        crash_prob in 0.0f64..0.3,
        abort_prob in 0.0f64..0.3,
        straggler_prob in 0.0f64..0.3,
        straggler_factor in 1.5f64..8.0,
        max_attempts in 1u8..6,
        backoff_base_secs in 0.1f64..4.0,
        jitter_frac in 0.0f64..1.0,
        budget_per_sec in 0.1f64..8.0,
        budget_burst in 0.5f64..16.0,
        hedge_delay_secs in 0.0f64..6.0,
        brownout_on in 0u32..2,
        window_secs in 1.0f64..90.0,
    ) {
        let plans = market_fixture();
        let sim = FleetSimulator::new(plans.clone()).expect("non-empty fleet");
        let trace = TraceSource::HeavyTail { mean_rps: 1.0, alpha: 1.4 }
            .generate(10, 60.0, trace_seed)
            .expect("valid parameters");
        let config = FleetConfig {
            market: MarketConfig {
                vms_per_family: 2,
                supply: SupplyProcess { step_secs: 5.0, min_fraction: 0.1, seed: 7 },
                zones: ZoneConfig {
                    n_zones: 2,
                    notice_secs: 4.0,
                    shock: 0.5,
                    migration_rebill: 0.5,
                },
                ..MarketConfig::default()
            },
            faults: FaultPlan {
                seed: fault_seed,
                crash_prob,
                abort_prob,
                straggler_prob,
                straggler_factor,
                ..FaultPlan::NONE
            },
            retry: RetryPolicy {
                max_attempts,
                backoff_base_secs,
                backoff_cap_secs: backoff_base_secs * 8.0,
                jitter_frac,
                seed: retry_seed,
                budget_per_sec,
                budget_burst,
                hedge_delay_secs,
                brownout: (brownout_on == 1).then_some(BrownoutConfig {
                    enter_pressure: 0.2,
                    exit_pressure: 0.05,
                    utilization_ceiling: 0.7,
                }),
            },
            ..FleetConfig::default()
        };
        for strategy in PlacementStrategy::ALL {
            let report = sim.run(&trace, strategy, &config).expect("replay");
            prop_assert_eq!(
                report.spot_admitted
                    + report.drained
                    + report.migrated
                    + report.spot_demoted
                    + report.rejected
                    + report.dead_lettered,
                trace.len() + report.retried,
                "retry accounting leaked under {:?}: {:?}",
                strategy,
                report
            );
            // Retries and dead letters need a transient to cause them,
            // and a hedge can only win against a straggler it raced.
            if crash_prob == 0.0 && abort_prob == 0.0 && straggler_prob == 0.0 {
                prop_assert_eq!(report.retried, 0, "retries without faults");
                prop_assert_eq!(report.dead_lettered, 0);
                prop_assert_eq!(report.hedge_wins, 0);
            }
            if straggler_prob == 0.0 || hedge_delay_secs == 0.0 {
                prop_assert_eq!(report.hedge_wins, 0, "hedge win without a straggler race");
            }
            // Shedding is brownout's lever: without a brownout config
            // no retry is ever dropped on the floor.
            if brownout_on == 0 {
                prop_assert_eq!(report.shed_retries, 0, "shed without brownout");
            }
            let windowed = sim
                .run_windowed(&trace, strategy, &config, 4, window_secs)
                .expect("replay");
            prop_assert_eq!(
                format!("{:?}", report),
                format!("{:?}", windowed),
                "windowed engine diverged under transient faults"
            );
        }
    }
}

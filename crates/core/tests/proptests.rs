//! Property-based tests for the framework-level invariants.

use freedom::interfaces::hierarchical_ideal;
use freedom::provider::alternative_families_within;
use freedom::strategies::AllocationStrategy;
use freedom_faas::{collect_ground_truth, PerfTable};
use freedom_optimizer::{Objective, SearchSpace};
use freedom_workloads::FunctionKind;
use proptest::prelude::*;

fn any_kind() -> impl Strategy<Value = FunctionKind> {
    prop::sample::select(FunctionKind::ALL.to_vec())
}

fn table_for(kind: FunctionKind, seed: u64) -> PerfTable {
    collect_ground_truth(
        kind,
        &kind.default_input(),
        SearchSpace::table1().configs(),
        1,
        seed,
    )
    .expect("sweep succeeds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn strategy_spaces_nest_inside_decoupled(_x in 0u8..1) {
        let decoupled = AllocationStrategy::Decoupled.search_space();
        for strategy in [
            AllocationStrategy::FixedCpu,
            AllocationStrategy::PropCpu,
            AllocationStrategy::DecoupledM5,
        ] {
            for config in strategy.search_space().configs() {
                prop_assert!(decoupled.contains(config), "{strategy}: {config}");
            }
        }
    }

    #[test]
    fn alternative_counts_are_monotone_in_theta(
        kind in any_kind(),
        seed in 0u64..50,
        lo_pct in 1u32..15,
        delta_pct in 1u32..20,
    ) {
        let table = table_for(kind, seed);
        let lo = lo_pct as f64 / 100.0;
        let hi = lo + delta_pct as f64 / 100.0;
        for objective in [Objective::ExecutionTime, Objective::ExecutionCost] {
            let at_lo = alternative_families_within(&table, objective, lo).unwrap();
            let at_hi = alternative_families_within(&table, objective, hi).unwrap();
            prop_assert!(at_lo <= at_hi, "{kind}/{objective}: {at_lo} > {at_hi}");
            prop_assert!(at_hi <= 5);
        }
    }

    #[test]
    fn hierarchical_ideal_respects_any_budget(
        kind in any_kind(),
        seed in 0u64..50,
        theta_pct in 0u32..100,
    ) {
        let table = table_for(kind, seed);
        let theta = theta_pct as f64 / 100.0;
        for primary in [Objective::ExecutionTime, Objective::ExecutionCost] {
            let Some(ideal) = hierarchical_ideal(&table, primary, theta) else {
                // Only possible when nothing is feasible; our tables always
                // have feasible points.
                prop_assert!(false, "no ideal for {kind}");
                return Ok(());
            };
            let (best_primary, ideal_primary, best_secondary, ideal_secondary) = match primary {
                Objective::ExecutionTime => (
                    table.best_by_time().unwrap().exec_time_secs,
                    ideal.predicted_time_secs,
                    table.best_by_time().unwrap().exec_cost_usd,
                    ideal.predicted_cost_usd,
                ),
                _ => (
                    table.best_by_cost().unwrap().exec_cost_usd,
                    ideal.predicted_cost_usd,
                    table.best_by_cost().unwrap().exec_time_secs,
                    ideal.predicted_time_secs,
                ),
            };
            // Budget respected...
            prop_assert!(ideal_primary <= best_primary * (1.0 + theta) + 1e-12);
            // ...and the trade never worsens the secondary vs the
            // primary-optimal configuration.
            prop_assert!(ideal_secondary <= best_secondary + 1e-12);
        }
    }

    #[test]
    fn bigger_budgets_never_hurt_the_ideal_secondary(
        kind in any_kind(),
        seed in 0u64..50,
        theta_pct in 0u32..50,
    ) {
        let table = table_for(kind, seed);
        let lo = theta_pct as f64 / 100.0;
        let hi = lo + 0.25;
        let a = hierarchical_ideal(&table, Objective::ExecutionTime, lo).unwrap();
        let b = hierarchical_ideal(&table, Objective::ExecutionTime, hi).unwrap();
        prop_assert!(b.predicted_cost_usd <= a.predicted_cost_usd + 1e-15);
    }
}

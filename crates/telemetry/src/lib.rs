//! Zero-allocation telemetry for the replay engine.
//!
//! The replay hot loop is generic over a [`Recorder`]. With the
//! [`NoopRecorder`] every call monomorphizes to nothing — no branches,
//! no allocation, no atomics — so the telemetry-off replay is
//! bit-for-bit and instruction-for-instruction the untraced engine.
//! With the live [`Telemetry`] recorder, every observation lands in
//! preallocated storage: a fixed counter array, fixed log2-bucketed
//! [`Histogram`]s, and a fixed-capacity [`SpanRing`] that overwrites
//! its oldest entry (and counts the drop) instead of growing. After
//! construction, recording never touches the allocator.
//!
//! Two clocks coexist. *Simulated-time* spans carry replay-clock
//! nanoseconds (window bounds, controller ticks, supply steps) and are
//! deterministic: the same replay produces the same spans regardless of
//! thread count, because parallel windows record into forked recorders
//! that are [`Recorder::absorb`]ed back in window order. *Wall-time*
//! spans carry nanoseconds since the recorder's origin `Instant`
//! (scan, speculative rounds, fallback walks) and describe the host,
//! not the replay — they are excluded from determinism guarantees.
//!
//! Exports: [`Telemetry::jsonl_snapshot`] (one JSON line per epoch),
//! [`Telemetry::chrome_trace`] (trace-event JSON loadable in Perfetto
//! or `chrome://tracing`), and [`Telemetry::summary`] (compact
//! terminal block).

use std::fmt::Write as _;
use std::time::Instant;

/// Monotonic event counters, preallocated as one flat array.
///
/// Sim-derived counters (everything except the span/export plumbing)
/// are deterministic for a given replay: merged parallel recorders
/// equal the sequential recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum Counter {
    /// Trace arrivals admitted to the placement path.
    Arrivals,
    /// Arrivals placed on spot capacity.
    SpotAdmitted,
    /// Arrivals bounced to on-demand by the admission policy.
    PolicyRejected,
    /// Arrivals bounced to on-demand because spot was full.
    CapacityMissed,
    /// Arrivals that ran on-demand because their plan had no active
    /// alternates (policy and capacity bounces count separately).
    OnDemand,
    /// In-flight executions that ran to completion on their placement.
    Completions,
    /// Completions of executions that had already been drained or
    /// demoted off their placement (ledger ghosts).
    GhostCompletions,
    /// Executions drained off withdrawn spot capacity under notice.
    Drained,
    /// Executions live-migrated to a surviving zone.
    Migrated,
    /// Executions demoted from spot to on-demand billing.
    SpotDemoted,
    /// Executions caught by a preemption notice.
    Notified,
    /// Market supply steps applied.
    SupplySteps,
    /// Preemption notices fired.
    NoticesFired,
    /// Controller observation/actuation ticks.
    ControllerTicks,
    /// Per-function placement revisions the controller issued at ticks.
    Replans,
    /// Windows simulated (including speculative re-runs).
    WindowsSimulated,
    /// Speculative reconciliation rounds executed.
    SpeculativeRounds,
    /// Windows resolved by the sequential exact-carry fallback.
    FallbackWindows,
    /// Checkpoint-ladder anchors built for streaming windowed replay.
    LadderAnchors,
    /// Events re-drained from gz sources during ladder re-anchoring.
    RedrainedEvents,
    /// Resumable-replay snapshots handed to the snapshot callback.
    SnapshotsWritten,
    /// Transient per-invocation faults drawn on spot attempts
    /// (crash-on-start, mid-flight abort, straggler).
    TransientFaults,
    /// Retry activations: every time the retry layer re-entered
    /// admission for a faulted invocation (including activations that
    /// were immediately shed or dead-lettered).
    Retried,
    /// Hedged re-issues that beat the straggler they raced.
    HedgeWins,
    /// Invocations abandoned by the retry layer (attempt cap or family
    /// budget exhausted, retry past the horizon, or shed in brownout).
    DeadLettered,
    /// Retries shed (dead-lettered) because brownout was active.
    ShedRetries,
}

impl Counter {
    /// Number of counters; length of [`Counter::ALL`].
    pub const COUNT: usize = 26;

    /// Every counter, in declaration (= export) order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::Arrivals,
        Counter::SpotAdmitted,
        Counter::PolicyRejected,
        Counter::CapacityMissed,
        Counter::OnDemand,
        Counter::Completions,
        Counter::GhostCompletions,
        Counter::Drained,
        Counter::Migrated,
        Counter::SpotDemoted,
        Counter::Notified,
        Counter::SupplySteps,
        Counter::NoticesFired,
        Counter::ControllerTicks,
        Counter::Replans,
        Counter::WindowsSimulated,
        Counter::SpeculativeRounds,
        Counter::FallbackWindows,
        Counter::LadderAnchors,
        Counter::RedrainedEvents,
        Counter::SnapshotsWritten,
        Counter::TransientFaults,
        Counter::Retried,
        Counter::HedgeWins,
        Counter::DeadLettered,
        Counter::ShedRetries,
    ];

    /// Stable snake_case name used in JSONL and summaries.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Arrivals => "arrivals",
            Counter::SpotAdmitted => "spot_admitted",
            Counter::PolicyRejected => "policy_rejected",
            Counter::CapacityMissed => "capacity_missed",
            Counter::OnDemand => "on_demand",
            Counter::Completions => "completions",
            Counter::GhostCompletions => "ghost_completions",
            Counter::Drained => "drained",
            Counter::Migrated => "migrated",
            Counter::SpotDemoted => "spot_demoted",
            Counter::Notified => "notified",
            Counter::SupplySteps => "supply_steps",
            Counter::NoticesFired => "notices_fired",
            Counter::ControllerTicks => "controller_ticks",
            Counter::Replans => "replans",
            Counter::WindowsSimulated => "windows_simulated",
            Counter::SpeculativeRounds => "speculative_rounds",
            Counter::FallbackWindows => "fallback_windows",
            Counter::LadderAnchors => "ladder_anchors",
            Counter::RedrainedEvents => "redrained_events",
            Counter::SnapshotsWritten => "snapshots_written",
            Counter::TransientFaults => "transient_faults",
            Counter::Retried => "retried",
            Counter::HedgeWins => "hedge_wins",
            Counter::DeadLettered => "dead_lettered",
            Counter::ShedRetries => "shed_retries",
        }
    }
}

/// Value distributions, each a fixed log2-bucketed [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum Hist {
    /// Wall nanoseconds of the admission hot path, sampled 1-in-64.
    /// Host-dependent; excluded from determinism guarantees.
    AdmissionNanos,
    /// Timer-wheel in-flight depth observed at each arrival.
    InflightDepth,
    /// Simulated nanoseconds between consecutive arrivals in a window.
    ArrivalGapNanos,
    /// Spot-pool utilization in parts-per-million at controller ticks.
    UtilizationPpm,
    /// Simulated nanoseconds of backoff applied to each scheduled retry.
    RetryBackoffNanos,
}

impl Hist {
    /// Number of histograms; length of [`Hist::ALL`].
    pub const COUNT: usize = 5;

    /// Every histogram, in declaration (= export) order.
    pub const ALL: [Hist; Hist::COUNT] = [
        Hist::AdmissionNanos,
        Hist::InflightDepth,
        Hist::ArrivalGapNanos,
        Hist::UtilizationPpm,
        Hist::RetryBackoffNanos,
    ];

    /// Stable snake_case name used in JSONL and summaries.
    pub fn name(self) -> &'static str {
        match self {
            Hist::AdmissionNanos => "admission_ns",
            Hist::InflightDepth => "inflight_depth",
            Hist::ArrivalGapNanos => "arrival_gap_ns",
            Hist::UtilizationPpm => "utilization_ppm",
            Hist::RetryBackoffNanos => "retry_backoff_ns",
        }
    }
}

/// Span kinds. A span lives on the simulated-time track or the
/// wall-time track (never both); the recording call picks the track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum Span {
    /// One replay window over simulated time (arg = window index).
    Window,
    /// One speculative reconciliation round (sim extent of the pending
    /// windows on the sim track; wall duration on the wall track;
    /// arg = round number).
    Round,
    /// One checkpoint-ladder segment (arg = anchor index).
    LadderSegment,
    /// One controller cadence interval ending at a tick (arg = tick
    /// count so far).
    ControllerTick,
    /// One market supply step (instant; arg = step count so far).
    SupplyStep,
    /// One preemption notice (instant; arg = executions notified).
    Notice,
    /// One resumable-replay epoch boundary (sim instant) and the wall
    /// time spent writing its snapshot (arg = epoch).
    SnapshotEpoch,
    /// Wall time scanning/parsing one trace source (arg = source
    /// index).
    Scan,
    /// Wall time decompressing + scanning one gzip member (arg =
    /// source index).
    GzDecompress,
    /// Wall time of the ladder count pre-pass (arg = anchors).
    CountPrePass,
    /// Wall time of the sequential exact-carry fallback walk (arg =
    /// windows resolved).
    FallbackWalk,
    /// Wall time simulating one window (arg = first event index).
    WindowSim,
}

impl Span {
    /// Number of span kinds; length of [`Span::ALL`].
    pub const COUNT: usize = 12;

    /// Every span kind, in declaration (= track id) order.
    pub const ALL: [Span; Span::COUNT] = [
        Span::Window,
        Span::Round,
        Span::LadderSegment,
        Span::ControllerTick,
        Span::SupplyStep,
        Span::Notice,
        Span::SnapshotEpoch,
        Span::Scan,
        Span::GzDecompress,
        Span::CountPrePass,
        Span::FallbackWalk,
        Span::WindowSim,
    ];

    /// Stable name used as the trace-event name and track label.
    pub fn name(self) -> &'static str {
        match self {
            Span::Window => "window",
            Span::Round => "round",
            Span::LadderSegment => "ladder_segment",
            Span::ControllerTick => "controller_tick",
            Span::SupplyStep => "supply_step",
            Span::Notice => "notice",
            Span::SnapshotEpoch => "snapshot_epoch",
            Span::Scan => "scan",
            Span::GzDecompress => "gz_decompress",
            Span::CountPrePass => "count_pre_pass",
            Span::FallbackWalk => "fallback_walk",
            Span::WindowSim => "window_sim",
        }
    }
}

/// Log2-bucketed integer histogram with exact count/sum/min/max.
///
/// Bucket `i` holds values whose bit length is `i`: bucket 0 is the
/// value 0, bucket 1 is {1}, bucket 2 is {2,3}, …, bucket 64 covers the
/// top half of `u64`. Merging adds bucket-wise, so merge is associative
/// and commutative and the merged quantiles equal the quantiles of the
/// concatenated observations (at bucket resolution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 65],
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    #[inline]
    fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Record one observation. Never allocates.
    #[inline]
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Histogram::bucket_of(value)] += 1;
    }

    /// Fold another histogram into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += *o;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0 ..= 1.0`), clamped to the exact max. Resolution is one
    /// power of two; deterministic given the same observations.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                let upper = if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                return upper.min(self.max);
            }
        }
        self.max
    }
}

/// One recorded span: kind, track, start, duration, and a free-form
/// argument. 40 bytes, `Copy`, preallocated in the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRec {
    /// What phase this span covers.
    pub kind: Span,
    /// `true` = wall-clock track, `false` = simulated-time track.
    pub wall: bool,
    /// Start in nanoseconds (sim nanos, or wall nanos since the
    /// recorder origin).
    pub start_nanos: u64,
    /// Duration in nanoseconds (0 for instant markers).
    pub dur_nanos: u64,
    /// Kind-specific argument (window index, epoch, …).
    pub arg: u64,
}

/// Fixed-capacity span buffer: overwrites the oldest entry once full
/// and counts every overwrite, instead of growing.
#[derive(Debug, Clone)]
pub struct SpanRing {
    buf: Vec<SpanRec>,
    cap: usize,
    next: usize,
    dropped: u64,
}

impl SpanRing {
    /// Preallocate a ring for `cap` spans (min 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        SpanRing {
            buf: Vec::with_capacity(cap),
            cap,
            next: 0,
            dropped: 0,
        }
    }

    /// Record one span. Never allocates beyond the preallocated ring.
    #[inline]
    pub fn push(&mut self, rec: SpanRec) {
        if self.buf.len() < self.cap {
            self.buf.push(rec);
        } else {
            self.buf[self.next] = rec;
            self.next = (self.next + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Spans currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &SpanRec> {
        let (tail, head) = self.buf.split_at(self.next.min(self.buf.len()));
        head.iter().chain(tail.iter())
    }

    /// Number of spans currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no span has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Spans overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// The replay engine's telemetry sink. Implemented by [`NoopRecorder`]
/// (compiles to nothing) and [`Telemetry`] (preallocated live
/// recorder). The engine forks one recorder per parallel window and
/// absorbs the forks back **in window order**, which makes every
/// sim-derived observation deterministic under any thread count.
pub trait Recorder: Send {
    /// `false` only for the noop recorder; lets the hot loop guard
    /// sampling work behind a compile-time constant.
    const ENABLED: bool;

    /// An empty recorder sharing this one's origin and configuration,
    /// for a parallel window.
    fn fork(&self) -> Self
    where
        Self: Sized;

    /// Fold a forked recorder back in. Callers must absorb forks in
    /// window order to keep span order deterministic.
    fn absorb(&mut self, other: Self)
    where
        Self: Sized;

    /// Increment a counter.
    fn add(&mut self, counter: Counter, delta: u64);

    /// Record one histogram observation.
    fn observe(&mut self, hist: Hist, value: u64);

    /// Wall nanoseconds since the recorder's origin (0 for noop).
    fn now_nanos(&self) -> u64;

    /// True on a 1-in-N cadence, for sampled wall timing of hot paths.
    /// Always false for the noop recorder.
    fn should_sample(&mut self) -> bool;

    /// Record a simulated-time span `[start_nanos, end_nanos]`.
    fn span_sim(&mut self, kind: Span, start_nanos: u64, end_nanos: u64, arg: u64);

    /// Record a wall-time span from `start_nanos` (a prior
    /// [`Recorder::now_nanos`]) to now.
    fn span_wall(&mut self, kind: Span, start_nanos: u64, arg: u64);

    /// Record a wall-time span with an explicit duration (for phases
    /// timed outside the recorder, e.g. the scan pre-pass).
    fn span_wall_at(&mut self, kind: Span, start_nanos: u64, dur_nanos: u64, arg: u64);
}

/// The telemetry-off recorder: every method is an empty `#[inline]`
/// body, so the monomorphized hot loop is identical to an untraced
/// one. Zero size, zero cost, zero allocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn fork(&self) -> Self {
        NoopRecorder
    }
    #[inline(always)]
    fn absorb(&mut self, _other: Self) {}
    #[inline(always)]
    fn add(&mut self, _counter: Counter, _delta: u64) {}
    #[inline(always)]
    fn observe(&mut self, _hist: Hist, _value: u64) {}
    #[inline(always)]
    fn now_nanos(&self) -> u64 {
        0
    }
    #[inline(always)]
    fn should_sample(&mut self) -> bool {
        false
    }
    #[inline(always)]
    fn span_sim(&mut self, _kind: Span, _start_nanos: u64, _end_nanos: u64, _arg: u64) {}
    #[inline(always)]
    fn span_wall(&mut self, _kind: Span, _start_nanos: u64, _arg: u64) {}
    #[inline(always)]
    fn span_wall_at(&mut self, _kind: Span, _start_nanos: u64, _dur_nanos: u64, _arg: u64) {}
}

/// Default span-ring capacity: enough for a multi-day replay's ticks,
/// steps, and windows at day-scale cadences (~650 KiB of spans).
pub const DEFAULT_SPAN_CAPACITY: usize = 16_384;

/// Sampled hot-path timing cadence: every 64th arrival.
const SAMPLE_MASK: u32 = 63;

/// The live recorder: one flat counter array, fixed histograms, and a
/// span ring, all preallocated at construction. Forks share the wall
/// origin so wall spans from parallel windows land on one timeline.
#[derive(Debug, Clone)]
pub struct Telemetry {
    origin: Instant,
    sample_ctr: u32,
    counters: [u64; Counter::COUNT],
    hists: [Histogram; Hist::COUNT],
    spans: SpanRing,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::with_capacity(DEFAULT_SPAN_CAPACITY)
    }
}

impl Telemetry {
    /// A live recorder with the default span capacity.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// A live recorder whose span ring holds `span_capacity` spans.
    pub fn with_capacity(span_capacity: usize) -> Self {
        Telemetry {
            origin: Instant::now(),
            sample_ctr: 0,
            counters: [0; Counter::COUNT],
            hists: [Histogram::default(); Hist::COUNT],
            spans: SpanRing::new(span_capacity),
        }
    }

    /// Current value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// One histogram's current state.
    pub fn hist(&self, h: Hist) -> &Histogram {
        &self.hists[h as usize]
    }

    /// Recorded spans, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &SpanRec> {
        self.spans.iter()
    }

    /// Spans overwritten because the ring filled up.
    pub fn dropped_spans(&self) -> u64 {
        self.spans.dropped()
    }

    /// One-line digest for sweep tables: the counters that explain a
    /// cell plus the admission-path p99.
    pub fn brief(&self) -> String {
        let adm = self.hist(Hist::AdmissionNanos);
        format!(
            "ticks {} steps {} rounds {} fallback {} admission p99 {}ns spans {} (dropped {})",
            self.counter(Counter::ControllerTicks),
            self.counter(Counter::SupplySteps),
            self.counter(Counter::SpeculativeRounds),
            self.counter(Counter::FallbackWindows),
            adm.quantile(0.99),
            self.spans.len(),
            self.spans.dropped(),
        )
    }

    /// Compact multi-line terminal summary: non-zero counters,
    /// non-empty histograms, span-ring occupancy.
    pub fn summary(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("telemetry summary\n  counters:");
        let mut any = false;
        for c in Counter::ALL {
            let v = self.counter(c);
            if v != 0 {
                let _ = write!(out, " {}={v}", c.name());
                any = true;
            }
        }
        if !any {
            out.push_str(" (none)");
        }
        out.push('\n');
        for h in Hist::ALL {
            let hist = self.hist(h);
            if hist.count() == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  {}: count {} mean {:.0} p50 {} p99 {} max {}",
                h.name(),
                hist.count(),
                hist.mean(),
                hist.quantile(0.5),
                hist.quantile(0.99),
                hist.max(),
            );
        }
        let _ = write!(
            out,
            "  spans: {} recorded, {} dropped (ring capacity {})",
            self.spans.len(),
            self.spans.dropped(),
            self.spans.capacity(),
        );
        out
    }

    /// Append one JSONL metric snapshot (cumulative counters and
    /// histogram digests at a replay epoch) to `out`.
    pub fn jsonl_snapshot(&self, epoch: u64, sim_nanos: u64, out: &mut String) {
        let _ = write!(
            out,
            "{{\"epoch\":{epoch},\"sim_secs\":{:.3},\"counters\":{{",
            sim_nanos as f64 / 1e9
        );
        for (i, c) in Counter::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", c.name(), self.counter(*c));
        }
        out.push_str("},\"hists\":{");
        for (i, h) in Hist::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let hist = self.hist(*h);
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                 \"p50\":{},\"p90\":{},\"p99\":{}}}",
                h.name(),
                hist.count(),
                hist.sum(),
                hist.min(),
                hist.max(),
                hist.quantile(0.5),
                hist.quantile(0.9),
                hist.quantile(0.99),
            );
        }
        let _ = write!(
            out,
            "}},\"spans\":{},\"spans_dropped\":{}}}",
            self.spans.len(),
            self.spans.dropped()
        );
        out.push('\n');
    }

    /// Render every recorded span as Chrome trace-event JSON.
    ///
    /// Process 1 is the simulated-time timeline, process 2 the
    /// wall-time timeline; each span kind gets its own named thread
    /// track. Timestamps and durations are microseconds, as the
    /// trace-event format requires. The output loads directly in
    /// Perfetto (`ui.perfetto.dev`) or `chrome://tracing`.
    pub fn chrome_trace(&self) -> String {
        let mut out = String::with_capacity(256 + 96 * self.spans.len());
        out.push_str("[\n");
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"simulated time\"}},\n",
        );
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,\
             \"args\":{\"name\":\"wall time\"}},\n",
        );
        let mut present = [[false; Span::COUNT]; 2];
        for rec in self.spans.iter() {
            present[rec.wall as usize][rec.kind as usize] = true;
        }
        for (wall, kinds) in present.iter().enumerate() {
            for (idx, seen) in kinds.iter().enumerate() {
                if *seen {
                    let _ = writeln!(
                        out,
                        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\
                         \"args\":{{\"name\":\"{}\"}}}},",
                        wall + 1,
                        idx + 1,
                        Span::ALL[idx].name(),
                    );
                }
            }
        }
        let mut first = true;
        for rec in self.spans.iter() {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
                 \"pid\":{},\"tid\":{},\"args\":{{\"arg\":{}}}}}",
                rec.kind.name(),
                if rec.wall { "wall" } else { "sim" },
                rec.start_nanos as f64 / 1e3,
                rec.dur_nanos as f64 / 1e3,
                if rec.wall { 2 } else { 1 },
                rec.kind as usize + 1,
                rec.arg,
            );
        }
        out.push_str("\n]\n");
        out
    }

    /// Write [`Telemetry::chrome_trace`] to a file.
    pub fn write_chrome_trace(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.chrome_trace())
    }
}

impl Recorder for Telemetry {
    const ENABLED: bool = true;

    fn fork(&self) -> Self {
        Telemetry {
            origin: self.origin,
            sample_ctr: 0,
            counters: [0; Counter::COUNT],
            hists: [Histogram::default(); Hist::COUNT],
            spans: SpanRing::new(self.spans.capacity()),
        }
    }

    fn absorb(&mut self, other: Self) {
        for (i, v) in other.counters.iter().enumerate() {
            self.counters[i] += *v;
        }
        for (h, o) in self.hists.iter_mut().zip(other.hists.iter()) {
            h.merge(o);
        }
        self.spans.dropped += other.spans.dropped;
        for rec in other.spans.iter() {
            self.spans.push(*rec);
        }
    }

    #[inline]
    fn add(&mut self, counter: Counter, delta: u64) {
        self.counters[counter as usize] += delta;
    }

    #[inline]
    fn observe(&mut self, hist: Hist, value: u64) {
        self.hists[hist as usize].observe(value);
    }

    #[inline]
    fn now_nanos(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    #[inline]
    fn should_sample(&mut self) -> bool {
        let hit = self.sample_ctr & SAMPLE_MASK == 0;
        self.sample_ctr = self.sample_ctr.wrapping_add(1);
        hit
    }

    #[inline]
    fn span_sim(&mut self, kind: Span, start_nanos: u64, end_nanos: u64, arg: u64) {
        self.spans.push(SpanRec {
            kind,
            wall: false,
            start_nanos,
            dur_nanos: end_nanos.saturating_sub(start_nanos),
            arg,
        });
    }

    #[inline]
    fn span_wall(&mut self, kind: Span, start_nanos: u64, arg: u64) {
        let dur = self.now_nanos().saturating_sub(start_nanos);
        self.span_wall_at(kind, start_nanos, dur, arg);
    }

    #[inline]
    fn span_wall_at(&mut self, kind: Span, start_nanos: u64, dur_nanos: u64, arg: u64) {
        self.spans.push(SpanRec {
            kind,
            wall: true,
            start_nanos,
            dur_nanos,
            arg,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_of(values: &[u64]) -> Histogram {
        let mut h = Histogram::new();
        for &v in values {
            h.observe(v);
        }
        h
    }

    fn merged(a: &Histogram, b: &Histogram) -> Histogram {
        let mut m = *a;
        m.merge(b);
        m
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        // 0 → bucket 0; 1 → 1; 2,3 → 2; 4,7 → 3; 8 → 4; 1023 → 10;
        // 1024 → 11; u64::MAX → 64.
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 2);
        assert_eq!(h.buckets[3], 2);
        assert_eq!(h.buckets[4], 1);
        assert_eq!(h.buckets[10], 1);
        assert_eq!(h.buckets[11], 1);
        assert_eq!(h.buckets[64], 1);
    }

    #[test]
    fn histogram_merge_is_commutative_and_associative() {
        let a = hist_of(&[1, 5, 9, 200, 4096]);
        let b = hist_of(&[0, 0, 17, 1_000_000]);
        let c = hist_of(&[u64::MAX, 3, 64]);

        assert_eq!(merged(&a, &b), merged(&b, &a));
        assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));

        // Merging equals observing the concatenation.
        let all = hist_of(&[1, 5, 9, 200, 4096, 0, 0, 17, 1_000_000, u64::MAX, 3, 64]);
        assert_eq!(merged(&merged(&a, &b), &c), all);
    }

    #[test]
    fn histogram_merge_identity_is_empty() {
        let a = hist_of(&[7, 13, 21]);
        assert_eq!(merged(&a, &Histogram::new()), a);
        assert_eq!(merged(&Histogram::new(), &a), a);
    }

    #[test]
    fn histogram_quantiles_are_bucket_upper_bounds() {
        let h = hist_of(&[1, 2, 4, 8, 16, 32, 64, 128, 256, 512]);
        assert_eq!(h.quantile(0.0), 1);
        // rank 5 of 10 lands on value 16 → bucket 5 upper bound 31.
        assert_eq!(h.quantile(0.5), 31);
        // p99 rounds up to the last observation's bucket, clamped to max.
        assert_eq!(h.quantile(0.99), 512);
        assert_eq!(h.quantile(1.0), 512);
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn span_ring_overflow_drops_oldest_and_counts() {
        let mut ring = SpanRing::new(4);
        for i in 0..7u64 {
            ring.push(SpanRec {
                kind: Span::Window,
                wall: false,
                start_nanos: i,
                dur_nanos: 1,
                arg: i,
            });
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 3);
        let args: Vec<u64> = ring.iter().map(|r| r.arg).collect();
        assert_eq!(args, vec![3, 4, 5, 6], "oldest spans must be dropped first");
    }

    #[test]
    fn span_ring_below_capacity_keeps_order_and_drops_nothing() {
        let mut ring = SpanRing::new(8);
        for i in 0..5u64 {
            ring.push(SpanRec {
                kind: Span::ControllerTick,
                wall: false,
                start_nanos: i * 10,
                dur_nanos: 10,
                arg: i,
            });
        }
        assert_eq!(ring.len(), 5);
        assert_eq!(ring.dropped(), 0);
        let args: Vec<u64> = ring.iter().map(|r| r.arg).collect();
        assert_eq!(args, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn telemetry_absorb_merges_counters_hists_and_spans_in_order() {
        let mut parent = Telemetry::with_capacity(16);
        parent.add(Counter::Arrivals, 10);
        parent.observe(Hist::InflightDepth, 4);
        parent.span_sim(Span::Window, 0, 100, 0);

        let mut child = parent.fork();
        assert_eq!(child.counter(Counter::Arrivals), 0, "forks start empty");
        child.add(Counter::Arrivals, 5);
        child.observe(Hist::InflightDepth, 9);
        child.span_sim(Span::Window, 100, 200, 1);

        parent.absorb(child);
        assert_eq!(parent.counter(Counter::Arrivals), 15);
        assert_eq!(parent.hist(Hist::InflightDepth).count(), 2);
        let args: Vec<u64> = parent.spans().map(|r| r.arg).collect();
        assert_eq!(args, vec![0, 1], "absorbed spans append after parent spans");
    }

    #[test]
    fn noop_recorder_reports_disabled_and_never_samples() {
        let mut noop = NoopRecorder;
        const { assert!(!NoopRecorder::ENABLED) };
        assert!(!noop.should_sample());
        assert_eq!(noop.now_nanos(), 0);
        // All recording calls are inert.
        noop.add(Counter::Arrivals, 1);
        noop.observe(Hist::AdmissionNanos, 1);
        noop.span_sim(Span::Window, 0, 1, 0);
    }

    #[test]
    fn live_recorder_samples_one_in_sixty_four() {
        let mut t = Telemetry::with_capacity(4);
        let hits = (0..256).filter(|_| t.should_sample()).count();
        assert_eq!(hits, 4);
    }

    #[test]
    fn chrome_trace_is_wellformed_json_with_both_processes() {
        let mut t = Telemetry::with_capacity(8);
        t.span_sim(Span::Window, 0, 60_000_000_000, 0);
        t.span_sim(Span::ControllerTick, 0, 30_000_000_000, 1);
        t.span_wall_at(Span::Scan, 0, 5_000_000, 0);
        let json = t.chrome_trace();
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"simulated time\""));
        assert!(json.contains("\"wall time\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"window\""));
        assert!(json.contains("\"name\":\"scan\""));
        // Balanced braces/brackets ⇒ structurally sound without a parser.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn jsonl_snapshot_has_every_counter_and_hist() {
        let mut t = Telemetry::with_capacity(4);
        t.add(Counter::Arrivals, 42);
        t.observe(Hist::AdmissionNanos, 1000);
        let mut line = String::new();
        t.jsonl_snapshot(3, 21_600_000_000_000, &mut line);
        assert!(line.ends_with('\n'));
        assert!(line.contains("\"epoch\":3"));
        assert!(line.contains("\"sim_secs\":21600.000"));
        for c in Counter::ALL {
            assert!(line.contains(&format!("\"{}\":", c.name())), "{}", c.name());
        }
        for h in Hist::ALL {
            assert!(line.contains(&format!("\"{}\":", h.name())), "{}", h.name());
        }
        assert_eq!(line.matches('{').count(), line.matches('}').count());
    }
}

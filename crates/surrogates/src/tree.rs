//! CART regression trees, with exact or randomized split selection.
//!
//! One implementation serves three ensemble members: `RandomForest` uses
//! exact best splits on bootstrap samples, `ExtraTrees` uses randomized
//! thresholds ([`SplitMode::Random`]), and `GradientBoosting` uses shallow
//! exact trees. Leaves store mean, variance, and count, so ensembles can
//! apply the law of total variance.

use rand::rngs::StdRng;
use rand::Rng;

/// How split thresholds are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitMode {
    /// Scan every candidate threshold; pick the best SSE reduction (CART).
    Best,
    /// Draw one uniform threshold per feature; pick the best feature
    /// (extremely-randomized trees).
    Random,
}

/// Tree growth limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeConfig {
    /// Maximum depth; `None` grows until purity or minimum size.
    pub max_depth: Option<usize>,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples in each child.
    pub min_samples_leaf: usize,
    /// Threshold selection mode.
    pub split_mode: SplitMode,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            split_mode: SplitMode::Best,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        mean: f64,
        var: f64,
        count: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    root: Node,
    dim: usize,
}

/// A leaf's summary statistics at a query point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeafStats {
    /// Mean of the training targets in the leaf.
    pub mean: f64,
    /// Population variance of the training targets in the leaf.
    pub var: f64,
    /// Number of training samples in the leaf.
    pub count: usize,
}

impl DecisionTree {
    /// Fits a tree on `x`/`y` (pre-validated by the caller), using `rng`
    /// for randomized split modes.
    ///
    /// # Panics
    ///
    /// Panics on empty input — callers validate via
    /// `validate_training_set` first.
    pub fn fit(x: &[Vec<f64>], y: &[f64], config: &TreeConfig, rng: &mut StdRng) -> Self {
        assert!(!x.is_empty() && x.len() == y.len(), "validated by caller");
        let indices: Vec<usize> = (0..x.len()).collect();
        Self::fit_indices(x, y, &indices, config, rng)
    }

    /// Fits a tree on the multiset of rows selected by `indices` (possibly
    /// with repeats), without materializing the resampled data — the
    /// bootstrap path of [`crate::RandomForest`].
    ///
    /// # Panics
    ///
    /// Panics on empty input (callers validate first).
    pub fn fit_indices(
        x: &[Vec<f64>],
        y: &[f64],
        indices: &[usize],
        config: &TreeConfig,
        rng: &mut StdRng,
    ) -> Self {
        assert!(!x.is_empty() && x.len() == y.len(), "validated by caller");
        assert!(!indices.is_empty(), "validated by caller");
        let root = Self::grow(x, y, indices, config, rng, 0);
        Self {
            root,
            dim: x[0].len(),
        }
    }

    /// Feature dimensionality the tree was trained with.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Returns the leaf statistics for a point.
    pub fn leaf_stats(&self, point: &[f64]) -> LeafStats {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { mean, var, count } => {
                    return LeafStats {
                        mean: *mean,
                        var: *var,
                        count: *count,
                    }
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let v = point.get(*feature).copied().unwrap_or(0.0);
                    node = if v <= *threshold { left } else { right };
                }
            }
        }
    }

    /// Predicted mean at a point.
    pub fn predict_mean(&self, point: &[f64]) -> f64 {
        self.leaf_stats(point).mean
    }

    /// Number of leaves (diagnostic).
    pub fn leaf_count(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        count(&self.root)
    }

    fn grow(
        x: &[Vec<f64>],
        y: &[f64],
        indices: &[usize],
        config: &TreeConfig,
        rng: &mut StdRng,
        depth: usize,
    ) -> Node {
        let (mean, var) = mean_var(y, indices);
        let at_depth_limit = config.max_depth.map(|d| depth >= d).unwrap_or(false);
        if indices.len() < config.min_samples_split || var <= 1e-24 || at_depth_limit {
            return Node::Leaf {
                mean,
                var,
                count: indices.len(),
            };
        }
        let Some((feature, threshold)) = Self::choose_split(x, y, indices, config, rng) else {
            return Node::Leaf {
                mean,
                var,
                count: indices.len(),
            };
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            indices.iter().partition(|&&i| x[i][feature] <= threshold);
        if left_idx.len() < config.min_samples_leaf || right_idx.len() < config.min_samples_leaf {
            return Node::Leaf {
                mean,
                var,
                count: indices.len(),
            };
        }
        Node::Split {
            feature,
            threshold,
            left: Box::new(Self::grow(x, y, &left_idx, config, rng, depth + 1)),
            right: Box::new(Self::grow(x, y, &right_idx, config, rng, depth + 1)),
        }
    }

    /// Picks (feature, threshold) minimizing the weighted child SSE.
    ///
    /// `Best` mode uses the classic CART sweep: sort the node's
    /// (value, target) pairs once per feature, then walk the candidate
    /// thresholds left to right maintaining running sums, so scoring all
    /// thresholds costs O(m log m) instead of the O(m²) of re-partitioning
    /// per threshold. This is the inner loop of every forest and boosting
    /// fit in the BO hot path.
    fn choose_split(
        x: &[Vec<f64>],
        y: &[f64],
        indices: &[usize],
        config: &TreeConfig,
        rng: &mut StdRng,
    ) -> Option<(usize, f64)> {
        let dim = x[0].len();
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
        let mut pairs: Vec<(f64, f64)> = Vec::with_capacity(indices.len());
        for feature in 0..dim {
            pairs.clear();
            pairs.extend(indices.iter().map(|&i| (x[i][feature], y[i])));
            pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
            let lo = pairs[0].0;
            let hi = pairs[pairs.len() - 1].0;
            if lo == hi {
                continue;
            }
            match config.split_mode {
                SplitMode::Best => {
                    // Totals for the right side start as the node totals.
                    let n = pairs.len() as f64;
                    let (mut sr, mut sr2) = (0.0f64, 0.0f64);
                    for &(_, v) in &pairs {
                        sr += v;
                        sr2 += v * v;
                    }
                    let (mut nl, mut sl, mut sl2) = (0.0f64, 0.0f64, 0.0f64);
                    for w in 0..pairs.len() - 1 {
                        let (value, target) = pairs[w];
                        nl += 1.0;
                        sl += target;
                        sl2 += target * target;
                        sr -= target;
                        sr2 -= target * target;
                        let next = pairs[w + 1].0;
                        if value == next {
                            continue; // not a boundary between distinct values
                        }
                        let threshold = (value + next) / 2.0;
                        let sse = (sl2 - sl * sl / nl) + (sr2 - sr * sr / (n - nl));
                        let better = best.map(|b| sse < b.2).unwrap_or(true);
                        if better {
                            best = Some((feature, threshold, sse));
                        }
                    }
                }
                SplitMode::Random => {
                    let threshold = rng.gen_range(lo..hi);
                    if let Some(sse) = split_sse(x, y, indices, feature, threshold) {
                        let better = best.map(|b| sse < b.2).unwrap_or(true);
                        if better {
                            best = Some((feature, threshold, sse));
                        }
                    }
                }
            }
        }
        best.map(|(f, t, _)| (f, t))
    }
}

fn mean_var(y: &[f64], indices: &[usize]) -> (f64, f64) {
    let n = indices.len() as f64;
    let mean = indices.iter().map(|&i| y[i]).sum::<f64>() / n;
    let var = indices.iter().map(|&i| (y[i] - mean).powi(2)).sum::<f64>() / n;
    (mean, var)
}

/// Weighted sum of child SSEs for a candidate split, `None` when a side is
/// empty.
fn split_sse(
    x: &[Vec<f64>],
    y: &[f64],
    indices: &[usize],
    feature: usize,
    threshold: f64,
) -> Option<f64> {
    let (mut nl, mut sl, mut sl2) = (0usize, 0.0f64, 0.0f64);
    let (mut nr, mut sr, mut sr2) = (0usize, 0.0f64, 0.0f64);
    for &i in indices {
        let v = y[i];
        if x[i][feature] <= threshold {
            nl += 1;
            sl += v;
            sl2 += v * v;
        } else {
            nr += 1;
            sr += v;
            sr2 += v * v;
        }
    }
    if nl == 0 || nr == 0 {
        return None;
    }
    let sse_l = sl2 - sl * sl / nl as f64;
    let sse_r = sr2 - sr * sr / nr as f64;
    Some(sse_l + sse_r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn step_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 1.0 } else { 5.0 }).collect();
        (x, y)
    }

    #[test]
    fn learns_a_step_function_exactly() {
        let (x, y) = step_data();
        let tree = DecisionTree::fit(&x, &y, &TreeConfig::default(), &mut rng());
        assert_eq!(tree.predict_mean(&[3.0]), 1.0);
        assert_eq!(tree.predict_mean(&[15.0]), 5.0);
        // The split lands between 9 and 10.
        assert_eq!(tree.predict_mean(&[9.4]), 1.0);
        assert_eq!(tree.predict_mean(&[9.6]), 5.0);
    }

    #[test]
    fn depth_limit_caps_tree_size() {
        let (x, y) = step_data();
        let config = TreeConfig {
            max_depth: Some(0),
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&x, &y, &config, &mut rng());
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.predict_mean(&[0.0]), 3.0); // global mean
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let (x, y) = step_data();
        let config = TreeConfig {
            min_samples_leaf: 10,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&x, &y, &config, &mut rng());
        // The only admissible split is exactly down the middle.
        assert_eq!(tree.leaf_count(), 2);
        let stats = tree.leaf_stats(&[0.0]);
        assert_eq!(stats.count, 10);
        assert_eq!(stats.var, 0.0);
    }

    #[test]
    fn random_mode_still_learns_structure() {
        let (x, y) = step_data();
        let config = TreeConfig {
            split_mode: SplitMode::Random,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&x, &y, &config, &mut rng());
        assert_eq!(tree.predict_mean(&[0.0]), 1.0);
        assert_eq!(tree.predict_mean(&[19.0]), 5.0);
    }

    #[test]
    fn pure_targets_yield_single_leaf() {
        let x: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let y = vec![7.0; 5];
        let tree = DecisionTree::fit(&x, &y, &TreeConfig::default(), &mut rng());
        assert_eq!(tree.leaf_count(), 1);
        let stats = tree.leaf_stats(&[2.0]);
        assert_eq!(stats.mean, 7.0);
        assert_eq!(stats.count, 5);
    }

    #[test]
    fn splits_on_the_informative_feature() {
        // Feature 1 is noise; feature 0 carries the signal.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..16 {
            x.push(vec![(i / 8) as f64, (i % 4) as f64]);
            y.push(if i < 8 { 0.0 } else { 10.0 });
        }
        let tree = DecisionTree::fit(&x, &y, &TreeConfig::default(), &mut rng());
        assert_eq!(tree.predict_mean(&[0.0, 3.0]), 0.0);
        assert_eq!(tree.predict_mean(&[1.0, 0.0]), 10.0);
        assert_eq!(tree.dim(), 2);
    }
}

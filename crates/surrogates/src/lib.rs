//! Surrogate regressors for Bayesian optimization (§5.1).
//!
//! The paper compares four surrogate models under the Expected Improvement
//! acquisition function, all via scikit-optimize: Gaussian Processes (GP),
//! Gradient Boosted Regression Trees (GBRT), Random Forests (RF), and
//! Extra Trees (ET). This crate re-implements all four from scratch:
//!
//! - [`GaussianProcess`]: Matérn-5/2 ARD kernel, hyperparameters selected
//!   by log-marginal-likelihood over a seeded random search, exact Cholesky
//!   inference;
//! - [`DecisionTree`]: CART regression trees (exact or randomized splits);
//! - [`RandomForest`] / [`ExtraTrees`]: bagged ensembles whose predictive
//!   spread comes from the law of total variance across trees;
//! - [`GradientBoosting`]: least-squares/quantile boosting; uncertainty
//!   from a 0.16/0.50/0.84 quantile ensemble, mirroring skopt's GBRT
//!   uncertainty estimate.
//!
//! Every model implements [`Surrogate`]: `fit` on feature rows and targets,
//! `predict` a mean and standard deviation.
//!
//! # Examples
//!
//! ```
//! use freedom_surrogates::{Surrogate, SurrogateKind};
//!
//! let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 19.0]).collect();
//! let y: Vec<f64> = x.iter().map(|r| (3.0 * r[0]).sin()).collect();
//! let mut gp = SurrogateKind::Gp.build(42);
//! gp.fit(&x, &y).unwrap();
//! let p = gp.predict(&[0.5]).unwrap();
//! assert!((p.mean - (1.5f64).sin()).abs() < 0.2);
//! assert!(p.std >= 0.0);
//! ```

mod error;
mod forest;
mod gbrt;
mod gp;
mod tree;

pub use error::SurrogateError;
pub use forest::{ExtraTrees, RandomForest};
pub use gbrt::GradientBoosting;
pub use gp::{GaussianProcess, GpConfig};
pub use tree::{DecisionTree, SplitMode, TreeConfig};

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, SurrogateError>;

/// A predictive distribution summary at one point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Predictive mean.
    pub mean: f64,
    /// Predictive standard deviation (non-negative).
    pub std: f64,
}

/// A regressor usable as a Bayesian-optimization surrogate.
pub trait Surrogate {
    /// Fits the model on feature rows `x` and targets `y`.
    ///
    /// Implementations reset any previous fit. Errors on empty data,
    /// ragged rows, or length mismatches.
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<()>;

    /// Refits as one step of an iterative loop where the training set
    /// usually grows by one row between calls.
    ///
    /// `step_seed` reseeds the model's internal randomness, so a loop
    /// driving `fit_update` with per-step seeds behaves exactly like the
    /// old rebuild-per-step pattern for stateless models. Implementations
    /// that can reuse state from the previous fit (the GP's incremental
    /// Cholesky path) override this; the default is a plain refit.
    fn fit_update(&mut self, x: &[Vec<f64>], y: &[f64], step_seed: u64) -> Result<()> {
        self.reseed(step_seed);
        self.fit(x, y)
    }

    /// Predicts mean and standard deviation at `point`.
    ///
    /// Errors when called before [`Surrogate::fit`] or with the wrong
    /// dimensionality.
    fn predict(&self, point: &[f64]) -> Result<Prediction>;

    /// Predicts many points in one call.
    ///
    /// The default loops over [`Surrogate::predict`]; implementations
    /// with a shared-work fast path (the GP's batched cross-kernel
    /// solves) override it. Results are identical to per-point calls.
    fn predict_batch(&self, points: &[Vec<f64>]) -> Result<Vec<Prediction>> {
        points.iter().map(|p| self.predict(p)).collect()
    }

    /// Like [`Surrogate::predict_batch`], with mutable access so
    /// implementations can maintain a cross-call cache.
    ///
    /// The BO loop scores the same candidate set every step while the
    /// training set grows by one row; the GP overrides this to cache its
    /// cross-kernel matrix and forward-solves between steps, extending
    /// them by one column per new trial. Results are bit-identical to
    /// [`Surrogate::predict_batch`].
    fn predict_batch_mut(&mut self, points: &[Vec<f64>]) -> Result<Vec<Prediction>> {
        self.predict_batch(points)
    }

    /// Reseeds the randomness used by subsequent fits (no-op by default).
    fn reseed(&mut self, seed: u64) {
        let _ = seed;
    }

    /// Short stable name, e.g. `"GP"`.
    fn name(&self) -> &'static str;
}

/// The four surrogate variants of the paper, as a factory enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SurrogateKind {
    /// Bayesian optimization with Gaussian processes.
    Gp,
    /// Gradient boosted regression trees.
    Gbrt,
    /// Random forests.
    Rf,
    /// Extra (extremely randomized) trees.
    Et,
}

impl SurrogateKind {
    /// All four variants, in the paper's presentation order.
    pub const ALL: [SurrogateKind; 4] = [
        SurrogateKind::Gp,
        SurrogateKind::Gbrt,
        SurrogateKind::Et,
        SurrogateKind::Rf,
    ];

    /// Stable display name used in figures.
    pub fn name(self) -> &'static str {
        match self {
            Self::Gp => "GP",
            Self::Gbrt => "GBRT",
            Self::Rf => "RF",
            Self::Et => "ET",
        }
    }

    /// Builds a fresh surrogate of this kind with the given seed.
    pub fn build(self, seed: u64) -> Box<dyn Surrogate> {
        match self {
            Self::Gp => Box::new(GaussianProcess::new(GpConfig::default(), seed)),
            Self::Gbrt => Box::new(GradientBoosting::with_defaults(seed)),
            Self::Rf => Box::new(RandomForest::with_defaults(seed)),
            Self::Et => Box::new(ExtraTrees::with_defaults(seed)),
        }
    }
}

impl std::fmt::Display for SurrogateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Validates a training set; returns the feature dimensionality.
pub(crate) fn validate_training_set(x: &[Vec<f64>], y: &[f64]) -> Result<usize> {
    if x.is_empty() || y.is_empty() {
        return Err(SurrogateError::EmptyTrainingSet);
    }
    if x.len() != y.len() {
        return Err(SurrogateError::DimensionMismatch {
            expected: format!("{} targets", x.len()),
            found: format!("{} targets", y.len()),
        });
    }
    let dim = x[0].len();
    if dim == 0 {
        return Err(SurrogateError::EmptyTrainingSet);
    }
    for row in x {
        if row.len() != dim {
            return Err(SurrogateError::DimensionMismatch {
                expected: format!("rows of dimension {dim}"),
                found: format!("row of dimension {}", row.len()),
            });
        }
    }
    if y.iter().any(|v| !v.is_finite()) || x.iter().flatten().any(|v| !v.is_finite()) {
        return Err(SurrogateError::NonFiniteData);
    }
    Ok(dim)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_and_factory() {
        for kind in SurrogateKind::ALL {
            let model = kind.build(1);
            assert_eq!(model.name(), kind.name());
            assert_eq!(kind.to_string(), kind.name());
        }
    }

    #[test]
    fn validation_catches_bad_sets() {
        assert!(validate_training_set(&[], &[]).is_err());
        assert!(validate_training_set(&[vec![1.0]], &[]).is_err());
        assert!(validate_training_set(&[vec![1.0], vec![1.0, 2.0]], &[0.0, 1.0]).is_err());
        assert!(validate_training_set(&[vec![f64::NAN]], &[0.0]).is_err());
        assert!(validate_training_set(&[vec![1.0]], &[f64::INFINITY]).is_err());
        assert_eq!(validate_training_set(&[vec![1.0, 2.0]], &[0.5]).unwrap(), 2);
    }

    #[test]
    fn every_kind_fits_and_predicts_constant_data() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y = vec![3.0; 10];
        for kind in SurrogateKind::ALL {
            let mut model = kind.build(7);
            model.fit(&x, &y).unwrap();
            let p = model.predict(&[4.5]).unwrap();
            assert!((p.mean - 3.0).abs() < 0.3, "{kind}: mean {}", p.mean);
            assert!(p.std >= 0.0 && p.std < 1.0, "{kind}: std {}", p.std);
        }
    }
}

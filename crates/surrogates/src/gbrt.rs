//! Gradient-boosted regression trees with quantile uncertainty.
//!
//! skopt's GBRT surrogate estimates uncertainty by training three boosted
//! ensembles at the 0.16, 0.50, and 0.84 quantiles (±1σ of a normal) and
//! taking `std = (q84 − q16) / 2`. We implement quantile boosting directly:
//! shallow CART trees fitted to the quantile-loss pseudo-residuals, with
//! the leaf values replaced by the in-leaf residual quantile (the classic
//! "line search" step of gradient boosting).

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::tree::{DecisionTree, TreeConfig};
use crate::{validate_training_set, Prediction, Surrogate, SurrogateError};

/// Configuration of the boosted ensemble.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GbrtConfig {
    /// Boosting rounds per quantile model.
    pub n_estimators: usize,
    /// Shrinkage (learning rate).
    pub learning_rate: f64,
    /// Depth of each weak learner.
    pub max_depth: usize,
    /// Warm-start [`Surrogate::fit_update`]: when the training set grew
    /// by exactly one row since the previous fit, reuse the previous
    /// ensemble's first ¾ of the trees and re-boost only the tail on the
    /// extended data, instead of rebuilding all three quantile models
    /// from scratch. Early trees capture the coarse response surface and
    /// barely move when one trial is appended; the refreshed tail
    /// absorbs the new information. Any other update (first fit, resized
    /// or edited training set — e.g. when the BO loop's normalizers
    /// shift) falls back to a full refit automatically.
    pub warm_start: bool,
    /// With `warm_start`, rebuild the full ensemble from scratch on
    /// every `warm_refit_every`-th update anyway (mirroring
    /// `GpConfig::refit_every`): kept trees slowly drift away from the
    /// grown training set, and a periodic full boost re-syncs them so
    /// the approximation error cannot compound across a whole BO run.
    pub warm_refit_every: usize,
}

impl Default for GbrtConfig {
    fn default() -> Self {
        Self {
            n_estimators: 80,
            learning_rate: 0.1,
            max_depth: 3,
            warm_start: true,
            warm_refit_every: 4,
        }
    }
}

/// One boosted quantile model: an initial constant plus scaled trees whose
/// leaf "means" hold the in-leaf residual quantile.
#[derive(Debug, Clone)]
struct QuantileModel {
    tau: f64,
    init: f64,
    trees: Vec<DecisionTree>,
    learning_rate: f64,
}

impl QuantileModel {
    fn fit(x: &[Vec<f64>], y: &[f64], tau: f64, config: &GbrtConfig, rng: &mut StdRng) -> Self {
        let init = quantile(y, tau);
        let mut model = Self {
            tau,
            init,
            trees: Vec::with_capacity(config.n_estimators),
            learning_rate: config.learning_rate,
        };
        let mut pred: Vec<f64> = vec![init; y.len()];
        model.boost(x, y, &mut pred, config.n_estimators, config, rng);
        model
    }

    /// Appends `rounds` boosted trees, continuing from the running
    /// predictions `pred` (which it keeps up to date).
    fn boost(
        &mut self,
        x: &[Vec<f64>],
        y: &[f64],
        pred: &mut [f64],
        rounds: usize,
        config: &GbrtConfig,
        rng: &mut StdRng,
    ) {
        let tau = self.tau;
        let tree_config = TreeConfig {
            max_depth: Some(config.max_depth),
            min_samples_leaf: 2,
            ..TreeConfig::default()
        };
        for _ in 0..rounds {
            // Quantile-loss pseudo-residuals: tau above, tau-1 below.
            let grad: Vec<f64> = y
                .iter()
                .zip(pred.iter())
                .map(|(yi, fi)| if yi > fi { tau } else { tau - 1.0 })
                .collect();
            // Grow the structure on the gradient, then re-value the leaves
            // with the tau-quantile of the actual residuals routed to them.
            let structure = DecisionTree::fit(x, &grad, &tree_config, rng);
            let tree = revalue_leaves(&structure, x, y, pred, tau);
            for (i, xi) in x.iter().enumerate() {
                pred[i] += config.learning_rate * tree.predict_mean(xi);
            }
            self.trees.push(tree);
        }
    }

    /// Warm refit after one appended sample: keep the first `keep`
    /// trees (fitted on the old data — their structure barely moves for
    /// a one-row extension), replay their predictions over the extended
    /// training set, and re-boost only the remaining rounds.
    fn warm_refit(
        &mut self,
        x: &[Vec<f64>],
        y: &[f64],
        keep: usize,
        config: &GbrtConfig,
        rng: &mut StdRng,
    ) {
        self.trees.truncate(keep);
        let mut pred: Vec<f64> = x
            .iter()
            .map(|xi| {
                self.init
                    + self.learning_rate
                        * self.trees.iter().map(|t| t.predict_mean(xi)).sum::<f64>()
            })
            .collect();
        let rounds = config.n_estimators.saturating_sub(self.trees.len());
        self.boost(x, y, &mut pred, rounds, config, rng);
    }

    fn predict(&self, point: &[f64]) -> f64 {
        self.init
            + self.learning_rate
                * self
                    .trees
                    .iter()
                    .map(|t| t.predict_mean(point))
                    .sum::<f64>()
    }
}

/// Rebuilds a tree with the same structure whose leaves hold the
/// tau-quantile of `y - pred` among the samples each leaf receives.
///
/// We keep this simple by refitting a tree on per-sample leaf targets: every
/// sample's target becomes its leaf's residual quantile, and a deep exact
/// tree reproduces the partition.
fn revalue_leaves(
    structure: &DecisionTree,
    x: &[Vec<f64>],
    y: &[f64],
    pred: &[f64],
    tau: f64,
) -> DecisionTree {
    use std::collections::HashMap;
    // Group samples by the leaf they fall into (keyed by leaf stats bits,
    // which uniquely identify a leaf in practice since means differ; to be
    // exact we key by a path-id computed from comparisons).
    let mut groups: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, xi) in x.iter().enumerate() {
        groups
            .entry(leaf_path_id(structure, xi))
            .or_default()
            .push(i);
    }
    let mut targets = vec![0.0; x.len()];
    for idx in groups.values() {
        let residuals: Vec<f64> = idx.iter().map(|&i| y[i] - pred[i]).collect();
        let q = quantile(&residuals, tau);
        for &i in idx {
            targets[i] = q;
        }
    }
    // A deterministic exact tree on the piecewise-constant targets
    // reproduces the partition (or a refinement of it, which predicts the
    // same values).
    let mut rng = StdRng::seed_from_u64(0);
    DecisionTree::fit(x, &targets, &TreeConfig::default(), &mut rng)
}

/// Stable id of the leaf a point falls into (sequence of branch choices).
fn leaf_path_id(tree: &DecisionTree, point: &[f64]) -> u64 {
    // The public API exposes only leaf stats; combine them into a key.
    // Collisions would merge leaves with bit-identical (mean, var, count),
    // which predict identically anyway.
    let stats = tree.leaf_stats(point);
    let mut h = stats.mean.to_bits() ^ stats.var.to_bits().rotate_left(17);
    h ^= (stats.count as u64).rotate_left(33);
    h
}

fn quantile(values: &[f64], tau: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = tau.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// The GBRT surrogate: three quantile ensembles (0.16 / 0.50 / 0.84).
#[derive(Debug, Clone)]
pub struct GradientBoosting {
    config: GbrtConfig,
    seed: u64,
    models: Option<[QuantileModel; 3]>,
    dim: usize,
    /// The training set of the last fit, kept to detect the
    /// one-row-appended case [`GbrtConfig::warm_start`] accelerates.
    train: Option<(Vec<Vec<f64>>, Vec<f64>)>,
    /// Consecutive warm updates since the last full boost.
    warm_streak: usize,
}

impl GradientBoosting {
    /// Creates an unfitted GBRT surrogate.
    pub fn new(config: GbrtConfig, seed: u64) -> Self {
        Self {
            config,
            seed,
            models: None,
            dim: 0,
            train: None,
            warm_streak: 0,
        }
    }

    /// Whether a [`Surrogate::fit_update`] with `(x, y)` can take the
    /// warm path: a previous fit exists and exactly one row was appended
    /// to an otherwise untouched training set.
    fn appended_one_row(&self, x: &[Vec<f64>], y: &[f64]) -> bool {
        let Some((px, py)) = self.train.as_ref() else {
            return false;
        };
        self.models.is_some()
            && x.len() == px.len() + 1
            && y.len() == py.len() + 1
            && x.last().is_some_and(|row| row.len() == self.dim)
            && x[..px.len()] == px[..]
            && y[..py.len()] == py[..]
    }

    /// skopt-flavoured defaults (80 rounds, depth 3, lr 0.1).
    pub fn with_defaults(seed: u64) -> Self {
        Self::new(GbrtConfig::default(), seed)
    }
}

impl Surrogate for GradientBoosting {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> crate::Result<()> {
        self.dim = validate_training_set(x, y)?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let q16 = QuantileModel::fit(x, y, 0.16, &self.config, &mut rng);
        let q50 = QuantileModel::fit(x, y, 0.50, &self.config, &mut rng);
        let q84 = QuantileModel::fit(x, y, 0.84, &self.config, &mut rng);
        self.models = Some([q16, q50, q84]);
        self.train = Some((x.to_vec(), y.to_vec()));
        // A full boost re-syncs everything: the warm cadence restarts.
        self.warm_streak = 0;
        Ok(())
    }

    /// Warm-start refit (see [`GbrtConfig::warm_start`]): when exactly
    /// one trial was appended since the last fit, each quantile model
    /// keeps its first ¾ trees and re-boosts only the tail on the
    /// extended data — ~4× less tree fitting per BO step. Every other
    /// shape of update falls back to the plain reseed-and-refit, so the
    /// result is always a deterministic function of the call sequence.
    fn fit_update(&mut self, x: &[Vec<f64>], y: &[f64], step_seed: u64) -> crate::Result<()> {
        let warm = self.config.warm_start
            && self.warm_streak + 1 < self.config.warm_refit_every.max(1)
            && self.appended_one_row(x, y);
        if !warm {
            self.warm_streak = 0;
            self.reseed(step_seed);
            return self.fit(x, y);
        }
        validate_training_set(x, y)?;
        let keep = (self.config.n_estimators * 3) / 4;
        let mut rng = StdRng::seed_from_u64(step_seed);
        let models = self.models.as_mut().expect("checked by appended_one_row");
        for model in models.iter_mut() {
            model.warm_refit(x, y, keep, &self.config, &mut rng);
        }
        self.warm_streak += 1;
        self.seed = step_seed;
        self.train = Some((x.to_vec(), y.to_vec()));
        Ok(())
    }

    fn predict(&self, point: &[f64]) -> crate::Result<Prediction> {
        let models = self.models.as_ref().ok_or(SurrogateError::NotFitted)?;
        if point.len() != self.dim {
            return Err(SurrogateError::DimensionMismatch {
                expected: format!("point of dimension {}", self.dim),
                found: format!("point of dimension {}", point.len()),
            });
        }
        let lo = models[0].predict(point);
        let mid = models[1].predict(point);
        let hi = models[2].predict(point);
        debug_assert_eq!(models[0].tau, 0.16);
        debug_assert_eq!(models[2].tau, 0.84);
        Ok(Prediction {
            mean: mid,
            std: ((hi - lo) / 2.0).max(0.0),
        })
    }

    fn reseed(&mut self, seed: u64) {
        self.seed = seed;
    }

    fn name(&self) -> &'static str {
        "GBRT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 29.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| 3.0 * r[0] + 1.0).collect();
        (x, y)
    }

    #[test]
    fn fits_a_linear_trend() {
        let (x, y) = line_data();
        let mut gbrt = GradientBoosting::with_defaults(1);
        gbrt.fit(&x, &y).unwrap();
        let p = gbrt.predict(&[0.5]).unwrap();
        assert!((p.mean - 2.5).abs() < 0.4, "mean {}", p.mean);
    }

    #[test]
    fn quantile_helper_matches_interpolation() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
        assert_eq!(quantile(&v, 0.5), 2.5);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn uncertainty_reflects_noise_spread() {
        // Heteroscedastic data: noisy right half.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let v = i as f64 / 39.0;
            x.push(vec![v]);
            let noise = if v > 0.5 {
                if i % 2 == 0 {
                    2.0
                } else {
                    -2.0
                }
            } else {
                0.0
            };
            y.push(v + noise);
        }
        let mut gbrt = GradientBoosting::with_defaults(2);
        gbrt.fit(&x, &y).unwrap();
        let calm = gbrt.predict(&[0.2]).unwrap();
        let noisy = gbrt.predict(&[0.8]).unwrap();
        assert!(noisy.std > calm.std, "{} vs {}", noisy.std, calm.std);
    }

    #[test]
    fn errors_before_fit_and_on_bad_dim() {
        let gbrt = GradientBoosting::with_defaults(0);
        assert_eq!(gbrt.predict(&[0.0]).unwrap_err(), SurrogateError::NotFitted);
        let (x, y) = line_data();
        let mut gbrt = gbrt;
        gbrt.fit(&x, &y).unwrap();
        assert!(matches!(
            gbrt.predict(&[]),
            Err(SurrogateError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn warm_update_replays_identically() {
        let (x, y) = line_data();
        let run = || {
            let mut m = GradientBoosting::with_defaults(3);
            m.fit(&x[..20], &y[..20]).unwrap();
            for k in 21..=30 {
                m.fit_update(&x[..k], &y[..k], 50 + k as u64).unwrap();
            }
            m.predict(&[0.37]).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn warm_update_tracks_full_refit_accuracy() {
        let (x, y) = line_data();
        let drive = |config: GbrtConfig| {
            let mut m = GradientBoosting::new(config, 3);
            m.fit(&x[..20], &y[..20]).unwrap();
            for k in 21..=30 {
                m.fit_update(&x[..k], &y[..k], k as u64).unwrap();
            }
            m
        };
        let warm = drive(GbrtConfig::default());
        let cold = drive(GbrtConfig {
            warm_start: false,
            ..GbrtConfig::default()
        });
        for q in [0.1, 0.5, 0.9] {
            let pw = warm.predict(&[q]).unwrap();
            let pc = cold.predict(&[q]).unwrap();
            let truth = 3.0 * q + 1.0;
            assert!((pw.mean - truth).abs() < 0.5, "warm {} at {q}", pw.mean);
            assert!(
                (pw.mean - pc.mean).abs() < 0.5,
                "warm {} vs cold {} at {q}",
                pw.mean,
                pc.mean
            );
        }
    }

    #[test]
    fn non_append_updates_fall_back_to_a_full_refit() {
        let (x, y) = line_data();
        // Warm-start off: fit_update is exactly reseed + fit.
        let mut off = GradientBoosting::new(
            GbrtConfig {
                warm_start: false,
                ..GbrtConfig::default()
            },
            1,
        );
        off.fit(&x[..10], &y[..10]).unwrap();
        off.fit_update(&x, &y, 99).unwrap();
        let mut fresh = GradientBoosting::with_defaults(99);
        fresh.fit(&x, &y).unwrap();
        assert_eq!(off.predict(&[0.3]).unwrap(), fresh.predict(&[0.3]).unwrap());
        // Warm-start on, but the update appends 20 rows: not the
        // one-row-appended shape, so it falls back to the same full
        // refit bit for bit.
        let mut on = GradientBoosting::with_defaults(1);
        on.fit(&x[..10], &y[..10]).unwrap();
        on.fit_update(&x, &y, 99).unwrap();
        assert_eq!(on.predict(&[0.3]).unwrap(), fresh.predict(&[0.3]).unwrap());
        // An edited prefix (shifted target) also falls back.
        let mut edited = GradientBoosting::with_defaults(1);
        edited.fit(&x[..29], &y[..29]).unwrap();
        let mut y2 = y.clone();
        y2[0] += 0.5;
        edited.fit_update(&x, &y2, 99).unwrap();
        let mut fresh2 = GradientBoosting::with_defaults(99);
        fresh2.fit(&x, &y2).unwrap();
        assert_eq!(
            edited.predict(&[0.3]).unwrap(),
            fresh2.predict(&[0.3]).unwrap()
        );
    }

    #[test]
    fn seeded_fits_are_reproducible() {
        let (x, y) = line_data();
        let mut a = GradientBoosting::with_defaults(5);
        let mut b = GradientBoosting::with_defaults(5);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict(&[0.4]).unwrap(), b.predict(&[0.4]).unwrap());
    }
}

//! Gradient-boosted regression trees with quantile uncertainty.
//!
//! skopt's GBRT surrogate estimates uncertainty by training three boosted
//! ensembles at the 0.16, 0.50, and 0.84 quantiles (±1σ of a normal) and
//! taking `std = (q84 − q16) / 2`. We implement quantile boosting directly:
//! shallow CART trees fitted to the quantile-loss pseudo-residuals, with
//! the leaf values replaced by the in-leaf residual quantile (the classic
//! "line search" step of gradient boosting).

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::tree::{DecisionTree, TreeConfig};
use crate::{validate_training_set, Prediction, Surrogate, SurrogateError};

/// Configuration of the boosted ensemble.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GbrtConfig {
    /// Boosting rounds per quantile model.
    pub n_estimators: usize,
    /// Shrinkage (learning rate).
    pub learning_rate: f64,
    /// Depth of each weak learner.
    pub max_depth: usize,
}

impl Default for GbrtConfig {
    fn default() -> Self {
        Self {
            n_estimators: 80,
            learning_rate: 0.1,
            max_depth: 3,
        }
    }
}

/// One boosted quantile model: an initial constant plus scaled trees whose
/// leaf "means" hold the in-leaf residual quantile.
#[derive(Debug, Clone)]
struct QuantileModel {
    tau: f64,
    init: f64,
    trees: Vec<DecisionTree>,
    learning_rate: f64,
}

impl QuantileModel {
    fn fit(x: &[Vec<f64>], y: &[f64], tau: f64, config: &GbrtConfig, rng: &mut StdRng) -> Self {
        let init = quantile(y, tau);
        let mut pred: Vec<f64> = vec![init; y.len()];
        let mut trees = Vec::with_capacity(config.n_estimators);
        let tree_config = TreeConfig {
            max_depth: Some(config.max_depth),
            min_samples_leaf: 2,
            ..TreeConfig::default()
        };
        for _ in 0..config.n_estimators {
            // Quantile-loss pseudo-residuals: tau above, tau-1 below.
            let grad: Vec<f64> = y
                .iter()
                .zip(&pred)
                .map(|(yi, fi)| if yi > fi { tau } else { tau - 1.0 })
                .collect();
            // Grow the structure on the gradient, then re-value the leaves
            // with the tau-quantile of the actual residuals routed to them.
            let structure = DecisionTree::fit(x, &grad, &tree_config, rng);
            let tree = revalue_leaves(&structure, x, y, &pred, tau);
            for (i, xi) in x.iter().enumerate() {
                pred[i] += config.learning_rate * tree.predict_mean(xi);
            }
            trees.push(tree);
        }
        Self {
            tau,
            init,
            trees,
            learning_rate: config.learning_rate,
        }
    }

    fn predict(&self, point: &[f64]) -> f64 {
        self.init
            + self.learning_rate
                * self
                    .trees
                    .iter()
                    .map(|t| t.predict_mean(point))
                    .sum::<f64>()
    }
}

/// Rebuilds a tree with the same structure whose leaves hold the
/// tau-quantile of `y - pred` among the samples each leaf receives.
///
/// We keep this simple by refitting a tree on per-sample leaf targets: every
/// sample's target becomes its leaf's residual quantile, and a deep exact
/// tree reproduces the partition.
fn revalue_leaves(
    structure: &DecisionTree,
    x: &[Vec<f64>],
    y: &[f64],
    pred: &[f64],
    tau: f64,
) -> DecisionTree {
    use std::collections::HashMap;
    // Group samples by the leaf they fall into (keyed by leaf stats bits,
    // which uniquely identify a leaf in practice since means differ; to be
    // exact we key by a path-id computed from comparisons).
    let mut groups: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, xi) in x.iter().enumerate() {
        groups
            .entry(leaf_path_id(structure, xi))
            .or_default()
            .push(i);
    }
    let mut targets = vec![0.0; x.len()];
    for idx in groups.values() {
        let residuals: Vec<f64> = idx.iter().map(|&i| y[i] - pred[i]).collect();
        let q = quantile(&residuals, tau);
        for &i in idx {
            targets[i] = q;
        }
    }
    // A deterministic exact tree on the piecewise-constant targets
    // reproduces the partition (or a refinement of it, which predicts the
    // same values).
    let mut rng = StdRng::seed_from_u64(0);
    DecisionTree::fit(x, &targets, &TreeConfig::default(), &mut rng)
}

/// Stable id of the leaf a point falls into (sequence of branch choices).
fn leaf_path_id(tree: &DecisionTree, point: &[f64]) -> u64 {
    // The public API exposes only leaf stats; combine them into a key.
    // Collisions would merge leaves with bit-identical (mean, var, count),
    // which predict identically anyway.
    let stats = tree.leaf_stats(point);
    let mut h = stats.mean.to_bits() ^ stats.var.to_bits().rotate_left(17);
    h ^= (stats.count as u64).rotate_left(33);
    h
}

fn quantile(values: &[f64], tau: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = tau.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// The GBRT surrogate: three quantile ensembles (0.16 / 0.50 / 0.84).
#[derive(Debug, Clone)]
pub struct GradientBoosting {
    config: GbrtConfig,
    seed: u64,
    models: Option<[QuantileModel; 3]>,
    dim: usize,
}

impl GradientBoosting {
    /// Creates an unfitted GBRT surrogate.
    pub fn new(config: GbrtConfig, seed: u64) -> Self {
        Self {
            config,
            seed,
            models: None,
            dim: 0,
        }
    }

    /// skopt-flavoured defaults (80 rounds, depth 3, lr 0.1).
    pub fn with_defaults(seed: u64) -> Self {
        Self::new(GbrtConfig::default(), seed)
    }
}

impl Surrogate for GradientBoosting {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> crate::Result<()> {
        self.dim = validate_training_set(x, y)?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let q16 = QuantileModel::fit(x, y, 0.16, &self.config, &mut rng);
        let q50 = QuantileModel::fit(x, y, 0.50, &self.config, &mut rng);
        let q84 = QuantileModel::fit(x, y, 0.84, &self.config, &mut rng);
        self.models = Some([q16, q50, q84]);
        Ok(())
    }

    fn predict(&self, point: &[f64]) -> crate::Result<Prediction> {
        let models = self.models.as_ref().ok_or(SurrogateError::NotFitted)?;
        if point.len() != self.dim {
            return Err(SurrogateError::DimensionMismatch {
                expected: format!("point of dimension {}", self.dim),
                found: format!("point of dimension {}", point.len()),
            });
        }
        let lo = models[0].predict(point);
        let mid = models[1].predict(point);
        let hi = models[2].predict(point);
        debug_assert_eq!(models[0].tau, 0.16);
        debug_assert_eq!(models[2].tau, 0.84);
        Ok(Prediction {
            mean: mid,
            std: ((hi - lo) / 2.0).max(0.0),
        })
    }

    fn reseed(&mut self, seed: u64) {
        self.seed = seed;
    }

    fn name(&self) -> &'static str {
        "GBRT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 29.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| 3.0 * r[0] + 1.0).collect();
        (x, y)
    }

    #[test]
    fn fits_a_linear_trend() {
        let (x, y) = line_data();
        let mut gbrt = GradientBoosting::with_defaults(1);
        gbrt.fit(&x, &y).unwrap();
        let p = gbrt.predict(&[0.5]).unwrap();
        assert!((p.mean - 2.5).abs() < 0.4, "mean {}", p.mean);
    }

    #[test]
    fn quantile_helper_matches_interpolation() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
        assert_eq!(quantile(&v, 0.5), 2.5);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn uncertainty_reflects_noise_spread() {
        // Heteroscedastic data: noisy right half.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let v = i as f64 / 39.0;
            x.push(vec![v]);
            let noise = if v > 0.5 {
                if i % 2 == 0 {
                    2.0
                } else {
                    -2.0
                }
            } else {
                0.0
            };
            y.push(v + noise);
        }
        let mut gbrt = GradientBoosting::with_defaults(2);
        gbrt.fit(&x, &y).unwrap();
        let calm = gbrt.predict(&[0.2]).unwrap();
        let noisy = gbrt.predict(&[0.8]).unwrap();
        assert!(noisy.std > calm.std, "{} vs {}", noisy.std, calm.std);
    }

    #[test]
    fn errors_before_fit_and_on_bad_dim() {
        let gbrt = GradientBoosting::with_defaults(0);
        assert_eq!(gbrt.predict(&[0.0]).unwrap_err(), SurrogateError::NotFitted);
        let (x, y) = line_data();
        let mut gbrt = gbrt;
        gbrt.fit(&x, &y).unwrap();
        assert!(matches!(
            gbrt.predict(&[]),
            Err(SurrogateError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn seeded_fits_are_reproducible() {
        let (x, y) = line_data();
        let mut a = GradientBoosting::with_defaults(5);
        let mut b = GradientBoosting::with_defaults(5);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict(&[0.4]).unwrap(), b.predict(&[0.4]).unwrap());
    }
}

//! Gaussian-process regression with a Matérn-5/2 ARD kernel.
//!
//! The paper's best-performing surrogate (§5.2, §5.5). The implementation
//! follows the standard exact-inference recipe (Rasmussen & Williams ch. 2):
//! standardize the targets, factorize `K + σ_n² I` with Cholesky, and pick
//! kernel hyperparameters by maximizing the log marginal likelihood over a
//! seeded random search (a gradient-free stand-in for skopt's L-BFGS
//! restarts that keeps the crate dependency-free).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use freedom_linalg::{cholesky, Cholesky, Matrix};

use crate::{validate_training_set, Prediction, Surrogate, SurrogateError};

/// Tuning knobs for the GP fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpConfig {
    /// Number of random hyperparameter candidates scored by marginal
    /// likelihood (the default candidate is always included).
    pub candidates: usize,
    /// Fixed observation-noise floor added to the kernel diagonal.
    pub noise_floor: f64,
    /// Coordinate-ascent refinement passes over the best candidate.
    pub refine_passes: usize,
    /// Model `ln y` instead of `y` when every target is positive.
    ///
    /// Execution times and costs are positive and compose
    /// multiplicatively (`time ≈ work / share / speed`), which is additive
    /// in log space — exactly what a stationary kernel captures well. The
    /// predictive distribution is mapped back through the log-normal
    /// moments.
    pub log_targets: bool,
}

impl Default for GpConfig {
    fn default() -> Self {
        Self {
            candidates: 40,
            noise_floor: 1e-6,
            refine_passes: 2,
            log_targets: true,
        }
    }
}

#[derive(Debug, Clone)]
struct Hyperparams {
    /// One ARD lengthscale per (normalized) feature dimension.
    lengthscales: Vec<f64>,
    /// Kernel signal variance σ_f².
    signal_var: f64,
    /// Observation noise variance σ_n².
    noise_var: f64,
}

#[derive(Debug, Clone)]
struct Fitted {
    x: Vec<Vec<f64>>,
    chol: Cholesky,
    alpha: Vec<f64>,
    hp: Hyperparams,
    y_mean: f64,
    y_std: f64,
    feat_lo: Vec<f64>,
    feat_span: Vec<f64>,
    /// Whether targets were modelled in log space.
    log_space: bool,
}

/// Exact GP regressor; see the module docs.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    config: GpConfig,
    seed: u64,
    fitted: Option<Fitted>,
}

impl GaussianProcess {
    /// Creates an unfitted GP.
    pub fn new(config: GpConfig, seed: u64) -> Self {
        Self {
            config,
            seed,
            fitted: None,
        }
    }

    /// Log marginal likelihood of the current fit (diagnostic).
    pub fn log_marginal_likelihood(&self) -> Option<f64> {
        let f = self.fitted.as_ref()?;
        Some(Self::mll(&f.chol, &f.alpha, &Self::standardized_targets(f)))
    }

    fn standardized_targets(f: &Fitted) -> Vec<f64> {
        // Recover the standardized targets from alpha: K_noisy * alpha = y_std.
        // Cheaper to recompute than to store; only used diagnostically.
        let n = f.x.len();
        let mut y = vec![0.0; n];
        for i in 0..n {
            for (j, a) in f.alpha.iter().enumerate() {
                y[i] += Self::kernel_value(&f.hp, &f.x[i], &f.x[j]) * a;
            }
            y[i] += f.hp.noise_var * f.alpha[i];
        }
        y
    }

    fn matern52(r: f64) -> f64 {
        let s5r = 5.0_f64.sqrt() * r;
        (1.0 + s5r + 5.0 * r * r / 3.0) * (-s5r).exp()
    }

    fn scaled_distance(hp: &Hyperparams, a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .zip(&hp.lengthscales)
            .map(|((&x, &y), &l)| ((x - y) / l).powi(2))
            .sum::<f64>()
            .sqrt()
    }

    fn kernel_value(hp: &Hyperparams, a: &[f64], b: &[f64]) -> f64 {
        hp.signal_var * Self::matern52(Self::scaled_distance(hp, a, b))
    }

    fn kernel_matrix(hp: &Hyperparams, x: &[Vec<f64>], noise_floor: f64) -> Matrix {
        let n = x.len();
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = Self::kernel_value(hp, &x[i], &x[j]);
                k.set(i, j, v);
                k.set(j, i, v);
            }
            k.set(i, i, k.get(i, i) + hp.noise_var + noise_floor);
        }
        k
    }

    fn mll(chol: &Cholesky, alpha: &[f64], y: &[f64]) -> f64 {
        let n = y.len() as f64;
        let fit_term: f64 = y.iter().zip(alpha).map(|(yi, ai)| yi * ai).sum();
        -0.5 * fit_term - 0.5 * chol.log_det() - 0.5 * n * (2.0 * std::f64::consts::PI).ln()
    }

    /// Weak log-normal prior over the hyperparameters, centred on the
    /// normalized-feature defaults. Pure maximum likelihood occasionally
    /// prefers a degenerate fit (tiny lengthscale + tiny noise) whose
    /// extrapolations are wild; the prior makes selection MAP-flavoured
    /// without forbidding extreme values when the data really supports
    /// them.
    fn log_prior(hp: &Hyperparams) -> f64 {
        // σ = ln(10): one decade of lengthscale costs 0.5 nats.
        let sigma2 = std::f64::consts::LN_10.powi(2);
        let mut lp = 0.0;
        for &l in &hp.lengthscales {
            lp -= l.ln().powi(2) / (2.0 * sigma2);
        }
        lp -= hp.signal_var.ln().powi(2) / (2.0 * sigma2);
        // Noise prior centred on 1e-3 of the (standardized) signal.
        lp -= (hp.noise_var.ln() - (1e-3f64).ln()).powi(2) / (2.0 * sigma2 * 4.0);
        lp
    }

    /// Diagonal of `K⁻¹` from the Cholesky factor (basis-vector solves).
    fn kinv_diag(chol: &Cholesky) -> Option<Vec<f64>> {
        let n = chol.factor().rows();
        let mut diag = Vec::with_capacity(n);
        for i in 0..n {
            let mut e = vec![0.0; n];
            e[i] = 1.0;
            let col = chol.solve(&e).ok()?;
            diag.push(col[i]);
        }
        Some(diag)
    }

    /// Leave-one-out predictive log-likelihood (Rasmussen & Williams,
    /// Eq. 5.10–5.12): `μ₋ᵢ = yᵢ − αᵢ/K⁻¹ᵢᵢ`, `σ₋ᵢ² = 1/K⁻¹ᵢᵢ`.
    ///
    /// Selecting hyperparameters by LOO rather than marginal likelihood is
    /// markedly more robust when the kernel is misspecified — which these
    /// performance surfaces guarantee — because it scores *predictions*,
    /// not data fit.
    fn loo_log_likelihood(chol: &Cholesky, alpha: &[f64]) -> Option<f64> {
        let kinv = Self::kinv_diag(chol)?;
        let n = alpha.len() as f64;
        let mut score = -0.5 * n * (2.0 * std::f64::consts::PI).ln();
        for (a, kii) in alpha.iter().zip(&kinv) {
            if *kii <= 0.0 {
                return None;
            }
            score += 0.5 * kii.ln() - 0.5 * a * a / kii;
        }
        Some(score)
    }

    fn try_fit(
        hp: &Hyperparams,
        x: &[Vec<f64>],
        y: &[f64],
        noise_floor: f64,
    ) -> Option<(Cholesky, Vec<f64>, f64)> {
        let k = Self::kernel_matrix(hp, x, noise_floor);
        let chol = cholesky(&k, 0.0).ok()?;
        let alpha = chol.solve(y).ok()?;
        let score = Self::loo_log_likelihood(&chol, &alpha)? + Self::log_prior(hp);
        score.is_finite().then_some((chol, alpha, score))
    }

    /// One-at-a-time multiplicative moves on every hyperparameter, kept
    /// when the marginal likelihood improves.
    fn refine(
        start: (Hyperparams, Cholesky, Vec<f64>, f64),
        x: &[Vec<f64>],
        y: &[f64],
        noise_floor: f64,
        passes: usize,
    ) -> (Hyperparams, Cholesky, Vec<f64>, f64) {
        let mut best = start;
        let factors = [0.25, 0.5, 2.0, 4.0];
        for _ in 0..passes {
            let n_params = best.0.lengthscales.len() + 2;
            for p in 0..n_params {
                for &f in &factors {
                    let mut hp = best.0.clone();
                    if p < hp.lengthscales.len() {
                        hp.lengthscales[p] = (hp.lengthscales[p] * f).clamp(1e-2, 1e2);
                    } else if p == hp.lengthscales.len() {
                        hp.signal_var = (hp.signal_var * f).clamp(1e-3, 1e3);
                    } else {
                        hp.noise_var = (hp.noise_var * f).clamp(1e-9, 1.0);
                    }
                    if let Some((chol, alpha, score)) = Self::try_fit(&hp, x, y, noise_floor) {
                        if score > best.3 {
                            best = (hp, chol, alpha, score);
                        }
                    }
                }
            }
        }
        best
    }

    /// Per-dimension median of pairwise absolute distances — the standard
    /// lengthscale initialization for stationary kernels. Dimensions with
    /// no spread fall back to 1.0.
    fn median_heuristic(x: &[Vec<f64>], dim: usize) -> Vec<f64> {
        (0..dim)
            .map(|d| {
                let mut dists = Vec::new();
                for i in 0..x.len() {
                    for j in (i + 1)..x.len() {
                        let delta = (x[i][d] - x[j][d]).abs();
                        if delta > 1e-12 {
                            dists.push(delta);
                        }
                    }
                }
                if dists.is_empty() {
                    return 1.0;
                }
                dists.sort_by(f64::total_cmp);
                dists[dists.len() / 2].clamp(0.05, 10.0)
            })
            .collect()
    }

    fn normalize_features(x: &[Vec<f64>], dim: usize) -> (Vec<Vec<f64>>, Vec<f64>, Vec<f64>) {
        let mut lo = vec![f64::INFINITY; dim];
        let mut hi = vec![f64::NEG_INFINITY; dim];
        for row in x {
            for d in 0..dim {
                lo[d] = lo[d].min(row[d]);
                hi[d] = hi[d].max(row[d]);
            }
        }
        let span: Vec<f64> = lo
            .iter()
            .zip(&hi)
            .map(|(&l, &h)| if h - l > 1e-12 { h - l } else { 1.0 })
            .collect();
        let normed = x
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(d, &v)| (v - lo[d]) / span[d])
                    .collect()
            })
            .collect();
        (normed, lo, span)
    }
}

impl Surrogate for GaussianProcess {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> crate::Result<()> {
        let dim = validate_training_set(x, y)?;

        // Optionally model log targets (positive-only), then standardize so
        // signal-variance priors are scale-free.
        let log_space = self.config.log_targets && y.iter().all(|&v| v > 0.0);
        let y_work: Vec<f64> = if log_space {
            y.iter().map(|v| v.ln()).collect()
        } else {
            y.to_vec()
        };
        let y_mean = y_work.iter().sum::<f64>() / y_work.len() as f64;
        let y_var = y_work.iter().map(|v| (v - y_mean).powi(2)).sum::<f64>() / y_work.len() as f64;
        let y_std = if y_var.sqrt() > 1e-12 {
            y_var.sqrt()
        } else {
            1.0
        };
        let y_standardized: Vec<f64> = y_work.iter().map(|v| (v - y_mean) / y_std).collect();

        let (x_norm, feat_lo, feat_span) = Self::normalize_features(x, dim);

        // Candidate 0 is a sensible default, candidate 1 the classic
        // median-distance heuristic (robust when random draws all land
        // badly); the rest are random draws in log space. The best
        // marginal likelihood wins.
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut best: Option<(Hyperparams, Cholesky, Vec<f64>, f64)> = None;
        for c in 0..=(self.config.candidates + 1) {
            let hp = if c == 0 {
                Hyperparams {
                    lengthscales: vec![1.0; dim],
                    signal_var: 1.0,
                    noise_var: 1e-4,
                }
            } else if c == 1 {
                Hyperparams {
                    lengthscales: Self::median_heuristic(&x_norm, dim),
                    signal_var: 1.0,
                    noise_var: 1e-4,
                }
            } else {
                Hyperparams {
                    lengthscales: (0..dim)
                        .map(|_| 10f64.powf(rng.gen_range(-1.0..1.0)))
                        .collect(),
                    signal_var: 10f64.powf(rng.gen_range(-0.5..0.5)),
                    noise_var: 10f64.powf(rng.gen_range(-6.0..-1.0)),
                }
            };
            if let Some((chol, alpha, score)) =
                Self::try_fit(&hp, &x_norm, &y_standardized, self.config.noise_floor)
            {
                let better = best.as_ref().map(|b| score > b.3).unwrap_or(true);
                if better {
                    best = Some((hp, chol, alpha, score));
                }
            }
        }
        let best = best.ok_or(SurrogateError::Linalg(
            freedom_linalg::LinalgError::NotPositiveDefinite,
        ))?;

        // Coordinate ascent on the marginal likelihood around the winner:
        // a cheap, deterministic stand-in for skopt's L-BFGS restarts.
        let (hp, chol, alpha, _) = Self::refine(
            best,
            &x_norm,
            &y_standardized,
            self.config.noise_floor,
            self.config.refine_passes,
        );
        self.fitted = Some(Fitted {
            x: x_norm,
            chol,
            alpha,
            hp,
            y_mean,
            y_std,
            feat_lo,
            feat_span,
            log_space,
        });
        Ok(())
    }

    fn predict(&self, point: &[f64]) -> crate::Result<Prediction> {
        let f = self.fitted.as_ref().ok_or(SurrogateError::NotFitted)?;
        let dim = f.feat_lo.len();
        if point.len() != dim {
            return Err(SurrogateError::DimensionMismatch {
                expected: format!("point of dimension {dim}"),
                found: format!("point of dimension {}", point.len()),
            });
        }
        let p: Vec<f64> = point
            .iter()
            .enumerate()
            .map(|(d, &v)| (v - f.feat_lo[d]) / f.feat_span[d])
            .collect();
        let k_star: Vec<f64> =
            f.x.iter()
                .map(|xi| Self::kernel_value(&f.hp, &p, xi))
                .collect();
        let mean_std_space: f64 = k_star.iter().zip(&f.alpha).map(|(k, a)| k * a).sum();
        let v = f.chol.solve_lower(&k_star)?;
        let k_ss = f.hp.signal_var; // k(p, p) for a stationary kernel
        let var = (k_ss - v.iter().map(|vi| vi * vi).sum::<f64>()).max(0.0);
        let mu = mean_std_space * f.y_std + f.y_mean;
        let sigma2 = var * f.y_std * f.y_std;
        if f.log_space {
            // Log-normal moments, with the exponent clamped so a wildly
            // uncertain extrapolation cannot overflow.
            let s2 = sigma2.min(10.0);
            let mean = (mu + s2 / 2.0).min(700.0).exp();
            let std = mean * (s2.exp_m1()).max(0.0).sqrt();
            Ok(Prediction { mean, std })
        } else {
            Ok(Prediction {
                mean: mu,
                std: sigma2.sqrt(),
            })
        }
    }

    fn name(&self) -> &'static str {
        "GP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_1d(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect()
    }

    #[test]
    fn interpolates_training_points() {
        let x = grid_1d(12);
        let y: Vec<f64> = x.iter().map(|r| (4.0 * r[0]).sin() + 2.0).collect();
        let mut gp = GaussianProcess::new(GpConfig::default(), 3);
        gp.fit(&x, &y).unwrap();
        for (xi, yi) in x.iter().zip(&y) {
            let p = gp.predict(xi).unwrap();
            assert!((p.mean - yi).abs() < 0.05, "at {xi:?}: {} vs {yi}", p.mean);
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let x = grid_1d(8);
        let y: Vec<f64> = x.iter().map(|r| r[0] * 2.0).collect();
        let mut gp = GaussianProcess::new(GpConfig::default(), 3);
        gp.fit(&x, &y).unwrap();
        let near = gp.predict(&[0.5]).unwrap();
        let far = gp.predict(&[3.0]).unwrap();
        assert!(far.std > near.std);
    }

    #[test]
    fn recovers_smooth_function_between_points() {
        let x = grid_1d(15);
        let y: Vec<f64> = x.iter().map(|r| (3.0 * r[0]).cos()).collect();
        let mut gp = GaussianProcess::new(GpConfig::default(), 9);
        gp.fit(&x, &y).unwrap();
        let p = gp.predict(&[0.4321]).unwrap();
        assert!((p.mean - (3.0 * 0.4321f64).cos()).abs() < 0.05);
    }

    #[test]
    fn errors_before_fit_and_on_bad_dimension() {
        let gp = GaussianProcess::new(GpConfig::default(), 1);
        assert_eq!(gp.predict(&[0.0]).unwrap_err(), SurrogateError::NotFitted);
        let mut gp = gp;
        gp.fit(&grid_1d(5), &[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert!(matches!(
            gp.predict(&[0.0, 0.0]),
            Err(SurrogateError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn handles_constant_targets() {
        let x = grid_1d(6);
        let y = vec![5.0; 6];
        let mut gp = GaussianProcess::new(GpConfig::default(), 1);
        gp.fit(&x, &y).unwrap();
        let p = gp.predict(&[0.3]).unwrap();
        assert!((p.mean - 5.0).abs() < 1e-6);
    }

    #[test]
    fn handles_multidimensional_ard() {
        // y depends only on dim 0; ARD should still fit fine.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..6 {
            for j in 0..4 {
                x.push(vec![i as f64 / 5.0, j as f64 / 3.0]);
                y.push((i as f64 / 5.0) * 10.0);
            }
        }
        let mut gp = GaussianProcess::new(GpConfig::default(), 5);
        gp.fit(&x, &y).unwrap();
        let p = gp.predict(&[0.5, 0.2]).unwrap();
        assert!((p.mean - 5.0).abs() < 0.5, "mean {}", p.mean);
    }

    #[test]
    fn mll_is_finite_after_fit() {
        let x = grid_1d(10);
        let y: Vec<f64> = x.iter().map(|r| r[0].exp()).collect();
        let mut gp = GaussianProcess::new(GpConfig::default(), 2);
        assert!(gp.log_marginal_likelihood().is_none());
        gp.fit(&x, &y).unwrap();
        assert!(gp.log_marginal_likelihood().unwrap().is_finite());
    }
}

//! Gaussian-process regression with a Matérn-5/2 ARD kernel.
//!
//! The paper's best-performing surrogate (§5.2, §5.5). The implementation
//! follows the standard exact-inference recipe (Rasmussen & Williams ch. 2):
//! standardize the targets, factorize `K + σ_n² I` with Cholesky, and pick
//! kernel hyperparameters by maximizing a leave-one-out score over a
//! seeded random search (a gradient-free stand-in for skopt's L-BFGS
//! restarts that keeps the crate dependency-free).
//!
//! # The incremental hot path
//!
//! A BO loop refits the GP after every trial, and the training set almost
//! always grows by exactly one row. [`GaussianProcess`] therefore keeps
//! its previous fit around and [`Surrogate::fit_update`] takes three
//! tiers, fastest first:
//!
//! 1. **alpha-only** — same features, new targets (a failed trial or a
//!    re-normalized objective): reuse the kernel factor, re-solve for
//!    `α` in O(n²);
//! 2. **append-one** — the feature matrix extends the previous one by one
//!    row under an unchanged normalization: extend the Cholesky factor
//!    with [`freedom_linalg::Cholesky::append_row`] in O(n²),
//!    bit-identically to refactorizing from scratch, and keep the
//!    previous hyperparameters;
//! 3. **full** — every [`GpConfig::refit_every`]-th update, or whenever
//!    the cached state does not match (first fit, sliced search space,
//!    normalization shift): run the full candidate search, warm-started
//!    with the previous fit's hyperparameters as an extra candidate.
//!
//! [`Surrogate::fit`] always takes the full path and resets the schedule,
//! so one-shot users see the original from-scratch behavior.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use freedom_linalg::{cholesky, Cholesky, Matrix};

use crate::{validate_training_set, Prediction, Surrogate, SurrogateError};

/// Tuning knobs for the GP fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpConfig {
    /// Number of random hyperparameter candidates scored by the LOO
    /// likelihood (the default candidate is always included).
    pub candidates: usize,
    /// Fixed observation-noise floor added to the kernel diagonal.
    pub noise_floor: f64,
    /// Coordinate-ascent refinement passes over the best candidate.
    pub refine_passes: usize,
    /// Model `ln y` instead of `y` when every target is positive.
    ///
    /// Execution times and costs are positive and compose
    /// multiplicatively (`time ≈ work / share / speed`), which is additive
    /// in log space — exactly what a stationary kernel captures well. The
    /// predictive distribution is mapped back through the log-normal
    /// moments.
    pub log_targets: bool,
    /// How often [`Surrogate::fit_update`] runs the full hyperparameter
    /// search: every `refit_every`-th update (1 = always). In between,
    /// updates reuse the previous hyperparameters and extend the Cholesky
    /// factor incrementally.
    pub refit_every: usize,
}

impl Default for GpConfig {
    fn default() -> Self {
        Self {
            candidates: 40,
            noise_floor: 1e-6,
            refine_passes: 2,
            log_targets: true,
            refit_every: 4,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Hyperparams {
    /// One ARD lengthscale per (normalized) feature dimension.
    lengthscales: Vec<f64>,
    /// Kernel signal variance σ_f².
    signal_var: f64,
    /// Observation noise variance σ_n².
    noise_var: f64,
}

#[derive(Debug, Clone)]
struct Fitted {
    /// Normalized feature matrix (n × d), the kernel's input.
    x: Matrix,
    chol: Cholesky,
    alpha: Vec<f64>,
    /// Standardized targets, stored so the marginal likelihood never has
    /// to reconstruct them through an O(n²·d) kernel rebuild.
    y_std_targets: Vec<f64>,
    hp: Hyperparams,
    y_mean: f64,
    y_std: f64,
    feat_lo: Vec<f64>,
    feat_span: Vec<f64>,
    /// Whether targets were modelled in log space.
    log_space: bool,
}

/// Cached batched-prediction state for a fixed candidate set.
///
/// The BO loop predicts the same candidate encodings at every step while
/// the training set grows by one row. `k_star[i][j] = k(pᵢ, xⱼ)` and
/// `v = L⁻¹ k_star` per candidate depend only on the hyperparameters and
/// the training rows — both frozen along the incremental tiers — and
/// forward substitution is row-incremental, so appending a training row
/// just appends one column to each. Re-deriving a column from scratch
/// produces the same bits, which keeps cached and uncached predictions
/// identical.
#[derive(Debug, Clone)]
struct BatchCache {
    /// The raw candidate encodings this cache was built for.
    points: Vec<Vec<f64>>,
    /// Normalized candidates (m × d).
    p_norm: Matrix,
    /// Cross-kernel matrix (m × n).
    k_star: Matrix,
    /// Forward-substitution solves `L⁻¹ k_star` per candidate (m × n).
    v: Matrix,
    /// Training rows covered by the cached columns.
    n: usize,
    /// Hyperparameter generation the columns were computed under.
    generation: u64,
}

/// Exact GP regressor; see the module docs.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    config: GpConfig,
    seed: u64,
    fitted: Option<Fitted>,
    /// Incremental updates since the last full hyperparameter search.
    fits_since_full: usize,
    /// Bumped on every full fit; invalidates [`BatchCache`] columns.
    generation: u64,
    batch_cache: Option<BatchCache>,
}

/// Target preprocessing shared by every fit path.
struct Targets {
    y_standardized: Vec<f64>,
    y_mean: f64,
    y_std: f64,
    log_space: bool,
}

impl GaussianProcess {
    /// Creates an unfitted GP.
    pub fn new(config: GpConfig, seed: u64) -> Self {
        Self {
            config,
            seed,
            fitted: None,
            fits_since_full: 0,
            generation: 0,
            batch_cache: None,
        }
    }

    /// Log marginal likelihood of the current fit (diagnostic).
    pub fn log_marginal_likelihood(&self) -> Option<f64> {
        let f = self.fitted.as_ref()?;
        Some(Self::mll(&f.chol, &f.alpha, &f.y_std_targets))
    }

    /// Incremental updates absorbed since the last full candidate search
    /// (diagnostic; 0 right after [`Surrogate::fit`]).
    pub fn fits_since_full(&self) -> usize {
        self.fits_since_full
    }

    fn matern52(r: f64) -> f64 {
        let s5r = 5.0_f64.sqrt() * r;
        (1.0 + s5r + 5.0 * r * r / 3.0) * (-s5r).exp()
    }

    fn scaled_distance(hp: &Hyperparams, a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .zip(&hp.lengthscales)
            .map(|((&x, &y), &l)| ((x - y) / l).powi(2))
            .sum::<f64>()
            .sqrt()
    }

    fn kernel_value(hp: &Hyperparams, a: &[f64], b: &[f64]) -> f64 {
        hp.signal_var * Self::matern52(Self::scaled_distance(hp, a, b))
    }

    fn kernel_matrix(hp: &Hyperparams, x: &Matrix, noise_floor: f64) -> Matrix {
        let n = x.rows();
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = Self::kernel_value(hp, x.row(i), x.row(j));
                k.set(i, j, v);
                k.set(j, i, v);
            }
            k.set(i, i, k.get(i, i) + hp.noise_var + noise_floor);
        }
        k
    }

    /// The noisy kernel diagonal entry `k(x, x) + σ_n² + floor`, computed
    /// through the same code path as [`Self::kernel_matrix`] so the
    /// incremental append stays bit-identical to a full rebuild.
    fn kernel_diag(hp: &Hyperparams, row: &[f64], noise_floor: f64) -> f64 {
        Self::kernel_value(hp, row, row) + hp.noise_var + noise_floor
    }

    fn mll(chol: &Cholesky, alpha: &[f64], y: &[f64]) -> f64 {
        let n = y.len() as f64;
        let fit_term: f64 = y.iter().zip(alpha).map(|(yi, ai)| yi * ai).sum();
        -0.5 * fit_term - 0.5 * chol.log_det() - 0.5 * n * (2.0 * std::f64::consts::PI).ln()
    }

    /// Weak log-normal prior over the hyperparameters, centred on the
    /// normalized-feature defaults. Pure maximum likelihood occasionally
    /// prefers a degenerate fit (tiny lengthscale + tiny noise) whose
    /// extrapolations are wild; the prior makes selection MAP-flavoured
    /// without forbidding extreme values when the data really supports
    /// them.
    fn log_prior(hp: &Hyperparams) -> f64 {
        // σ = ln(10): one decade of lengthscale costs 0.5 nats.
        let sigma2 = std::f64::consts::LN_10.powi(2);
        let mut lp = 0.0;
        for &l in &hp.lengthscales {
            lp -= l.ln().powi(2) / (2.0 * sigma2);
        }
        lp -= hp.signal_var.ln().powi(2) / (2.0 * sigma2);
        // Noise prior centred on 1e-3 of the (standardized) signal.
        lp -= (hp.noise_var.ln() - (1e-3f64).ln()).powi(2) / (2.0 * sigma2 * 4.0);
        lp
    }

    /// Leave-one-out predictive log-likelihood (Rasmussen & Williams,
    /// Eq. 5.10–5.12): `μ₋ᵢ = yᵢ − αᵢ/K⁻¹ᵢᵢ`, `σ₋ᵢ² = 1/K⁻¹ᵢᵢ`.
    ///
    /// Selecting hyperparameters by LOO rather than marginal likelihood is
    /// markedly more robust when the kernel is misspecified — which these
    /// performance surfaces guarantee — because it scores *predictions*,
    /// not data fit. The `K⁻¹` diagonal comes from one O(n³/6) triangular
    /// inversion ([`Cholesky::inv_diag`]) instead of n basis solves.
    fn loo_log_likelihood(chol: &Cholesky, alpha: &[f64]) -> Option<f64> {
        let kinv = chol.inv_diag();
        let n = alpha.len() as f64;
        let mut score = -0.5 * n * (2.0 * std::f64::consts::PI).ln();
        for (a, kii) in alpha.iter().zip(&kinv) {
            if *kii <= 0.0 {
                return None;
            }
            score += 0.5 * kii.ln() - 0.5 * a * a / kii;
        }
        Some(score)
    }

    fn try_fit(
        hp: &Hyperparams,
        x: &Matrix,
        y: &[f64],
        noise_floor: f64,
    ) -> Option<(Cholesky, Vec<f64>, f64)> {
        let k = Self::kernel_matrix(hp, x, noise_floor);
        let chol = cholesky(&k, 0.0).ok()?;
        let alpha = chol.solve(y).ok()?;
        let score = Self::loo_log_likelihood(&chol, &alpha)? + Self::log_prior(hp);
        score.is_finite().then_some((chol, alpha, score))
    }

    /// One-at-a-time multiplicative moves on every hyperparameter, kept
    /// when the LOO score improves.
    fn refine(
        start: (Hyperparams, Cholesky, Vec<f64>, f64),
        x: &Matrix,
        y: &[f64],
        noise_floor: f64,
        passes: usize,
    ) -> (Hyperparams, Cholesky, Vec<f64>, f64) {
        let mut best = start;
        let factors = [0.25, 0.5, 2.0, 4.0];
        for _ in 0..passes {
            let n_params = best.0.lengthscales.len() + 2;
            for p in 0..n_params {
                for &f in &factors {
                    let mut hp = best.0.clone();
                    if p < hp.lengthscales.len() {
                        hp.lengthscales[p] = (hp.lengthscales[p] * f).clamp(1e-2, 1e2);
                    } else if p == hp.lengthscales.len() {
                        hp.signal_var = (hp.signal_var * f).clamp(1e-3, 1e3);
                    } else {
                        hp.noise_var = (hp.noise_var * f).clamp(1e-9, 1.0);
                    }
                    if let Some((chol, alpha, score)) = Self::try_fit(&hp, x, y, noise_floor) {
                        if score > best.3 {
                            best = (hp, chol, alpha, score);
                        }
                    }
                }
            }
        }
        best
    }

    /// Per-dimension median of pairwise absolute distances — the standard
    /// lengthscale initialization for stationary kernels. Dimensions with
    /// no spread fall back to 1.0.
    fn median_heuristic(x: &Matrix, dim: usize) -> Vec<f64> {
        (0..dim)
            .map(|d| {
                let mut dists = Vec::new();
                for i in 0..x.rows() {
                    for j in (i + 1)..x.rows() {
                        let delta = (x.row(i)[d] - x.row(j)[d]).abs();
                        if delta > 1e-12 {
                            dists.push(delta);
                        }
                    }
                }
                if dists.is_empty() {
                    return 1.0;
                }
                dists.sort_by(f64::total_cmp);
                dists[dists.len() / 2].clamp(0.05, 10.0)
            })
            .collect()
    }

    fn normalize_features(x: &[Vec<f64>], dim: usize) -> (Matrix, Vec<f64>, Vec<f64>) {
        let mut lo = vec![f64::INFINITY; dim];
        let mut hi = vec![f64::NEG_INFINITY; dim];
        for row in x {
            for d in 0..dim {
                lo[d] = lo[d].min(row[d]);
                hi[d] = hi[d].max(row[d]);
            }
        }
        let span: Vec<f64> = lo
            .iter()
            .zip(&hi)
            .map(|(&l, &h)| if h - l > 1e-12 { h - l } else { 1.0 })
            .collect();
        let mut normed = Matrix::zeros(x.len(), dim);
        for (r, row) in x.iter().enumerate() {
            let out = normed.row_mut(r);
            for (d, &v) in row.iter().enumerate() {
                out[d] = (v - lo[d]) / span[d];
            }
        }
        (normed, lo, span)
    }

    /// Optionally log-transform, then standardize the targets.
    fn prepare_targets(&self, y: &[f64]) -> Targets {
        let log_space = self.config.log_targets && y.iter().all(|&v| v > 0.0);
        let y_work: Vec<f64> = if log_space {
            y.iter().map(|v| v.ln()).collect()
        } else {
            y.to_vec()
        };
        let y_mean = y_work.iter().sum::<f64>() / y_work.len() as f64;
        let y_var = y_work.iter().map(|v| (v - y_mean).powi(2)).sum::<f64>() / y_work.len() as f64;
        let y_std = if y_var.sqrt() > 1e-12 {
            y_var.sqrt()
        } else {
            1.0
        };
        let y_standardized = y_work.iter().map(|v| (v - y_mean) / y_std).collect();
        Targets {
            y_standardized,
            y_mean,
            y_std,
            log_space,
        }
    }

    /// The full candidate search + refinement, optionally warm-started
    /// with the previous fit's hyperparameters as an extra candidate.
    fn full_fit(
        &mut self,
        x_norm: Matrix,
        feat_lo: Vec<f64>,
        feat_span: Vec<f64>,
        targets: Targets,
        warm: Option<Hyperparams>,
    ) -> crate::Result<()> {
        let dim = x_norm.cols();
        let y = &targets.y_standardized;

        // Candidate 0 is a sensible default, candidate 1 the classic
        // median-distance heuristic (robust when random draws all land
        // badly), candidate 2 the previous fit's winner when warm; the
        // rest are random draws in log space. The best LOO score wins.
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut best: Option<(Hyperparams, Cholesky, Vec<f64>, f64)> = None;
        let fixed: Vec<Hyperparams> = [
            Some(Hyperparams {
                lengthscales: vec![1.0; dim],
                signal_var: 1.0,
                noise_var: 1e-4,
            }),
            Some(Hyperparams {
                lengthscales: Self::median_heuristic(&x_norm, dim),
                signal_var: 1.0,
                noise_var: 1e-4,
            }),
            warm.filter(|hp| hp.lengthscales.len() == dim),
        ]
        .into_iter()
        .flatten()
        .collect();
        let n_random = self.config.candidates;
        for c in 0..(fixed.len() + n_random) {
            let hp = if c < fixed.len() {
                fixed[c].clone()
            } else {
                Hyperparams {
                    lengthscales: (0..dim)
                        .map(|_| 10f64.powf(rng.gen_range(-1.0..1.0)))
                        .collect(),
                    signal_var: 10f64.powf(rng.gen_range(-0.5..0.5)),
                    noise_var: 10f64.powf(rng.gen_range(-6.0..-1.0)),
                }
            };
            if let Some((chol, alpha, score)) =
                Self::try_fit(&hp, &x_norm, y, self.config.noise_floor)
            {
                let better = best.as_ref().map(|b| score > b.3).unwrap_or(true);
                if better {
                    best = Some((hp, chol, alpha, score));
                }
            }
        }
        let best = best.ok_or(SurrogateError::Linalg(
            freedom_linalg::LinalgError::NotPositiveDefinite,
        ))?;

        // Coordinate ascent on the LOO score around the winner: a cheap,
        // deterministic stand-in for skopt's L-BFGS restarts.
        let (hp, chol, alpha, _) = Self::refine(
            best,
            &x_norm,
            y,
            self.config.noise_floor,
            self.config.refine_passes,
        );
        self.fitted = Some(Fitted {
            x: x_norm,
            chol,
            alpha,
            y_std_targets: targets.y_standardized,
            hp,
            y_mean: targets.y_mean,
            y_std: targets.y_std,
            feat_lo,
            feat_span,
            log_space: targets.log_space,
        });
        self.fits_since_full = 0;
        self.generation = self.generation.wrapping_add(1);
        self.batch_cache = None;
        Ok(())
    }

    /// Maps one candidate's summary statistics to a [`Prediction`]; the
    /// single shared tail of every prediction path, cached or not.
    fn finish_prediction(f: &Fitted, mean_std_space: f64, v_sq_sum: f64) -> Prediction {
        let k_ss = f.hp.signal_var; // k(p, p) for a stationary kernel
        let var = (k_ss - v_sq_sum).max(0.0);
        let mu = mean_std_space * f.y_std + f.y_mean;
        let sigma2 = var * f.y_std * f.y_std;
        if f.log_space {
            // Log-normal moments, with the exponent clamped so a wildly
            // uncertain extrapolation cannot overflow.
            let s2 = sigma2.min(10.0);
            let mean = (mu + s2 / 2.0).min(700.0).exp();
            let std = mean * (s2.exp_m1()).max(0.0).sqrt();
            Prediction { mean, std }
        } else {
            Prediction {
                mean: mu,
                std: sigma2.sqrt(),
            }
        }
    }

    /// Whether `x_norm`'s leading rows are bit-identical to the previous
    /// fit's feature matrix under the same normalization.
    fn extends_previous(prev: &Fitted, x_norm: &Matrix, lo: &[f64], span: &[f64]) -> bool {
        let (n_prev, dim) = (prev.x.rows(), prev.x.cols());
        x_norm.cols() == dim
            && x_norm.rows() >= n_prev
            && prev.feat_lo == lo
            && prev.feat_span == span
            && x_norm.as_slice()[..n_prev * dim] == *prev.x.as_slice()
    }
}

impl Surrogate for GaussianProcess {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> crate::Result<()> {
        let dim = validate_training_set(x, y)?;
        let targets = self.prepare_targets(y);
        let (x_norm, feat_lo, feat_span) = Self::normalize_features(x, dim);
        self.full_fit(x_norm, feat_lo, feat_span, targets, None)
    }

    fn fit_update(&mut self, x: &[Vec<f64>], y: &[f64], step_seed: u64) -> crate::Result<()> {
        self.seed = step_seed;
        let dim = validate_training_set(x, y)?;
        let targets = self.prepare_targets(y);
        let (x_norm, feat_lo, feat_span) = Self::normalize_features(x, dim);

        let due_full = self
            .fitted
            .as_ref()
            .map(|_| self.fits_since_full + 1 >= self.config.refit_every.max(1))
            .unwrap_or(true);
        if !due_full {
            let prev = self.fitted.as_ref().expect("checked above");
            if Self::extends_previous(prev, &x_norm, &feat_lo, &feat_span) {
                let n_prev = prev.x.rows();
                let n_new = x_norm.rows();
                if n_new == n_prev {
                    // Tier 1: same features, new targets — re-solve alpha.
                    let alpha = prev.chol.solve(&targets.y_standardized)?;
                    let f = self.fitted.as_mut().expect("checked above");
                    f.alpha = alpha;
                    f.y_std_targets = targets.y_standardized;
                    f.y_mean = targets.y_mean;
                    f.y_std = targets.y_std;
                    f.log_space = targets.log_space;
                    self.fits_since_full += 1;
                    return Ok(());
                }
                if n_new == n_prev + 1 {
                    // Tier 2: one appended trial — extend the factor.
                    let new_row = x_norm.row(n_prev);
                    let mut a_row: Vec<f64> = (0..n_prev)
                        .map(|i| Self::kernel_value(&prev.hp, new_row, prev.x.row(i)))
                        .collect();
                    a_row.push(Self::kernel_diag(
                        &prev.hp,
                        new_row,
                        self.config.noise_floor,
                    ));
                    let mut chol = prev.chol.clone();
                    if chol.append_row(&a_row).is_ok() {
                        let alpha = chol.solve(&targets.y_standardized)?;
                        let f = self.fitted.as_mut().expect("checked above");
                        f.x = x_norm;
                        f.chol = chol;
                        f.alpha = alpha;
                        f.y_std_targets = targets.y_standardized;
                        f.y_mean = targets.y_mean;
                        f.y_std = targets.y_std;
                        f.log_space = targets.log_space;
                        self.fits_since_full += 1;
                        return Ok(());
                    }
                    // Not positive definite at the cached jitter: fall
                    // through to the full search.
                }
            }
        }

        // Tier 3: scheduled or unavoidable full search, warm-started.
        let warm = self.fitted.as_ref().map(|f| f.hp.clone());
        self.full_fit(x_norm, feat_lo, feat_span, targets, warm)
    }

    fn predict(&self, point: &[f64]) -> crate::Result<Prediction> {
        let mut out = self.predict_batch(std::slice::from_ref(&point.to_vec()))?;
        Ok(out.pop().expect("one point in, one prediction out"))
    }

    fn predict_batch(&self, points: &[Vec<f64>]) -> crate::Result<Vec<Prediction>> {
        let f = self.fitted.as_ref().ok_or(SurrogateError::NotFitted)?;
        let dim = f.feat_lo.len();
        if let Some(p) = points.iter().find(|p| p.len() != dim) {
            return Err(SurrogateError::DimensionMismatch {
                expected: format!("points of dimension {dim}"),
                found: format!("point of dimension {}", p.len()),
            });
        }
        let n = f.x.rows();
        let m = points.len();
        // One K* cross-kernel matrix for the whole batch, then one batched
        // forward-substitution pass. Per-point arithmetic matches the
        // incremental path in `predict_batch_mut` bit for bit.
        let mut p = vec![0.0; dim];
        let mut k_star = Matrix::zeros(m, n);
        for (r, point) in points.iter().enumerate() {
            for (d, &raw) in point.iter().enumerate() {
                p[d] = (raw - f.feat_lo[d]) / f.feat_span[d];
            }
            let row = k_star.row_mut(r);
            for (i, k) in row.iter_mut().enumerate() {
                *k = Self::kernel_value(&f.hp, &p, f.x.row(i));
            }
        }
        let v = f.chol.solve_lower_multi(&k_star)?;
        Ok((0..m)
            .map(|r| {
                let mean_std_space: f64 =
                    k_star.row(r).iter().zip(&f.alpha).map(|(k, a)| k * a).sum();
                let v_sq_sum = v.row(r).iter().map(|vi| vi * vi).sum::<f64>();
                Self::finish_prediction(f, mean_std_space, v_sq_sum)
            })
            .collect())
    }

    fn predict_batch_mut(&mut self, points: &[Vec<f64>]) -> crate::Result<Vec<Prediction>> {
        let Some(f) = self.fitted.as_ref() else {
            return Err(SurrogateError::NotFitted);
        };
        let dim = f.feat_lo.len();
        if let Some(p) = points.iter().find(|p| p.len() != dim) {
            return Err(SurrogateError::DimensionMismatch {
                expected: format!("points of dimension {dim}"),
                found: format!("point of dimension {}", p.len()),
            });
        }
        let n = f.x.rows();
        let m = points.len();

        // Reuse cached columns when they were computed under the current
        // hyperparameters for a training prefix of the current rows and
        // the exact same candidate set.
        let reusable = self
            .batch_cache
            .as_ref()
            .is_some_and(|c| c.generation == self.generation && c.n <= n && c.points == points);
        let mut cache = if reusable {
            self.batch_cache.take().expect("checked reusable")
        } else {
            let mut p_norm = Matrix::zeros(m, dim);
            for (r, point) in points.iter().enumerate() {
                let row = p_norm.row_mut(r);
                for (d, &raw) in point.iter().enumerate() {
                    row[d] = (raw - f.feat_lo[d]) / f.feat_span[d];
                }
            }
            BatchCache {
                points: points.to_vec(),
                p_norm,
                k_star: Matrix::zeros(m, n),
                v: Matrix::zeros(m, n),
                n: 0,
                generation: self.generation,
            }
        };

        // Grow K* and V out to n columns. Continuing forward substitution
        // from column `cache.n` performs exactly the arithmetic a full
        // solve would, so cached and fresh predictions agree bit for bit.
        if cache.n < n {
            let mut k_star = Matrix::zeros(m, n);
            let mut v = Matrix::zeros(m, n);
            let l = f.chol.factor().as_slice();
            for i in 0..m {
                k_star.row_mut(i)[..cache.n].copy_from_slice(&cache.k_star.row(i)[..cache.n]);
                v.row_mut(i)[..cache.n].copy_from_slice(&cache.v.row(i)[..cache.n]);
                for j in cache.n..n {
                    let k = Self::kernel_value(&f.hp, cache.p_norm.row(i), f.x.row(j));
                    k_star.row_mut(i)[j] = k;
                    // Same accumulation order as `solve_lower_into`
                    // (one dot product, subtracted once) so the result
                    // rounds identically.
                    let vi = v.row_mut(i);
                    let mut s = 0.0;
                    for (ljk, vk) in l[j * n..j * n + j].iter().zip(&vi[..j]) {
                        s += ljk * vk;
                    }
                    vi[j] = (k - s) / l[j * n + j];
                }
            }
            cache.k_star = k_star;
            cache.v = v;
            cache.n = n;
        }

        let predictions = (0..m)
            .map(|i| {
                let k_star = cache.k_star.row(i);
                let mean_std_space: f64 = k_star.iter().zip(&f.alpha).map(|(k, a)| k * a).sum();
                let v_sq_sum = cache.v.row(i).iter().map(|vi| vi * vi).sum::<f64>();
                Self::finish_prediction(f, mean_std_space, v_sq_sum)
            })
            .collect();
        self.batch_cache = Some(cache);
        Ok(predictions)
    }

    fn reseed(&mut self, seed: u64) {
        self.seed = seed;
    }

    fn name(&self) -> &'static str {
        "GP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_1d(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect()
    }

    #[test]
    fn interpolates_training_points() {
        let x = grid_1d(12);
        let y: Vec<f64> = x.iter().map(|r| (4.0 * r[0]).sin() + 2.0).collect();
        let mut gp = GaussianProcess::new(GpConfig::default(), 3);
        gp.fit(&x, &y).unwrap();
        for (xi, yi) in x.iter().zip(&y) {
            let p = gp.predict(xi).unwrap();
            assert!((p.mean - yi).abs() < 0.05, "at {xi:?}: {} vs {yi}", p.mean);
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let x = grid_1d(8);
        let y: Vec<f64> = x.iter().map(|r| r[0] * 2.0).collect();
        let mut gp = GaussianProcess::new(GpConfig::default(), 3);
        gp.fit(&x, &y).unwrap();
        let near = gp.predict(&[0.5]).unwrap();
        let far = gp.predict(&[3.0]).unwrap();
        assert!(far.std > near.std);
    }

    #[test]
    fn recovers_smooth_function_between_points() {
        let x = grid_1d(15);
        let y: Vec<f64> = x.iter().map(|r| (3.0 * r[0]).cos()).collect();
        let mut gp = GaussianProcess::new(GpConfig::default(), 9);
        gp.fit(&x, &y).unwrap();
        let p = gp.predict(&[0.4321]).unwrap();
        assert!((p.mean - (3.0 * 0.4321f64).cos()).abs() < 0.05);
    }

    #[test]
    fn errors_before_fit_and_on_bad_dimension() {
        let gp = GaussianProcess::new(GpConfig::default(), 1);
        assert_eq!(gp.predict(&[0.0]).unwrap_err(), SurrogateError::NotFitted);
        let mut gp = gp;
        gp.fit(&grid_1d(5), &[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert!(matches!(
            gp.predict(&[0.0, 0.0]),
            Err(SurrogateError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn handles_constant_targets() {
        let x = grid_1d(6);
        let y = vec![5.0; 6];
        let mut gp = GaussianProcess::new(GpConfig::default(), 1);
        gp.fit(&x, &y).unwrap();
        let p = gp.predict(&[0.3]).unwrap();
        assert!((p.mean - 5.0).abs() < 1e-6);
    }

    #[test]
    fn handles_multidimensional_ard() {
        // y depends only on dim 0; ARD should still fit fine.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..6 {
            for j in 0..4 {
                x.push(vec![i as f64 / 5.0, j as f64 / 3.0]);
                y.push((i as f64 / 5.0) * 10.0);
            }
        }
        let mut gp = GaussianProcess::new(GpConfig::default(), 5);
        gp.fit(&x, &y).unwrap();
        let p = gp.predict(&[0.5, 0.2]).unwrap();
        assert!((p.mean - 5.0).abs() < 0.5, "mean {}", p.mean);
    }

    #[test]
    fn mll_is_finite_after_fit() {
        let x = grid_1d(10);
        let y: Vec<f64> = x.iter().map(|r| r[0].exp()).collect();
        let mut gp = GaussianProcess::new(GpConfig::default(), 2);
        assert!(gp.log_marginal_likelihood().is_none());
        gp.fit(&x, &y).unwrap();
        assert!(gp.log_marginal_likelihood().unwrap().is_finite());
    }

    #[test]
    fn predict_batch_is_bit_identical_to_predict() {
        let x = grid_1d(14);
        let y: Vec<f64> = x.iter().map(|r| (5.0 * r[0]).sin() + 3.0).collect();
        let mut gp = GaussianProcess::new(GpConfig::default(), 4);
        gp.fit(&x, &y).unwrap();
        let queries: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 13.0 - 0.5]).collect();
        let batch = gp.predict_batch(&queries).unwrap();
        for (q, b) in queries.iter().zip(&batch) {
            let single = gp.predict(q).unwrap();
            assert_eq!(single.mean.to_bits(), b.mean.to_bits());
            assert_eq!(single.std.to_bits(), b.std.to_bits());
        }
    }

    /// The append-one tier must reproduce exactly what a from-scratch
    /// factorization at the same hyperparameters would compute.
    #[test]
    fn incremental_update_matches_scratch_factorization() {
        let full_x = grid_1d(16);
        let full_y: Vec<f64> = full_x.iter().map(|r| (2.0 * r[0]).exp()).collect();
        // Normalization is stable for a prefix of an evenly spread grid
        // only if min/max are already covered; use a prefix that includes
        // both ends so lo/span stay fixed as rows are appended.
        let mut order: Vec<usize> = vec![0, 15];
        order.extend(1..15);
        let x_of =
            |k: usize| -> Vec<Vec<f64>> { order[..k].iter().map(|&i| full_x[i].clone()).collect() };
        let y_of = |k: usize| -> Vec<f64> { order[..k].iter().map(|&i| full_y[i]).collect() };

        let mut warm = GaussianProcess::new(
            GpConfig {
                refit_every: 100, // never re-search within this test
                ..GpConfig::default()
            },
            7,
        );
        warm.fit(&x_of(10), &y_of(10)).unwrap();
        for k in 11..=16 {
            warm.fit_update(&x_of(k), &y_of(k), 1000 + k as u64)
                .unwrap();
            assert_eq!(warm.fits_since_full(), k - 10, "append tier not taken");

            // From scratch at the same hyperparameters: rebuild the kernel
            // and factor it; both the factor and alpha must match bit for
            // bit (append_row is row-by-row Cholesky's own recurrence).
            let f = warm.fitted.as_ref().unwrap();
            let k_mat = GaussianProcess::kernel_matrix(&f.hp, &f.x, warm.config.noise_floor);
            let scratch = cholesky(&k_mat, 0.0).unwrap();
            assert_eq!(
                scratch.factor().as_slice(),
                f.chol.factor().as_slice(),
                "factor diverged at n = {k}"
            );
            let scratch_alpha = scratch.solve(&f.y_std_targets).unwrap();
            assert_eq!(scratch_alpha, f.alpha, "alpha diverged at n = {k}");
        }
    }

    /// The cross-kernel cache must never change a prediction: cached
    /// batched calls agree bit-for-bit with uncached ones at every
    /// incremental step, including right after cache-extending appends.
    #[test]
    fn cached_batch_predictions_match_uncached_across_updates() {
        let full_x = grid_1d(16);
        let full_y: Vec<f64> = full_x.iter().map(|r| (2.5 * r[0]).sin() + 2.0).collect();
        let mut order: Vec<usize> = vec![0, 15];
        order.extend(1..15);
        let x_of =
            |k: usize| -> Vec<Vec<f64>> { order[..k].iter().map(|&i| full_x[i].clone()).collect() };
        let y_of = |k: usize| -> Vec<f64> { order[..k].iter().map(|&i| full_y[i]).collect() };
        let queries: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 29.0]).collect();

        let mut gp = GaussianProcess::new(
            GpConfig {
                refit_every: 3, // exercise both warm and full paths
                ..GpConfig::default()
            },
            5,
        );
        gp.fit(&x_of(10), &y_of(10)).unwrap();
        for k in 10..=16 {
            if k > 10 {
                gp.fit_update(&x_of(k), &y_of(k), k as u64).unwrap();
            }
            let cached = gp.predict_batch_mut(&queries).unwrap();
            let cached_again = gp.predict_batch_mut(&queries).unwrap();
            let uncached = gp.predict_batch(&queries).unwrap();
            for ((a, b), c) in cached.iter().zip(&cached_again).zip(&uncached) {
                assert_eq!(a.mean.to_bits(), c.mean.to_bits(), "n = {k}");
                assert_eq!(a.std.to_bits(), c.std.to_bits(), "n = {k}");
                assert_eq!(a.mean.to_bits(), b.mean.to_bits(), "n = {k} (re-read)");
            }
        }
        // A different candidate set invalidates and rebuilds cleanly.
        let other: Vec<Vec<f64>> = (0..5).map(|i| vec![0.1 * i as f64]).collect();
        let fresh = gp.predict_batch_mut(&other).unwrap();
        let expect = gp.predict_batch(&other).unwrap();
        for (a, b) in fresh.iter().zip(&expect) {
            assert_eq!(a.mean.to_bits(), b.mean.to_bits());
        }
    }

    #[test]
    fn alpha_only_tier_handles_changed_targets() {
        let x = grid_1d(9);
        let y: Vec<f64> = x.iter().map(|r| r[0] + 1.0).collect();
        let mut gp = GaussianProcess::new(
            GpConfig {
                refit_every: 100,
                ..GpConfig::default()
            },
            3,
        );
        gp.fit(&x, &y).unwrap();
        let y2: Vec<f64> = y.iter().map(|v| v * 2.0).collect();
        gp.fit_update(&x, &y2, 77).unwrap();
        assert_eq!(gp.fits_since_full(), 1);
        let p = gp.predict(&[0.5]).unwrap();
        assert!((p.mean - 3.0).abs() < 0.3, "mean {}", p.mean);
    }

    #[test]
    fn refit_schedule_triggers_full_search() {
        let x = grid_1d(12);
        let y: Vec<f64> = x.iter().map(|r| r[0] * 3.0 + 1.0).collect();
        let mut gp = GaussianProcess::new(
            GpConfig {
                refit_every: 2,
                ..GpConfig::default()
            },
            3,
        );
        gp.fit(&x[..8], &y[..8]).unwrap();
        // Use prefixes whose normalization cannot drift: rows 0..8 span
        // [0, 7/11] and appended rows extend the max, so every update
        // breaks the cache *or* hits the schedule; either way fit_update
        // must stay usable and correct.
        for k in 9..=12 {
            gp.fit_update(&x[..k], &y[..k], k as u64).unwrap();
            let p = gp.predict(&[0.5]).unwrap();
            assert!((p.mean - 2.5).abs() < 0.5, "n = {k}: mean {}", p.mean);
        }
    }

    #[test]
    fn fit_resets_the_incremental_schedule() {
        let x = grid_1d(10);
        let y: Vec<f64> = x.iter().map(|r| r[0]).collect();
        let mut gp = GaussianProcess::new(
            GpConfig {
                refit_every: 100,
                ..GpConfig::default()
            },
            1,
        );
        gp.fit(&x, &y).unwrap();
        gp.fit_update(&x, &y, 5).unwrap();
        assert_eq!(gp.fits_since_full(), 1);
        gp.fit(&x, &y).unwrap();
        assert_eq!(gp.fits_since_full(), 0);
    }
}

//! Error type for surrogate models.

use std::fmt;

use freedom_linalg::LinalgError;

/// Errors produced by surrogate fitting and prediction.
#[derive(Debug, Clone, PartialEq)]
pub enum SurrogateError {
    /// No training data (or zero-dimensional features).
    EmptyTrainingSet,
    /// Feature/target shapes disagree.
    DimensionMismatch {
        /// Expected shape description.
        expected: String,
        /// Found shape description.
        found: String,
    },
    /// Training data contains NaN or infinity.
    NonFiniteData,
    /// `predict` was called before `fit`.
    NotFitted,
    /// An underlying linear-algebra routine failed.
    Linalg(LinalgError),
}

impl fmt::Display for SurrogateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyTrainingSet => write!(f, "training set is empty"),
            Self::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            Self::NonFiniteData => write!(f, "training data contains non-finite values"),
            Self::NotFitted => write!(f, "model has not been fitted"),
            Self::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl std::error::Error for SurrogateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for SurrogateError {
    fn from(e: LinalgError) -> Self {
        Self::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        use std::error::Error;
        let e: SurrogateError = LinalgError::Singular.into();
        assert!(e.to_string().contains("singular"));
        assert!(e.source().is_some());
        assert!(SurrogateError::NotFitted.source().is_none());
        assert_eq!(
            SurrogateError::NotFitted.to_string(),
            "model has not been fitted"
        );
    }
}

//! Random forests and extra trees.
//!
//! Both are ensembles of [`DecisionTree`]s; the predictive standard
//! deviation combines between-tree disagreement and within-leaf spread via
//! the law of total variance — the same decomposition scikit-optimize uses
//! to make forests usable under Expected Improvement.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tree::{DecisionTree, SplitMode, TreeConfig};
use crate::{validate_training_set, Prediction, Surrogate, SurrogateError};

/// Shared ensemble configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Whether each tree sees a bootstrap resample (random forest) or the
    /// full training set (extra trees).
    pub bootstrap: bool,
    /// Per-tree growth limits.
    pub tree: TreeConfig,
    /// Warm-start [`Surrogate::fit_update`] (mirroring
    /// `GbrtConfig::warm_start`): when the training set grew by exactly
    /// one row since the previous fit, refit only a rotating quarter of
    /// the trees on the extended data instead of rebuilding the whole
    /// ensemble. Bootstrapped trees keep a per-tree index multiset that
    /// is updated reservoir-style — each stored index is replaced by the
    /// new row with probability `1/n`, then one fresh draw is appended —
    /// so refreshed resamples stay bootstrap-distributed over the grown
    /// set without redrawing from scratch. Any other update (first fit,
    /// resized or edited training set) falls back to a full refit
    /// automatically.
    pub warm_start: bool,
    /// With `warm_start`, rebuild the full ensemble from scratch on every
    /// `warm_refit_every`-th update anyway: unrefreshed trees never see
    /// the newest rows, and a periodic full fit re-syncs the ensemble so
    /// staleness cannot compound across a whole BO run.
    pub warm_refit_every: usize,
}

#[derive(Debug, Clone)]
struct Ensemble {
    trees: Vec<DecisionTree>,
    /// Bootstrap index multiset per tree (empty vectors when the
    /// ensemble does not bootstrap).
    indices: Vec<Vec<usize>>,
    dim: usize,
}

impl Ensemble {
    fn fit(x: &[Vec<f64>], y: &[f64], config: &ForestConfig, seed: u64) -> crate::Result<Self> {
        let dim = validate_training_set(x, y)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trees = Vec::with_capacity(config.n_trees);
        let mut indices = Vec::with_capacity(config.n_trees);
        for _ in 0..config.n_trees {
            if config.bootstrap {
                let idx: Vec<usize> = (0..x.len()).map(|_| rng.gen_range(0..x.len())).collect();
                trees.push(DecisionTree::fit_indices(
                    x,
                    y,
                    &idx,
                    &config.tree,
                    &mut rng,
                ));
                indices.push(idx);
            } else {
                trees.push(DecisionTree::fit(x, y, &config.tree, &mut rng));
                indices.push(Vec::new());
            }
        }
        Ok(Self {
            trees,
            indices,
            dim,
        })
    }

    /// Warm refit after one appended row: refresh the quarter of the
    /// ensemble starting at `cursor` (wrapping), leaving the other trees
    /// — whose indices reference only the untouched prefix — as they
    /// are. Returns the next cursor.
    fn warm_refit(
        &mut self,
        x: &[Vec<f64>],
        y: &[f64],
        config: &ForestConfig,
        cursor: usize,
        rng: &mut StdRng,
    ) -> usize {
        let n_trees = self.trees.len();
        let refresh = n_trees.div_ceil(4).max(1);
        let n = x.len();
        for offset in 0..refresh.min(n_trees) {
            let t = (cursor + offset) % n_trees;
            if config.bootstrap {
                // Reservoir-style growth of the bootstrap multiset, one
                // pass per row this tree has not yet seen (a tree missed
                // by earlier rotations catches up on all of them): when
                // the population grows to `m`, every stored draw is
                // replaced by the new row with probability 1/m, then one
                // fresh uniform draw keeps |idx| == population size.
                for m in (self.indices[t].len() + 1)..=n {
                    for slot in &mut self.indices[t] {
                        if rng.gen_range(0..m) == 0 {
                            *slot = m - 1;
                        }
                    }
                    self.indices[t].push(rng.gen_range(0..m));
                }
                self.trees[t] =
                    DecisionTree::fit_indices(x, y, &self.indices[t], &config.tree, rng);
            } else {
                self.trees[t] = DecisionTree::fit(x, y, &config.tree, rng);
            }
        }
        (cursor + refresh) % n_trees
    }

    fn predict(&self, point: &[f64]) -> crate::Result<Prediction> {
        if self.trees.is_empty() {
            return Err(SurrogateError::NotFitted);
        }
        if point.len() != self.dim {
            return Err(SurrogateError::DimensionMismatch {
                expected: format!("point of dimension {}", self.dim),
                found: format!("point of dimension {}", point.len()),
            });
        }
        // Law of total variance across trees:
        //   Var = E[leaf var] + Var[leaf mean].
        let n = self.trees.len() as f64;
        let stats: Vec<_> = self.trees.iter().map(|t| t.leaf_stats(point)).collect();
        let mean = stats.iter().map(|s| s.mean).sum::<f64>() / n;
        let e_var = stats.iter().map(|s| s.var).sum::<f64>() / n;
        let var_mean = stats.iter().map(|s| (s.mean - mean).powi(2)).sum::<f64>() / n;
        Ok(Prediction {
            mean,
            std: (e_var + var_mean).max(0.0).sqrt(),
        })
    }
}

/// Warm-start bookkeeping shared by both forest flavours: the previous
/// training set (to detect the one-row-appended case), the number of
/// consecutive warm updates, and the rotation cursor of the next quarter
/// to refresh.
#[derive(Debug, Clone, Default)]
struct WarmState {
    train: Option<(Vec<Vec<f64>>, Vec<f64>)>,
    streak: usize,
    cursor: usize,
}

impl WarmState {
    /// Whether `(x, y)` is the previous training set with exactly one row
    /// appended — the shape the warm path accelerates.
    fn appended_one_row(&self, ensemble: &Option<Ensemble>, x: &[Vec<f64>], y: &[f64]) -> bool {
        let (Some((px, py)), Some(ens)) = (self.train.as_ref(), ensemble.as_ref()) else {
            return false;
        };
        x.len() == px.len() + 1
            && y.len() == py.len() + 1
            && x.last().is_some_and(|row| row.len() == ens.dim)
            && x[..px.len()] == px[..]
            && y[..py.len()] == py[..]
    }
}

/// One step of the iterative-fit loop for a forest: the warm path when
/// exactly one row was appended and the refit cadence allows it, a plain
/// reseed-and-refit (bit-identical to `reseed` + `fit`) otherwise.
fn forest_fit_update(
    config: &ForestConfig,
    seed: &mut u64,
    ensemble: &mut Option<Ensemble>,
    warm: &mut WarmState,
    x: &[Vec<f64>],
    y: &[f64],
    step_seed: u64,
) -> crate::Result<()> {
    let take_warm = config.warm_start
        && warm.streak + 1 < config.warm_refit_every.max(1)
        && warm.appended_one_row(ensemble, x, y);
    *seed = step_seed;
    if !take_warm {
        warm.streak = 0;
        warm.cursor = 0;
        *ensemble = Some(Ensemble::fit(x, y, config, step_seed)?);
    } else {
        validate_training_set(x, y)?;
        let mut rng = StdRng::seed_from_u64(step_seed);
        let ens = ensemble.as_mut().expect("checked by appended_one_row");
        warm.cursor = ens.warm_refit(x, y, config, warm.cursor, &mut rng);
        warm.streak += 1;
    }
    warm.train = Some((x.to_vec(), y.to_vec()));
    Ok(())
}

/// Bagged CART ensemble (scikit-learn-style random forest regressor).
#[derive(Debug, Clone)]
pub struct RandomForest {
    config: ForestConfig,
    seed: u64,
    ensemble: Option<Ensemble>,
    warm: WarmState,
}

impl RandomForest {
    /// Creates a forest with an explicit configuration.
    pub fn new(config: ForestConfig, seed: u64) -> Self {
        Self {
            config,
            seed,
            ensemble: None,
            warm: WarmState::default(),
        }
    }

    /// The skopt-flavoured defaults: 100 bootstrapped best-split trees,
    /// warm-started between BO steps.
    pub fn with_defaults(seed: u64) -> Self {
        Self::new(
            ForestConfig {
                n_trees: 100,
                bootstrap: true,
                tree: TreeConfig::default(),
                warm_start: true,
                warm_refit_every: 4,
            },
            seed,
        )
    }
}

impl Surrogate for RandomForest {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> crate::Result<()> {
        self.ensemble = Some(Ensemble::fit(x, y, &self.config, self.seed)?);
        self.warm = WarmState {
            train: Some((x.to_vec(), y.to_vec())),
            ..WarmState::default()
        };
        Ok(())
    }

    /// Warm-start refit (see [`ForestConfig::warm_start`]): when exactly
    /// one trial was appended since the last fit, a rotating quarter of
    /// the trees refits on the extended data — with reservoir-updated
    /// bootstrap indices — instead of rebuilding all 100 trees. Every
    /// other shape of update falls back to the plain reseed-and-refit,
    /// so the result is always a deterministic function of the call
    /// sequence.
    fn fit_update(&mut self, x: &[Vec<f64>], y: &[f64], step_seed: u64) -> crate::Result<()> {
        forest_fit_update(
            &self.config,
            &mut self.seed,
            &mut self.ensemble,
            &mut self.warm,
            x,
            y,
            step_seed,
        )
    }

    fn predict(&self, point: &[f64]) -> crate::Result<Prediction> {
        self.ensemble
            .as_ref()
            .ok_or(SurrogateError::NotFitted)?
            .predict(point)
    }

    fn reseed(&mut self, seed: u64) {
        self.seed = seed;
    }

    fn name(&self) -> &'static str {
        "RF"
    }
}

/// Extremely randomized trees: full training set per tree, random
/// thresholds.
#[derive(Debug, Clone)]
pub struct ExtraTrees {
    config: ForestConfig,
    seed: u64,
    ensemble: Option<Ensemble>,
    warm: WarmState,
}

impl ExtraTrees {
    /// Creates an ET ensemble with an explicit configuration.
    pub fn new(config: ForestConfig, seed: u64) -> Self {
        Self {
            config,
            seed,
            ensemble: None,
            warm: WarmState::default(),
        }
    }

    /// The skopt-flavoured defaults: 100 random-threshold trees, no
    /// bootstrap, warm-started between BO steps.
    pub fn with_defaults(seed: u64) -> Self {
        Self::new(
            ForestConfig {
                n_trees: 100,
                bootstrap: false,
                tree: TreeConfig {
                    split_mode: SplitMode::Random,
                    ..TreeConfig::default()
                },
                warm_start: true,
                warm_refit_every: 4,
            },
            seed,
        )
    }
}

impl Surrogate for ExtraTrees {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> crate::Result<()> {
        self.ensemble = Some(Ensemble::fit(x, y, &self.config, self.seed)?);
        self.warm = WarmState {
            train: Some((x.to_vec(), y.to_vec())),
            ..WarmState::default()
        };
        Ok(())
    }

    /// Warm-start refit: like [`RandomForest::fit_update`] but without
    /// bootstrap bookkeeping — the refreshed quarter simply refits on the
    /// full extended training set.
    fn fit_update(&mut self, x: &[Vec<f64>], y: &[f64], step_seed: u64) -> crate::Result<()> {
        forest_fit_update(
            &self.config,
            &mut self.seed,
            &mut self.ensemble,
            &mut self.warm,
            x,
            y,
            step_seed,
        )
    }

    fn predict(&self, point: &[f64]) -> crate::Result<Prediction> {
        self.ensemble
            .as_ref()
            .ok_or(SurrogateError::NotFitted)?
            .predict(point)
    }

    fn reseed(&mut self, seed: u64) {
        self.seed = seed;
    }

    fn name(&self) -> &'static str {
        "ET"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wavy_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 39.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| (6.0 * r[0]).sin() * 2.0 + 1.0).collect();
        (x, y)
    }

    #[test]
    fn rf_beats_constant_predictor() {
        let (x, y) = wavy_data();
        let mut rf = RandomForest::with_defaults(1);
        rf.fit(&x, &y).unwrap();
        let global_mean = y.iter().sum::<f64>() / y.len() as f64;
        let mut rf_sse = 0.0;
        let mut const_sse = 0.0;
        for (xi, yi) in x.iter().zip(&y) {
            let p = rf.predict(xi).unwrap();
            rf_sse += (p.mean - yi).powi(2);
            const_sse += (global_mean - yi).powi(2);
        }
        assert!(rf_sse < const_sse / 4.0, "rf {rf_sse} vs const {const_sse}");
    }

    #[test]
    fn et_beats_constant_predictor() {
        let (x, y) = wavy_data();
        let mut et = ExtraTrees::with_defaults(1);
        et.fit(&x, &y).unwrap();
        let global_mean = y.iter().sum::<f64>() / y.len() as f64;
        let mut sse = 0.0;
        let mut const_sse = 0.0;
        for (xi, yi) in x.iter().zip(&y) {
            sse += (et.predict(xi).unwrap().mean - yi).powi(2);
            const_sse += (global_mean - yi).powi(2);
        }
        assert!(sse < const_sse / 4.0);
    }

    #[test]
    fn predictions_stay_within_target_range() {
        let (x, y) = wavy_data();
        let lo = y.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = y.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for model in [
            &mut RandomForest::with_defaults(2) as &mut dyn Surrogate,
            &mut ExtraTrees::with_defaults(2) as &mut dyn Surrogate,
        ] {
            model.fit(&x, &y).unwrap();
            for q in [-0.5, 0.0, 0.3, 0.9, 1.5] {
                let p = model.predict(&[q]).unwrap();
                assert!(p.mean >= lo - 1e-9 && p.mean <= hi + 1e-9);
                assert!(p.std >= 0.0);
            }
        }
    }

    #[test]
    fn not_fitted_and_bad_dim_errors() {
        let rf = RandomForest::with_defaults(0);
        assert_eq!(rf.predict(&[0.0]).unwrap_err(), SurrogateError::NotFitted);
        let (x, y) = wavy_data();
        let mut rf = rf;
        rf.fit(&x, &y).unwrap();
        assert!(matches!(
            rf.predict(&[0.0, 1.0]),
            Err(SurrogateError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn seeded_fits_are_reproducible() {
        let (x, y) = wavy_data();
        let mut a = RandomForest::with_defaults(9);
        let mut b = RandomForest::with_defaults(9);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        let pa = a.predict(&[0.37]).unwrap();
        let pb = b.predict(&[0.37]).unwrap();
        assert_eq!(pa, pb);
    }

    #[test]
    fn warm_update_replays_identically() {
        let (x, y) = wavy_data();
        for bootstrap in [true, false] {
            let make = || {
                if bootstrap {
                    Box::new(RandomForest::with_defaults(3)) as Box<dyn Surrogate>
                } else {
                    Box::new(ExtraTrees::with_defaults(3)) as Box<dyn Surrogate>
                }
            };
            let run = || {
                let mut m = make();
                m.fit(&x[..25], &y[..25]).unwrap();
                for k in 26..=40 {
                    m.fit_update(&x[..k], &y[..k], 50 + k as u64).unwrap();
                }
                m.predict(&[0.37]).unwrap()
            };
            assert_eq!(run(), run(), "bootstrap = {bootstrap}");
        }
    }

    #[test]
    fn warm_update_tracks_full_refit_accuracy() {
        let (x, y) = wavy_data();
        let drive = |warm_start: bool| {
            let config = ForestConfig {
                n_trees: 100,
                bootstrap: true,
                tree: TreeConfig::default(),
                warm_start,
                warm_refit_every: 4,
            };
            let mut m = RandomForest::new(config, 3);
            m.fit(&x[..25], &y[..25]).unwrap();
            for k in 26..=40 {
                m.fit_update(&x[..k], &y[..k], k as u64).unwrap();
            }
            m
        };
        let warm = drive(true);
        let cold = drive(false);
        for q in [0.1f64, 0.5, 0.9] {
            let truth = (6.0 * q).sin() * 2.0 + 1.0;
            let pw = warm.predict(&[q]).unwrap();
            let pc = cold.predict(&[q]).unwrap();
            assert!((pw.mean - truth).abs() < 0.8, "warm {} at {q}", pw.mean);
            assert!(
                (pw.mean - pc.mean).abs() < 0.8,
                "warm {} vs cold {} at {q}",
                pw.mean,
                pc.mean
            );
        }
    }

    #[test]
    fn non_append_updates_fall_back_to_a_full_refit() {
        let (x, y) = wavy_data();
        // Warm-start off: fit_update is exactly reseed + fit.
        let mut off = RandomForest::new(
            ForestConfig {
                warm_start: false,
                ..RandomForest::with_defaults(1).config
            },
            1,
        );
        off.fit(&x[..10], &y[..10]).unwrap();
        off.fit_update(&x, &y, 99).unwrap();
        let mut fresh = RandomForest::with_defaults(99);
        fresh.fit(&x, &y).unwrap();
        assert_eq!(off.predict(&[0.3]).unwrap(), fresh.predict(&[0.3]).unwrap());
        // Warm-start on, but the update appends 30 rows: not the
        // one-row-appended shape, so it falls back to the same full
        // refit bit for bit.
        let mut on = RandomForest::with_defaults(1);
        on.fit(&x[..10], &y[..10]).unwrap();
        on.fit_update(&x, &y, 99).unwrap();
        assert_eq!(on.predict(&[0.3]).unwrap(), fresh.predict(&[0.3]).unwrap());
        // An edited prefix (shifted target) also falls back.
        let mut edited = RandomForest::with_defaults(1);
        edited.fit(&x[..39], &y[..39]).unwrap();
        let mut y2 = y.clone();
        y2[0] += 0.5;
        edited.fit_update(&x, &y2, 99).unwrap();
        let mut fresh2 = RandomForest::with_defaults(99);
        fresh2.fit(&x, &y2).unwrap();
        assert_eq!(
            edited.predict(&[0.3]).unwrap(),
            fresh2.predict(&[0.3]).unwrap()
        );
    }

    #[test]
    fn warm_bootstrap_indices_track_training_size() {
        let (x, y) = wavy_data();
        let mut rf = RandomForest::with_defaults(7);
        rf.fit(&x[..30], &y[..30]).unwrap();
        // Three warm updates (the fourth would hit the full-refit
        // cadence): rotating quarters refresh, the last quarter lags.
        for k in 31..=33 {
            rf.fit_update(&x[..k], &y[..k], k as u64).unwrap();
        }
        let ens = rf.ensemble.as_ref().unwrap();
        assert_eq!(ens.trees.len(), 100);
        for idx in &ens.indices {
            // Every tree's multiset stays within bounds; refreshed trees
            // grew with the training set, unrefreshed ones kept their
            // (still valid) prefix resample.
            assert!(!idx.is_empty());
            assert!(idx.len() >= 30 && idx.len() <= 33);
            assert!(idx.iter().all(|&i| i < 33));
        }
        assert!(ens.indices.iter().any(|idx| idx.len() == 30));
        assert!(ens.indices.iter().any(|idx| idx.len() == 33));
        // The cadence's fourth update rebuilds everything in sync.
        rf.fit_update(&x[..34], &y[..34], 34).unwrap();
        let ens = rf.ensemble.as_ref().unwrap();
        assert!(ens.indices.iter().all(|idx| idx.len() == 34));
    }

    #[test]
    fn uncertainty_is_positive_under_noise() {
        // Two identical x values with different targets force leaf variance.
        let x = vec![vec![0.0], vec![0.0], vec![1.0], vec![1.0]];
        let y = vec![0.0, 2.0, 10.0, 12.0];
        let mut rf = RandomForest::with_defaults(3);
        rf.fit(&x, &y).unwrap();
        let p = rf.predict(&[0.0]).unwrap();
        assert!(p.std > 0.0);
    }
}

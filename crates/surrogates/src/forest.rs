//! Random forests and extra trees.
//!
//! Both are ensembles of [`DecisionTree`]s; the predictive standard
//! deviation combines between-tree disagreement and within-leaf spread via
//! the law of total variance — the same decomposition scikit-optimize uses
//! to make forests usable under Expected Improvement.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tree::{DecisionTree, SplitMode, TreeConfig};
use crate::{validate_training_set, Prediction, Surrogate, SurrogateError};

/// Shared ensemble configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Whether each tree sees a bootstrap resample (random forest) or the
    /// full training set (extra trees).
    pub bootstrap: bool,
    /// Per-tree growth limits.
    pub tree: TreeConfig,
}

#[derive(Debug, Clone)]
struct Ensemble {
    trees: Vec<DecisionTree>,
    dim: usize,
}

impl Ensemble {
    fn fit(x: &[Vec<f64>], y: &[f64], config: &ForestConfig, seed: u64) -> crate::Result<Self> {
        let dim = validate_training_set(x, y)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trees = Vec::with_capacity(config.n_trees);
        for _ in 0..config.n_trees {
            if config.bootstrap {
                let idx: Vec<usize> = (0..x.len()).map(|_| rng.gen_range(0..x.len())).collect();
                trees.push(DecisionTree::fit_indices(
                    x,
                    y,
                    &idx,
                    &config.tree,
                    &mut rng,
                ));
            } else {
                trees.push(DecisionTree::fit(x, y, &config.tree, &mut rng));
            }
        }
        Ok(Self { trees, dim })
    }

    fn predict(&self, point: &[f64]) -> crate::Result<Prediction> {
        if self.trees.is_empty() {
            return Err(SurrogateError::NotFitted);
        }
        if point.len() != self.dim {
            return Err(SurrogateError::DimensionMismatch {
                expected: format!("point of dimension {}", self.dim),
                found: format!("point of dimension {}", point.len()),
            });
        }
        // Law of total variance across trees:
        //   Var = E[leaf var] + Var[leaf mean].
        let n = self.trees.len() as f64;
        let stats: Vec<_> = self.trees.iter().map(|t| t.leaf_stats(point)).collect();
        let mean = stats.iter().map(|s| s.mean).sum::<f64>() / n;
        let e_var = stats.iter().map(|s| s.var).sum::<f64>() / n;
        let var_mean = stats.iter().map(|s| (s.mean - mean).powi(2)).sum::<f64>() / n;
        Ok(Prediction {
            mean,
            std: (e_var + var_mean).max(0.0).sqrt(),
        })
    }
}

/// Bagged CART ensemble (scikit-learn-style random forest regressor).
#[derive(Debug, Clone)]
pub struct RandomForest {
    config: ForestConfig,
    seed: u64,
    ensemble: Option<Ensemble>,
}

impl RandomForest {
    /// Creates a forest with an explicit configuration.
    pub fn new(config: ForestConfig, seed: u64) -> Self {
        Self {
            config,
            seed,
            ensemble: None,
        }
    }

    /// The skopt-flavoured defaults: 100 bootstrapped best-split trees.
    pub fn with_defaults(seed: u64) -> Self {
        Self::new(
            ForestConfig {
                n_trees: 100,
                bootstrap: true,
                tree: TreeConfig::default(),
            },
            seed,
        )
    }
}

impl Surrogate for RandomForest {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> crate::Result<()> {
        self.ensemble = Some(Ensemble::fit(x, y, &self.config, self.seed)?);
        Ok(())
    }

    fn predict(&self, point: &[f64]) -> crate::Result<Prediction> {
        self.ensemble
            .as_ref()
            .ok_or(SurrogateError::NotFitted)?
            .predict(point)
    }

    fn reseed(&mut self, seed: u64) {
        self.seed = seed;
    }

    fn name(&self) -> &'static str {
        "RF"
    }
}

/// Extremely randomized trees: full training set per tree, random
/// thresholds.
#[derive(Debug, Clone)]
pub struct ExtraTrees {
    config: ForestConfig,
    seed: u64,
    ensemble: Option<Ensemble>,
}

impl ExtraTrees {
    /// Creates an ET ensemble with an explicit configuration.
    pub fn new(config: ForestConfig, seed: u64) -> Self {
        Self {
            config,
            seed,
            ensemble: None,
        }
    }

    /// The skopt-flavoured defaults: 100 random-threshold trees, no
    /// bootstrap.
    pub fn with_defaults(seed: u64) -> Self {
        Self::new(
            ForestConfig {
                n_trees: 100,
                bootstrap: false,
                tree: TreeConfig {
                    split_mode: SplitMode::Random,
                    ..TreeConfig::default()
                },
            },
            seed,
        )
    }
}

impl Surrogate for ExtraTrees {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> crate::Result<()> {
        self.ensemble = Some(Ensemble::fit(x, y, &self.config, self.seed)?);
        Ok(())
    }

    fn predict(&self, point: &[f64]) -> crate::Result<Prediction> {
        self.ensemble
            .as_ref()
            .ok_or(SurrogateError::NotFitted)?
            .predict(point)
    }

    fn reseed(&mut self, seed: u64) {
        self.seed = seed;
    }

    fn name(&self) -> &'static str {
        "ET"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wavy_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 39.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| (6.0 * r[0]).sin() * 2.0 + 1.0).collect();
        (x, y)
    }

    #[test]
    fn rf_beats_constant_predictor() {
        let (x, y) = wavy_data();
        let mut rf = RandomForest::with_defaults(1);
        rf.fit(&x, &y).unwrap();
        let global_mean = y.iter().sum::<f64>() / y.len() as f64;
        let mut rf_sse = 0.0;
        let mut const_sse = 0.0;
        for (xi, yi) in x.iter().zip(&y) {
            let p = rf.predict(xi).unwrap();
            rf_sse += (p.mean - yi).powi(2);
            const_sse += (global_mean - yi).powi(2);
        }
        assert!(rf_sse < const_sse / 4.0, "rf {rf_sse} vs const {const_sse}");
    }

    #[test]
    fn et_beats_constant_predictor() {
        let (x, y) = wavy_data();
        let mut et = ExtraTrees::with_defaults(1);
        et.fit(&x, &y).unwrap();
        let global_mean = y.iter().sum::<f64>() / y.len() as f64;
        let mut sse = 0.0;
        let mut const_sse = 0.0;
        for (xi, yi) in x.iter().zip(&y) {
            sse += (et.predict(xi).unwrap().mean - yi).powi(2);
            const_sse += (global_mean - yi).powi(2);
        }
        assert!(sse < const_sse / 4.0);
    }

    #[test]
    fn predictions_stay_within_target_range() {
        let (x, y) = wavy_data();
        let lo = y.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = y.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for model in [
            &mut RandomForest::with_defaults(2) as &mut dyn Surrogate,
            &mut ExtraTrees::with_defaults(2) as &mut dyn Surrogate,
        ] {
            model.fit(&x, &y).unwrap();
            for q in [-0.5, 0.0, 0.3, 0.9, 1.5] {
                let p = model.predict(&[q]).unwrap();
                assert!(p.mean >= lo - 1e-9 && p.mean <= hi + 1e-9);
                assert!(p.std >= 0.0);
            }
        }
    }

    #[test]
    fn not_fitted_and_bad_dim_errors() {
        let rf = RandomForest::with_defaults(0);
        assert_eq!(rf.predict(&[0.0]).unwrap_err(), SurrogateError::NotFitted);
        let (x, y) = wavy_data();
        let mut rf = rf;
        rf.fit(&x, &y).unwrap();
        assert!(matches!(
            rf.predict(&[0.0, 1.0]),
            Err(SurrogateError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn seeded_fits_are_reproducible() {
        let (x, y) = wavy_data();
        let mut a = RandomForest::with_defaults(9);
        let mut b = RandomForest::with_defaults(9);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        let pa = a.predict(&[0.37]).unwrap();
        let pb = b.predict(&[0.37]).unwrap();
        assert_eq!(pa, pb);
    }

    #[test]
    fn uncertainty_is_positive_under_noise() {
        // Two identical x values with different targets force leaf variance.
        let x = vec![vec![0.0], vec![0.0], vec![1.0], vec![1.0]];
        let y = vec![0.0, 2.0, 10.0, 12.0];
        let mut rf = RandomForest::with_defaults(3);
        rf.fit(&x, &y).unwrap();
        let p = rf.predict(&[0.0]).unwrap();
        assert!(p.std > 0.0);
    }
}

//! Property-based tests across all surrogate kinds.

use freedom_surrogates::SurrogateKind;
use proptest::prelude::*;

fn any_kind() -> impl Strategy<Value = SurrogateKind> {
    prop::sample::select(SurrogateKind::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn predictions_are_finite_with_nonnegative_std(
        kind in any_kind(),
        targets in prop::collection::vec(-100.0f64..100.0, 8..24),
        query in -2.0f64..3.0,
    ) {
        let x: Vec<Vec<f64>> = (0..targets.len())
            .map(|i| vec![i as f64 / (targets.len() - 1) as f64])
            .collect();
        let mut model = kind.build(11);
        model.fit(&x, &targets).unwrap();
        let p = model.predict(&[query]).unwrap();
        prop_assert!(p.mean.is_finite(), "{kind}: mean {}", p.mean);
        prop_assert!(p.std.is_finite() && p.std >= 0.0, "{kind}: std {}", p.std);
    }

    #[test]
    fn mean_stays_within_reasonable_envelope(
        kind in any_kind(),
        targets in prop::collection::vec(0.0f64..10.0, 10..20),
    ) {
        // Inside the hull of the data, predictions should not explode far
        // beyond the target range.
        let x: Vec<Vec<f64>> = (0..targets.len())
            .map(|i| vec![i as f64 / (targets.len() - 1) as f64])
            .collect();
        let mut model = kind.build(3);
        model.fit(&x, &targets).unwrap();
        for q in [0.1, 0.35, 0.62, 0.9] {
            let p = model.predict(&[q]).unwrap();
            prop_assert!(
                p.mean > -10.0 && p.mean < 20.0,
                "{kind} at {q}: mean {}",
                p.mean
            );
        }
    }

    #[test]
    fn refit_resets_previous_state(
        kind in any_kind(),
        first in prop::collection::vec(0.0f64..1.0, 8),
        offset in 10.0f64..20.0,
    ) {
        let x: Vec<Vec<f64>> = (0..first.len()).map(|i| vec![i as f64]).collect();
        let second: Vec<f64> = first.iter().map(|v| v + offset).collect();
        let mut model = kind.build(4);
        model.fit(&x, &first).unwrap();
        model.fit(&x, &second).unwrap();
        let p = model.predict(&[3.0]).unwrap();
        // After refitting on shifted targets the prediction must live near
        // the new range, not the old one.
        prop_assert!(p.mean > offset - 2.0, "{kind}: {} vs offset {offset}", p.mean);
    }
}

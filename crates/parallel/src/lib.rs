//! Deterministic scoped-thread fan-out.
//!
//! [`par_run`] is the one parallel primitive the workspace uses: it fans
//! `f(0..n)` across a bounded set of OS threads and returns the results
//! in index order, bit-identical to the sequential `(0..n).map(f)`.
//! Both the experiment kernels (repeat/function/objective loops) and the
//! fleet simulator's per-function trace shards build on it, so the
//! worker budget lives here, below both crates.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f(i)` for every `i in 0..n`, fanned out over `threads` workers,
/// and returns the results in index order.
///
/// The contract that makes the parallel paths trustworthy: each index is
/// processed by exactly one worker with no shared mutable state, and
/// results are stored by index, so the output is **bit identical** to the
/// sequential `(0..n).map(f).collect()` regardless of thread count or
/// scheduling. Callers achieve determinism by giving each index its own
/// seed.
///
/// Panics in `f` propagate (the scope joins all workers first).
///
/// Callers nest these fan-outs (functions × inputs × repetitions, sweep
/// points × trace shards); a process-wide live-worker budget of 2× the
/// core count keeps nested levels from multiplying into hundreds of OS
/// threads — once the budget is spent, inner levels simply run
/// sequentially inside their worker, which changes scheduling but never
/// results.
pub fn par_run<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    static LIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);
    // Release reserved budget even if a worker panics out of the scope.
    struct Release(usize);
    impl Drop for Release {
        fn drop(&mut self) {
            LIVE_WORKERS.fetch_sub(self.0, Ordering::Relaxed);
        }
    }
    let budget = 2 * std::thread::available_parallelism().map_or(1, |c| c.get());
    // Reserve atomically (fetch_add first, clamp on the prior value) so
    // concurrent top-level calls cannot each claim the full budget.
    let desired = threads.max(1).min(n.max(1));
    let prior = LIVE_WORKERS.fetch_add(desired, Ordering::Relaxed);
    let allowed = desired.min(budget.saturating_sub(prior).max(1));
    if allowed < desired {
        LIVE_WORKERS.fetch_sub(desired - allowed, Ordering::Relaxed);
    }
    let _release = Release(allowed);
    let threads = allowed;
    if threads == 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index was processed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_in_order() {
        let f = |i: usize| (i * 31) % 17;
        let seq: Vec<usize> = (0..100).map(f).collect();
        for threads in [1, 2, 8, 64] {
            assert_eq!(par_run(100, threads, f), seq, "threads = {threads}");
        }
        assert!(par_run(0, 4, f).is_empty());
    }

    #[test]
    fn propagates_panics() {
        let caught = std::panic::catch_unwind(|| {
            par_run(8, 4, |i| {
                if i == 5 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn nested_fanouts_stay_deterministic() {
        let outer = par_run(6, 8, |i| par_run(6, 8, move |j| i * 10 + j));
        let expected: Vec<Vec<usize>> = (0..6)
            .map(|i| (0..6).map(|j| i * 10 + j).collect())
            .collect();
        assert_eq!(outer, expected);
    }
}

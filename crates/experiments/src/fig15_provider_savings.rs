//! Figure 15: provider cost reduction from steering functions onto
//! spot-discounted idle instance types (§6.2).
//!
//! An ET-optimizing run trains the model; the planner then picks each
//! family's best predicted configuration and accepts those predicted
//! within 10% of the best found execution time. Accepted placements are
//! scored on ground truth: normalized execution time (should hover ≤ ~1.1
//! plus prediction error) and spot-priced cost (paper: 25–75% reduction at
//! the 20%-of-list spot price).

use freedom::provider::{IdleCapacityPlanner, PlannedPlacement};
use freedom::Autotuner;
use freedom_linalg::stats;
use freedom_optimizer::{BoConfig, Objective, SearchSpace};
use freedom_surrogates::SurrogateKind;
use freedom_workloads::FunctionKind;

use crate::context::{ground_truth_default, par_map, par_repeats, ExperimentOpts};
use crate::report::{fmt_f, TextTable};

/// One function's accepted-placement statistics across repetitions.
#[derive(Debug, Clone)]
pub struct SavingsRow {
    /// Function measured.
    pub function: FunctionKind,
    /// Normalized execution times of accepted placements (all reps pooled).
    pub norm_times: Vec<f64>,
    /// Normalized spot costs of accepted placements (all reps pooled).
    pub norm_costs: Vec<f64>,
    /// Fraction of families accepted by the θ guardrail.
    pub accept_rate: f64,
}

/// The full Figure 15 dataset.
#[derive(Debug, Clone)]
pub struct Fig15Result {
    /// Per-function rows.
    pub rows: Vec<SavingsRow>,
}

impl Fig15Result {
    /// Mean cost reduction (1 − mean normalized spot cost) for a row.
    pub fn mean_cost_reduction(row: &SavingsRow) -> f64 {
        1.0 - stats::mean(&row.norm_costs).unwrap_or(1.0)
    }

    /// Renders the summary table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "function",
            "norm ET (mean)",
            "norm spot EC (mean)",
            "cost reduction",
            "accept rate",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.function.to_string(),
                fmt_f(stats::mean(&r.norm_times).unwrap_or(f64::NAN), 2),
                fmt_f(stats::mean(&r.norm_costs).unwrap_or(f64::NAN), 2),
                format!("{}%", fmt_f(Self::mean_cost_reduction(r) * 100.0, 0)),
                format!("{}%", fmt_f(r.accept_rate * 100.0, 0)),
            ]);
        }
        format!(
            "Figure 15 — provider savings from idle families (spot = 20% of list, θ = 10%)\n{}\n(paper: 25-75% cost reduction at <10% mean ET penalty)\n",
            t.render()
        )
    }

    /// Writes the CSV artifact.
    pub fn write_csv(&self) -> std::io::Result<std::path::PathBuf> {
        let mut t = TextTable::new(vec!["function", "metric", "value"]);
        for r in &self.rows {
            for v in &r.norm_times {
                t.row(vec![
                    r.function.to_string(),
                    "norm_et".into(),
                    v.to_string(),
                ]);
            }
            for v in &r.norm_costs {
                t.row(vec![
                    r.function.to_string(),
                    "norm_spot_ec".into(),
                    v.to_string(),
                ]);
            }
            t.row(vec![
                r.function.to_string(),
                "accept_rate".into(),
                r.accept_rate.to_string(),
            ]);
        }
        t.write_csv("fig15_provider_savings.csv")
    }
}

/// Runs the experiment.
pub fn run(opts: &ExperimentOpts) -> freedom::Result<Fig15Result> {
    let planner = IdleCapacityPlanner::default();
    let space = SearchSpace::table1();
    let rows = par_map(opts, &FunctionKind::ALL, |&kind| {
        let table = ground_truth_default(kind, opts)?;
        let per_rep = par_repeats(opts, |rep| -> freedom::Result<Vec<PlannedPlacement>> {
            let outcome = Autotuner::new(SurrogateKind::Gp)
                .with_bo_config(BoConfig {
                    surrogate_refit_every: opts.surrogate_refit_every,
                    ..BoConfig::default()
                })
                .tune_offline(
                    kind,
                    &kind.default_input(),
                    Objective::ExecutionTime,
                    opts.repeat_seed(rep),
                )?;
            Ok(planner.plan(&outcome, &table, &space)?.placements)
        });
        let mut norm_times = Vec::new();
        let mut norm_costs = Vec::new();
        let mut accepted = 0usize;
        let mut considered = 0usize;
        for placements in per_rep {
            for p in &placements? {
                considered += 1;
                if p.accepted {
                    accepted += 1;
                    norm_times.push(p.norm_exec_time);
                    norm_costs.push(p.norm_spot_cost);
                }
            }
        }
        Ok(SavingsRow {
            function: kind,
            norm_times,
            norm_costs,
            accept_rate: accepted as f64 / considered.max(1) as f64,
        })
    })
    .into_iter()
    .collect::<freedom::Result<Vec<_>>>()?;
    Ok(Fig15Result { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spot_placements_cut_costs_substantially() {
        let result = run(&ExperimentOpts::fast()).unwrap();
        assert_eq!(result.rows.len(), 6);
        let mut reductions = Vec::new();
        for r in &result.rows {
            if r.norm_costs.is_empty() {
                continue; // a function may accept no alternatives
            }
            let reduction = Fig15Result::mean_cost_reduction(r);
            reductions.push(reduction);
            // Accepted placements keep ET within a modest multiple of the
            // best (guardrail 1.1 + prediction error).
            let mean_et = stats::mean(&r.norm_times).unwrap();
            assert!(mean_et < 1.6, "{}: mean norm ET {mean_et}", r.function);
        }
        // Paper: 25-75% average reduction. At 20% spot pricing even a
        // slightly-worse config saves heavily.
        let overall = stats::mean(&reductions).unwrap();
        assert!(
            (0.25..=0.95).contains(&overall),
            "overall reduction {overall}"
        );
        assert!(result.render().contains("Figure 15"));
    }
}

//! Fleet-level provider simulation over the shared spot market
//! (extension of §6.2 / Figure 15).
//!
//! Figure 15 evaluates placement decisions one function at a time; this
//! experiment replays invocation traces over a whole fleet contending
//! for one provider-wide spot market, and reports the provider savings,
//! SLO violations, and admission ledger (admitted / demoted / rejected)
//! of the idle-aware policy against the always-best-config baseline.
//!
//! The sweep covers every [`TraceSource`] workload shape (Poisson,
//! bursty, diurnal, heavy-tail, plus the checked-in Azure CSV fixture
//! replayed through [`TraceSource::from_csv`]) × market tightness (how
//! much warm capacity exists and how hard its supply fluctuates) ×
//! admission policy (greedy vs. the planner-emitted headroom
//! controller). Replay is time-windowed across cores
//! ([`FleetSimulator::run_windowed`]); at default settings the fleet is
//! 120 functions under an hour of traffic, at `--fast` a 12-function,
//! two-minute smoke of the same code paths.

use freedom::fleet::{
    AdmissionPolicy, FleetConfig, FleetReport, FleetSimulator, FunctionPlan, PlacementStrategy,
    StreamTrace, SupplyProcess, TraceSource,
};
use freedom::market::MarketConfig;
use freedom::provider::{IdleCapacityPlanner, PlannedPlacement};
use freedom::Autotuner;
use freedom_cluster::InstanceFamily;
use freedom_faas::collect_ground_truth;
use freedom_optimizer::{BoConfig, Objective, SearchSpace};
use freedom_surrogates::SurrogateKind;
use freedom_workloads::FunctionKind;

use crate::context::{ground_truth_default, par_map, ExperimentOpts};
use crate::report::{fmt_f, TextTable};

/// Replay window used by the windowed engine throughout the sweep.
const WINDOW_SECS: f64 = 60.0;

/// The checked-in Azure-Functions-style trace fixture
/// (`crates/core/testdata/azure_sample.csv`), replayed as the sweep's
/// fifth source: real `app,func,minute,count` rows grouped per
/// `(app, func)` key through the same k-way merge as the synthetic
/// generators.
pub const AZURE_FIXTURE: &str = include_str!("../../core/testdata/azure_sample.csv");

/// One market-tightness preset: how much warm capacity the provider
/// keeps and how far supply may sag between redraws.
#[derive(Debug, Clone, Copy)]
pub struct MarketTightness {
    /// Preset label (`loose`, `medium`, `tight`).
    pub label: &'static str,
    /// Market-wide warm VMs per family.
    pub vms_per_family: usize,
    /// Lower bound of the fluctuating supply fraction (1.0 = steady).
    pub min_supply_fraction: f64,
}

/// The three tightness presets, loosest first: a roomy steady market, a
/// moderately fluctuating one, and a scarce volatile one where demotions
/// and admission control actually bite.
pub fn market_tightness() -> [MarketTightness; 3] {
    [
        MarketTightness {
            label: "loose",
            vms_per_family: 8,
            min_supply_fraction: 1.0,
        },
        MarketTightness {
            label: "medium",
            vms_per_family: 4,
            min_supply_fraction: 0.5,
        },
        MarketTightness {
            label: "tight",
            vms_per_family: 2,
            min_supply_fraction: 0.0,
        },
    ]
}

/// One sweep data point.
#[derive(Debug, Clone)]
pub struct FleetRow {
    /// Workload shape label (`poisson`, `bursty`, `diurnal`,
    /// `heavy_tail`, `azure`).
    pub source: &'static str,
    /// Functions in this row's fleet (the Azure fixture brings its own
    /// per-app function count).
    pub functions: usize,
    /// Market tightness preset label.
    pub tightness: &'static str,
    /// Admission policy label (`greedy`, `headroom`).
    pub policy: &'static str,
    /// Baseline (best-config-only) report.
    pub baseline: FleetReport,
    /// Idle-aware report.
    pub idle_aware: FleetReport,
}

impl FleetRow {
    /// Provider savings of idle-aware vs. baseline.
    pub fn cost_reduction(&self) -> f64 {
        1.0 - self.idle_aware.total_cost_usd / self.baseline.total_cost_usd
    }
}

/// The full sweep.
#[derive(Debug, Clone)]
pub struct FleetSimResult {
    /// Functions in the simulated fleet.
    pub n_functions: usize,
    /// Trace length in seconds.
    pub duration_secs: f64,
    /// Rows, grouped by trace source, then tightness (loosest first),
    /// then admission policy.
    pub rows: Vec<FleetRow>,
}

impl FleetSimResult {
    /// Renders the sweep table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "trace",
            "market",
            "admission",
            "invocations",
            "savings",
            "spot share",
            "demoted",
            "rejected",
            "violations",
            "p95 lat. inflation",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.source.to_string(),
                r.tightness.to_string(),
                r.policy.to_string(),
                r.baseline.invocations.to_string(),
                format!("{}%", fmt_f(r.cost_reduction() * 100.0, 1)),
                format!("{}%", fmt_f(r.idle_aware.spot_share() * 100.0, 1)),
                r.idle_aware.spot_demoted.to_string(),
                r.idle_aware.rejected.to_string(),
                r.idle_aware.slo_violations.to_string(),
                fmt_f(r.idle_aware.p95_latency_inflation, 3),
            ]);
        }
        format!(
            "Fleet simulation (shared spot market, extension of Fig. 15): {} functions, {}s per trace\n{}",
            self.n_functions,
            fmt_f(self.duration_secs, 0),
            t.render()
        )
    }

    /// Writes the CSV artifact.
    pub fn write_csv(&self) -> std::io::Result<std::path::PathBuf> {
        let mut t = TextTable::new(vec![
            "trace_source",
            "n_functions",
            "market_tightness",
            "admission_policy",
            "invocations",
            "baseline_cost_usd",
            "idle_aware_cost_usd",
            "cost_reduction",
            "spot_share",
            "spot_admitted",
            "spot_demoted",
            "policy_rejections",
            "capacity_misses",
            "slo_violations",
            "mean_latency_inflation",
            "p95_latency_inflation",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.source.to_string(),
                r.functions.to_string(),
                r.tightness.to_string(),
                r.policy.to_string(),
                r.baseline.invocations.to_string(),
                r.baseline.total_cost_usd.to_string(),
                r.idle_aware.total_cost_usd.to_string(),
                r.cost_reduction().to_string(),
                r.idle_aware.spot_share().to_string(),
                r.idle_aware.spot_admitted.to_string(),
                r.idle_aware.spot_demoted.to_string(),
                r.idle_aware.policy_rejections.to_string(),
                r.idle_aware.capacity_misses.to_string(),
                r.idle_aware.slo_violations.to_string(),
                r.idle_aware.mean_latency_inflation.to_string(),
                r.idle_aware.p95_latency_inflation.to_string(),
            ]);
        }
        t.write_csv("fleet_simulation.csv")
    }
}

/// The four workload shapes the sweep replays, targeting ~0.5 rps per
/// function on average (the diurnal period spans the whole trace, one
/// full cycle).
pub fn trace_sources(duration_secs: f64) -> [(&'static str, TraceSource); 4] {
    [
        (
            "poisson",
            TraceSource::Poisson {
                rps_per_function: 0.5,
            },
        ),
        (
            "bursty",
            TraceSource::Bursty {
                calm_rps: 0.1,
                burst_rps: 2.5,
                mean_calm_secs: 45.0,
                mean_burst_secs: 9.0,
            },
        ),
        (
            "diurnal",
            TraceSource::Diurnal {
                mean_rps: 0.5,
                peak_to_trough: 4.0,
                period_secs: duration_secs,
            },
        ),
        (
            "heavy_tail",
            TraceSource::HeavyTail {
                mean_rps: 0.5,
                alpha: 1.5,
            },
        ),
    ]
}

/// The market configuration of a tightness preset under a policy: supply
/// redraws every minute, seeded independently of the trace.
pub fn market_config(tightness: &MarketTightness, admission: AdmissionPolicy) -> MarketConfig {
    MarketConfig {
        vms_per_family: tightness.vms_per_family,
        supply: SupplyProcess {
            step_secs: 60.0,
            min_fraction: tightness.min_supply_fraction,
            seed: 17,
        },
        admission,
        ..MarketConfig::default()
    }
}

/// A fleet of `n_functions` plans built straight from ground-truth
/// tables (no tuning run): the best configuration is the table's fastest
/// feasible point, and each other family's fastest point becomes an
/// alternate, accepted when its actual slowdown stays within 15%.
///
/// This is the cheap fixture the determinism tests and the `spot_market`
/// bench replay; the experiment itself uses tuned plans.
pub fn synthetic_plans(n_functions: usize, seed: u64) -> freedom::Result<Vec<FunctionPlan>> {
    let space = SearchSpace::table1();
    let spot = freedom_pricing::SpotPricing::PAPER_DEFAULT;
    let base = FunctionKind::ALL
        .into_iter()
        .map(|function| {
            let table = collect_ground_truth(
                function,
                &function.default_input(),
                space.configs(),
                1,
                seed,
            )?;
            let best = table
                .best_by_time()
                .ok_or_else(|| freedom::FreedomError::InsufficientData(format!("{function}")))?
                .clone();
            let alternates = InstanceFamily::SEARCH_SPACE
                .iter()
                .filter(|&&family| family != best.config.family())
                .filter_map(|&family| {
                    table
                        .feasible()
                        .filter(|p| p.config.family() == family)
                        .min_by(|a, b| a.exec_time_secs.total_cmp(&b.exec_time_secs))
                        .map(|p| {
                            let norm_exec_time = p.exec_time_secs / best.exec_time_secs;
                            PlannedPlacement {
                                family,
                                config: p.config,
                                accepted: norm_exec_time <= 1.15,
                                norm_exec_time,
                                norm_spot_cost: p.exec_cost_usd * spot.fraction
                                    / best.exec_cost_usd,
                            }
                        })
                })
                .collect();
            Ok(FunctionPlan {
                function,
                best_config: best.config,
                alternates,
                table,
            })
        })
        .collect::<freedom::Result<Vec<FunctionPlan>>>()?;
    Ok((0..n_functions)
        .map(|i| base[i % base.len()].clone())
        .collect())
}

/// Builds the tuned per-function base plans the fleet sweeps replay —
/// one tuning run + planner pass per benchmark function, fanned out —
/// plus the planner that emitted them (whose risk posture supplies the
/// headroom admission policy). Shared by this sweep and the
/// control-loop experiment.
pub fn tuned_base_plans(
    opts: &ExperimentOpts,
) -> freedom::Result<(Vec<FunctionPlan>, IdleCapacityPlanner)> {
    let planner = IdleCapacityPlanner::default();
    let space = SearchSpace::table1();
    let base_plans = par_map(opts, &FunctionKind::ALL, |&function| {
        let table = ground_truth_default(function, opts)?;
        let outcome = Autotuner::new(SurrogateKind::Gp)
            .with_bo_config(BoConfig {
                surrogate_refit_every: opts.surrogate_refit_every,
                ..BoConfig::default()
            })
            .tune_offline(
                function,
                &function.default_input(),
                Objective::ExecutionTime,
                opts.seed,
            )?;
        let plan = planner.plan(&outcome, &table, &space)?;
        Ok(FunctionPlan {
            function,
            best_config: outcome.recommended().ok_or_else(|| {
                freedom::FreedomError::InsufficientData(format!("no config for {function}"))
            })?,
            alternates: plan.placements,
            table,
        })
    })
    .into_iter()
    .collect::<freedom::Result<Vec<FunctionPlan>>>()?;
    Ok((base_plans, planner))
}

/// The sweep's fleet scale: hour-long, hundreds-of-functions traces at
/// full settings; the same code paths at a fraction of the scale under
/// `--fast`.
pub fn fleet_scale(opts: &ExperimentOpts) -> (f64, usize) {
    if opts.opt_repeats <= 2 {
        (120.0, 12)
    } else {
        (3600.0, 120)
    }
}

/// Runs the sweep: every trace source (four synthetic shapes plus the
/// Azure CSV fixture) × market tightness × admission policy, replayed
/// windowed across `opts.effective_threads()` workers.
pub fn run(opts: &ExperimentOpts) -> freedom::Result<FleetSimResult> {
    // Build plans once per benchmark function; the six tuning runs are
    // independent and fan out. The planner also emits the headroom
    // admission policy the sweep pits against the greedy market.
    let (base_plans, planner) = tuned_base_plans(opts)?;
    let policies = [
        ("greedy", AdmissionPolicy::Greedy),
        ("headroom", planner.admission_policy()),
    ];

    let (duration_secs, n_functions) = fleet_scale(opts);
    let threads = opts.effective_threads();
    let cycle = |n: usize| -> Vec<FunctionPlan> {
        (0..n)
            .map(|i| base_plans[i % base_plans.len()].clone())
            .collect()
    };
    let sim = FleetSimulator::new(cycle(n_functions))?;

    let sources = trace_sources(duration_secs);
    let traces = sources
        .iter()
        .map(|(label, source)| {
            Ok((
                *label,
                source.generate_sharded(n_functions, duration_secs, opts.seed, threads)?,
            ))
        })
        .collect::<freedom::Result<Vec<_>>>()?;
    // The fifth source replays the checked-in Azure fixture through the
    // **streaming** CSV reader — rows in, events out, never the merged
    // view — the path full-size Azure trace files take. Its
    // per-(app, func) streams dictate their own fleet size, so it gets
    // its own simulator over the same cycled base plans.
    let azure_trace = StreamTrace::from_csv(AZURE_FIXTURE)?;
    let azure_sim = FleetSimulator::new(cycle(azure_trace.n_functions()))?;
    let n_sources = traces.len() + 1;

    // Each sweep cell replays its trace twice (baseline + idle-aware);
    // the cells are independent, so they fan out on top of the windowed
    // parallelism inside each replay.
    let tightness = market_tightness();
    let points: Vec<(usize, usize, usize)> = (0..n_sources)
        .flat_map(|s| {
            (0..tightness.len()).flat_map(move |t| (0..policies.len()).map(move |p| (s, t, p)))
        })
        .collect();
    let rows = par_map(opts, &points, |&(source_idx, tight_idx, policy_idx)| {
        let (policy_label, admission) = policies[policy_idx];
        let config = FleetConfig {
            market: market_config(&tightness[tight_idx], admission),
            ..FleetConfig::default()
        };
        // The engines are bit-identical, so each cell picks whichever
        // fits: the windowed machinery only when workers would share the
        // replay, the streaming engine for the CSV source.
        let (source_label, functions, baseline, idle_aware) =
            if let Some((source_label, trace)) = traces.get(source_idx) {
                let replay = |strategy| {
                    if threads <= 1 {
                        sim.run(trace, strategy, &config)
                    } else {
                        sim.run_windowed(trace, strategy, &config, threads, WINDOW_SECS)
                    }
                };
                (
                    *source_label,
                    trace.n_functions(),
                    replay(PlacementStrategy::BestConfigOnly)?,
                    replay(PlacementStrategy::IdleAware)?,
                )
            } else {
                let replay = |strategy| {
                    if threads <= 1 {
                        azure_sim.run_stream(&azure_trace, strategy, &config)
                    } else {
                        azure_sim.run_stream_windowed(
                            &azure_trace,
                            strategy,
                            &config,
                            threads,
                            WINDOW_SECS,
                        )
                    }
                };
                (
                    "azure",
                    azure_trace.n_functions(),
                    replay(PlacementStrategy::BestConfigOnly)?,
                    replay(PlacementStrategy::IdleAware)?,
                )
            };
        Ok(FleetRow {
            source: source_label,
            functions,
            tightness: tightness[tight_idx].label,
            policy: policy_label,
            baseline,
            idle_aware,
        })
    })
    .into_iter()
    .collect::<freedom::Result<Vec<_>>>()?;
    Ok(FleetSimResult {
        n_functions,
        duration_secs,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_every_cell_with_consistent_accounting() {
        let result = run(&ExperimentOpts::fast()).unwrap();
        // Four synthetic shapes plus the Azure CSV fixture.
        assert_eq!(result.rows.len(), 5 * 3 * 2);
        let azure_rows: Vec<_> = result.rows.iter().filter(|r| r.source == "azure").collect();
        assert_eq!(azure_rows.len(), 6, "azure sweeps every cell");
        for r in &azure_rows {
            // The fixture's six (app, func) streams and 113 invocations.
            assert_eq!(r.functions, 6);
            assert_eq!(r.baseline.invocations, 113);
        }
        for r in &result.rows {
            assert_eq!(r.baseline.invocations, r.idle_aware.invocations);
            assert!(r.baseline.invocations > 0, "{} trace is empty", r.source);
            // The admission ledger is total: every invocation is exactly
            // one of admitted / demoted / rejected.
            for report in [&r.baseline, &r.idle_aware] {
                assert_eq!(
                    report.spot_admitted + report.spot_demoted + report.rejected,
                    report.invocations,
                    "{}/{}/{}",
                    r.source,
                    r.tightness,
                    r.policy
                );
            }
            // The baseline never touches the market.
            assert_eq!(r.baseline.spot_admitted + r.baseline.spot_demoted, 0);
            // Latency guardrail holds in aggregate.
            assert!(
                r.idle_aware.mean_latency_inflation < 1.3,
                "{}: {}",
                r.source,
                r.idle_aware.mean_latency_inflation
            );
        }
        // In the loose steady market, spot placements save money: demand
        // pricing stays near the full discount and nothing is demoted.
        for r in result.rows.iter().filter(|r| r.tightness == "loose") {
            assert_eq!(r.idle_aware.spot_demoted, 0, "steady supply demotes");
            if r.idle_aware.spot_admitted > 0 {
                assert!(
                    r.cost_reduction() > 0.0,
                    "{}/{}: {}",
                    r.source,
                    r.policy,
                    r.cost_reduction()
                );
            }
        }
        // Tightness bites: the tight market admits no more than the
        // loose one under the same source and policy.
        for rows in result.rows.chunks(6) {
            let loose_greedy = &rows[0];
            let tight_greedy = &rows[4];
            assert_eq!(loose_greedy.tightness, "loose");
            assert_eq!(tight_greedy.tightness, "tight");
            assert_eq!(loose_greedy.source, tight_greedy.source);
            assert!(tight_greedy.idle_aware.spot_admitted <= loose_greedy.idle_aware.spot_admitted);
        }
        assert!(result.render().contains("shared spot market"));
    }

    #[test]
    fn synthetic_plans_cycle_the_benchmark_functions() {
        let plans = synthetic_plans(10, 3).unwrap();
        assert_eq!(plans.len(), 10);
        assert_eq!(plans[0].function, plans[6].function);
        assert!(plans
            .iter()
            .any(|p| p.alternates.iter().any(|a| a.accepted)));
    }
}

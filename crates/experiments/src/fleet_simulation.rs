//! Fleet-level provider simulation (extension of §6.2 / Figure 15).
//!
//! Figure 15 evaluates placement decisions one function at a time; this
//! experiment replays a Poisson invocation trace over *all six* functions
//! against a finite idle (spot) fleet, so placements compete for
//! capacity. It reports the aggregate cost reduction, latency inflation,
//! spot share, and capacity misses of the idle-aware policy against the
//! always-best-config baseline, across a sweep of fleet sizes.

use freedom::fleet::{
    FleetConfig, FleetReport, FleetSimulator, FunctionPlan, PlacementStrategy, Trace,
};
use freedom::provider::IdleCapacityPlanner;
use freedom::Autotuner;
use freedom_optimizer::{BoConfig, Objective, SearchSpace};
use freedom_surrogates::SurrogateKind;
use freedom_workloads::FunctionKind;

use crate::context::{ground_truth_default, par_map, ExperimentOpts};
use crate::report::{fmt_f, TextTable};

/// One fleet-size data point.
#[derive(Debug, Clone)]
pub struct FleetRow {
    /// Idle VMs provisioned per family.
    pub idle_vms_per_family: usize,
    /// Baseline (best-config-only) report.
    pub baseline: FleetReport,
    /// Idle-aware report.
    pub idle_aware: FleetReport,
}

impl FleetRow {
    /// Cost reduction of idle-aware vs. baseline.
    pub fn cost_reduction(&self) -> f64 {
        1.0 - self.idle_aware.total_cost_usd / self.baseline.total_cost_usd
    }
}

/// The full sweep.
#[derive(Debug, Clone)]
pub struct FleetSimResult {
    /// Arrivals in the simulated trace.
    pub invocations: usize,
    /// Rows, one per fleet size.
    pub rows: Vec<FleetRow>,
}

impl FleetSimResult {
    /// Renders the sweep table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "idle VMs/family",
            "cost reduction",
            "spot share",
            "capacity misses",
            "mean lat. inflation",
            "p95 lat. inflation",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.idle_vms_per_family.to_string(),
                format!("{}%", fmt_f(r.cost_reduction() * 100.0, 1)),
                format!("{}%", fmt_f(r.idle_aware.spot_share() * 100.0, 1)),
                r.idle_aware.spot_capacity_misses.to_string(),
                fmt_f(r.idle_aware.mean_latency_inflation, 3),
                fmt_f(r.idle_aware.p95_latency_inflation, 3),
            ]);
        }
        format!(
            "Fleet simulation (extension of Fig. 15): {} invocations over all six functions\n{}",
            self.invocations,
            t.render()
        )
    }

    /// Writes the CSV artifact.
    pub fn write_csv(&self) -> std::io::Result<std::path::PathBuf> {
        let mut t = TextTable::new(vec![
            "idle_vms_per_family",
            "baseline_cost_usd",
            "idle_aware_cost_usd",
            "cost_reduction",
            "spot_share",
            "capacity_misses",
            "mean_latency_inflation",
            "p95_latency_inflation",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.idle_vms_per_family.to_string(),
                r.baseline.total_cost_usd.to_string(),
                r.idle_aware.total_cost_usd.to_string(),
                r.cost_reduction().to_string(),
                r.idle_aware.spot_share().to_string(),
                r.idle_aware.spot_capacity_misses.to_string(),
                r.idle_aware.mean_latency_inflation.to_string(),
                r.idle_aware.p95_latency_inflation.to_string(),
            ]);
        }
        t.write_csv("fleet_simulation.csv")
    }
}

/// Runs the sweep: fleet sizes {0 VMs ⇒ all on-demand, 1, 2, 4} per
/// family over a 10-minute, ~0.5 rps/function trace.
pub fn run(opts: &ExperimentOpts) -> freedom::Result<FleetSimResult> {
    // Build plans once (one tuning run + planner pass per function); the
    // six functions' tuning runs are independent and fan out across cores.
    let planner = IdleCapacityPlanner::default();
    let space = SearchSpace::table1();
    let plans = par_map(opts, &FunctionKind::ALL, |&function| {
        let table = ground_truth_default(function, opts)?;
        let outcome = Autotuner::new(SurrogateKind::Gp)
            .with_bo_config(BoConfig {
                surrogate_refit_every: opts.surrogate_refit_every,
                ..BoConfig::default()
            })
            .tune_offline(
                function,
                &function.default_input(),
                Objective::ExecutionTime,
                opts.seed,
            )?;
        let alternates = planner.plan(&outcome, &table, &space)?;
        Ok(FunctionPlan {
            function,
            best_config: outcome.recommended().ok_or_else(|| {
                freedom::FreedomError::InsufficientData(format!("no config for {function}"))
            })?,
            alternates,
            table,
        })
    })
    .into_iter()
    .collect::<freedom::Result<Vec<FunctionPlan>>>()?;

    let duration = if opts.opt_repeats <= 2 { 120.0 } else { 600.0 };
    let trace = Trace::poisson(duration, 0.5, opts.seed)?;
    // Each fleet size replays the trace twice (baseline + idle-aware);
    // the sweep points are independent, so they fan out too.
    let rows = par_map(opts, &[1usize, 2, 4], |&idle_vms_per_family| {
        let sim = FleetSimulator::new(
            plans.clone(),
            FleetConfig {
                idle_vms_per_family,
                ..FleetConfig::default()
            },
        )?;
        Ok(FleetRow {
            idle_vms_per_family,
            baseline: sim.run(&trace, PlacementStrategy::BestConfigOnly)?,
            idle_aware: sim.run(&trace, PlacementStrategy::IdleAware)?,
        })
    })
    .into_iter()
    .collect::<freedom::Result<Vec<_>>>()?;
    Ok(FleetSimResult {
        invocations: trace.len(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_fleets_save_more_and_miss_less() {
        let result = run(&ExperimentOpts::fast()).unwrap();
        assert_eq!(result.rows.len(), 3);
        for r in &result.rows {
            assert_eq!(r.baseline.invocations, result.invocations);
            // Savings are positive whenever anything ran on spot.
            if r.idle_aware.spot_placements > 0 {
                assert!(r.cost_reduction() > 0.0, "{:?}", r.idle_vms_per_family);
            }
            // Latency guardrail holds in aggregate.
            assert!(
                r.idle_aware.mean_latency_inflation < 1.3,
                "{}",
                r.idle_aware.mean_latency_inflation
            );
        }
        // More idle capacity ⇒ no fewer spot placements.
        assert!(
            result.rows[2].idle_aware.spot_placements >= result.rows[0].idle_aware.spot_placements
        );
        // And no more capacity misses.
        assert!(
            result.rows[2].idle_aware.spot_capacity_misses
                <= result.rows[0].idle_aware.spot_capacity_misses
        );
        assert!(result.render().contains("Fleet simulation"));
    }
}

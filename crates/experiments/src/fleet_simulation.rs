//! Fleet-level provider simulation (extension of §6.2 / Figure 15).
//!
//! Figure 15 evaluates placement decisions one function at a time; this
//! experiment replays invocation traces over a whole fleet of functions,
//! each owning a finite warm (spot) pool, and reports the aggregate cost
//! reduction, latency inflation, spot share, and capacity misses of the
//! idle-aware policy against the always-best-config baseline.
//!
//! The sweep covers every [`TraceSource`] workload shape (Poisson,
//! bursty, diurnal, heavy-tail) × warm-pool sizes {1, 2, 4} VMs per
//! family. Replay is sharded per function across cores
//! ([`FleetSimulator::run_sharded`]); at default settings the fleet is
//! 120 functions under an hour of traffic, at `--fast` a 12-function,
//! two-minute smoke of the same code paths.

use freedom::fleet::{
    FleetConfig, FleetReport, FleetSimulator, FunctionPlan, PlacementStrategy, TraceSource,
};
use freedom::provider::{IdleCapacityPlanner, PlannedPlacement};
use freedom::Autotuner;
use freedom_cluster::InstanceFamily;
use freedom_faas::collect_ground_truth;
use freedom_optimizer::{BoConfig, Objective, SearchSpace};
use freedom_surrogates::SurrogateKind;
use freedom_workloads::FunctionKind;

use crate::context::{ground_truth_default, par_map, ExperimentOpts};
use crate::report::{fmt_f, TextTable};

/// One sweep data point.
#[derive(Debug, Clone)]
pub struct FleetRow {
    /// Workload shape label (`poisson`, `bursty`, `diurnal`, `heavy_tail`).
    pub source: &'static str,
    /// Warm VMs provisioned per accepted family per function.
    pub idle_vms_per_family: usize,
    /// Baseline (best-config-only) report.
    pub baseline: FleetReport,
    /// Idle-aware report.
    pub idle_aware: FleetReport,
}

impl FleetRow {
    /// Cost reduction of idle-aware vs. baseline.
    pub fn cost_reduction(&self) -> f64 {
        1.0 - self.idle_aware.total_cost_usd / self.baseline.total_cost_usd
    }
}

/// The full sweep.
#[derive(Debug, Clone)]
pub struct FleetSimResult {
    /// Functions in the simulated fleet.
    pub n_functions: usize,
    /// Trace length in seconds.
    pub duration_secs: f64,
    /// Rows, grouped by trace source, warm-pool sizes ascending.
    pub rows: Vec<FleetRow>,
}

impl FleetSimResult {
    /// Renders the sweep table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "trace",
            "warm VMs/family",
            "invocations",
            "cost reduction",
            "spot share",
            "capacity misses",
            "mean lat. inflation",
            "p95 lat. inflation",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.source.to_string(),
                r.idle_vms_per_family.to_string(),
                r.baseline.invocations.to_string(),
                format!("{}%", fmt_f(r.cost_reduction() * 100.0, 1)),
                format!("{}%", fmt_f(r.idle_aware.spot_share() * 100.0, 1)),
                r.idle_aware.spot_capacity_misses.to_string(),
                fmt_f(r.idle_aware.mean_latency_inflation, 3),
                fmt_f(r.idle_aware.p95_latency_inflation, 3),
            ]);
        }
        format!(
            "Fleet simulation (extension of Fig. 15): {} functions, {}s per trace\n{}",
            self.n_functions,
            fmt_f(self.duration_secs, 0),
            t.render()
        )
    }

    /// Writes the CSV artifact.
    pub fn write_csv(&self) -> std::io::Result<std::path::PathBuf> {
        let mut t = TextTable::new(vec![
            "trace_source",
            "n_functions",
            "idle_vms_per_family",
            "invocations",
            "baseline_cost_usd",
            "idle_aware_cost_usd",
            "cost_reduction",
            "spot_share",
            "capacity_misses",
            "mean_latency_inflation",
            "p95_latency_inflation",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.source.to_string(),
                self.n_functions.to_string(),
                r.idle_vms_per_family.to_string(),
                r.baseline.invocations.to_string(),
                r.baseline.total_cost_usd.to_string(),
                r.idle_aware.total_cost_usd.to_string(),
                r.cost_reduction().to_string(),
                r.idle_aware.spot_share().to_string(),
                r.idle_aware.spot_capacity_misses.to_string(),
                r.idle_aware.mean_latency_inflation.to_string(),
                r.idle_aware.p95_latency_inflation.to_string(),
            ]);
        }
        t.write_csv("fleet_simulation.csv")
    }
}

/// The four workload shapes the sweep replays, targeting ~0.5 rps per
/// function on average (the diurnal period spans the whole trace, one
/// full cycle).
pub fn trace_sources(duration_secs: f64) -> [(&'static str, TraceSource); 4] {
    [
        (
            "poisson",
            TraceSource::Poisson {
                rps_per_function: 0.5,
            },
        ),
        (
            "bursty",
            TraceSource::Bursty {
                calm_rps: 0.1,
                burst_rps: 2.5,
                mean_calm_secs: 45.0,
                mean_burst_secs: 9.0,
            },
        ),
        (
            "diurnal",
            TraceSource::Diurnal {
                mean_rps: 0.5,
                peak_to_trough: 4.0,
                period_secs: duration_secs,
            },
        ),
        (
            "heavy_tail",
            TraceSource::HeavyTail {
                mean_rps: 0.5,
                alpha: 1.5,
            },
        ),
    ]
}

/// A fleet of `n_functions` plans built straight from ground-truth
/// tables (no tuning run): the best configuration is the table's fastest
/// feasible point, and each other family's fastest point becomes an
/// alternate, accepted when its actual slowdown stays within 15%.
///
/// This is the cheap fixture the determinism tests and the `fleet_sim`
/// bench replay; the experiment itself uses tuned plans.
pub fn synthetic_plans(n_functions: usize, seed: u64) -> freedom::Result<Vec<FunctionPlan>> {
    let space = SearchSpace::table1();
    let spot = freedom_pricing::SpotPricing::PAPER_DEFAULT;
    let base = FunctionKind::ALL
        .into_iter()
        .map(|function| {
            let table = collect_ground_truth(
                function,
                &function.default_input(),
                space.configs(),
                1,
                seed,
            )?;
            let best = table
                .best_by_time()
                .ok_or_else(|| freedom::FreedomError::InsufficientData(format!("{function}")))?
                .clone();
            let alternates = InstanceFamily::SEARCH_SPACE
                .iter()
                .filter(|&&family| family != best.config.family())
                .filter_map(|&family| {
                    table
                        .feasible()
                        .filter(|p| p.config.family() == family)
                        .min_by(|a, b| a.exec_time_secs.total_cmp(&b.exec_time_secs))
                        .map(|p| {
                            let norm_exec_time = p.exec_time_secs / best.exec_time_secs;
                            PlannedPlacement {
                                family,
                                config: p.config,
                                accepted: norm_exec_time <= 1.15,
                                norm_exec_time,
                                norm_spot_cost: p.exec_cost_usd * spot.fraction
                                    / best.exec_cost_usd,
                            }
                        })
                })
                .collect();
            Ok(FunctionPlan {
                function,
                best_config: best.config,
                alternates,
                table,
            })
        })
        .collect::<freedom::Result<Vec<FunctionPlan>>>()?;
    Ok((0..n_functions)
        .map(|i| base[i % base.len()].clone())
        .collect())
}

/// Runs the sweep: every trace source × warm-pool sizes {1, 2, 4} VMs
/// per family, replayed sharded across `opts.effective_threads()`
/// workers.
pub fn run(opts: &ExperimentOpts) -> freedom::Result<FleetSimResult> {
    // Build plans once per benchmark function (one tuning run + planner
    // pass each); the six tuning runs are independent and fan out.
    let planner = IdleCapacityPlanner::default();
    let space = SearchSpace::table1();
    let base_plans = par_map(opts, &FunctionKind::ALL, |&function| {
        let table = ground_truth_default(function, opts)?;
        let outcome = Autotuner::new(SurrogateKind::Gp)
            .with_bo_config(BoConfig {
                surrogate_refit_every: opts.surrogate_refit_every,
                ..BoConfig::default()
            })
            .tune_offline(
                function,
                &function.default_input(),
                Objective::ExecutionTime,
                opts.seed,
            )?;
        let alternates = planner.plan(&outcome, &table, &space)?;
        Ok(FunctionPlan {
            function,
            best_config: outcome.recommended().ok_or_else(|| {
                freedom::FreedomError::InsufficientData(format!("no config for {function}"))
            })?,
            alternates,
            table,
        })
    })
    .into_iter()
    .collect::<freedom::Result<Vec<FunctionPlan>>>()?;

    // Hour-long, hundreds-of-functions traces at full settings; the same
    // code paths at a fraction of the scale under `--fast`.
    let (duration_secs, n_functions) = if opts.opt_repeats <= 2 {
        (120.0, 12)
    } else {
        (3600.0, 120)
    };
    let threads = opts.effective_threads();
    let plans: Vec<FunctionPlan> = (0..n_functions)
        .map(|i| base_plans[i % base_plans.len()].clone())
        .collect();
    let sim = FleetSimulator::new(plans)?;

    let sources = trace_sources(duration_secs);
    let traces = sources
        .iter()
        .map(|(_, source)| source.generate_sharded(n_functions, duration_secs, opts.seed, threads))
        .collect::<freedom::Result<Vec<_>>>()?;

    // Each sweep point replays its trace twice (baseline + idle-aware);
    // the points are independent, so they fan out on top of the
    // per-function sharding inside each replay.
    let points: Vec<(usize, usize)> = (0..sources.len())
        .flat_map(|s| [1usize, 2, 4].into_iter().map(move |v| (s, v)))
        .collect();
    let rows = par_map(opts, &points, |&(source_idx, idle_vms_per_family)| {
        let config = FleetConfig {
            idle_vms_per_family,
            ..FleetConfig::default()
        };
        let trace = &traces[source_idx];
        Ok(FleetRow {
            source: sources[source_idx].0,
            idle_vms_per_family,
            baseline: sim.run_sharded(
                trace,
                PlacementStrategy::BestConfigOnly,
                &config,
                threads,
            )?,
            idle_aware: sim.run_sharded(trace, PlacementStrategy::IdleAware, &config, threads)?,
        })
    })
    .into_iter()
    .collect::<freedom::Result<Vec<_>>>()?;
    Ok(FleetSimResult {
        n_functions,
        duration_secs,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_fleets_save_more_and_miss_less() {
        let result = run(&ExperimentOpts::fast()).unwrap();
        assert_eq!(result.rows.len(), 4 * 3);
        for r in &result.rows {
            assert_eq!(r.baseline.invocations, r.idle_aware.invocations);
            assert!(r.baseline.invocations > 0, "{} trace is empty", r.source);
            // Savings are positive whenever anything ran on spot.
            if r.idle_aware.spot_placements > 0 {
                assert!(r.cost_reduction() > 0.0, "{:?}", r.source);
            }
            // Latency guardrail holds in aggregate.
            assert!(
                r.idle_aware.mean_latency_inflation < 1.3,
                "{}: {}",
                r.source,
                r.idle_aware.mean_latency_inflation
            );
        }
        // Within each trace source: more warm capacity ⇒ no fewer spot
        // placements and no more capacity misses.
        for group in result.rows.chunks(3) {
            assert_eq!(group[0].source, group[2].source);
            assert!(group[2].idle_aware.spot_placements >= group[0].idle_aware.spot_placements);
            assert!(
                group[2].idle_aware.spot_capacity_misses
                    <= group[0].idle_aware.spot_capacity_misses
            );
        }
        assert!(result.render().contains("Fleet simulation"));
    }

    #[test]
    fn synthetic_plans_cycle_the_benchmark_functions() {
        let plans = synthetic_plans(10, 3).unwrap();
        assert_eq!(plans.len(), 10);
        assert_eq!(plans[0].function, plans[6].function);
        assert!(plans
            .iter()
            .any(|p| p.alternates.iter().any(|a| a.accepted)));
    }
}

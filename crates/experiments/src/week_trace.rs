//! Synthesizes the week-scale multi-file gzip'd Azure-style trace the
//! headline replay drives: one `.csv.gz` member per simulated day, each
//! in the four-column `app,func,minute,count` grammar the streaming
//! ingester scans. Shared by the `fleet_week_replay` binary (which
//! writes the day files to disk and replays them crash-resumably) and
//! the `week_replay` bench group (which keeps the compressed parts in
//! memory).
//!
//! Everything is a pure function of the [`WeekTraceSpec`], so a killed
//! binary run, its resumed continuation, and the bench all replay the
//! identical trace.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Shape of a synthesized multi-day trace.
#[derive(Debug, Clone, Copy)]
pub struct WeekTraceSpec {
    /// Days simulated — one gzip'd CSV file each.
    pub days: u32,
    /// Distinct `app,func` streams.
    pub functions: u32,
    /// Minutes between consecutive rows of one function (staggered by
    /// function index so every minute carries ~`functions/row_every`
    /// rows).
    pub row_every: u32,
    /// Seed folded into every row count.
    pub seed: u64,
}

impl WeekTraceSpec {
    /// The headline scale: a 14-day, 10 000-function fleet, ~13 M
    /// arrival events.
    pub fn headline() -> Self {
        Self {
            days: 14,
            functions: 10_000,
            row_every: 60,
            seed: 42,
        }
    }

    /// The downscaled shape quick-bench and the CI smoke replay: two
    /// day files, still multi-file and gzip'd, ~1 M events.
    pub fn downscaled() -> Self {
        Self {
            days: 2,
            functions: 2_000,
            row_every: 20,
            seed: 42,
        }
    }

    /// A short human tag (`14d_10000fn`) naming bench rows and file
    /// sets.
    pub fn tag(&self) -> String {
        format!("{}d_{}fn", self.days, self.functions)
    }

    /// Arrival count for one function-minute: a diurnal sinusoid (peak
    /// mid-day) plus seeded splitmix jitter, always ≥ 1 so every row
    /// emits events.
    fn row_count(&self, function: u32, minute: u64) -> u32 {
        let phase = (minute % 1440) as f64 / 1440.0;
        let diurnal = 1.0 + 0.8 * (std::f64::consts::TAU * phase).sin();
        let mut x = (function as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(minute)
            .wrapping_add(self.seed.wrapping_mul(0xD1B5_4A32_D192_ED03));
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 29;
        (2.0 * diurnal) as u32 + (x % 4) as u32
    }

    /// The plain CSV text of one day (day 0 carries the header, like a
    /// real multi-file export where only the first shard keeps it —
    /// though the ingester accepts a header on any file).
    pub fn day_csv(&self, day: u32) -> String {
        let mut out = String::new();
        if day == 0 {
            out.push_str("app,func,minute,count\n");
        }
        let base = day as u64 * 1440;
        for m in 0..1440u64 {
            let minute = base + m;
            for f in (0..self.functions)
                .filter(|f| (minute + *f as u64).is_multiple_of(self.row_every as u64))
            {
                let app = f / 100;
                writeln!(out, "a{app},f{f},{minute},{}", self.row_count(f, minute)).unwrap();
            }
        }
        out
    }

    /// One day, gzip'd (stored blocks: the replay's decompression
    /// benchmark measures the inflate path, not a compressor).
    pub fn day_gz(&self, day: u32) -> Vec<u8> {
        flate::gzip_compress(self.day_csv(day).as_bytes(), flate::CompressMode::Stored)
    }

    /// All day parts, compressed, generated in parallel.
    pub fn gz_parts(&self, threads: usize) -> Vec<Vec<u8>> {
        freedom_parallel::par_run(self.days as usize, threads, |d| self.day_gz(d as u32))
    }

    /// Writes `day01.csv.gz` … into `dir` (created if missing) and
    /// returns the paths in day order. Existing files are overwritten:
    /// the content is a pure function of the spec, and a stale file
    /// from a different spec must not survive.
    pub fn write_day_files(&self, dir: &Path, threads: usize) -> std::io::Result<Vec<PathBuf>> {
        fs::create_dir_all(dir)?;
        let parts = self.gz_parts(threads);
        let mut paths = Vec::with_capacity(parts.len());
        for (d, gz) in parts.iter().enumerate() {
            let path = dir.join(format!("day{:02}.csv.gz", d + 1));
            fs::write(&path, gz)?;
            paths.push(path);
        }
        Ok(paths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freedom::fleet::StreamTrace;

    #[test]
    fn downscaled_week_trace_ingests_and_counts() {
        let spec = WeekTraceSpec {
            days: 2,
            functions: 40,
            row_every: 30,
            seed: 7,
        };
        let parts = spec.gz_parts(2);
        let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
        let trace = StreamTrace::from_csv_parts(&refs).unwrap();
        assert_eq!(trace.n_functions(), 40);
        // ~2 days × 1440 min × (40/30 rows/min) × mean count ≈ 3.3/row.
        assert!(trace.len() > 8_000, "{}", trace.len());
        // Deterministic: regenerating scans to the same shape.
        let again = StreamTrace::from_csv_parts(&refs).unwrap();
        assert_eq!(trace.len(), again.len());
        assert_eq!(trace.horizon_nanos(), again.horizon_nanos());
    }
}

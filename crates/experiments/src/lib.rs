//! Experiment harness: one module per table/figure of the paper.
//!
//! Each module exposes `run(&ExperimentOpts) -> Result<...>` returning a
//! structured result with a `render()` text table and a `write_csv()`
//! export, so the same kernels serve the CLI binaries (`src/bin/*`), the
//! Criterion benches, and the integration tests. See `DESIGN.md` §5 for
//! the experiment index and `EXPERIMENTS.md` for measured-vs-paper values.

pub mod context;
pub mod report;

pub mod ablation_study;
pub mod fig01_config_spread;
pub mod fig03_strategies;
pub mod fig04_sampling_vs_bo;
pub mod fig05_convergence;
pub mod fig07_input_specific;
pub mod fig08_online_violations;
pub mod fig09_mape;
pub mod fig12_pareto_distance;
pub mod fig13_weighted_mo;
pub mod fig14_hierarchical;
pub mod fig15_provider_savings;
pub mod fleet_control_loop;
pub mod fleet_retry_storm;
pub mod fleet_simulation;
pub mod fleet_zone_outage;
pub mod table3_alternatives;
pub mod week_trace;

pub use context::ExperimentOpts;
